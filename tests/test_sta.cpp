#include <gtest/gtest.h>

#include <vector>

#include "cell/library.hpp"
#include "netlist/builders.hpp"
#include "netlist/netlist.hpp"
#include "sta/case_analysis.hpp"
#include "sta/sta.hpp"

namespace {

using raq::cell::CellType;
using raq::cell::Library;
using raq::cell::Logic;
using raq::common::Compression;
using raq::common::Padding;
using raq::netlist::AdderKind;
using raq::netlist::build_adder_circuit;
using raq::netlist::build_mac_circuit;
using raq::netlist::build_multiplier_circuit;
using raq::netlist::MacConfig;
using raq::netlist::MultiplierKind;
using raq::netlist::Netlist;
using raq::sta::CaseAnalysis;
using raq::sta::compression_case;
using raq::sta::Sta;

TEST(Sta, InverterChainDelayIsSumOfStageDelays) {
    Netlist nl;
    const auto in = nl.add_primary_input("in");
    auto net = in;
    const int stages = 5;
    for (int i = 0; i < stages; ++i) net = nl.add_gate(CellType::Inv, {net});
    nl.mark_primary_output(net, "out");

    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    const auto res = sta.run(lib);

    // Interior stages drive one INV pin; the last stage drives the output pin.
    const double pin = lib.spec(CellType::Inv).input_cap_ff;
    const double interior = lib.cell_delay_ps(CellType::Inv, pin);
    const double last = lib.cell_delay_ps(CellType::Inv, lib.tech().output_pin_cap_ff);
    EXPECT_NEAR(res.critical_path_ps, (stages - 1) * interior + last, 1e-9);
}

TEST(Sta, CriticalPathIsConnectedAndStartsAtInput) {
    const Netlist nl = build_multiplier_circuit(8);
    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    const auto res = sta.run(lib);
    ASSERT_GE(res.critical_path.size(), 2u);
    EXPECT_TRUE(nl.is_primary_input(res.critical_path.front()));
    // Each hop must be driven by a gate reading the previous net.
    for (std::size_t i = 1; i < res.critical_path.size(); ++i) {
        const auto driver = nl.driver(res.critical_path[i]);
        ASSERT_GE(driver, 0);
        const auto& gate = nl.gates()[static_cast<std::size_t>(driver)];
        bool connected = false;
        for (int k = 0; k < gate.num_inputs(); ++k)
            connected |= (gate.inputs[k] == res.critical_path[i - 1]);
        EXPECT_TRUE(connected) << "hop " << i;
    }
}

TEST(Sta, ArrivalsAreMonotoneAlongCriticalPath) {
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    const auto res = sta.run(lib);
    for (std::size_t i = 1; i < res.critical_path.size(); ++i)
        EXPECT_LT(res.arrival(res.critical_path[i - 1]), res.arrival(res.critical_path[i]));
}

TEST(Sta, AgingScalesCriticalPathByExactDerate) {
    const Netlist nl = build_mac_circuit();
    const Library fresh = Library::finfet14();
    const Sta sta(nl, fresh);
    const double fresh_cp = sta.critical_path_ps(fresh);
    for (double dvth : {10.0, 30.0, 50.0}) {
        const double aged_cp = sta.critical_path_ps(fresh.aged(dvth));
        EXPECT_NEAR(aged_cp / fresh_cp, fresh.derate_for(dvth), 1e-9);
    }
}

TEST(Sta, RippleAdderSlowerThanParallelPrefix) {
    const Library lib = Library::finfet14();
    const Netlist ripple = build_adder_circuit(22, AdderKind::RippleCarry);
    const Netlist sklansky = build_adder_circuit(22, AdderKind::Sklansky);
    const Netlist kogge = build_adder_circuit(22, AdderKind::KoggeStone);
    const double d_ripple = Sta(ripple, lib).critical_path_ps(lib);
    const double d_sklansky = Sta(sklansky, lib).critical_path_ps(lib);
    const double d_kogge = Sta(kogge, lib).critical_path_ps(lib);
    EXPECT_GT(d_ripple, 1.5 * d_sklansky);
    EXPECT_GT(d_ripple, 1.5 * d_kogge);
}

TEST(Sta, WallaceScalesBetterThanArray) {
    // O(n) array rows vs O(log n) CSA levels: at 8 bits the two are close
    // (the array even wins slightly under our characterization), from 12
    // bits up the Wallace tree must win clearly.
    const Library lib = Library::finfet14();
    const Netlist array16 = build_multiplier_circuit(16, MultiplierKind::Array);
    const Netlist wallace16 =
        build_multiplier_circuit(16, MultiplierKind::Wallace, AdderKind::KoggeStone);
    EXPECT_GT(Sta(array16, lib).critical_path_ps(lib),
              1.3 * Sta(wallace16, lib).critical_path_ps(lib));

    const Netlist array8 = build_multiplier_circuit(8, MultiplierKind::Array);
    const Netlist wallace8 =
        build_multiplier_circuit(8, MultiplierKind::Wallace, AdderKind::KoggeStone);
    const double ratio = Sta(array8, lib).critical_path_ps(lib) /
                         Sta(wallace8, lib).critical_path_ps(lib);
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.25);
}

TEST(Sta, CaseAnalysisAllZeroInputsKillAllPaths) {
    const Netlist nl = build_multiplier_circuit(8);
    const Library lib = Library::finfet14();
    CaseAnalysis ca;
    for (const auto net : nl.input_bus("A")) ca.set(net, Logic::Zero);
    const auto res = Sta(nl, lib).run(lib, ca);
    // A = 0 forces P = 0: every output is constant, no timing paths left.
    EXPECT_DOUBLE_EQ(res.critical_path_ps, 0.0);
    for (const auto out : nl.output_bus("P")) EXPECT_TRUE(res.is_constant(out));
}

TEST(Sta, CaseAnalysisConstantsPropagate) {
    Netlist nl;
    const auto a = nl.add_primary_input("a");
    const auto b = nl.add_primary_input("b");
    const auto g1 = nl.add_gate(CellType::And2, {a, b});  // 0 under a=0
    const auto g2 = nl.add_gate(CellType::Or2, {g1, b});  // follows b
    const auto g3 = nl.add_gate(CellType::Nand2, {a, g2});  // 1 under a=0
    nl.mark_primary_output(g2, "live");
    nl.mark_primary_output(g3, "dead");
    const Library lib = Library::finfet14();
    CaseAnalysis ca;
    ca.set(a, Logic::Zero);
    const auto res = Sta(nl, lib).run(lib, ca);
    EXPECT_TRUE(res.is_constant(g1));   // AND with controlling 0
    EXPECT_FALSE(res.is_constant(g2));  // OR(0, b) = b stays live
    EXPECT_TRUE(res.is_constant(g3));   // NAND with controlling 0 -> 1
    // The live output's arrival counts only the OR stage: the AND arc died.
    const double or_delay =
        lib.cell_delay_ps(CellType::Or2,
                          lib.spec(CellType::Nand2).input_cap_ff + lib.tech().output_pin_cap_ff);
    EXPECT_NEAR(res.arrival(g2), or_delay, 1e-9);
}

TEST(Sta, CompressionNeverIncreasesDelay) {
    // Property: tying more input bits to constants can only remove timing
    // arcs. Delay must be monotonically non-increasing in (alpha, beta)
    // for a fixed padding side.
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    for (const auto padding : {Padding::Msb, Padding::Lsb}) {
        for (int alpha = 0; alpha <= 4; ++alpha) {
            double prev = 1e18;
            for (int beta = 0; beta <= 4; ++beta) {
                const Compression comp{alpha, beta, padding};
                const double d = sta.critical_path_ps(lib, compression_case(nl, comp));
                EXPECT_LE(d, prev + 1e-9) << comp.to_string();
                prev = d;
            }
        }
        for (int beta = 0; beta <= 4; ++beta) {
            double prev = 1e18;
            for (int alpha = 0; alpha <= 4; ++alpha) {
                const Compression comp{alpha, beta, padding};
                const double d = sta.critical_path_ps(lib, compression_case(nl, comp));
                EXPECT_LE(d, prev + 1e-9) << comp.to_string();
                prev = d;
            }
        }
    }
}

TEST(Sta, CompressionDelayGainIsSubstantialAtFourFour) {
    // Fig. 2: (4,4) compression buys roughly 20-25 % delay on the MAC.
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    const double base = sta.critical_path_ps(lib);
    double best = base;
    for (const auto padding : {Padding::Msb, Padding::Lsb}) {
        const Compression comp{4, 4, padding};
        best = std::min(best, sta.critical_path_ps(lib, compression_case(nl, comp)));
    }
    EXPECT_LT(best / base, 0.85) << "best (4,4) normalized delay " << best / base;
}

TEST(Sta, PaddingSidesGiveDifferentDelays) {
    // Fig. 2 shows MSB and LSB padding win for different (alpha, beta);
    // at minimum the two sides must not be identical everywhere.
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    const Sta sta(nl, lib);
    bool differs = false;
    for (int alpha = 1; alpha <= 4 && !differs; ++alpha) {
        for (int beta = 0; beta <= 4 && !differs; ++beta) {
            const double msb = sta.critical_path_ps(
                lib, compression_case(nl, Compression{alpha, beta, Padding::Msb}));
            const double lsb = sta.critical_path_ps(
                lib, compression_case(nl, Compression{alpha, beta, Padding::Lsb}));
            differs = std::abs(msb - lsb) > 1e-6;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Sta, CompressionCaseRejectsBadRanges) {
    const Netlist nl = build_mac_circuit();
    EXPECT_THROW(compression_case(nl, Compression{9, 0, Padding::Msb}),
                 std::invalid_argument);
    EXPECT_THROW(compression_case(nl, Compression{-1, 0, Padding::Msb}),
                 std::invalid_argument);
}

TEST(Sta, LeakageRollupMatchesHistogram) {
    const Netlist nl = build_multiplier_circuit(4);
    const Library lib = Library::finfet14();
    const auto hist = nl.cell_histogram();
    double expect = 0.0;
    for (int i = 0; i < raq::cell::kNumCellTypes; ++i)
        expect += hist[static_cast<std::size_t>(i)] *
                  lib.leakage_nw(static_cast<CellType>(i));
    EXPECT_NEAR(Sta::total_leakage_nw(nl, lib), expect, 1e-9);
}

TEST(Sta, FormatPathReportMentionsDelay) {
    const Netlist nl = build_multiplier_circuit(4);
    const Library lib = Library::finfet14();
    const auto res = Sta(nl, lib).run(lib);
    const auto report = raq::sta::format_path_report(nl, res);
    EXPECT_NE(report.find("critical path"), std::string::npos);
}

}  // namespace
