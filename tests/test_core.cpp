#include <gtest/gtest.h>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "core/compression_selector.hpp"
#include "core/lifetime.hpp"
#include "core/requant_job.hpp"
#include "data/synthetic_dataset.hpp"
#include "netlist/builders.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"

namespace {

using namespace raq;

class Selector : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        mac_ = new netlist::Netlist(netlist::build_mac_circuit());
        lib_ = new cell::Library(cell::Library::finfet14());
        selector_ = new core::CompressionSelector(*mac_, *lib_);
    }
    static void TearDownTestSuite() {
        delete selector_;
        delete lib_;
        delete mac_;
    }
    static netlist::Netlist* mac_;
    static cell::Library* lib_;
    static core::CompressionSelector* selector_;
};

netlist::Netlist* Selector::mac_ = nullptr;
cell::Library* Selector::lib_ = nullptr;
core::CompressionSelector* Selector::selector_ = nullptr;

TEST_F(Selector, FreshChipNeedsNoCompression) {
    const auto choice = selector_->select(0.0);
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(choice->compression.is_none());
    EXPECT_NEAR(choice->normalized_delay, 1.0, 1e-9);
}

TEST_F(Selector, SelectedCompressionAlwaysMeetsTiming) {
    for (const double dvth : {10.0, 20.0, 30.0, 40.0, 50.0}) {
        const auto choice = selector_->select(dvth);
        ASSERT_TRUE(choice.has_value()) << dvth;
        EXPECT_LE(choice->delay_ps, selector_->fresh_critical_path_ps() + 1e-6) << dvth;
        EXPECT_LE(choice->normalized_delay, 1.0 + 1e-9) << dvth;
    }
}

TEST_F(Selector, CompressionNormGrowsWithAging) {
    double prev_norm = -1.0;
    for (const double dvth : {10.0, 20.0, 30.0, 40.0, 50.0}) {
        const auto choice = selector_->select(dvth);
        ASSERT_TRUE(choice.has_value());
        EXPECT_GE(choice->compression.norm(), prev_norm - 1e-9) << dvth;
        prev_norm = choice->compression.norm();
    }
    EXPECT_GT(prev_norm, 0.0);  // end of life demands real compression
}

TEST_F(Selector, FeasibleSetShrinksWithAging) {
    std::size_t prev = selector_->feasible(10.0).size();
    EXPECT_GT(prev, 0u);
    for (const double dvth : {20.0, 30.0, 40.0, 50.0}) {
        const auto count = selector_->feasible(dvth).size();
        EXPECT_LE(count, prev) << dvth;
        prev = count;
    }
}

TEST_F(Selector, SelectionIsMinimalNorm) {
    // No feasible candidate may have a strictly smaller norm than the
    // selected one.
    const auto choice = selector_->select(50.0);
    ASSERT_TRUE(choice.has_value());
    for (const auto& candidate : selector_->feasible(50.0))
        EXPECT_GE(candidate.compression.norm() + 1e-12, choice->compression.norm());
}

TEST_F(Selector, GuardbandRelaxesSelection) {
    const auto strict = selector_->select(50.0, 0.0);
    const auto relaxed = selector_->select(50.0, 0.09);
    ASSERT_TRUE(strict.has_value());
    ASSERT_TRUE(relaxed.has_value());
    EXPECT_LE(relaxed->compression.norm(), strict->compression.norm());
    const auto full_gb = selector_->select(50.0, 0.25);
    ASSERT_TRUE(full_gb.has_value());
    EXPECT_TRUE(full_gb->compression.is_none());
}

TEST_F(Selector, SweepCoversBothPaddings) {
    const auto grid = selector_->sweep(2, 2);
    EXPECT_EQ(grid.size(), 9u * 2u);
    for (const auto& point : grid) {
        EXPECT_GT(point.delay_ps, 0.0);
        EXPECT_LE(point.normalized_delay, 1.0 + 1e-9);  // compression never slows
    }
}

TEST_F(Selector, RejectsBadArguments) {
    EXPECT_THROW(selector_->feasible(10.0, 0.0, 9), std::invalid_argument);
}

TEST_F(Selector, LifetimeSchedulerReproducesGuardband) {
    const aging::AgingModel model;
    const core::LifetimeScheduler scheduler(*selector_, model);
    EXPECT_NEAR(scheduler.required_guardband_fraction(), 0.23, 0.02);
    const auto schedule = scheduler.standard_schedule();
    ASSERT_EQ(schedule.size(), 6u);
    EXPECT_NEAR(schedule.front().baseline_normalized_delay, 1.0, 1e-9);
    EXPECT_NEAR(schedule.back().baseline_normalized_delay, 1.23, 0.02);
    for (const auto& point : schedule) {
        ASSERT_TRUE(point.ours_feasible) << point.dvth_mv;
        EXPECT_LE(point.ours_normalized_delay, 1.0 + 1e-9) << point.dvth_mv;
        if (point.dvth_mv > 0.0)
            EXPECT_GT(point.baseline_normalized_delay, 1.0) << point.dvth_mv;
    }
}

TEST(AlgorithmOne, EndToEndOnTrainedModel) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, lib);

    data::DatasetConfig dc;
    dc.train_size = 900;
    dc.test_size = 250;
    const data::SyntheticDataset ds(dc);
    auto net = nn::make_network("resnet20-mini");
    nn::TrainConfig tcfg;
    tcfg.epochs = 3;
    nn::SgdTrainer trainer(tcfg);
    trainer.fit(net, ds);
    auto graph = net.export_ir();

    const auto test_images = ds.test_batch(0, 250);
    const std::vector<int> test_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 250);
    const auto calib_images = ds.train_batch(0, 48);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 48);

    core::AagInputs in;
    in.graph = &graph;
    in.test_images = &test_images;
    in.test_labels = &test_labels;
    in.calib_images = &calib_images;
    in.calib_labels = &calib_labels;

    const core::AgingAwareQuantizer quantizer(selector);
    const auto mild = quantizer.run(in, 10.0);
    const auto severe = quantizer.run(in, 50.0);

    EXPECT_GT(mild.fp32_accuracy, 0.8);
    EXPECT_EQ(mild.all_methods.size(), 5u);
    // Graceful degradation: end-of-life loss stays bounded...
    EXPECT_LT(severe.accuracy_loss, 15.0);
    // ...and the stronger compression cannot be *better* by much.
    EXPECT_GE(severe.accuracy_loss, mild.accuracy_loss - 2.0);
    // The best method is recorded consistently.
    double best_acc = 0.0;
    for (const auto& outcome : severe.all_methods) best_acc = std::max(best_acc, outcome.accuracy);
    EXPECT_DOUBLE_EQ(best_acc, severe.quantized_accuracy);

    // With a loose accuracy threshold, Algorithm 1 stops at the first
    // satisfying method rather than sweeping all five.
    core::AagInputs thresholded = in;
    thresholded.accuracy_loss_threshold = 50.0;
    const auto early = quantizer.run(thresholded, 50.0);
    EXPECT_LE(early.all_methods.size(), 5u);
    EXPECT_LE(early.all_methods.back().accuracy_loss, 50.0);

    // Missing inputs are rejected.
    core::AagInputs incomplete;
    EXPECT_THROW(quantizer.run(incomplete, 10.0), std::invalid_argument);
}

TEST(RequantJobTest, BuildsVersionedStatesMatchingAlgorithmOne) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, lib);

    data::DatasetConfig dc;
    dc.train_size = 600;
    dc.test_size = 200;
    const data::SyntheticDataset ds(dc);
    auto net = nn::make_network("alexnet-mini");
    nn::TrainConfig tcfg;
    tcfg.epochs = 2;
    nn::SgdTrainer trainer(tcfg);
    trainer.fit(net, ds);
    const auto graph = net.export_ir();

    const auto calib_images = ds.train_batch(0, 48);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 48);
    const auto calib = quant::calibrate(graph, calib_images, calib_labels);
    const auto eval_images = ds.test_batch(0, 100);
    const std::vector<int> eval_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 100);

    // Fast path: compression from the selector, M5, generation stamped.
    const core::RequantJob fast(graph, calib, selector, {});
    const auto fresh = fast.build(0.0, 1);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_EQ(fresh->generation, 1u);
    EXPECT_EQ(fresh->method, quant::Method::M5_AciqNoBias);
    EXPECT_EQ(fresh->dvth_mv, 0.0);
    EXPECT_TRUE(fresh->compression.is_none());
    ASSERT_NE(fresh->qgraph, nullptr);

    const auto aged = fast.build(30.0, 2);
    ASSERT_TRUE(aged.has_value());
    EXPECT_EQ(aged->generation, 2u);
    const auto expected = selector.select(30.0);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(aged->compression.alpha, expected->compression.alpha);
    EXPECT_EQ(aged->compression.beta, expected->compression.beta);

    // Full Algorithm 1 without an eval set is a construction-time error,
    // not a silent fast-path fallback.
    core::RequantJobConfig full_cfg;
    full_cfg.full_algorithm1 = true;
    EXPECT_THROW(core::RequantJob(graph, calib, selector, full_cfg),
                 std::invalid_argument);
    const std::vector<int> short_labels(10, 0);
    EXPECT_THROW(core::RequantJob(graph, calib, selector, full_cfg, &eval_images,
                                  &short_labels),
                 std::invalid_argument);

    // Full path selects the same method Algorithm 1 (the one-shot
    // reporting entry point) selects at the same aging level: the
    // extracted search is the same code.
    const core::RequantJob full(graph, calib, selector, full_cfg, &eval_images,
                                &eval_labels);
    const auto full_state = full.build(30.0, 3);
    ASSERT_TRUE(full_state.has_value());

    core::AagInputs in;
    in.graph = &graph;
    in.test_images = &eval_images;
    in.test_labels = &eval_labels;
    in.calib_images = &calib_images;
    in.calib_labels = &calib_labels;
    const core::AgingAwareQuantizer quantizer(selector);
    const auto reference = quantizer.run(in, 30.0);
    EXPECT_EQ(full_state->method, reference.selected_method);
    EXPECT_NEAR(full.fp32_accuracy(), reference.fp32_accuracy, 1e-12);
}

}  // namespace
