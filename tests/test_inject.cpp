#include <gtest/gtest.h>

#include "inject/bitflip.hpp"

namespace {

using raq::inject::BitFlipInjector;
using raq::inject::InjectionConfig;

TEST(BitFlip, ZeroProbabilityNeverFlips) {
    InjectionConfig cfg;
    cfg.flip_probability = 0.0;
    BitFlipInjector injector(cfg);
    for (int i = 0; i < 10000; ++i) EXPECT_EQ(injector.apply(12345), 12345);
    EXPECT_EQ(injector.flips_injected(), 0u);
}

TEST(BitFlip, EmpiricalRateMatchesConfigured) {
    for (const double p : {1e-1, 1e-2, 1e-3}) {
        InjectionConfig cfg;
        cfg.flip_probability = p;
        cfg.seed = 7;
        BitFlipInjector injector(cfg);
        const int n = 400000;
        int flips = 0;
        for (int i = 0; i < n; ++i) flips += (injector.apply(0) != 0);
        const double rate = static_cast<double>(flips) / n;
        EXPECT_NEAR(rate, p, 0.25 * p + 1e-5) << "p=" << p;
        EXPECT_EQ(injector.flips_injected(), static_cast<std::uint64_t>(flips));
    }
}

TEST(BitFlip, FlipsLandInTopTwoBitsOnly) {
    InjectionConfig cfg;
    cfg.flip_probability = 0.5;
    cfg.product_bits = 16;
    cfg.candidate_msbs = 2;
    BitFlipInjector injector(cfg);
    bool saw_bit15 = false, saw_bit14 = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t out = injector.apply(0);
        if (out == 0) continue;
        EXPECT_TRUE(out == (1 << 15) || out == (1 << 14)) << out;
        saw_bit15 |= (out == (1 << 15));
        saw_bit14 |= (out == (1 << 14));
    }
    EXPECT_TRUE(saw_bit15);
    EXPECT_TRUE(saw_bit14);
}

TEST(BitFlip, FlipIsAnXorSoSetBitsClear) {
    InjectionConfig cfg;
    cfg.flip_probability = 1.0;  // flip every product
    cfg.product_bits = 16;
    cfg.candidate_msbs = 1;      // always bit 15
    BitFlipInjector injector(cfg);
    EXPECT_EQ(injector.apply(0), 1 << 15);
    EXPECT_EQ(injector.apply(1 << 15), 0);
    EXPECT_EQ(injector.apply((1 << 15) | 5), 5);
}

TEST(BitFlip, NarrowerRegisterMovesTheMsb) {
    // Used to model the LSB-padding shift of the product register.
    InjectionConfig cfg;
    cfg.flip_probability = 1.0;
    cfg.product_bits = 12;
    cfg.candidate_msbs = 1;
    BitFlipInjector injector(cfg);
    EXPECT_EQ(injector.apply(0), 1 << 11);
}

TEST(BitFlip, ResetRestoresDeterminism) {
    InjectionConfig cfg;
    cfg.flip_probability = 0.01;
    cfg.seed = 42;
    BitFlipInjector a(cfg), b(cfg);
    std::vector<std::int64_t> first;
    for (int i = 0; i < 5000; ++i) first.push_back(a.apply(1000));
    a.reset(42);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.apply(1000), first[static_cast<std::size_t>(i)]);
        EXPECT_EQ(b.apply(1000), first[static_cast<std::size_t>(i)]);
    }
}

TEST(BitFlip, ConfigValidation) {
    InjectionConfig bad;
    bad.flip_probability = 1.5;
    EXPECT_THROW(BitFlipInjector{bad}, std::invalid_argument);
    InjectionConfig bad2;
    bad2.product_bits = 1;
    EXPECT_THROW(BitFlipInjector{bad2}, std::invalid_argument);
    InjectionConfig bad3;
    bad3.candidate_msbs = 20;
    EXPECT_THROW(BitFlipInjector{bad3}, std::invalid_argument);
}

}  // namespace
