#include <gtest/gtest.h>

#include "data/synthetic_dataset.hpp"
#include "ir/float_executor.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"

namespace {

using namespace raq;
using quant::Method;
using quant::QuantConfig;
using quant::QuantParams;

TEST(QuantParams, RoundTripWithinHalfStep) {
    const QuantParams p = QuantParams::from_range(-1.0f, 3.0f, 8);
    for (float x : {-1.0f, -0.5f, 0.0f, 1.2345f, 2.999f}) {
        const auto q = p.quantize(x);
        EXPECT_GE(q, 0);
        EXPECT_LE(q, p.qmax());
        EXPECT_NEAR(p.dequantize(q), x, p.scale * 0.51f);
    }
}

TEST(QuantParams, ClampsOutOfRange) {
    const QuantParams p = QuantParams::activation_range(2.0f, 8);
    EXPECT_EQ(p.quantize(-5.0f), 0);
    EXPECT_EQ(p.quantize(100.0f), 255);
    EXPECT_EQ(p.zero_point, 0);
}

TEST(QuantParams, SymmetricCentersZero) {
    const QuantParams p = QuantParams::symmetric(1.0f, 8);
    EXPECT_EQ(p.zero_point, 128);
    EXPECT_EQ(p.quantize(0.0f), 128);
    EXPECT_NEAR(p.dequantize(p.quantize(0.5f)), 0.5f, p.scale);
    EXPECT_NEAR(p.dequantize(p.quantize(-0.5f)), -0.5f, p.scale);
}

TEST(QuantParams, FewerBitsCoarserScale) {
    const QuantParams p8 = QuantParams::from_range(0.0f, 1.0f, 8);
    const QuantParams p4 = QuantParams::from_range(0.0f, 1.0f, 4);
    EXPECT_GT(p4.scale, p8.scale);
    EXPECT_EQ(p4.qmax(), 15);
}

TEST(QuantConfig, FromCompressionFollowsPaperMapping) {
    const auto cfg = QuantConfig::from_compression({3, 2, common::Padding::Lsb});
    EXPECT_EQ(cfg.act_bits, 5);
    EXPECT_EQ(cfg.weight_bits, 6);
    EXPECT_EQ(cfg.bias_bits, 11);
    EXPECT_EQ(cfg.padding, common::Padding::Lsb);
    EXPECT_EQ(cfg.to_string(), "W6A5B11/LSB");
    EXPECT_THROW(QuantConfig::from_compression({8, 0, common::Padding::Msb}),
                 std::invalid_argument);
}

TEST(Aciq, LaplaceClipGrowsWithBits) {
    double prev = 0.0;
    for (int bits = 2; bits <= 8; ++bits) {
        const double clip = quant::aciq_laplace_clip(1.0, bits);
        EXPECT_GT(clip, prev) << "bits " << bits;
        prev = clip;
    }
    // Scale equivariance: clip(b) = b * clip(1).
    EXPECT_NEAR(quant::aciq_laplace_clip(2.5, 4), 2.5 * quant::aciq_laplace_clip(1.0, 4),
                1e-6 * quant::aciq_laplace_clip(2.5, 4) + 1e-9);
}

/// Shared fixture: one small trained model + calibration, reused by all
/// accuracy-sensitive quantization tests.
class QuantizedModel : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::DatasetConfig dc;
        dc.train_size = 900;
        dc.test_size = 300;
        dataset_ = new data::SyntheticDataset(dc);
        auto net = nn::make_network("vgg13-mini");
        nn::TrainConfig cfg;
        cfg.epochs = 4;
        nn::SgdTrainer trainer(cfg);
        trainer.fit(net, *dataset_);
        graph_ = new ir::Graph(net.export_ir());
        test_images_ = new tensor::Tensor(dataset_->test_batch(0, 300));
        test_labels_ = new std::vector<int>(dataset_->test_labels());
        calib_ = new quant::CalibrationData(quant::calibrate(
            *graph_, dataset_->train_batch(0, 64),
            {dataset_->train_labels().begin(), dataset_->train_labels().begin() + 64}));
        fp32_ = ir::float_accuracy(*graph_, *test_images_, *test_labels_);
    }
    static void TearDownTestSuite() {
        delete dataset_;
        delete graph_;
        delete test_images_;
        delete test_labels_;
        delete calib_;
    }

    static data::SyntheticDataset* dataset_;
    static ir::Graph* graph_;
    static tensor::Tensor* test_images_;
    static std::vector<int>* test_labels_;
    static quant::CalibrationData* calib_;
    static double fp32_;
};

data::SyntheticDataset* QuantizedModel::dataset_ = nullptr;
ir::Graph* QuantizedModel::graph_ = nullptr;
tensor::Tensor* QuantizedModel::test_images_ = nullptr;
std::vector<int>* QuantizedModel::test_labels_ = nullptr;
quant::CalibrationData* QuantizedModel::calib_ = nullptr;
double QuantizedModel::fp32_ = 0.0;

TEST_F(QuantizedModel, Fp32BaselineIsStrong) { EXPECT_GT(fp32_, 0.82); }

TEST_F(QuantizedModel, EightBitIsNearLossless) {
    for (const auto method : quant::all_methods()) {
        const auto q = quant::quantize_graph(*graph_, method, QuantConfig{}, *calib_);
        const double acc = quant::quantized_accuracy(q, *test_images_, *test_labels_);
        EXPECT_GT(acc, fp32_ - 0.02) << quant::method_name(method);
    }
}

TEST_F(QuantizedModel, LsbAndMsbPaddingAreNumericallyIdentical) {
    // Padding only affects data placement in the MAC register (Eq. 5);
    // without injected errors the computation is exact either way.
    auto cfg_msb = QuantConfig::from_compression({2, 3, common::Padding::Msb});
    auto cfg_lsb = QuantConfig::from_compression({2, 3, common::Padding::Lsb});
    const auto q_msb = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, cfg_msb, *calib_);
    const auto q_lsb = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, cfg_lsb, *calib_);
    const auto a = quant::quantized_accuracy(q_msb, *test_images_, *test_labels_);
    const auto b = quant::quantized_accuracy(q_lsb, *test_images_, *test_labels_);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(QuantizedModel, AggressiveCompressionDegradesMore) {
    // Accuracy loss must grow (weakly) along the compression schedule the
    // selector produces: (0,0) -> (2,2) -> (4,4).
    double prev_acc = 1.1;
    for (const int bits_removed : {0, 2, 4}) {
        const auto cfg = QuantConfig::from_compression(
            {bits_removed, bits_removed, common::Padding::Msb});
        const auto q = quant::quantize_graph(*graph_, Method::M2_MinMaxAsymmetric, cfg, *calib_);
        const double acc = quant::quantized_accuracy(q, *test_images_, *test_labels_);
        EXPECT_LE(acc, prev_acc + 0.02) << bits_removed;
        prev_acc = acc;
    }
    EXPECT_LT(prev_acc, fp32_);  // (4,4) with minmax must visibly hurt
}

TEST_F(QuantizedModel, AciqBeatsMinMaxAtLowBitWidths) {
    // The design rationale of the method library (paper §5): analytic
    // per-channel clipping dominates naive per-tensor min/max at low
    // bit-widths. A single configuration is noisy (both methods are far
    // from FP32 there), so compare the average over three low-bit
    // configurations.
    double sum_naive = 0.0, sum_aciq = 0.0;
    for (const auto comp : {common::Compression{4, 4, common::Padding::Msb},
                            common::Compression{3, 4, common::Padding::Msb},
                            common::Compression{4, 5, common::Padding::Msb}}) {
        const auto cfg = QuantConfig::from_compression(comp);
        const auto naive =
            quant::quantize_graph(*graph_, Method::M1_UniformSymmetric, cfg, *calib_);
        const auto aciq = quant::quantize_graph(*graph_, Method::M4_Aciq, cfg, *calib_);
        sum_naive += quant::quantized_accuracy(naive, *test_images_, *test_labels_);
        sum_aciq += quant::quantized_accuracy(aciq, *test_images_, *test_labels_);
    }
    EXPECT_GT(sum_aciq, sum_naive);
}

TEST_F(QuantizedModel, QuantizedExecutorTracksStats) {
    const auto q = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, QuantConfig{}, *calib_);
    quant::QuantExecStats stats;
    tensor::Tensor batch = dataset_->test_batch(0, 8);
    (void)quant::run_quantized(q, batch, nullptr, &stats);
    EXPECT_EQ(stats.mac_count, graph_->macs_per_sample() * 8);
    EXPECT_GT(stats.max_abs_accumulator, 0);
    // The paper sizes the accumulator at 22 bits to prevent overflow.
    EXPECT_EQ(stats.accumulator_overflows, 0u);
}

TEST_F(QuantizedModel, InjectionAtHighRateDestroysAccuracy) {
    const auto q = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, QuantConfig{}, *calib_);
    quant::EvalOptions opts;
    opts.injection.flip_probability = 1e-2;
    opts.repetitions = 2;
    const double acc = quant::quantized_accuracy(q, *test_images_, *test_labels_, opts);
    EXPECT_LT(acc, 0.5);
}

TEST_F(QuantizedModel, InjectionAtNegligibleRateIsHarmless) {
    const auto q = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, QuantConfig{}, *calib_);
    quant::EvalOptions opts;
    opts.injection.flip_probability = 1e-7;
    const double with = quant::quantized_accuracy(q, *test_images_, *test_labels_, opts);
    const double without = quant::quantized_accuracy(q, *test_images_, *test_labels_);
    EXPECT_NEAR(with, without, 0.02);
}

TEST_F(QuantizedModel, InjectedFlipCountMatchesProbability) {
    const auto q = quant::quantize_graph(*graph_, Method::M5_AciqNoBias, QuantConfig{}, *calib_);
    inject::InjectionConfig cfg;
    cfg.flip_probability = 1e-3;
    cfg.seed = 99;
    inject::BitFlipInjector injector(cfg);
    quant::QuantExecStats stats;
    tensor::Tensor batch = dataset_->test_batch(0, 16);
    (void)quant::run_quantized(q, batch, &injector, &stats);
    const double expected = 1e-3 * static_cast<double>(stats.mac_count);
    EXPECT_NEAR(static_cast<double>(injector.flips_injected()), expected, 0.2 * expected);
}

TEST_F(QuantizedModel, LsbMaskingIsWorseThanRequantization) {
    // The §7 precision-scaling ablation, as a regression test.
    auto masked = quant::quantize_graph(*graph_, Method::M2_MinMaxAsymmetric, QuantConfig{},
                                        *calib_);
    const int mask_bits = 4;
    for (std::size_t op = 0; op < masked.graph().ops().size(); ++op) {
        if (masked.graph().ops()[op].kind != ir::OpKind::Conv2d) continue;
        auto& qc = masked.conv(op);
        qc.act_mask_bits = mask_bits;
        for (auto& w : qc.qweights) w &= static_cast<std::uint8_t>(0xFFu << mask_bits);
    }
    const double masked_acc = quant::quantized_accuracy(masked, *test_images_, *test_labels_);
    const auto cfg = QuantConfig::from_compression({mask_bits, mask_bits, common::Padding::Msb});
    const auto requant = quant::quantize_graph(*graph_, Method::M4_Aciq, cfg, *calib_);
    const double requant_acc =
        quant::quantized_accuracy(requant, *test_images_, *test_labels_);
    EXPECT_GT(requant_acc, masked_acc + 0.05);
}

TEST_F(QuantizedModel, WeightMseShrinksWithMoreBits) {
    double prev = 1e18;
    for (int bits : {3, 5, 8}) {
        QuantConfig cfg;
        cfg.weight_bits = bits;
        const auto q = quant::quantize_graph(*graph_, Method::M2_MinMaxAsymmetric, cfg, *calib_);
        const double mse = q.weight_mse();
        EXPECT_LT(mse, prev);
        prev = mse;
    }
}

TEST(QuantValidation, MismatchedCalibrationRejected) {
    auto net = nn::make_network("alexnet-mini");
    auto graph = net.export_ir();
    quant::CalibrationData bogus;
    bogus.per_tensor.resize(1);
    EXPECT_THROW(
        quant::quantize_graph(graph, Method::M2_MinMaxAsymmetric, QuantConfig{}, bogus),
        std::invalid_argument);
}

}  // namespace
