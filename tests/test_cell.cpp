#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "cell/cell.hpp"
#include "cell/library.hpp"

namespace {

using raq::cell::CellType;
using raq::cell::eval_logic;
using raq::cell::eval_word;
using raq::cell::Library;
using raq::cell::Logic;
using raq::cell::num_inputs;

/// Reference boolean semantics for each cell, used to cross-check both
/// the word-parallel evaluator and the ternary evaluator.
bool reference_eval(CellType type, const std::vector<bool>& in) {
    switch (type) {
        case CellType::Inv: return !in[0];
        case CellType::Buf: return in[0];
        case CellType::Nand2: return !(in[0] && in[1]);
        case CellType::Nor2: return !(in[0] || in[1]);
        case CellType::And2: return in[0] && in[1];
        case CellType::Or2: return in[0] || in[1];
        case CellType::Xor2: return in[0] != in[1];
        case CellType::Xnor2: return in[0] == in[1];
        case CellType::Nand3: return !(in[0] && in[1] && in[2]);
        case CellType::Nor3: return !(in[0] || in[1] || in[2]);
        case CellType::And3: return in[0] && in[1] && in[2];
        case CellType::Or3: return in[0] || in[1] || in[2];
        case CellType::Aoi21: return !((in[0] && in[1]) || in[2]);
        case CellType::Oai21: return !((in[0] || in[1]) && in[2]);
        case CellType::Mux2: return in[2] ? in[1] : in[0];
    }
    return false;
}

std::vector<CellType> all_cells() {
    std::vector<CellType> out;
    for (int i = 0; i < raq::cell::kNumCellTypes; ++i)
        out.push_back(static_cast<CellType>(i));
    return out;
}

class CellTruthTable : public ::testing::TestWithParam<CellType> {};

TEST_P(CellTruthTable, WordEvalMatchesReference) {
    const CellType type = GetParam();
    const int n = num_inputs(type);
    for (int combo = 0; combo < (1 << n); ++combo) {
        std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
        std::vector<bool> bits(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            bits[static_cast<std::size_t>(i)] = (combo >> i) & 1;
            words[static_cast<std::size_t>(i)] = bits[static_cast<std::size_t>(i)] ? ~0ULL : 0ULL;
        }
        const std::uint64_t out = eval_word(type, words);
        const bool expect = reference_eval(type, bits);
        EXPECT_EQ(out, expect ? ~0ULL : 0ULL)
            << raq::cell::cell_name(type) << " combo " << combo;
    }
}

TEST_P(CellTruthTable, TernaryEvalAgreesOnDefiniteInputs) {
    const CellType type = GetParam();
    const int n = num_inputs(type);
    for (int combo = 0; combo < (1 << n); ++combo) {
        std::vector<Logic> lin(static_cast<std::size_t>(n));
        std::vector<bool> bits(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            bits[static_cast<std::size_t>(i)] = (combo >> i) & 1;
            lin[static_cast<std::size_t>(i)] = bits[static_cast<std::size_t>(i)] ? Logic::One : Logic::Zero;
        }
        const Logic out = eval_logic(type, lin);
        ASSERT_NE(out, Logic::X);
        EXPECT_EQ(out == Logic::One, reference_eval(type, bits));
    }
}

TEST_P(CellTruthTable, TernaryXIsSoundAbstraction) {
    // Whenever the ternary evaluator returns a definite value with some
    // inputs X, every boolean completion of those X inputs must agree.
    const CellType type = GetParam();
    const int n = num_inputs(type);
    for (int xmask = 0; xmask < (1 << n); ++xmask) {
        std::vector<std::size_t> x_positions;
        for (int i = 0; i < n; ++i)
            if ((xmask >> i) & 1) x_positions.push_back(static_cast<std::size_t>(i));
        for (int fixed = 0; fixed < (1 << n); ++fixed) {
            std::vector<Logic> lin(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) {
                if ((xmask >> i) & 1)
                    lin[static_cast<std::size_t>(i)] = Logic::X;
                else
                    lin[static_cast<std::size_t>(i)] = ((fixed >> i) & 1) ? Logic::One : Logic::Zero;
            }
            const Logic out = eval_logic(type, lin);
            if (out == Logic::X) continue;
            // Enumerate boolean completions of exactly the X positions.
            const int n_completions = 1 << x_positions.size();
            for (int sub = 0; sub < n_completions; ++sub) {
                std::vector<bool> bits(static_cast<std::size_t>(n));
                for (int i = 0; i < n; ++i)
                    bits[static_cast<std::size_t>(i)] = ((fixed >> i) & 1) != 0;
                for (std::size_t k = 0; k < x_positions.size(); ++k)
                    bits[x_positions[k]] = ((sub >> k) & 1) != 0;
                EXPECT_EQ(reference_eval(type, bits), out == Logic::One)
                    << raq::cell::cell_name(type) << " xmask=" << xmask
                    << " fixed=" << fixed << " sub=" << sub;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellTruthTable, ::testing::ValuesIn(all_cells()),
                         [](const auto& info) {
                             return std::string(raq::cell::cell_name(info.param));
                         });

TEST(CellLogic, ControllingValuesShortCircuit) {
    EXPECT_EQ(eval_logic(CellType::Nand2, std::vector<Logic>{Logic::Zero, Logic::X}), Logic::One);
    EXPECT_EQ(eval_logic(CellType::And2, std::vector<Logic>{Logic::Zero, Logic::X}), Logic::Zero);
    EXPECT_EQ(eval_logic(CellType::Or2, std::vector<Logic>{Logic::One, Logic::X}), Logic::One);
    EXPECT_EQ(eval_logic(CellType::Xor2, std::vector<Logic>{Logic::Zero, Logic::X}), Logic::X);
    EXPECT_EQ(eval_logic(CellType::Mux2, std::vector<Logic>{Logic::One, Logic::One, Logic::X}),
              Logic::One);
}

TEST(Library, FreshLibraryHasUnitDerate) {
    const Library lib = Library::finfet14();
    EXPECT_DOUBLE_EQ(lib.derate_factor(), 1.0);
    EXPECT_DOUBLE_EQ(lib.dvth_mv(), 0.0);
}

TEST(Library, DerateMatchesPaperGuardbandAnchor) {
    // ΔVth = 50 mV (10 years) must cost ≈ 23 % delay — the paper's aging
    // guardband (Fig. 4a).
    const Library lib = Library::finfet14();
    EXPECT_NEAR(lib.derate_for(50.0), 1.23, 0.015);
}

TEST(Library, DerateIsMonotoneInAging) {
    const Library lib = Library::finfet14();
    double prev = 1.0;
    for (double dvth = 5.0; dvth <= 50.0; dvth += 5.0) {
        const double d = lib.derate_for(dvth);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(Library, AgedLibraryScalesAllCellDelays) {
    const Library fresh = Library::finfet14();
    const Library aged = fresh.aged(30.0);
    for (int i = 0; i < raq::cell::kNumCellTypes; ++i) {
        const auto type = static_cast<CellType>(i);
        for (double load : {0.0, 2.0, 8.0}) {
            EXPECT_NEAR(aged.cell_delay_ps(type, load),
                        fresh.cell_delay_ps(type, load) * fresh.derate_for(30.0), 1e-9);
        }
    }
}

TEST(Library, DelayGrowsWithLoad) {
    const Library lib = Library::finfet14();
    for (int i = 0; i < raq::cell::kNumCellTypes; ++i) {
        const auto type = static_cast<CellType>(i);
        EXPECT_LT(lib.cell_delay_ps(type, 1.0), lib.cell_delay_ps(type, 4.0));
    }
}

TEST(Library, LeakageFallsWithAging) {
    const Library fresh = Library::finfet14();
    const Library aged = fresh.aged(50.0);
    for (int i = 0; i < raq::cell::kNumCellTypes; ++i) {
        const auto type = static_cast<CellType>(i);
        EXPECT_LT(aged.leakage_nw(type), fresh.leakage_nw(type));
        EXPECT_GT(aged.leakage_nw(type), 0.0);
    }
}

TEST(Library, XorSlowerThanNand) {
    // Sanity on the characterization: XOR-class cells are the slowest
    // two-input functions, as in any real library.
    const Library lib = Library::finfet14();
    EXPECT_GT(lib.cell_delay_ps(CellType::Xor2, 2.0),
              lib.cell_delay_ps(CellType::Nand2, 2.0));
}

TEST(Library, SwitchingEnergyGrowsWithLoad) {
    const Library lib = Library::finfet14();
    EXPECT_LT(lib.switching_energy_fj(CellType::Nand2, 1.0),
              lib.switching_energy_fj(CellType::Nand2, 5.0));
}

TEST(Library, ExcessiveAgingRejected) {
    const Library lib = Library::finfet14();
    EXPECT_THROW(lib.aged(1000.0), std::invalid_argument);
    EXPECT_THROW(lib.aged(-1.0), std::invalid_argument);
}

}  // namespace
