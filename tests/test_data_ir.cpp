#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/synthetic_dataset.hpp"
#include "ir/float_executor.hpp"
#include "nn/zoo.hpp"
#include "quant/calibration.hpp"

namespace {

using namespace raq;

data::DatasetConfig tiny_config() {
    data::DatasetConfig cfg;
    cfg.train_size = 200;
    cfg.test_size = 100;
    return cfg;
}

TEST(Dataset, DeterministicForSameSeed) {
    const data::SyntheticDataset a(tiny_config()), b(tiny_config());
    const auto ba = a.train_batch(0, 10);
    const auto bb = b.train_batch(0, 10);
    EXPECT_EQ(ba.vec(), bb.vec());
    EXPECT_EQ(a.test_labels(), b.test_labels());
}

TEST(Dataset, DifferentSeedsDiffer) {
    auto cfg2 = tiny_config();
    cfg2.seed = 999;
    const data::SyntheticDataset a(tiny_config()), b(cfg2);
    EXPECT_NE(a.train_batch(0, 10).vec(), b.train_batch(0, 10).vec());
}

TEST(Dataset, PixelsInUnitRangeAndLabelsBalanced) {
    const data::SyntheticDataset ds(tiny_config());
    const auto batch = ds.train_batch(0, 200);
    for (const float v : batch.vec()) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
    std::vector<int> counts(10, 0);
    for (const int label : ds.train_labels()) counts[static_cast<std::size_t>(label)]++;
    for (const int c : counts) EXPECT_EQ(c, 20);  // balanced round-robin
}

TEST(Dataset, EpochOrderIsAPermutationAndVaries) {
    const data::SyntheticDataset ds(tiny_config());
    const auto e0 = ds.epoch_order(0);
    const auto e1 = ds.epoch_order(1);
    EXPECT_EQ(std::set<int>(e0.begin(), e0.end()).size(), e0.size());
    EXPECT_EQ(e0.size(), 200u);
    EXPECT_NE(e0, e1);
    EXPECT_EQ(ds.epoch_order(0), e0);  // deterministic per epoch
}

TEST(Dataset, BatchBoundsChecked) {
    const data::SyntheticDataset ds(tiny_config());
    EXPECT_THROW(ds.train_batch(190, 20), std::out_of_range);
    EXPECT_THROW(ds.test_batch(-1, 5), std::out_of_range);
    EXPECT_THROW(ds.gather_train({5000}), std::out_of_range);
}

TEST(Dataset, GatherMatchesContiguousBatch) {
    const data::SyntheticDataset ds(tiny_config());
    const auto batch = ds.train_batch(3, 4);
    const auto gathered = ds.gather_train({3, 4, 5, 6});
    EXPECT_EQ(batch.vec(), gathered.vec());
}

TEST(IrGraph, RejectsMalformedGraphs) {
    ir::Graph graph;
    EXPECT_THROW(graph.add(ir::Op{}), std::logic_error);  // no input yet
    graph.add_input({1, 3, 8, 8});
    ir::Op bad;
    bad.kind = ir::OpKind::Relu;
    bad.inputs = {42};
    EXPECT_THROW(graph.add(bad), std::out_of_range);
    ir::Op conv;
    conv.kind = ir::OpKind::Conv2d;
    conv.inputs = {0};
    conv.conv = {3, 4, 3, 3, 1, 1};
    conv.weights.resize(7);  // wrong size
    conv.bias.resize(4);
    EXPECT_THROW(graph.add(conv), std::invalid_argument);
    EXPECT_THROW(graph.set_output(9), std::out_of_range);
}

TEST(IrGraph, ShapeInferenceMatchesExecution) {
    auto net = nn::make_network("squeezenet1.1-mini");
    const auto graph = net.export_ir();
    const auto shapes = ir::infer_shapes(graph, 3);
    const data::SyntheticDataset ds(tiny_config());
    const auto tensors = ir::run_float_all(graph, ds.test_batch(0, 3));
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        if (tensors[i].size() == 0) continue;
        EXPECT_EQ(tensors[i].shape(), shapes[i]) << "tensor " << i;
    }
}

TEST(IrGraph, SummaryMentionsEveryOpKindUsed) {
    auto net = nn::make_network("squeezenet1.1-mini");
    const auto graph = net.export_ir();
    const auto text = graph.summary();
    for (const char* needle : {"conv2d", "relu", "maxpool2d", "gap", "concat", "macs/sample"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(IrGraph, ResnetExportContainsAddsAndFoldsBn) {
    auto net = nn::make_network("resnet20-mini");
    const auto graph = net.export_ir();
    int adds = 0;
    for (const auto& op : graph.ops()) {
        adds += (op.kind == ir::OpKind::Add);
        // BN folding leaves no standalone batchnorm-ish op kinds; every
        // conv must carry a bias vector.
        if (op.kind == ir::OpKind::Conv2d)
            EXPECT_EQ(op.bias.size(), static_cast<std::size_t>(op.conv.out_c));
    }
    EXPECT_EQ(adds, 9);  // 3 stages x 3 basic blocks
}

TEST(Calibration, StatsAreConsistent) {
    const std::vector<float> xs{1.0f, 2.0f, 3.0f, 4.0f};
    const auto s = quant::compute_stats(xs.data(), xs.size());
    EXPECT_FLOAT_EQ(s.min, 1.0f);
    EXPECT_FLOAT_EQ(s.max, 4.0f);
    EXPECT_FLOAT_EQ(s.mean, 2.5f);
    EXPECT_FLOAT_EQ(s.abs_dev, 1.0f);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25f), 1e-5);
    EXPECT_THROW(quant::compute_stats(xs.data(), 0), std::invalid_argument);
}

TEST(Calibration, CoversEveryTensorOfTheGraph) {
    auto net = nn::make_network("alexnet-mini");
    const auto graph = net.export_ir();
    const data::SyntheticDataset ds(tiny_config());
    std::vector<int> labels(ds.train_labels().begin(), ds.train_labels().begin() + 16);
    const auto calib = quant::calibrate(graph, ds.train_batch(0, 16), labels);
    EXPECT_EQ(calib.per_tensor.size(), static_cast<std::size_t>(graph.num_tensors()));
    // Input tensor stats reflect the [0,1] image range.
    const auto& in_stats = calib.per_tensor[static_cast<std::size_t>(graph.input_id())];
    EXPECT_GE(in_stats.min, 0.0f);
    EXPECT_LE(in_stats.max, 1.0f);
    EXPECT_GT(in_stats.stddev, 0.0f);
}

}  // namespace
