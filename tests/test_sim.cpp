#include <gtest/gtest.h>

#include <vector>

#include "cell/library.hpp"
#include "common/rng.hpp"
#include "netlist/builders.hpp"
#include "sim/activity.hpp"
#include "sim/error_stats.hpp"
#include "sim/event_sim.hpp"
#include "sta/sta.hpp"

namespace {

using raq::cell::Library;
using raq::common::Compression;
using raq::common::Padding;
using raq::netlist::build_mac_circuit;
using raq::netlist::build_multiplier_circuit;
using raq::netlist::Netlist;
using raq::sim::ActivityRunConfig;
using raq::sim::ErrorRunConfig;
using raq::sim::EventSimulator;
using raq::sta::Sta;

/// Drive the simulator with one vector and a generous period so it settles.
std::uint64_t settled_eval(EventSimulator& sim, const Netlist& nl, std::uint64_t a,
                           std::uint64_t b, const std::string& out_bus, double period) {
    std::vector<bool> pi(nl.primary_inputs().size(), false);
    const auto& abits = nl.input_bus("A");
    const auto& bbits = nl.input_bus("B");
    for (std::size_t i = 0; i < abits.size(); ++i)
        pi[static_cast<std::size_t>(abits[i])] = (a >> i) & 1;
    for (std::size_t i = 0; i < bbits.size(); ++i)
        pi[static_cast<std::size_t>(bbits[i])] = (b >> i) & 1;
    sim.step(pi, period);
    return sim.read_bus(out_bus);
}

TEST(EventSim, SettledOutputsMatchFunctionalSimulation) {
    const Netlist nl = build_multiplier_circuit(6);
    const Library lib = Library::finfet14();
    EventSimulator sim(nl, lib);
    const double slow = 10 * Sta(nl, lib).critical_path_ps(lib);
    raq::common::Rng rng(0x51u);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next_below(64);
        const std::uint64_t b = rng.next_below(64);
        ASSERT_EQ(settled_eval(sim, nl, a, b, "P", slow), a * b) << a << "*" << b;
    }
}

TEST(EventSim, ResetRestoresQuiescentZeroState) {
    const Netlist nl = build_multiplier_circuit(4);
    const Library lib = Library::finfet14();
    EventSimulator sim(nl, lib);
    settled_eval(sim, nl, 9, 13, "P", 1e5);
    sim.reset();
    EXPECT_EQ(sim.read_bus("P"), 0u);
    EXPECT_EQ(sim.toggle_count(), 0u);
    EXPECT_DOUBLE_EQ(sim.switching_energy_fj(), 0.0);
    EXPECT_EQ(settled_eval(sim, nl, 5, 7, "P", 1e5), 35u);
}

TEST(EventSim, TogglesAccumulateAndEnergyIsPositive) {
    const Netlist nl = build_multiplier_circuit(6);
    const Library lib = Library::finfet14();
    EventSimulator sim(nl, lib);
    settled_eval(sim, nl, 63, 63, "P", 1e5);
    EXPECT_GT(sim.toggle_count(), 0u);
    EXPECT_GT(sim.switching_energy_fj(), 0.0);
}

TEST(EventSim, TooShortClockCapturesWrongValue) {
    const Netlist nl = build_multiplier_circuit(8);
    const Library lib = Library::finfet14();
    const double cp = Sta(nl, lib).critical_path_ps(lib);
    EventSimulator sim(nl, lib);
    // At 40% of the critical path many vectors cannot settle.
    raq::common::Rng rng(0x52u);
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t a = rng.next_below(256);
        const std::uint64_t b = rng.next_below(256);
        wrong += settled_eval(sim, nl, a, b, "P", 0.4 * cp) != a * b;
    }
    EXPECT_GT(wrong, 10);
}

TEST(EventSim, StepValidatesArguments) {
    const Netlist nl = build_multiplier_circuit(4);
    const Library lib = Library::finfet14();
    EventSimulator sim(nl, lib);
    std::vector<bool> wrong_size(3, false);
    EXPECT_THROW(sim.step(wrong_size, 100.0), std::invalid_argument);
    std::vector<bool> ok(nl.primary_inputs().size(), false);
    EXPECT_THROW(sim.step(ok, -5.0), std::invalid_argument);
}

TEST(ErrorStats, FreshCircuitAtFreshClockIsErrorFree) {
    const Netlist nl = build_multiplier_circuit(8);
    const Library lib = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, lib).critical_path_ps(lib) * 1.0001;
    cfg.cycles = 2000;
    const auto stats = raq::sim::characterize_multiplier(nl, lib, cfg);
    EXPECT_EQ(stats.erroneous_cycles, 0u);
    EXPECT_DOUBLE_EQ(stats.med, 0.0);
    EXPECT_DOUBLE_EQ(stats.msb2_flip_prob, 0.0);
}

TEST(ErrorStats, AgedCircuitAtFreshClockProducesErrors) {
    // The core mechanism behind Fig. 1a: clocking the aged multiplier at
    // the fresh period yields timing errors.
    const Netlist nl = build_multiplier_circuit(8);
    const Library fresh = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, fresh).critical_path_ps(fresh) * 1.0001;
    cfg.cycles = 3000;
    const auto stats = raq::sim::characterize_multiplier(nl, fresh.aged(50.0), cfg);
    EXPECT_GT(stats.erroneous_cycles, 0u);
    EXPECT_GT(stats.med, 0.0);
}

TEST(ErrorStats, ErrorsGrowWithAging) {
    const Netlist nl = build_multiplier_circuit(8);
    const Library fresh = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, fresh).critical_path_ps(fresh) * 1.0001;
    cfg.cycles = 3000;
    const auto mild = raq::sim::characterize_multiplier(nl, fresh.aged(20.0), cfg);
    const auto severe = raq::sim::characterize_multiplier(nl, fresh.aged(50.0), cfg);
    EXPECT_LE(mild.error_rate(), severe.error_rate());
    EXPECT_LE(mild.med, severe.med);
}

TEST(ErrorStats, ErrorsConcentrateInMostSignificantBits) {
    // Paper §3: "in arithmetic circuits, errors mainly occur in the MSBs".
    const Netlist nl = build_multiplier_circuit(8);
    const Library fresh = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, fresh).critical_path_ps(fresh) * 1.0001;
    cfg.cycles = 4000;
    const auto stats = raq::sim::characterize_multiplier(nl, fresh.aged(50.0), cfg);
    ASSERT_EQ(stats.bit_flip_prob.size(), 16u);
    double high = 0.0, low = 0.0;
    for (int b = 0; b < 8; ++b) low += stats.bit_flip_prob[static_cast<std::size_t>(b)];
    for (int b = 8; b < 16; ++b) high += stats.bit_flip_prob[static_cast<std::size_t>(b)];
    EXPECT_GT(high, low);
}

TEST(ErrorStats, CompressionSuppressesAgingErrors) {
    // The paper's central claim, observed mechanistically: with (4,4)
    // compressed operands the aged multiplier meets the fresh clock again.
    const Netlist nl = build_multiplier_circuit(8);
    const Library fresh = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, fresh).critical_path_ps(fresh) * 1.0001;
    cfg.cycles = 3000;

    const Library aged = fresh.aged(50.0);
    const auto uncompressed = raq::sim::characterize_multiplier(nl, aged, cfg);
    EXPECT_GT(uncompressed.erroneous_cycles, 0u);

    // Pick the padding that the STA says is better at (4,4).
    const Sta sta(nl, fresh);
    double best_delay = 1e18;
    Padding best = Padding::Msb;
    for (const auto padding : {Padding::Msb, Padding::Lsb}) {
        const double d = sta.critical_path_ps(
            aged, raq::sta::compression_case(nl, Compression{4, 4, padding}));
        if (d < best_delay) {
            best_delay = d;
            best = padding;
        }
    }
    ASSERT_LE(best_delay, cfg.clock_ps) << "STA says (4,4) cannot meet timing";
    cfg.compression = Compression{4, 4, best};
    const auto compressed = raq::sim::characterize_multiplier(nl, aged, cfg);
    EXPECT_EQ(compressed.erroneous_cycles, 0u);
}

TEST(ErrorStats, MacCharacterizationRunsAndIsErrorFreeWhenFresh) {
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = Sta(nl, lib).critical_path_ps(lib) * 1.0001;
    cfg.cycles = 1000;
    const auto stats = raq::sim::characterize_mac(nl, lib, cfg);
    EXPECT_EQ(stats.erroneous_cycles, 0u);
    EXPECT_EQ(stats.cycles, 1000u);
}

TEST(ErrorStats, ConfigValidation) {
    const Netlist nl = build_multiplier_circuit(4);
    const Library lib = Library::finfet14();
    ErrorRunConfig cfg;
    cfg.clock_ps = 0.0;
    EXPECT_THROW(raq::sim::characterize_multiplier(nl, lib, cfg), std::invalid_argument);
}

TEST(Activity, CompressionReducesSwitchingEnergy) {
    // Fig. 5 mechanism: zero-padded operand bits stop toggling.
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    ActivityRunConfig cfg;
    cfg.period_ps = Sta(nl, lib).critical_path_ps(lib);
    cfg.cycles = 400;
    const auto base = raq::sim::measure_mac_activity(nl, lib, cfg);
    cfg.compression = Compression{4, 4, Padding::Msb};
    const auto compressed = raq::sim::measure_mac_activity(nl, lib, cfg);
    EXPECT_LT(compressed.avg_dynamic_energy_fj, 0.8 * base.avg_dynamic_energy_fj);
    EXPECT_LT(compressed.avg_toggles, base.avg_toggles);
}

TEST(Activity, LeakageEnergyScalesWithPeriod) {
    const Netlist nl = build_mac_circuit();
    const Library lib = Library::finfet14();
    ActivityRunConfig cfg;
    cfg.cycles = 50;
    cfg.period_ps = 100.0;
    const auto short_period = raq::sim::measure_mac_activity(nl, lib, cfg);
    cfg.period_ps = 200.0;
    const auto long_period = raq::sim::measure_mac_activity(nl, lib, cfg);
    EXPECT_NEAR(long_period.leakage_energy_fj, 2.0 * short_period.leakage_energy_fj, 1e-9);
    EXPECT_GT(short_period.leakage_energy_fj, 0.0);
}

TEST(Activity, AgedLibraryLeaksLess) {
    const Netlist nl = build_mac_circuit();
    const Library fresh = Library::finfet14();
    ActivityRunConfig cfg;
    cfg.cycles = 50;
    cfg.period_ps = 100.0;
    const auto f = raq::sim::measure_mac_activity(nl, fresh, cfg);
    const auto a = raq::sim::measure_mac_activity(nl, fresh.aged(50.0), cfg);
    EXPECT_LT(a.leakage_energy_fj, f.leakage_energy_fj);
}

}  // namespace
