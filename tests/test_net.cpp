// Tests for the epoll network front-end: BoundedChannel close-and-drain
// edge cases, the wire protocol, end-to-end socket serving (bit-identity
// with in-process execution, admission-control shedding, the shutdown
// cascade), and traffic-driven aging.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "core/compression_selector.hpp"
#include "data/synthetic_dataset.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "netlist/builders.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "serve/bounded_channel.hpp"
#include "serve/server.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace raq;

// ---------------------------------------------------------------------
// BoundedChannel close-and-drain protocol (direct unit tests — every
// serving queue and the net admission path are instances of this).
// ---------------------------------------------------------------------

TEST(BoundedChannel, TryPushReportsOkFullClosed) {
    serve::BoundedChannel<int> ch(2);
    EXPECT_EQ(ch.try_push(1), serve::ChannelPush::Ok);
    EXPECT_EQ(ch.try_push(2), serve::ChannelPush::Ok);
    EXPECT_EQ(ch.try_push(3), serve::ChannelPush::Full);
    EXPECT_EQ(ch.size(), 2u);

    int out = 0;
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_EQ(ch.try_push(4), serve::ChannelPush::Ok);

    ch.close();
    EXPECT_EQ(ch.try_push(5), serve::ChannelPush::Closed);
    // Accepted items drain after close, in order.
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, 2);
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, 4);
    EXPECT_FALSE(ch.pop(out));
}

TEST(BoundedChannel, CloseWithFullBufferReleasesBlockedProducer) {
    serve::BoundedChannel<int> ch(1);
    EXPECT_EQ(ch.try_push(10), serve::ChannelPush::Ok);

    std::atomic<bool> started{false};
    std::atomic<int> push_result{-1};
    std::thread producer([&] {
        started.store(true);
        int item = 11;
        push_result.store(ch.push(std::move(item)) ? 1 : 0);
    });
    while (!started.load()) std::this_thread::yield();
    // Give the producer time to actually block on the full channel.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(push_result.load(), -1);

    ch.close();
    producer.join();
    // The blocked producer observed the close: push == false, item kept.
    EXPECT_EQ(push_result.load(), 0);

    // What was accepted before the close is still there to drain.
    int out = 0;
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, 10);
    EXPECT_FALSE(ch.pop(out));
}

TEST(BoundedChannel, ConcurrentClosersAndProducersAllReturn) {
    serve::BoundedChannel<int> ch(4);
    constexpr int kProducers = 8;
    constexpr int kClosers = 4;

    std::atomic<int> accepted{0};
    std::atomic<int> refused{0};
    std::vector<std::thread> threads;
    threads.reserve(kProducers + kClosers);
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < 64; ++i) {
                int item = p * 1000 + i;
                if (ch.push(std::move(item)))
                    accepted.fetch_add(1);
                else
                    refused.fetch_add(1);
                int out = 0;
                (void)ch.pop(out);  // keep the channel moving until closed
            }
        });
    }
    for (int c = 0; c < kClosers; ++c)
        threads.emplace_back([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ch.close();
        });
    for (auto& t : threads) t.join();

    EXPECT_TRUE(ch.closed());
    // Every push call returned with a definite verdict.
    EXPECT_EQ(accepted.load() + refused.load(), kProducers * 64);
    // The drain leaves nothing accepted behind.
    int out = 0;
    std::size_t drained = 0;
    while (ch.pop(out)) ++drained;
    EXPECT_LE(drained, 4u);
}

TEST(BoundedChannel, PopAfterCloseDrainsInFifoOrder) {
    serve::BoundedChannel<int> ch(8);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.try_push(int(i)), serve::ChannelPush::Ok);
    ch.close();
    for (int i = 0; i < 5; ++i) {
        int out = -1;
        ASSERT_TRUE(ch.pop(out));
        EXPECT_EQ(out, i);
    }
    int out = -1;
    EXPECT_FALSE(ch.pop(out));
    EXPECT_TRUE(ch.pop_batch(4).empty());
}

// ---------------------------------------------------------------------
// Traffic-driven aging primitives.
// ---------------------------------------------------------------------

TEST(Traffic, DutyCycleMonitorTracksSlidingBusyFraction) {
    sim::DutyCycleMonitor monitor(1000);
    EXPECT_DOUBLE_EQ(monitor.busy_fraction(500), 0.0);  // nothing recorded

    monitor.record_busy(0, 500);
    // Lifetime shorter than the window: denominator clips to 500.
    EXPECT_NEAR(monitor.busy_fraction(500), 1.0, 1e-12);
    // Window [0, 1000] holds 500 busy out of 1000 observed.
    EXPECT_NEAR(monitor.busy_fraction(1000), 0.5, 1e-12);
    // Window [500, 1500] only overlaps the tail of nothing: idle since.
    EXPECT_NEAR(monitor.busy_fraction(1500), 0.0, 1e-12);

    monitor.record_busy(1500, 1750);
    // Window [750, 1750]: 250 busy of 1000.
    EXPECT_NEAR(monitor.busy_fraction(1750), 0.25, 1e-12);
}

TEST(Traffic, DutyAgingFactorIsOneAtSaturationAndDecaysWhenIdle) {
    constexpr double kActivation = 0.035;
    constexpr double kSelfHeat = 15.0;
    EXPECT_DOUBLE_EQ(sim::duty_aging_factor(1.0, kSelfHeat, kActivation), 1.0);
    const double half = sim::duty_aging_factor(0.5, kSelfHeat, kActivation);
    const double idle = sim::duty_aging_factor(0.0, kSelfHeat, kActivation);
    EXPECT_LT(idle, half);
    EXPECT_LT(half, 1.0);
    EXPECT_GT(idle, 0.0);
    EXPECT_NEAR(idle, std::exp(-kActivation * kSelfHeat), 1e-12);
    // Out-of-range fractions clamp instead of extrapolating.
    EXPECT_DOUBLE_EQ(sim::duty_aging_factor(1.7, kSelfHeat, kActivation), 1.0);
    EXPECT_DOUBLE_EQ(sim::duty_aging_factor(-0.3, kSelfHeat, kActivation), idle);
}

// ---------------------------------------------------------------------
// Wire protocol round trips.
// ---------------------------------------------------------------------

TEST(Protocol, InferResponseRoundTrips) {
    net::InferReply reply;
    reply.predicted_class = 7;
    reply.device_id = 3;
    reply.generation = 42;
    reply.partition = 5;
    reply.latency_us = 123.5;
    reply.logits = {0.25f, -1.5f, 3.0f};

    std::vector<std::uint8_t> wire;
    net::encode_infer_response(wire, 0xBEEF, reply);

    // Strip the u32 length prefix, decode the payload.
    ASSERT_GT(wire.size(), 4u);
    std::uint32_t len = 0;
    std::memcpy(&len, wire.data(), 4);
    ASSERT_EQ(wire.size(), 4u + len);

    net::Response decoded;
    ASSERT_TRUE(net::decode_response(wire.data() + 4, len, net::Op::Infer, decoded));
    EXPECT_EQ(decoded.status, net::Status::Ok);
    EXPECT_EQ(decoded.tag, 0xBEEFu);
    EXPECT_EQ(decoded.infer.predicted_class, 7);
    EXPECT_EQ(decoded.infer.device_id, 3u);
    EXPECT_EQ(decoded.infer.generation, 42u);
    EXPECT_EQ(decoded.infer.partition, 5u);
    EXPECT_DOUBLE_EQ(decoded.infer.latency_us, 123.5);
    ASSERT_EQ(decoded.infer.logits.size(), 3u);
    EXPECT_EQ(decoded.infer.logits[1], -1.5f);

    // Truncated payloads are rejected at every cut point, never read
    // past the end.
    for (std::uint32_t cut = 0; cut < len; ++cut) {
        net::Response partial;
        EXPECT_FALSE(net::decode_response(wire.data() + 4, cut, net::Op::Infer, partial))
            << "cut " << cut;
    }
}

TEST(Protocol, BlobResponseRoundTripsForAnyOp) {
    std::vector<std::uint8_t> wire;
    net::encode_blob_response(wire, net::Status::Busy, 9, "queue saturated");
    std::uint32_t len = 0;
    std::memcpy(&len, wire.data(), 4);

    // A non-OK status decodes as a blob even on an INFER tag.
    net::Response decoded;
    ASSERT_TRUE(net::decode_response(wire.data() + 4, len, net::Op::Infer, decoded));
    EXPECT_EQ(decoded.status, net::Status::Busy);
    EXPECT_EQ(decoded.tag, 9u);
    EXPECT_EQ(decoded.blob, "queue saturated");

    // An unknown status byte is malformed, not misclassified.
    std::vector<std::uint8_t> bogus(wire.begin() + 4, wire.end());
    bogus[0] = 250;
    EXPECT_FALSE(net::decode_response(bogus.data(), bogus.size(), net::Op::Infer, decoded));
}

TEST(Protocol, EncodeSampleReconstructionMatchesDequant) {
    tensor::Tensor sample({1, 2, 3, 3});
    for (std::size_t i = 0; i < sample.size(); ++i)
        sample[i] = -1.0f + 0.13f * static_cast<float>(i);
    const net::EncodedSample enc = net::encode_sample(sample, 1);
    ASSERT_EQ(enc.payload.size(), sample.size());
    ASSERT_EQ(enc.reference.size(), sample.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
        const float expect =
            net::dequant(enc.payload[i], enc.header.scale, enc.header.zero_point);
        EXPECT_EQ(enc.reference[i], expect) << "pixel " << i;
        // u8 quantization error stays within one step.
        EXPECT_NEAR(enc.reference[i], sample[i], enc.header.scale + 1e-6f);
    }
}

// ---------------------------------------------------------------------
// try_submit / completion-hook semantics (in-process).
// ---------------------------------------------------------------------

// Shared deployment context, trained once for the whole file (same
// pattern as test_serve.cpp).
class Net : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::DatasetConfig dc;
        dc.train_size = 600;
        dc.test_size = 200;
        dataset_ = new data::SyntheticDataset(dc);

        auto net = nn::make_network("alexnet-mini");
        nn::TrainConfig tcfg;
        tcfg.epochs = 2;
        nn::SgdTrainer trainer(tcfg);
        trainer.fit(net, *dataset_);
        graph_ = new ir::Graph(net.export_ir());

        const auto calib_images = dataset_->train_batch(0, 48);
        const std::vector<int> calib_labels(dataset_->train_labels().begin(),
                                            dataset_->train_labels().begin() + 48);
        calib_ = new quant::CalibrationData(
            quant::calibrate(*graph_, calib_images, calib_labels));

        mac_ = new netlist::Netlist(netlist::build_mac_circuit());
        library_ = new cell::Library(cell::Library::finfet14());
        selector_ = new core::CompressionSelector(*mac_, *library_);
        aging_ = new aging::AgingModel();

        eval_images_ = new tensor::Tensor(dataset_->test_batch(0, 100));
        eval_labels_ = new std::vector<int>(dataset_->test_labels().begin(),
                                            dataset_->test_labels().begin() + 100);
    }
    static void TearDownTestSuite() {
        delete eval_labels_;
        delete eval_images_;
        delete aging_;
        delete selector_;
        delete library_;
        delete mac_;
        delete calib_;
        delete graph_;
        delete dataset_;
    }

    [[nodiscard]] static serve::ServeContext context() {
        serve::ServeContext ctx;
        ctx.graph = graph_;
        ctx.calib = calib_;
        ctx.selector = selector_;
        ctx.aging = aging_;
        ctx.eval_images = eval_images_;
        ctx.eval_labels = eval_labels_;
        return ctx;
    }

    /// Wire-encode the first `n` test images (round-robin targets for
    /// the load generator).
    [[nodiscard]] static std::vector<net::EncodedSample> encoded_samples(int n) {
        std::vector<net::EncodedSample> samples;
        samples.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const tensor::Tensor image = dataset_->test_batch(i, 1);
            samples.push_back(net::encode_sample(image, 1));
        }
        return samples;
    }

    static data::SyntheticDataset* dataset_;
    static ir::Graph* graph_;
    static quant::CalibrationData* calib_;
    static netlist::Netlist* mac_;
    static cell::Library* library_;
    static core::CompressionSelector* selector_;
    static aging::AgingModel* aging_;
    static tensor::Tensor* eval_images_;
    static std::vector<int>* eval_labels_;
};

data::SyntheticDataset* Net::dataset_ = nullptr;
ir::Graph* Net::graph_ = nullptr;
quant::CalibrationData* Net::calib_ = nullptr;
netlist::Netlist* Net::mac_ = nullptr;
cell::Library* Net::library_ = nullptr;
core::CompressionSelector* Net::selector_ = nullptr;
aging::AgingModel* Net::aging_ = nullptr;
tensor::Tensor* Net::eval_images_ = nullptr;
std::vector<int>* Net::eval_labels_ = nullptr;

TEST_F(Net, TrySubmitFiresCompletionHookAndClosesWithServer) {
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    serve::NpuServer server(context(), cfg);

    std::promise<void> done;
    auto fired = done.get_future();
    auto attempt = server.try_submit(dataset_->test_batch(0, 1),
                                     [&done] { done.set_value(); });
    ASSERT_EQ(attempt.status, serve::NpuServer::TrySubmit::Status::Accepted);
    const serve::InferenceResult result = attempt.future.get();
    EXPECT_FALSE(result.logits.empty());
    // The hook fires after the promise is satisfied — never lost.
    EXPECT_EQ(fired.wait_for(std::chrono::seconds(5)), std::future_status::ready);

    server.shutdown();
    auto after = server.try_submit(dataset_->test_batch(1, 1));
    EXPECT_EQ(after.status, serve::NpuServer::TrySubmit::Status::Closed);
}

// ---------------------------------------------------------------------
// End-to-end socket serving.
// ---------------------------------------------------------------------

TEST_F(Net, SocketServingIsLosslessAndBitIdenticalToInProcess) {
    constexpr int kRequests = 32;

    // Serial reference: the exact graph a fresh device deploys.
    const auto choice = selector_->select(0.0);
    ASSERT_TRUE(choice.has_value());
    const auto qconfig = quant::QuantConfig::from_compression(choice->compression);
    const auto reference = quant::quantize_graph(*graph_, quant::Method::M5_AciqNoBias,
                                                 qconfig, *calib_);

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.telemetry.metrics = true;
    serve::NpuServer npu(context(), cfg);

    net::NetConfig ncfg;
    ncfg.num_loops = 2;
    net::Server front(npu, ncfg);
    ASSERT_GT(front.port(), 0);

    const auto samples = encoded_samples(kRequests);

    net::LoadGenConfig lcfg;
    lcfg.port = front.port();
    lcfg.connections = 8;
    lcfg.model = net::TrafficModel::ClosedLoop;
    lcfg.total_requests = kRequests;
    lcfg.capture = true;
    const net::LoadReport report = net::run_load(lcfg, samples);

    EXPECT_EQ(report.sent, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(report.ok, static_cast<std::uint64_t>(kRequests));
    EXPECT_TRUE(report.lossless()) << report.to_string();
    EXPECT_GT(report.p99_ms, 0.0);

    // Socket-served logits are bit-identical to serial in-process
    // execution of the SAME reconstructed tensor (the shared dequant).
    ASSERT_EQ(report.captured.size(), static_cast<std::size_t>(kRequests));
    for (const net::CapturedResult& cap : report.captured) {
        const net::EncodedSample& sample = samples[cap.sample_index];
        const tensor::Tensor serial = quant::run_quantized(reference, sample.reference);
        ASSERT_EQ(cap.logits.size(), serial.size()) << "sample " << cap.sample_index;
        for (std::size_t c = 0; c < serial.size(); ++c)
            EXPECT_EQ(cap.logits[c], serial[c])
                << "sample " << cap.sample_index << " class " << c;
    }

    // A METRICS scrape over the wire carries both the front-end's and
    // the serving runtime's series.
    const std::string scrape = net::fetch_metrics("127.0.0.1", front.port());
    EXPECT_NE(scrape.find("raq_net_requests_total"), std::string::npos);
    EXPECT_NE(scrape.find("raq_net_connections_total"), std::string::npos);
    EXPECT_NE(scrape.find("raq_device_requests_total"), std::string::npos);

    front.stop();
    npu.shutdown();

    const net::NetStats stats = front.stats();
    EXPECT_GE(stats.connections, 8u);
    EXPECT_GE(stats.requests, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.responses, stats.requests);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.protocol_errors, 0u);
    EXPECT_GT(stats.bytes_read, 0u);
    EXPECT_GT(stats.bytes_written, 0u);

    // The reliability timeline recorded the front-end lifecycle.
    const std::string timeline = npu.export_timeline();
    EXPECT_NE(timeline.find("net-listen"), std::string::npos);
    EXPECT_NE(timeline.find("net-drain"), std::string::npos);
}

TEST_F(Net, MixedClassFramesRouteToLanesAndReportPerClass) {
    constexpr int kRequests = 48;
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.telemetry.metrics = true;
    serve::NpuServer npu(context(), cfg);

    net::NetConfig ncfg;
    net::Server front(npu, ncfg);
    ASSERT_GT(front.port(), 0);

    // Half the requests go out as legacy Op::Infer frames (interactive by
    // default), half as batch-class Op::InferClass frames.
    net::LoadGenConfig lcfg;
    lcfg.port = front.port();
    lcfg.connections = 4;
    lcfg.model = net::TrafficModel::ClosedLoop;
    lcfg.total_requests = kRequests;
    lcfg.interactive_frac = 0.5;
    const net::LoadReport report = net::run_load(lcfg, encoded_samples(16));

    EXPECT_TRUE(report.lossless()) << report.to_string();
    EXPECT_EQ(report.ok, static_cast<std::uint64_t>(kRequests));
    // The class split is a seeded draw — both classes must be present and
    // they must add up exactly.
    EXPECT_GT(report.ok_interactive, 0u);
    EXPECT_GT(report.ok_batch, 0u);
    EXPECT_EQ(report.ok_interactive + report.ok_batch, report.ok);
    EXPECT_GT(report.interactive_p99_ms, 0.0);
    EXPECT_GT(report.batch_p99_ms, 0.0);

    // Both lanes show up as labeled series in the scrape, and the batch
    // lane really admitted the InferClass frames.
    const std::string scrape = net::fetch_metrics("127.0.0.1", front.port());
    EXPECT_NE(scrape.find("raq_requests_submitted_total{class=\"interactive\"}"),
              std::string::npos);
    EXPECT_NE(scrape.find("raq_requests_submitted_total{class=\"batch\"}"),
              std::string::npos);
    EXPECT_EQ(npu.scheduler().stats().admitted[1], report.ok_batch);

    front.stop();
    npu.shutdown();
}

TEST_F(Net, WrongModelIdIsRejectedNotServed) {
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    serve::NpuServer npu(context(), cfg);
    net::Server front(npu, net::NetConfig{});

    // Encode against a model id the front-end does not serve.
    std::vector<net::EncodedSample> samples;
    samples.push_back(net::encode_sample(dataset_->test_batch(0, 1), 7));

    net::LoadGenConfig lcfg;
    lcfg.port = front.port();
    lcfg.connections = 1;
    lcfg.model = net::TrafficModel::ClosedLoop;
    lcfg.total_requests = 4;
    const net::LoadReport report = net::run_load(lcfg, samples);

    EXPECT_EQ(report.bad, 4u);
    EXPECT_EQ(report.ok, 0u);
    EXPECT_TRUE(report.lossless()) << report.to_string();

    front.stop();
    npu.shutdown();
}

TEST_F(Net, OverloadShedsWithBusyAndStaysLossless) {
    // A deliberately tiny service: one worker, a 2-deep admission queue.
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 2;
    cfg.queue_capacity = 2;
    cfg.telemetry.metrics = true;
    serve::NpuServer npu(context(), cfg);
    net::Server front(npu, net::NetConfig{});

    const auto samples = encoded_samples(8);

    // Open-loop Poisson far beyond what one worker can drain: offered
    // load is a property of the trace, so the excess MUST be shed.
    net::LoadGenConfig lcfg;
    lcfg.port = front.port();
    lcfg.connections = 4;
    lcfg.model = net::TrafficModel::Poisson;
    lcfg.rate_rps = 4000.0;
    lcfg.duration_s = 1.0;
    const net::LoadReport report = net::run_load(lcfg, samples);

    EXPECT_GT(report.sent, 0u);
    EXPECT_GT(report.ok, 0u);
    EXPECT_GT(report.busy, 0u) << report.to_string();
    // The no-blackhole guarantee: every request answered exactly once.
    EXPECT_TRUE(report.lossless()) << report.to_string();
    EXPECT_EQ(report.errors, 0u) << report.to_string();

    front.stop();
    npu.shutdown();

    const net::NetStats stats = front.stats();
    EXPECT_EQ(stats.shed, report.busy);
    // Overload left its mark on the reliability timeline (rate-limited).
    const std::string timeline = npu.export_timeline();
    EXPECT_NE(timeline.find("net-overload"), std::string::npos);
}

TEST_F(Net, ShutdownCascadeAnswersEverythingThenRefusesConnections) {
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    serve::NpuServer npu(context(), cfg);
    net::Server front(npu, net::NetConfig{});
    const std::uint16_t port = front.port();

    const auto samples = encoded_samples(8);
    net::LoadGenConfig lcfg;
    lcfg.port = port;
    lcfg.connections = 2;
    lcfg.model = net::TrafficModel::ClosedLoop;
    lcfg.total_requests = 8;
    const net::LoadReport report = net::run_load(lcfg, samples);
    EXPECT_EQ(report.ok, 8u);
    EXPECT_TRUE(report.lossless());

    front.stop();
    // Idempotent.
    front.stop();

    // Every parsed request got a serialized response before the drain
    // finished.
    const net::NetStats stats = front.stats();
    EXPECT_EQ(stats.responses, stats.requests);

    // The listener is gone: a fresh scrape cannot connect.
    EXPECT_TRUE(net::fetch_metrics("127.0.0.1", port).empty());

    // The NpuServer outlives the front-end and still serves in-process.
    auto future = npu.submit(dataset_->test_batch(0, 1));
    EXPECT_FALSE(future.get().logits.empty());
    npu.shutdown();
}

// ---------------------------------------------------------------------
// Traffic-driven aging, end to end: a fleet pinned at saturation by a
// closed loop accrues measurably more stress per served request than a
// quiet fleet trickled by a low-rate open loop over a longer wall span.
// ---------------------------------------------------------------------

TEST_F(Net, HeavyTrafficFleetAgesFasterThanQuietFleet) {
    constexpr int kHeavyRequests = 48;
    constexpr int kQuietRequests = 20;

    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.device.traffic_aging.enabled = true;
    cfg.device.traffic_aging.window_us = 250'000;
    cfg.device.traffic_aging.self_heat_c = 40.0;  // pronounced busy-idle delta

    // Scale aging so the saturated run lands around 8 mV over its 48
    // requests (same probe trick as test_serve.cpp).
    {
        serve::NpuServer probe(context(), cfg);
        const auto& dev = probe.device(0);
        const double busy_hours_per_request =
            static_cast<double>(dev.per_image_cycles()) * dev.clock_period_ps() * 1e-12 /
            3600.0;
        cfg.device.age_acceleration = aging_->years_for_dvth(8.0) * 8760.0 /
                                      (kHeavyRequests * busy_hours_per_request);
        probe.shutdown();
    }

    const auto run_fleet = [&](const net::LoadGenConfig& lcfg_in,
                               std::uint64_t expect_ok) -> serve::DeviceStats {
        serve::NpuServer npu(context(), cfg);
        net::Server front(npu, net::NetConfig{});
        net::LoadGenConfig lcfg = lcfg_in;
        lcfg.port = front.port();
        const auto samples = encoded_samples(16);
        const net::LoadReport report = net::run_load(lcfg, samples);
        EXPECT_EQ(report.ok, expect_ok) << report.to_string();
        EXPECT_TRUE(report.lossless()) << report.to_string();
        front.stop();
        npu.shutdown();
        return npu.device(0).stats();
    };

    // Heavy fleet: 4 closed-loop connections keep the device saturated.
    net::LoadGenConfig heavy;
    heavy.connections = 4;
    heavy.model = net::TrafficModel::ClosedLoop;
    heavy.total_requests = kHeavyRequests;
    const serve::DeviceStats heavy_stats = run_fleet(heavy, kHeavyRequests);

    // Quiet fleet: a low-rate Poisson trickle — mostly idle wall time.
    net::LoadGenConfig quiet;
    quiet.connections = 2;
    quiet.model = net::TrafficModel::Poisson;
    quiet.rate_rps = 10.0;
    quiet.total_requests = kQuietRequests;
    quiet.duration_s = 60.0;  // quota governs; rate spreads it over ~2 s
    const serve::DeviceStats quiet_stats = run_fleet(quiet, kQuietRequests);

    EXPECT_EQ(heavy_stats.requests, static_cast<std::uint64_t>(kHeavyRequests));
    EXPECT_EQ(quiet_stats.requests, static_cast<std::uint64_t>(kQuietRequests));

    // The monitors saw genuinely different utilization.
    EXPECT_GT(heavy_stats.duty_fraction, quiet_stats.duty_fraction);

    // Per served request, the hot fleet accrued measurably more
    // effective stress hours — the duty factor, isolated from the
    // request-count difference.
    const double heavy_hours_per_req =
        heavy_stats.operating_hours / static_cast<double>(heavy_stats.requests);
    const double quiet_hours_per_req =
        quiet_stats.operating_hours / static_cast<double>(quiet_stats.requests);
    EXPECT_GT(heavy_hours_per_req, quiet_hours_per_req * 1.05)
        << "heavy duty " << heavy_stats.duty_fraction << " quiet duty "
        << quiet_stats.duty_fraction;

    // And therefore more ΔVth.
    EXPECT_GT(heavy_stats.dvth_mv, quiet_stats.dvth_mv);
    EXPECT_GT(heavy_stats.dvth_mv, 1.0);  // the acceleration actually bit
}

}  // namespace
