#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using raq::tensor::col2im;
using raq::tensor::conv_out_dim;
using raq::tensor::im2col;
using raq::tensor::Shape;
using raq::tensor::Tensor;

TEST(Shape, SizeAndEquality) {
    const Shape s{2, 3, 4, 5};
    EXPECT_EQ(s.size(), 120u);
    EXPECT_EQ(s, (Shape{2, 3, 4, 5}));
    EXPECT_NE(s, (Shape{2, 3, 4, 6}));
    EXPECT_EQ(s.to_string(), "(2,3,4,5)");
}

TEST(Tensor, IndexingIsRowMajorNchw) {
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 42.0f;
    EXPECT_FLOAT_EQ(t[t.size() - 1], 42.0f);
    t.at(0, 0, 0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(t[1], 7.0f);
}

TEST(Tensor, ConstructionValidatesSize) {
    EXPECT_THROW(Tensor({1, 1, 2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
    EXPECT_NO_THROW(Tensor({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4}));
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t({1, 2, 2, 2});
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
    t.reshape({1, 8, 1, 1});
    EXPECT_EQ(t.shape().c, 8);
    EXPECT_FLOAT_EQ(t[5], 5.0f);
    EXPECT_THROW(t.reshape({1, 7, 1, 1}), std::invalid_argument);
}

TEST(ConvOutDim, StandardCases) {
    EXPECT_EQ(conv_out_dim(16, 3, 1, 1), 16);
    EXPECT_EQ(conv_out_dim(16, 3, 2, 1), 8);
    EXPECT_EQ(conv_out_dim(16, 2, 2, 0), 8);
    EXPECT_EQ(conv_out_dim(5, 5, 1, 0), 1);
    EXPECT_THROW(conv_out_dim(2, 5, 1, 0), std::invalid_argument);
}

TEST(Im2Col, IdentityKernelIsPassthrough) {
    Tensor in({1, 2, 3, 3});
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i + 1);
    std::vector<float> cols;
    int oh = 0, ow = 0;
    im2col(in, 1, 1, 1, 0, cols, oh, ow);
    EXPECT_EQ(oh, 3);
    EXPECT_EQ(ow, 3);
    ASSERT_EQ(cols.size(), in.size());
    for (std::size_t i = 0; i < cols.size(); ++i) EXPECT_FLOAT_EQ(cols[i], in[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
    Tensor in({1, 1, 2, 2});
    in.fill(1.0f);
    std::vector<float> cols;
    int oh = 0, ow = 0;
    im2col(in, 3, 3, 1, 1, cols, oh, ow);
    EXPECT_EQ(oh, 2);
    EXPECT_EQ(ow, 2);
    // Top-left patch: corner positions fall outside -> zero.
    EXPECT_FLOAT_EQ(cols[0], 0.0f);  // row 0 (ky=0,kx=0), col 0
}

TEST(Im2ColCol2Im, AdjointProperty) {
    // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
    // property that makes the conv backward pass correct.
    raq::common::Rng rng(0x1234);
    const Shape s{2, 3, 6, 6};
    Tensor x(s);
    for (auto& v : x.vec()) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> xcols;
    int oh = 0, ow = 0;
    im2col(x, 3, 3, 2, 1, xcols, oh, ow);
    std::vector<float> y(xcols.size());
    for (auto& v : y) v = static_cast<float>(rng.next_gaussian());
    Tensor x_back;
    col2im(y, s, 3, 3, 2, 1, x_back);

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < xcols.size(); ++i) lhs += static_cast<double>(xcols[i]) * y[i];
    for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * x_back[i];
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

void reference_gemm(const std::vector<float>& a, const std::vector<float>& b,
                    std::vector<float>& c, std::size_t m, std::size_t k, std::size_t n) {
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0;
            for (std::size_t p = 0; p < k; ++p)
                acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
            c[i * n + j] = static_cast<float>(acc);
        }
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesReference) {
    const auto [m, k, n] = GetParam();
    raq::common::Rng rng(77);
    std::vector<float> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = static_cast<float>(rng.next_gaussian());
    for (auto& v : b) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> expect(static_cast<std::size_t>(m * n));
    reference_gemm(a, b, expect, static_cast<std::size_t>(m), static_cast<std::size_t>(k),
                   static_cast<std::size_t>(n));

    std::vector<float> c(static_cast<std::size_t>(m * n), -1.0f);
    raq::tensor::gemm(a.data(), b.data(), c.data(), static_cast<std::size_t>(m),
                      static_cast<std::size_t>(k), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], expect[i], 1e-3);

    // A^T variant: store A transposed as [k, m].
    std::vector<float> at(static_cast<std::size_t>(m * k));
    for (int i = 0; i < m; ++i)
        for (int p = 0; p < k; ++p)
            at[static_cast<std::size_t>(p * m + i)] = a[static_cast<std::size_t>(i * k + p)];
    std::fill(c.begin(), c.end(), 0.0f);
    raq::tensor::gemm_at(at.data(), b.data(), c.data(), static_cast<std::size_t>(m),
                         static_cast<std::size_t>(k), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], expect[i], 1e-3);

    // B^T variant: store B transposed as [n, k].
    std::vector<float> bt(static_cast<std::size_t>(k * n));
    for (int p = 0; p < k; ++p)
        for (int j = 0; j < n; ++j)
            bt[static_cast<std::size_t>(j * k + p)] = b[static_cast<std::size_t>(p * n + j)];
    std::fill(c.begin(), c.end(), 0.0f);
    raq::tensor::gemm_bt(a.data(), bt.data(), c.data(), static_cast<std::size_t>(m),
                         static_cast<std::size_t>(k), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], expect[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                                           std::make_tuple(16, 9, 32),
                                           std::make_tuple(8, 64, 8),
                                           std::make_tuple(10, 10, 1)));

TEST(Gemm, AccumulateFlagAddsToExisting) {
    const std::vector<float> a{1, 2};
    const std::vector<float> b{3, 4};
    std::vector<float> c{10.0f};
    raq::tensor::gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
    EXPECT_FLOAT_EQ(c[0], 10.0f + 3.0f + 8.0f);
    raq::tensor::gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/false);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
}

}  // namespace
