// Cross-device model sharding: graph-cut partitioner, sub-plan
// compilation, per-shard quantization bit-identity (boundary tensors
// included) and the ShardGroup serving pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/rng.hpp"
#include "core/compression_selector.hpp"
#include "data/synthetic_dataset.hpp"
#include "exec/plan_cache.hpp"
#include "exec/subplan.hpp"
#include "ir/float_executor.hpp"
#include "ir/partition.hpp"
#include "netlist/builders.hpp"
#include "nn/trainer.hpp"
#include "npu/systolic.hpp"
#include "nn/zoo.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "serve/server.hpp"
#include "serve/shard_group.hpp"

namespace {

using namespace raq;

/// A small residual graph built by hand: conv → relu → conv → add(skip)
/// → relu → conv. The skip connection makes the interior of the block
/// uncuttable (two tensors would cross), so the partitioner must cut at
/// the block boundaries only.
ir::Graph make_residual_graph() {
    common::Rng rng(0xD15C0);
    const auto rand_conv = [&rng](int in_c, int out_c, int k, int pad) {
        ir::Op op;
        op.kind = ir::OpKind::Conv2d;
        op.conv = {in_c, out_c, k, k, 1, pad};
        op.weights.resize(static_cast<std::size_t>(out_c) * in_c * k * k);
        for (float& w : op.weights) w = rng.next_float() - 0.5f;
        op.bias.resize(static_cast<std::size_t>(out_c));
        for (float& b : op.bias) b = 0.1f * (rng.next_float() - 0.5f);
        return op;
    };
    ir::Graph g;
    const int in = g.add_input({1, 4, 8, 8});
    ir::Op c1 = rand_conv(4, 4, 3, 1);
    c1.inputs = {in};
    c1.name = "c1";
    const int t1 = g.add(std::move(c1));
    ir::Op r1;
    r1.kind = ir::OpKind::Relu;
    r1.inputs = {t1};
    r1.name = "r1";
    const int t2 = g.add(std::move(r1));
    ir::Op c2 = rand_conv(4, 4, 3, 1);
    c2.inputs = {t2};
    c2.name = "c2";
    const int t3 = g.add(std::move(c2));
    ir::Op add;
    add.kind = ir::OpKind::Add;
    add.inputs = {t3, t2};  // skip from t2: no cut between t2 and t4
    add.name = "skip";
    const int t4 = g.add(std::move(add));
    ir::Op r2;
    r2.kind = ir::OpKind::Relu;
    r2.inputs = {t4};
    r2.name = "r2";
    const int t5 = g.add(std::move(r2));
    ir::Op c3 = rand_conv(4, 6, 3, 0);
    c3.inputs = {t5};
    c3.name = "c3";
    const int t6 = g.add(std::move(c3));
    g.set_output(t6);
    return g;
}

tensor::Tensor random_batch(const tensor::Shape& sample, int n, std::uint64_t seed) {
    tensor::Tensor batch({n, sample.c, sample.h, sample.w});
    common::Rng rng(seed);
    for (std::size_t i = 0; i < batch.size(); ++i)
        batch.data()[i] = rng.next_float();
    return batch;
}

TEST(Partition, ResidualBlockAdmitsOnlyBoundaryCuts) {
    const ir::Graph g = make_residual_graph();
    // Ops: 0 c1, 1 r1, 2 c2, 3 add, 4 r2, 5 c3. Cutting after c2 would
    // strand the skip tensor: {t3, t2} both cross. Everywhere else the
    // live frontier is one tensor.
    EXPECT_EQ(ir::cut_candidates(g), (std::vector<int>{0, 1, 3, 4}));
}

TEST(Partition, BalancedCutsMinimizeTheBottleneck) {
    const ir::Graph g = make_residual_graph();
    const auto shards = ir::partition_graph(g, 2);
    ASSERT_EQ(shards.size(), 2u);
    // Contiguous cover of the op range, boundary tensors chained.
    EXPECT_EQ(shards[0].first_op, 0);
    EXPECT_EQ(shards[1].last_op, static_cast<int>(g.ops().size()) - 1);
    EXPECT_EQ(shards[0].last_op + 1, shards[1].first_op);
    EXPECT_EQ(shards[0].input_tensor, g.input_id());
    EXPECT_EQ(shards[0].output_tensor, shards[1].input_tensor);
    EXPECT_EQ(shards[1].output_tensor, g.output_id());
    EXPECT_LE(shards[0].last_level, shards[1].first_level);
    // Three convs of cost ~{4x4, 4x4, 4x6-ish}: any balanced 2-cut keeps
    // the bottleneck under the whole-graph cost.
    const std::uint64_t total = shards[0].cost + shards[1].cost;
    EXPECT_LT(std::max(shards[0].cost, shards[1].cost), total);

    EXPECT_THROW((void)ir::partition_graph(g, 0), std::invalid_argument);
    // Only 4 cut candidates exist: 6 shards are unreachable.
    EXPECT_THROW((void)ir::partition_graph(g, 6), std::invalid_argument);
    // 4 shards fit the cuts but only 3 convs carry cost: every 3-cut
    // choice strands one shard with zero MAC work, which is refused.
    EXPECT_THROW((void)ir::partition_graph(g, 4), std::invalid_argument);
}

/// Reference liveness scan (the pre-sweep O(ops × tensors) definition):
/// boundary i is a cut iff exactly one tensor crosses it and that tensor
/// is ops[i].output.
std::vector<int> cut_candidates_reference(const ir::Graph& g) {
    const auto& ops = g.ops();
    std::vector<int> last_use = ir::tensor_last_use(g);
    last_use[static_cast<std::size_t>(g.output_id())] = std::numeric_limits<int>::max();
    std::vector<int> producer(static_cast<std::size_t>(g.num_tensors()), -1);
    for (std::size_t i = 0; i < ops.size(); ++i)
        producer[static_cast<std::size_t>(ops[i].output)] = static_cast<int>(i);
    std::vector<int> cuts;
    for (int i = 0; i + 1 < static_cast<int>(ops.size()); ++i) {
        int crossing = 0;
        bool only_own = true;
        for (int t = 0; t < g.num_tensors(); ++t) {
            if (producer[static_cast<std::size_t>(t)] > i) continue;
            if (last_use[static_cast<std::size_t>(t)] <= i) continue;
            ++crossing;
            if (t != ops[static_cast<std::size_t>(i)].output) only_own = false;
        }
        if (crossing == 1 && only_own) cuts.push_back(i);
    }
    return cuts;
}

TEST(Partition, CutCandidateSweepMatchesTheFullLivenessScan) {
    // The single-sweep cut_candidates must reproduce the quadratic
    // reference exactly — on the residual graph (skip connection), on a
    // pure chain, and on a two-block residual with a dangling-relu tail.
    const ir::Graph residual = make_residual_graph();
    EXPECT_EQ(ir::cut_candidates(residual), cut_candidates_reference(residual));
    EXPECT_EQ(ir::cut_candidates(residual), (std::vector<int>{0, 1, 3, 4}));

    ir::Graph chain;
    int t = chain.add_input({1, 4, 8, 8});
    for (int i = 0; i < 5; ++i) {
        ir::Op op;
        op.kind = ir::OpKind::Relu;
        op.inputs = {t};
        op.name = "r" + std::to_string(i);
        t = chain.add(std::move(op));
    }
    chain.set_output(t);
    EXPECT_EQ(ir::cut_candidates(chain), cut_candidates_reference(chain));
    EXPECT_EQ(ir::cut_candidates(chain), (std::vector<int>{0, 1, 2, 3}));

    // Concat whose operands are both in flight: no interior cut.
    ir::Graph branchy;
    const int in = branchy.add_input({1, 2, 4, 4});
    ir::Op a;
    a.kind = ir::OpKind::Relu;
    a.inputs = {in};
    const int ta = branchy.add(std::move(a));
    ir::Op b;
    b.kind = ir::OpKind::MaxPool2d;
    b.pool = {1, 1};
    b.inputs = {in};
    const int tb = branchy.add(std::move(b));
    ir::Op cat;
    cat.kind = ir::OpKind::Concat;
    cat.inputs = {ta, tb};
    const int tc = branchy.add(std::move(cat));
    ir::Op tail;
    tail.kind = ir::OpKind::Relu;
    tail.inputs = {tc};
    const int td = branchy.add(std::move(tail));
    branchy.set_output(td);
    EXPECT_EQ(ir::cut_candidates(branchy), cut_candidates_reference(branchy));
    EXPECT_EQ(ir::cut_candidates(branchy), (std::vector<int>{2}));
}

TEST(Partition, DefaultCostModelIsSystolicCyclesNotMacs) {
    // Three convolutions whose MAC counts and systolic residency
    // disagree hard: L is pipeline-fill/positions-bound (tiny reduction
    // dim -> ~1.6% array utilization) while L2 and H stream wide
    // reductions at high utilization. A MAC-balanced cut and a
    // cycle-balanced cut land at different boundaries, and the pipeline
    // executes cycles, not MACs.
    common::Rng rng(0x5CA1E);
    const auto conv = [&rng](int in_c, int out_c, int k, int stride) {
        ir::Op op;
        op.kind = ir::OpKind::Conv2d;
        op.conv = {in_c, out_c, k, k, stride, 0};
        op.weights.resize(static_cast<std::size_t>(out_c) * in_c * k * k);
        for (float& w : op.weights) w = rng.next_float() - 0.5f;
        op.bias.resize(static_cast<std::size_t>(out_c), 0.0f);
        return op;
    };
    ir::Graph g;
    const int in = g.add_input({1, 2, 32, 32});
    ir::Op l = conv(2, 8, 1, 1);  // low utilization: reduce=2, 1024 positions
    l.inputs = {in};
    l.name = "L";
    const int t1 = g.add(std::move(l));
    ir::Op l2 = conv(8, 64, 4, 4);  // high utilization: reduce=128, 64 positions
    l2.inputs = {t1};
    l2.name = "L2";
    const int t2 = g.add(std::move(l2));
    ir::Op h = conv(64, 64, 1, 1);  // high utilization: reduce=64, 64 positions
    h.inputs = {t2};
    h.name = "H";
    const int t3 = g.add(std::move(h));
    g.set_output(t3);

    // Systolic cycles (64x64 array, fill 128): L = 1024+128 = 1152,
    // L2 = 2 row tiles x (64+128) = 384, H = 64+128 = 192.
    const std::vector<std::uint64_t> cycles = npu::op_cycle_costs(g);
    EXPECT_EQ(cycles, (std::vector<std::uint64_t>{1152, 384, 192}));
    // Raw MACs: L = 2*8*1024 = 16384, L2 = 128*64*64 = 524288,
    // H = 64*64*64 = 262144.
    const std::vector<std::uint64_t> macs{16384, 524288, 262144};

    // MAC balance puts L and L2 together (bottleneck 540672 beats
    // 786432); cycle balance isolates L (bottleneck 1152 beats 1536).
    const auto mac_cut = ir::partition_graph(g, 2, macs);
    EXPECT_EQ(mac_cut[0].last_op, 1);
    const auto default_cut = ir::partition_graph(g, 2);
    EXPECT_EQ(default_cut[0].last_op, 0);
    EXPECT_EQ(default_cut[0].cost, 1152u);
    EXPECT_EQ(default_cut[1].cost, 384u + 192u);
}

TEST(Partition, ChainedSubgraphsReproduceFullFloatExecutionAtEveryBoundary) {
    const ir::Graph g = make_residual_graph();
    const tensor::Tensor batch = random_batch(g.input_shape(), 3, 0xBA7C4);
    // Reference: every intermediate of the full graph, by tensor id.
    const std::vector<tensor::Tensor> full = ir::run_float_all(g, batch.batch_view(0, 3));

    for (const int num_shards : {2, 3}) {
        const auto shards = ir::partition_graph(g, num_shards);
        tensor::Tensor acts = batch;
        for (const ir::ShardSpec& spec : shards) {
            const ir::Subgraph sub = ir::extract_subgraph(g, spec);
            EXPECT_EQ(sub.full_tensor_of.front(), spec.input_tensor);
            EXPECT_EQ(sub.full_tensor_of.back(), spec.output_tensor);
            acts = ir::run_float(sub.graph, acts.batch_view(0, 3));
            // The boundary tensor handed to the next shard must be
            // bit-identical to the full execution's intermediate.
            const tensor::Tensor& ref = full[static_cast<std::size_t>(spec.output_tensor)];
            ASSERT_EQ(acts.size(), ref.size()) << num_shards << " shards";
            for (std::size_t i = 0; i < acts.size(); ++i)
                ASSERT_EQ(acts.data()[i], ref.data()[i])
                    << num_shards << " shards, boundary t" << spec.output_tensor;
        }
    }
}

TEST(Partition, SubplansResolveThroughThePlanCachePerPartitionFingerprint) {
    const ir::Graph g = make_residual_graph();
    const auto shards = ir::partition_graph(g, 2);
    const auto before = exec::PlanCache::global().stats();
    const exec::Subplan a = exec::compile_subplan(g, shards[0], 4);
    const exec::Subplan b = exec::compile_subplan(g, shards[1], 4);
    const auto after_compile = exec::PlanCache::global().stats();
    EXPECT_EQ(after_compile.misses - before.misses, 2u);  // two distinct partitions
    // Same partition again: a cache hit returning the same plan.
    const exec::Subplan a2 = exec::compile_subplan(g, shards[0], 4);
    const exec::Subplan b2 = exec::compile_subplan(g, shards[1], 4);
    EXPECT_EQ(a2.plan.get(), a.plan.get());
    EXPECT_EQ(b2.plan.get(), b.plan.get());
    EXPECT_EQ(exec::PlanCache::global().stats().misses, after_compile.misses);
    EXPECT_NE(a.plan->serial(), b.plan->serial());
}

/// Trained-model fixture for the quantized and serving tests (same
/// deployment stack as tests/test_serve.cpp).
class Shard : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::DatasetConfig dc;
        dc.train_size = 600;
        dc.test_size = 200;
        dataset_ = new data::SyntheticDataset(dc);

        auto net = nn::make_network("alexnet-mini");
        nn::TrainConfig tcfg;
        tcfg.epochs = 2;
        nn::SgdTrainer trainer(tcfg);
        trainer.fit(net, *dataset_);
        graph_ = new ir::Graph(net.export_ir());

        const auto calib_images = dataset_->train_batch(0, 48);
        const std::vector<int> calib_labels(dataset_->train_labels().begin(),
                                            dataset_->train_labels().begin() + 48);
        calib_ = new quant::CalibrationData(
            quant::calibrate(*graph_, calib_images, calib_labels));

        mac_ = new netlist::Netlist(netlist::build_mac_circuit());
        library_ = new cell::Library(cell::Library::finfet14());
        selector_ = new core::CompressionSelector(*mac_, *library_);
        aging_ = new aging::AgingModel();
    }
    static void TearDownTestSuite() {
        delete aging_;
        delete selector_;
        delete library_;
        delete mac_;
        delete calib_;
        delete graph_;
        delete dataset_;
    }

    [[nodiscard]] static serve::ServeContext context() {
        serve::ServeContext ctx;
        ctx.graph = graph_;
        ctx.calib = calib_;
        ctx.selector = selector_;
        ctx.aging = aging_;
        return ctx;
    }

    [[nodiscard]] static tensor::Tensor test_image(int index) {
        return dataset_->test_batch(index, 1);
    }

    /// The deployment a fresh single device serves: minimal compression
    /// at ΔVth = 0 quantized with the fast path (M5).
    [[nodiscard]] static quant::QuantizedGraph fresh_reference() {
        const auto choice = selector_->select(0.0);
        EXPECT_TRUE(choice.has_value());
        return quant::quantize_graph(
            *graph_, quant::Method::M5_AciqNoBias,
            quant::QuantConfig::from_compression(choice->compression), *calib_);
    }

    static data::SyntheticDataset* dataset_;
    static ir::Graph* graph_;
    static quant::CalibrationData* calib_;
    static netlist::Netlist* mac_;
    static cell::Library* library_;
    static core::CompressionSelector* selector_;
    static aging::AgingModel* aging_;
};

data::SyntheticDataset* Shard::dataset_ = nullptr;
ir::Graph* Shard::graph_ = nullptr;
quant::CalibrationData* Shard::calib_ = nullptr;
netlist::Netlist* Shard::mac_ = nullptr;
cell::Library* Shard::library_ = nullptr;
core::CompressionSelector* Shard::selector_ = nullptr;
aging::AgingModel* Shard::aging_ = nullptr;

TEST_F(Shard, SlicedQuantizationIsBitIdenticalIncludingBoundaryTensors) {
    const quant::QuantizedGraph full_q = fresh_reference();
    const auto qconfig = full_q.config();

    const auto shards = ir::partition_graph(*graph_, 3);
    ASSERT_EQ(shards.size(), 3u);

    const tensor::Tensor batch = dataset_->test_batch(0, 4);
    const tensor::Tensor full_logits = quant::run_quantized(full_q, batch.batch_view(0, 4));

    tensor::Tensor acts = batch;
    for (std::size_t k = 0; k < shards.size(); ++k) {
        const exec::Subplan sub = exec::compile_subplan(*graph_, shards[k], 4);
        const quant::CalibrationData sliced =
            quant::slice_calibration(*calib_, sub.full_tensor_of);
        const quant::QuantizedGraph shard_q = quant::quantize_graph(
            *sub.graph, quant::Method::M5_AciqNoBias, qconfig, sliced);
        acts = quant::run_quantized(shard_q, acts.batch_view(0, 4));

        if (k + 1 == shards.size()) break;
        // Boundary check: the cut tensor the chain hands to shard k+1
        // must be bit-identical to a single prefix-shard [0 .. cut] of
        // the full model quantized the same way.
        ir::ShardSpec prefix;
        prefix.first_op = 0;
        prefix.last_op = shards[k].last_op;
        prefix.input_tensor = graph_->input_id();
        prefix.output_tensor = shards[k].output_tensor;
        const ir::Subgraph prefix_sub = ir::extract_subgraph(*graph_, prefix);
        const quant::QuantizedGraph prefix_q = quant::quantize_graph(
            prefix_sub.graph, quant::Method::M5_AciqNoBias, qconfig,
            quant::slice_calibration(*calib_, prefix_sub.full_tensor_of));
        const tensor::Tensor boundary =
            quant::run_quantized(prefix_q, batch.batch_view(0, 4));
        ASSERT_EQ(acts.size(), boundary.size()) << "cut after op " << shards[k].last_op;
        for (std::size_t i = 0; i < acts.size(); ++i)
            ASSERT_EQ(acts.data()[i], boundary.data()[i])
                << "boundary t" << shards[k].output_tensor << " element " << i;
    }

    ASSERT_EQ(acts.size(), full_logits.size());
    for (std::size_t i = 0; i < acts.size(); ++i)
        ASSERT_EQ(acts.data()[i], full_logits.data()[i]) << "logit " << i;
}

TEST_F(Shard, ShardGroupServingIsBitIdenticalToSingleDevice) {
    constexpr int kRequests = 32;
    const quant::QuantizedGraph reference = fresh_reference();

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;  // one pipeline group across two devices
    cfg.num_workers = 2;
    cfg.max_batch = 4;
    // Stage devices run level-parallel on private pools; the pipeline
    // must stay bit-identical to the serial single device.
    cfg.device.exec_threads = 2;
    serve::NpuServer server(context(), cfg);
    ASSERT_TRUE(server.sharded());
    ASSERT_EQ(server.num_shard_groups(), 1);
    ASSERT_EQ(server.shard_group(0).num_shards(), 2);

    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(test_image(i)));
    std::vector<serve::InferenceResult> results;
    results.reserve(kRequests);
    for (auto& f : futures) results.push_back(f.get());
    server.shutdown();

    for (int i = 0; i < kRequests; ++i) {
        const serve::InferenceResult& result = results[static_cast<std::size_t>(i)];
        const tensor::Tensor serial = quant::run_quantized(reference, test_image(i));
        ASSERT_EQ(result.logits.size(), serial.size()) << "request " << i;
        for (std::size_t c = 0; c < serial.size(); ++c)
            ASSERT_EQ(result.logits[c], serial[c]) << "request " << i << " class " << c;
        EXPECT_EQ(result.device_id, 0);     // the group id
        EXPECT_EQ(result.generation, 1u);   // no aging: every shard on gen 1
        EXPECT_GT(result.latency_cycles, 0u);
        EXPECT_GT(result.latency_us, 0.0);
    }

    const serve::FleetStats fleet = server.fleet_stats();
    EXPECT_EQ(fleet.completed, static_cast<std::uint64_t>(kRequests));
    ASSERT_EQ(fleet.devices.size(), 2u);  // one stats row per shard
    for (const serve::DeviceStats& shard : fleet.devices) {
        // Every request flows through every shard of the pipeline.
        EXPECT_EQ(shard.requests, static_cast<std::uint64_t>(kRequests));
        EXPECT_GT(shard.busy_ps, 0.0);
        EXPECT_EQ(shard.generation, 1u);
    }
    // Pipeline latency is the sum of the shard passes: with both shards
    // on the same clock, cycles split exactly across the cut.
    const std::uint64_t chain_cycles =
        server.shard_group(0).shard(0).per_image_cycles() +
        server.shard_group(0).shard(1).per_image_cycles();
    EXPECT_EQ(results[0].latency_cycles % chain_cycles, 0u);
    EXPECT_GT(fleet.sim_throughput_ips(), 0.0);
}

TEST_F(Shard, MalformedRequestFailsInsideThePipelineWithoutKillingIt) {
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    cfg.num_workers = 1;
    cfg.max_batch = 1;  // the bad request fails alone, not a whole batch
    serve::NpuServer server(context(), cfg);

    // n == 1 but the wrong channel count: the batcher accepts it, so the
    // shape check fires inside stage 0 of the pipeline. The stage thread
    // must fail this future and keep the pipeline serving.
    const tensor::Shape sample = graph_->input_shape();
    auto bad =
        server.submit(tensor::Tensor({1, sample.c + 1, sample.h, sample.w}));
    EXPECT_THROW((void)bad.get(), std::invalid_argument);

    auto good = server.submit(test_image(0));
    EXPECT_GE(good.get().predicted_class, 0);
    server.shutdown();
}

TEST_F(Shard, ShardGroupRejectsUnsupportedModes) {
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    cfg.device.flip_probability = 0.01;  // per-request injection: whole-model only
    EXPECT_THROW((serve::NpuServer(context(), cfg)), std::invalid_argument);

    cfg.device.flip_probability = 0.0;
    cfg.device.full_algorithm1 = true;  // needs end-to-end eval
    EXPECT_THROW((serve::NpuServer(context(), cfg)), std::invalid_argument);

    cfg.device.full_algorithm1 = false;
    cfg.num_devices = 3;  // not a multiple of num_shards
    EXPECT_THROW((serve::NpuServer(context(), cfg)), std::invalid_argument);
}

TEST_F(Shard, ShardsRequantizeIndependentlyWithPerShardAgedClocks) {
    constexpr int kRequests = 240;
    constexpr double kThresholdMv = 2.0;

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.requant_workers = 2;
    cfg.device.requant_threshold_mv = kThresholdMv;

    // Scale acceleration so the lighter shard still ends around 8 mV —
    // both shards then cross the 2 mV threshold while traffic flows.
    {
        serve::NpuServer probe(context(), cfg);
        const auto& group = probe.shard_group(0);
        double min_busy_hours_per_request = 1e300;
        for (int k = 0; k < group.num_shards(); ++k)
            min_busy_hours_per_request = std::min(
                min_busy_hours_per_request,
                static_cast<double>(group.shard(k).per_image_cycles()) *
                    group.shard(k).clock_period_ps() * 1e-12 / 3600.0);
        cfg.device.age_acceleration = aging_->years_for_dvth(8.0) * 8760.0 /
                                      (kRequests * min_busy_hours_per_request);
        probe.shutdown();
    }

    serve::NpuServer server(context(), cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(test_image(i % 100)));
    std::vector<serve::InferenceResult> results;
    results.reserve(kRequests);
    for (auto& f : futures) results.push_back(f.get());
    server.shutdown();

    const auto& group = server.shard_group(0);
    int total_requants = 0;
    std::uint64_t max_generation = 0;
    for (int k = 0; k < group.num_shards(); ++k) {
        const serve::DeviceStats stats = group.shard(k).stats();
        std::uint64_t prev = 1;
        for (const serve::RequantEvent& event : stats.requant_events) {
            EXPECT_EQ(event.generation, prev + 1) << "shard " << k;
            EXPECT_TRUE(event.background) << "shard " << k;
            EXPECT_GE(event.dvth_mv, kThresholdMv) << "shard " << k;
            // The shard's clock tracks its own deployment's aged delay.
            EXPECT_DOUBLE_EQ(event.aged_delay_ps,
                             selector_->delay_ps(event.dvth_mv, event.after))
                << "shard " << k;
            prev = event.generation;
            ++total_requants;
        }
        EXPECT_EQ(stats.generation, prev) << "shard " << k;
        if (!stats.requant_events.empty()) {
            EXPECT_DOUBLE_EQ(stats.clock_period_ps,
                             stats.requant_events.back().aged_delay_ps)
                << "shard " << k;
        }
        max_generation = std::max(max_generation, stats.generation);
    }
    EXPECT_GE(total_requants, 2);
    EXPECT_GT(max_generation, 1u);

    // Results report the oldest generation in their chain — never newer
    // than any shard that served them, and every promise was fulfilled.
    for (const serve::InferenceResult& result : results) {
        EXPECT_GE(result.generation, 1u);
        EXPECT_LE(result.generation, max_generation);
        EXPECT_GE(result.predicted_class, 0);
    }
}

}  // namespace
