// Tests for the fleet telemetry subsystem (src/obs): lock-light metric
// instruments under concurrency, histogram bucket boundaries, the
// Prometheus-style exposition format (golden), deterministic trace
// sampling under a fixed seed, and the reliability-event timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace {

using raq::obs::Counter;
using raq::obs::EventKind;
using raq::obs::EventTimeline;
using raq::obs::Gauge;
using raq::obs::Histogram;
using raq::obs::HistogramSnapshot;
using raq::obs::Labels;
using raq::obs::MetricsRegistry;
using raq::obs::ReliabilityEvent;
using raq::obs::SpanKind;
using raq::obs::TraceCollector;
using raq::obs::TraceContext;

// ---------------------------------------------------------------- Counter

TEST(Metrics, CounterConcurrentIncrementsAreExact) {
    // Sharded relaxed fetch_adds never lose increments: the final sum
    // must be exact however the threads interleave (and data-race-free
    // under TSan, which runs this test in CI).
    Counter counter;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < kPerThread; ++i) counter.add(1);
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, CounterScrapeRacesBenignlyWithWriters) {
    Counter counter;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed)) counter.add(1);
    });
    // Concurrent scrapes must be monotonically non-decreasing.
    std::uint64_t last = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = counter.value();
        EXPECT_GE(v, last);
        last = v;
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
}

TEST(Metrics, GaugeSetMaxIsMonotoneUnderThreads) {
    Gauge gauge;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&gauge, t] {
            for (int i = 0; i < 10000; ++i)
                gauge.set_max(static_cast<double>(t * 10000 + i));
        });
    for (std::thread& t : threads) t.join();
    EXPECT_DOUBLE_EQ(gauge.value(), 39999.0);
}

TEST(Metrics, GaugeAddAccumulatesConcurrently) {
    Gauge gauge;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&gauge] {
            for (int i = 0; i < 10000; ++i) gauge.add(1.0);
        });
    for (std::thread& t : threads) t.join();
    EXPECT_DOUBLE_EQ(gauge.value(), 40000.0);
}

// -------------------------------------------------------------- Histogram

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpper) {
    Histogram h({1.0, 2.0, 4.0});
    h.observe(0.5);  // <= 1      -> bucket 0
    h.observe(1.0);  // == bound  -> bucket 0 (inclusive upper)
    h.observe(1.5);  //           -> bucket 1
    h.observe(2.0);  // == bound  -> bucket 1
    h.observe(4.0);  // == last   -> bucket 2
    h.observe(9.0);  // above all -> +Inf bucket
    const HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.buckets.size(), 4u);  // 3 bounds + the +Inf bucket
    EXPECT_EQ(s.buckets[0], 2u);
    EXPECT_EQ(s.buckets[1], 2u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.count, 6u);
    EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, HistogramQuantileInterpolatesWithinBucket) {
    Histogram h({10.0, 20.0});
    for (int i = 0; i < 10; ++i) h.observe(5.0);   // bucket (0, 10]
    for (int i = 0; i < 10; ++i) h.observe(15.0);  // bucket (10, 20]
    // Median sits exactly at the first bucket's upper bound.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
    // q=0.25 is halfway into the first bucket's count: 0..10 interpolated.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
    EXPECT_EQ(h.snapshot().count, 20u);
    EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(Metrics, HistogramConcurrentObservesKeepExactCount) {
    Histogram h({1.0, 10.0, 100.0});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(static_cast<double>(i % 200));
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --------------------------------------------------------------- Registry

TEST(Metrics, RegistryIsIdempotentPerNameAndLabels) {
    MetricsRegistry reg;
    Counter& a = reg.counter("hits", {{"device", "0"}});
    Counter& b = reg.counter("hits", {{"device", "0"}});
    Counter& c = reg.counter("hits", {{"device", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.add(2);
    c.add(3);
    EXPECT_EQ(reg.counter_sum("hits"), 5u);
    // Label order must not matter: registration sorts them.
    Counter& d = reg.counter("multi", {{"b", "2"}, {"a", "1"}});
    Counter& e = reg.counter("multi", {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&d, &e);
}

TEST(Metrics, RegistryRejectsKindMismatch) {
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("x", {}, {1.0}), std::invalid_argument);
}

TEST(Metrics, RegistryFindLocatesRegisteredSeries) {
    MetricsRegistry reg;
    reg.counter("c", {{"k", "v"}}).add(7);
    EXPECT_EQ(reg.find_counter("c", {{"k", "v"}})->value(), 7u);
    EXPECT_EQ(reg.find_counter("c"), nullptr);
    EXPECT_EQ(reg.find_gauge("c", {{"k", "v"}}), nullptr);  // wrong kind
}

TEST(Metrics, ExpositionGolden) {
    // The format is deterministic (map-ordered, fixed float formatting),
    // so the full scrape text is golden-testable.
    MetricsRegistry reg;
    reg.counter("raq_requests_total", {{"device", "0"}}).add(3);
    reg.counter("raq_requests_total", {{"device", "1"}}).add(4);
    reg.gauge("raq_clock_ps").set(812.5);
    Histogram& h = reg.histogram("raq_wait_us", {}, {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);
    const std::string expected =
        "# TYPE raq_clock_ps gauge\n"
        "raq_clock_ps 812.5\n"
        "# TYPE raq_requests_total counter\n"
        "raq_requests_total{device=\"0\"} 3\n"
        "raq_requests_total{device=\"1\"} 4\n"
        "# TYPE raq_wait_us histogram\n"
        "raq_wait_us_bucket{le=\"1\"} 1\n"
        "raq_wait_us_bucket{le=\"10\"} 2\n"
        "raq_wait_us_bucket{le=\"+Inf\"} 3\n"
        "raq_wait_us_sum 55.5\n"
        "raq_wait_us_count 3\n";
    EXPECT_EQ(reg.expose(), expected);
}

TEST(Metrics, JsonlEmitsOneObjectPerSeries) {
    MetricsRegistry reg;
    reg.counter("c", {{"device", "0"}}).add(1);
    reg.gauge("g").set(2.5);
    const std::string out = reg.jsonl();
    EXPECT_NE(out.find("{\"name\":\"c\",\"labels\":{\"device\":\"0\"},"
                       "\"type\":\"counter\",\"value\":1}"),
              std::string::npos);
    EXPECT_NE(out.find("{\"name\":\"g\",\"labels\":{},\"type\":\"gauge\",\"value\":2.5}"),
              std::string::npos);
}

// ----------------------------------------------------------------- Traces

TEST(Trace, SamplingIsDeterministicUnderFixedSeed) {
    // The sampling decision is a pure function of (seed, request_id):
    // two collectors with the same seed sample exactly the same ids,
    // regardless of construction order or thread timing.
    const TraceCollector a(0.01, 64, 12345);
    const TraceCollector b(0.01, 64, 12345);
    const TraceCollector c(0.01, 64, 54321);
    std::set<std::uint64_t> sa, sc;
    for (std::uint64_t id = 0; id < 20000; ++id) {
        EXPECT_EQ(a.sampled(id), b.sampled(id));
        if (a.sampled(id)) sa.insert(id);
        if (c.sampled(id)) sc.insert(id);
    }
    // ~1% of 20000: the exact count is seed-dependent but must be near
    // the rate and differ between seeds.
    EXPECT_GT(sa.size(), 100u);
    EXPECT_LT(sa.size(), 400u);
    EXPECT_NE(sa, sc);
}

TEST(Trace, RateZeroAndOneAreTotal) {
    const TraceCollector none(0.0, 8, 1);
    const TraceCollector all(1.0, 8, 1);
    for (std::uint64_t id = 0; id < 100; ++id) {
        EXPECT_FALSE(none.sampled(id));
        EXPECT_TRUE(all.sampled(id));
    }
}

TEST(Trace, MarksCloseConsecutiveSpans) {
    TraceCollector collector(1.0, 8, 7);
    auto trace = collector.maybe_start(42, 1000);
    ASSERT_NE(trace, nullptr);
    trace->mark(SpanKind::Queue, 1100);
    trace->mark(SpanKind::Batch, 1150);
    trace->mark(SpanKind::Execute, 1950, /*device_id=*/3, /*stage=*/1, /*generation=*/2);
    trace->mark(SpanKind::Complete, 1960);
    ASSERT_EQ(trace->spans.size(), 4u);
    EXPECT_EQ(trace->spans[0].start_us, 1000);
    EXPECT_EQ(trace->spans[0].end_us, 1100);
    EXPECT_EQ(trace->spans[1].start_us, 1100);  // spans tile the timeline
    EXPECT_EQ(trace->spans[2].device_id, 3);
    EXPECT_EQ(trace->spans[2].stage, 1);
    EXPECT_EQ(trace->spans[2].generation, 2u);
    EXPECT_EQ(trace->total_us(), 960);
    const std::string text = trace->to_string();
    EXPECT_NE(text.find("req 42"), std::string::npos);
    EXPECT_NE(text.find("execute[dev=3,stage=1,gen=2] 800us"), std::string::npos);
}

TEST(Trace, ReservoirStaysBounded) {
    TraceCollector collector(1.0, 16, 99);
    for (std::uint64_t id = 0; id < 1000; ++id) {
        auto trace = collector.maybe_start(id, static_cast<std::int64_t>(id));
        trace->mark(SpanKind::Complete, static_cast<std::int64_t>(id + 1));
        collector.finish(std::move(trace));
    }
    EXPECT_EQ(collector.started(), 1000u);
    EXPECT_EQ(collector.finished(), 1000u);
    EXPECT_EQ(collector.snapshot().size(), 16u);
    collector.finish(nullptr);  // null is a no-op, not a crash
    EXPECT_EQ(collector.finished(), 1000u);
}

// --------------------------------------------------------------- Timeline

TEST(Timeline, RecordsEventsInOrderAndBounded) {
    EventTimeline timeline(4);
    for (int i = 0; i < 10; ++i) {
        ReliabilityEvent e;
        e.t_us = i;
        e.kind = i % 2 ? EventKind::RequantSwap : EventKind::RequantBuild;
        e.device_id = i;
        timeline.record(std::move(e));
    }
    EXPECT_EQ(timeline.total_recorded(), 10u);
    EXPECT_EQ(timeline.size(), 4u);  // oldest dropped past capacity
    EXPECT_EQ(timeline.count(EventKind::RequantSwap), 5u);
    EXPECT_EQ(timeline.count(EventKind::Recut), 0u);
    const auto events = timeline.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().t_us, 6);  // 6,7,8,9 survive
    EXPECT_EQ(events.back().t_us, 9);
    const std::string text = timeline.render();
    EXPECT_NE(text.find("requant-swap"), std::string::npos);
    EXPECT_NE(text.find("dev=9"), std::string::npos);
}

TEST(Timeline, RenderIncludesGroupAndDetail) {
    EventTimeline timeline;
    ReliabilityEvent e;
    e.t_us = 1234;
    e.kind = EventKind::RecutTrigger;
    e.group_id = 2;
    e.generation = 3;
    e.value = 1.75;
    e.detail = "imbalance past ratio";
    timeline.record(std::move(e));
    const std::string text = timeline.render();
    EXPECT_NE(text.find("recut-trigger"), std::string::npos);
    EXPECT_NE(text.find("group=2"), std::string::npos);
    EXPECT_NE(text.find("gen=3"), std::string::npos);
    EXPECT_NE(text.find("imbalance past ratio"), std::string::npos);
}

}  // namespace
