// Tests for the class-aware admission scheduler (serve::Scheduler), the
// traffic predictor (sim::TrafficPredictor) and the reliability planner
// (serve::ReliabilityPlanner) that PR 10 introduced.
//
// The scheduler tests pin down the contract the worker loop and the net
// front-end rely on: per-class FIFO order, interactive-preempts-batch at
// batch formation, the bounded anti-starvation aging credit, per-lane
// backpressure, and BoundedChannel's close-and-drain semantics — plus a
// concurrent mixed-class producer/consumer run for TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/telemetry.hpp"
#include "serve/reliability_planner.hpp"
#include "serve/scheduler.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace raq;

serve::InferenceRequest make_request(std::uint64_t id, serve::RequestClass klass) {
    serve::InferenceRequest request;
    request.id = id;
    request.klass = klass;
    request.submit_us = obs::monotonic_us();  // submit paths stamp unconditionally
    return request;
}

TEST(Scheduler, PerClassFifoOrder) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 8;
    cfg.batch_capacity = 8;
    serve::Scheduler queue(cfg);
    // Interleaved arrival: I0 B1 I2 B3 I4.
    ASSERT_TRUE(queue.push(make_request(0, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(1, serve::RequestClass::Batch)));
    ASSERT_TRUE(queue.push(make_request(2, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(3, serve::RequestClass::Batch)));
    ASSERT_TRUE(queue.push(make_request(4, serve::RequestClass::Interactive)));
    EXPECT_EQ(queue.size(), 5u);
    EXPECT_EQ(queue.size(serve::RequestClass::Interactive), 3u);
    EXPECT_EQ(queue.size(serve::RequestClass::Batch), 2u);

    // One formation takes everything: interactive lane first (in FIFO
    // order), then the batch lane (in FIFO order).
    const auto batch = queue.pop_batch(16);
    ASSERT_EQ(batch.size(), 5u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 2u);
    EXPECT_EQ(batch[2].id, 4u);
    EXPECT_EQ(batch[3].id, 1u);
    EXPECT_EQ(batch[4].id, 3u);

    const serve::SchedulerStats stats = queue.stats();
    EXPECT_EQ(stats.admitted[0], 3u);
    EXPECT_EQ(stats.admitted[1], 2u);
    EXPECT_EQ(stats.formations, 1u);
}

TEST(Scheduler, InteractivePreemptsBatchAtFormation) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 8;
    cfg.batch_capacity = 8;
    cfg.starvation_us = 3'600'000'000;  // aging credit never due in-test
    serve::Scheduler queue(cfg);
    // Batch requests arrived FIRST — strict arrival order would serve
    // them first. The scheduler must not.
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(queue.push(make_request(100 + i, serve::RequestClass::Batch)));
    ASSERT_TRUE(queue.push(make_request(0, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(1, serve::RequestClass::Interactive)));

    const auto batch = queue.pop_batch(3);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 0u);    // interactive preempts...
    EXPECT_EQ(batch[1].id, 1u);
    EXPECT_EQ(batch[2].id, 100u);  // ...batch rides along in the leftover slot
    EXPECT_EQ(queue.size(serve::RequestClass::Batch), 3u);
}

TEST(Scheduler, BatchStarvationBoundedByStreak) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 16;
    cfg.batch_capacity = 16;
    cfg.starvation_us = 3'600'000'000;  // only the streak bound can fire
    cfg.max_interactive_streak = 2;
    serve::Scheduler queue(cfg);
    ASSERT_TRUE(queue.push(make_request(999, serve::RequestClass::Batch)));

    // A continuous interactive stream may skip the non-empty batch lane
    // at most max_interactive_streak consecutive formations.
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(queue.push(make_request(i, serve::RequestClass::Interactive)));
        const auto batch = queue.pop_batch(1);
        ASSERT_EQ(batch.size(), 1u);
        order.push_back(batch[0].id);
    }
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 999u);  // third formation: aging credit due
    EXPECT_GE(queue.stats().starvation_grants, 1u);
    // The parked interactive request is still there.
    EXPECT_EQ(queue.size(serve::RequestClass::Interactive), 1u);
}

TEST(Scheduler, BatchStarvationBoundedByWaitTime) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 8;
    cfg.batch_capacity = 8;
    cfg.starvation_us = 0;  // any waiting batch head is immediately due
    cfg.max_interactive_streak = 1'000'000;
    serve::Scheduler queue(cfg);
    ASSERT_TRUE(queue.push(make_request(1, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(2, serve::RequestClass::Batch)));
    const auto batch = queue.pop_batch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, 2u);  // aged batch head beats the interactive lane
    EXPECT_GE(queue.stats().starvation_grants, 1u);
}

TEST(Scheduler, PerLaneBackpressureIsIndependent) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 2;
    cfg.batch_capacity = 1;
    serve::Scheduler queue(cfg);
    EXPECT_EQ(queue.capacity(serve::RequestClass::Interactive), 2u);
    EXPECT_EQ(queue.capacity(serve::RequestClass::Batch), 1u);

    EXPECT_EQ(queue.try_push(make_request(0, serve::RequestClass::Batch)),
              serve::ChannelPush::Ok);
    // Batch lane full — batch is shed, interactive still admitted.
    EXPECT_EQ(queue.try_push(make_request(1, serve::RequestClass::Batch)),
              serve::ChannelPush::Full);
    EXPECT_EQ(queue.try_push(make_request(2, serve::RequestClass::Interactive)),
              serve::ChannelPush::Ok);
    EXPECT_EQ(queue.try_push(make_request(3, serve::RequestClass::Interactive)),
              serve::ChannelPush::Ok);
    EXPECT_EQ(queue.try_push(make_request(4, serve::RequestClass::Interactive)),
              serve::ChannelPush::Full);
    EXPECT_EQ(queue.size(), 3u);
}

TEST(Scheduler, CloseAndDrainBothLanes) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 4;
    cfg.batch_capacity = 4;
    serve::Scheduler queue(cfg);
    ASSERT_TRUE(queue.push(make_request(0, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(1, serve::RequestClass::Batch)));
    ASSERT_TRUE(queue.push(make_request(2, serve::RequestClass::Batch)));
    queue.close();
    EXPECT_TRUE(queue.closed());

    // No admission after close, on either lane or path.
    EXPECT_FALSE(queue.push(make_request(7, serve::RequestClass::Interactive)));
    EXPECT_FALSE(queue.push(make_request(8, serve::RequestClass::Batch)));
    EXPECT_EQ(queue.try_push(make_request(9, serve::RequestClass::Batch)),
              serve::ChannelPush::Closed);

    // Everything accepted before close still drains, interactive first.
    const auto drained = queue.pop_batch(16);
    ASSERT_EQ(drained.size(), 3u);
    EXPECT_EQ(drained[0].id, 0u);
    EXPECT_EQ(drained[1].id, 1u);
    EXPECT_EQ(drained[2].id, 2u);
    // Empty result == closed AND both lanes drained: the worker-exit signal.
    EXPECT_TRUE(queue.pop_batch(16).empty());
}

TEST(Scheduler, CloseWakesBlockedProducersOnBothLanes) {
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 1;
    cfg.batch_capacity = 1;
    serve::Scheduler queue(cfg);
    ASSERT_TRUE(queue.push(make_request(0, serve::RequestClass::Interactive)));
    ASSERT_TRUE(queue.push(make_request(1, serve::RequestClass::Batch)));

    // One producer blocks on each full lane; close() must wake both with
    // push == false WITHOUT consuming the request, so the caller still
    // owns the promise and can resolve it.
    std::atomic<int> rejected{0};
    std::vector<std::future<serve::InferenceResult>> futures(2);
    std::vector<std::thread> producers;
    for (int t = 0; t < 2; ++t)
        producers.emplace_back([&queue, &futures, &rejected, t] {
            serve::InferenceRequest request = make_request(
                100 + static_cast<std::uint64_t>(t),
                t == 0 ? serve::RequestClass::Interactive : serve::RequestClass::Batch);
            futures[static_cast<std::size_t>(t)] = request.promise.get_future();
            if (!queue.push(std::move(request))) {
                rejected.fetch_add(1);
                serve::InferenceResult result;
                result.request_id = request.id;
                result.predicted_class = -1;
                request.promise.set_value(std::move(result));
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(queue.size(), 2u);
    queue.close();
    for (std::thread& p : producers) p.join();

    EXPECT_EQ(rejected.load(), 2);
    for (auto& f : futures) EXPECT_EQ(f.get().predicted_class, -1);
    EXPECT_EQ(queue.pop_batch(16).size(), 2u);
    EXPECT_TRUE(queue.pop_batch(16).empty());
}

// Concurrent mixed-class producers against small lanes (so producers
// actually block) with a concurrent consumer — the TSan workload.
TEST(Scheduler, ConcurrentMixedClassProducersAndConsumer) {
    constexpr int kProducers = 4;
    constexpr std::uint64_t kPerProducer = 200;
    serve::SchedulerConfig cfg;
    cfg.interactive_capacity = 8;
    cfg.batch_capacity = 8;
    serve::Scheduler queue(cfg);

    std::uint64_t popped[serve::kNumRequestClasses] = {};
    std::map<std::uint64_t, std::uint64_t> last_seen;  // producer -> last id
    bool fifo_per_producer = true;
    std::thread consumer([&] {
        for (;;) {
            const auto batch = queue.pop_batch(8);
            if (batch.empty()) return;  // closed and drained
            for (const serve::InferenceRequest& r : batch) {
                ++popped[static_cast<std::size_t>(r.klass)];
                const std::uint64_t producer = r.id >> 32;
                const auto it = last_seen.find(producer);
                // Each producer feeds exactly one lane, so its ids must
                // come back in submission order.
                if (it != last_seen.end() && r.id <= it->second)
                    fifo_per_producer = false;
                last_seen[producer] = r.id;
            }
        }
    });

    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t)
        producers.emplace_back([&queue, t] {
            const auto klass = (t % 2 == 0) ? serve::RequestClass::Interactive
                                            : serve::RequestClass::Batch;
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t id = (static_cast<std::uint64_t>(t) << 32) | i;
                ASSERT_TRUE(queue.push(make_request(id, klass)));
            }
        });
    for (std::thread& p : producers) p.join();
    queue.close();
    consumer.join();

    EXPECT_EQ(popped[0], 2 * kPerProducer);
    EXPECT_EQ(popped[1], 2 * kPerProducer);
    EXPECT_TRUE(fifo_per_producer);
    const serve::SchedulerStats stats = queue.stats();
    EXPECT_EQ(stats.admitted[0], 2 * kPerProducer);
    EXPECT_EQ(stats.admitted[1], 2 * kPerProducer);
    EXPECT_EQ(queue.size(), 0u);
}

// ---- traffic predictor ------------------------------------------------

TEST(TrafficPredictor, RatesWarmAndDecayDeterministically) {
    sim::TrafficPredictorConfig cfg;
    cfg.window_us = 1'000'000;  // 1 s windows, all timestamps synthetic
    cfg.ewma_alpha = 0.4;
    cfg.low_traffic_fraction = 0.35;
    sim::TrafficPredictor predictor(cfg);

    // Never loaded => trivially low.
    EXPECT_TRUE(predictor.low_traffic(0));

    // 10 arrivals per window for 5 windows: rates converge to 10/s.
    std::int64_t t = 0;
    for (int w = 0; w < 5; ++w)
        for (int i = 0; i < 10; ++i)
            predictor.observe(t + w * 1'000'000 + i * 100'000);
    t = 5'000'000;
    EXPECT_NEAR(predictor.rate_now(t), 10.0, 1.0);
    EXPECT_NEAR(predictor.rate_peak(t), 10.0, 1.0);
    EXPECT_FALSE(predictor.low_traffic(t));

    // Silence: the EWMA decays through empty windows until the rate
    // drops under low_traffic_fraction x peak.
    EXPECT_TRUE(predictor.low_traffic(t + 15'000'000));
    EXPECT_LT(predictor.rate_now(t + 15'000'000), 0.1);
    EXPECT_GT(predictor.rate_peak(t + 15'000'000), 1.0);  // peak decays slowly
}

TEST(TrafficPredictor, DiurnalBinsLearnThePhase) {
    sim::TrafficPredictorConfig cfg;
    cfg.window_us = 500'000;
    cfg.diurnal_bins = 2;
    cfg.period_us = 2'000'000;  // bin 0 = first second, bin 1 = second
    sim::TrafficPredictor predictor(cfg);

    // Two simulated days: 20/window in the first half-period, 1/window in
    // the second.
    for (int day = 0; day < 2; ++day) {
        const std::int64_t day_start = day * 2'000'000;
        for (int w = 0; w < 2; ++w)
            for (int i = 0; i < 20; ++i)
                predictor.observe(day_start + w * 500'000 + i * 20'000);
        for (int w = 2; w < 4; ++w)
            predictor.observe(day_start + w * 500'000);
    }
    (void)predictor.rate_now(4'000'000);  // roll everything closed
    EXPECT_GT(predictor.predicted_rate(4'200'000),      // a first-half time
              5.0 * predictor.predicted_rate(5'200'000));  // a second-half time
}

// ---- reliability planner ----------------------------------------------

namespace planner_test {

/// Feed `planner` a dense arrival stream with timestamps from now to
/// (now + span). plan_requant/allow_recut read obs::monotonic_us()
/// internally, which stays BELOW the predictor's current window edge for
/// span seconds of wall time — so the rates those calls see are exactly
/// the warmed EWMA/peak, immune to in-test scheduling stalls. (Past
/// timestamps are not an option: the process clock epoch latches at
/// first use, so "now - 35 s" would be negative and collide with the
/// predictor's unset-window sentinel.)
void feed_traffic(serve::ReliabilityPlanner& planner, double span_s, double step_s) {
    const std::int64_t now = obs::monotonic_us();
    const auto span = static_cast<std::int64_t>(span_s * 1e6);
    const auto step = static_cast<std::int64_t>(step_s * 1e6);
    for (std::int64_t t = now; t < now + span; t += step)
        planner.observe_arrival(t);
}

serve::ReliabilityPlannerConfig config_with_10s_windows() {
    serve::ReliabilityPlannerConfig cfg;
    cfg.enabled = true;
    // 10 s windows: in-test wall-clock jitter is far below one window, so
    // the predictor's view of "now" cannot change mid-test.
    cfg.predictor.window_us = 10'000'000;
    return cfg;
}

}  // namespace planner_test

TEST(ReliabilityPlanner, IdleFleetSchedulesEarlyInsideLeadWindow) {
    serve::ReliabilityPlanner planner(planner_test::config_with_10s_windows());
    // Never-loaded fleet is a standing low-traffic window.
    // Below lead_fraction (0.75): not worth a swap yet.
    EXPECT_EQ(planner.plan_requant(0, 0.5, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Idle);
    // Inside the lead window and traffic is low: schedule early.
    EXPECT_EQ(planner.plan_requant(0, 0.8, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Schedule);
    const serve::PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.builds_scheduled, 1u);
    EXPECT_EQ(stats.builds_deferred, 0u);
}

TEST(ReliabilityPlanner, HighTrafficDefersUntilHeadroomExhausted) {
    obs::TelemetryConfig tc;
    tc.metrics = true;
    obs::Telemetry telemetry(tc);
    serve::ReliabilityPlanner planner(planner_test::config_with_10s_windows(),
                                      &telemetry);
    // ~10 arrivals/s across 3.5 closed windows => high traffic at "now".
    planner_test::feed_traffic(planner, 35.0, 0.1);
    ASSERT_GT(planner.stats().rate_peak, 1.0);

    // Crossed the threshold but not the headroom: parked for a lull.
    EXPECT_EQ(planner.plan_requant(0, 1.2, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Defer);
    // Early-lead progress never runs at peak traffic.
    EXPECT_EQ(planner.plan_requant(0, 0.8, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Idle);
    // Past defer_headroom (1.6): gain dominates any cost — run it now.
    EXPECT_EQ(planner.plan_requant(0, 1.7, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Schedule);

    // Re-cuts follow the same shape: urgent imbalance overrides traffic.
    EXPECT_FALSE(planner.allow_recut(0, 1.6, 1.5));  // 1.07x trigger: parked
    EXPECT_TRUE(planner.allow_recut(0, 2.4, 1.5));   // 1.6x trigger: urgent

    const serve::PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.builds_scheduled, 1u);
    EXPECT_EQ(stats.builds_deferred, 1u);
    EXPECT_EQ(stats.recuts_allowed, 1u);
    EXPECT_EQ(stats.recuts_deferred, 1u);
    EXPECT_GE(telemetry.timeline().count(obs::EventKind::BuildScheduled), 2u);
    EXPECT_GE(telemetry.timeline().count(obs::EventKind::BuildDeferred), 1u);
}

TEST(ReliabilityPlanner, DecayedTrafficReopensTheLowWindow) {
    serve::ReliabilityPlanner planner(planner_test::config_with_10s_windows());
    // Heavy traffic, then a lone arrival ~17 windows later: the EWMA has
    // decayed to a trickle while the peak is still warm — the fleet is
    // back inside a low-traffic window when plan_requant looks.
    planner_test::feed_traffic(planner, 30.0, 0.1);
    planner.observe_arrival(obs::monotonic_us() + 200'000'000);
    EXPECT_EQ(planner.plan_requant(0, 1.2, 0.0, 1.0, nullptr),
              serve::PlannerDecision::Schedule);
    EXPECT_TRUE(planner.allow_recut(0, 1.2, 1.5));  // mild imbalance, free window
}

TEST(ReliabilityPlanner, PredictsLowWindowEntryOnTheTimeline) {
    obs::TelemetryConfig tc;
    tc.metrics = true;
    obs::Telemetry telemetry(tc);
    serve::ReliabilityPlannerConfig cfg;
    cfg.enabled = true;
    cfg.predictor.window_us = 1'000'000;
    serve::ReliabilityPlanner planner(cfg, &telemetry);

    // Synthetic clock throughout (observe_arrival takes the timestamp):
    // a loaded phase, then a trickle — the high->low edge must put
    // exactly one window-predicted event on the timeline.
    std::int64_t t = 1'000'000;
    for (int w = 0; w < 5; ++w)
        for (int i = 0; i < 10; ++i)
            planner.observe_arrival(t + w * 1'000'000 + i * 100'000);
    EXPECT_EQ(telemetry.timeline().count(obs::EventKind::WindowPredicted), 0u);
    t += 20'000'000;  // 15 empty windows later, one lone arrival
    planner.observe_arrival(t);
    EXPECT_EQ(telemetry.timeline().count(obs::EventKind::WindowPredicted), 1u);
    EXPECT_EQ(planner.stats().windows_predicted, 1u);
}

}  // namespace
