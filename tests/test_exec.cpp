// Tests for the planned execution engine (src/exec/).
//
// The contract under test is strict bit-identity: planned execution (with
// arena reuse, cache-tiled integer GEMM, thread pools, zero-copy batch
// views) must reproduce the seed interpreters to the last bit. The float
// reference is ir::run_float_all (the retained seed walker); the
// quantized reference is the verbatim seed interpreter kept in
// tests/seed_interpreter_ref.hpp (shared with bench/exec_throughput), so
// the library no longer has to carry the duplicate.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "exec/engine.hpp"
#include "exec/kernels_simd.hpp"
#include "exec/plan_cache.hpp"
#include "exec/quant_backend.hpp"
#include "ir/float_executor.hpp"
#include "quant/calibration.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "seed_interpreter_ref.hpp"

namespace {

using namespace raq;

// ------------------------------------------------------------- fixtures

ir::Op relu_op(int in) {
    ir::Op op;
    op.kind = ir::OpKind::Relu;
    op.inputs = {in};
    return op;
}

ir::Op pool_op(int in, int kernel, int stride) {
    ir::Op op;
    op.kind = ir::OpKind::MaxPool2d;
    op.inputs = {in};
    op.pool = {kernel, stride};
    return op;
}

ir::Op gap_op(int in) {
    ir::Op op;
    op.kind = ir::OpKind::GlobalAvgPool;
    op.inputs = {in};
    return op;
}

ir::Op conv_op(int in, int in_c, int out_c, int k, int stride, int pad, std::mt19937& rng) {
    ir::Op op;
    op.kind = ir::OpKind::Conv2d;
    op.inputs = {in};
    op.conv = {in_c, out_c, k, k, stride, pad};
    op.weights.resize(static_cast<std::size_t>(out_c * in_c * k * k));
    op.bias.resize(static_cast<std::size_t>(out_c));
    std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
    for (auto& w : op.weights) w = dist(rng);
    for (auto& b : op.bias) b = 0.1f * dist(rng);
    return op;
}

/// Straight conv/relu/pool/gap chain, a lowered-FC classifier at the end.
ir::Graph chain_graph(unsigned seed = 7) {
    std::mt19937 rng(seed);
    ir::Graph g;
    const int in = g.add_input({1, 3, 8, 8});
    const int c1 = g.add(conv_op(in, 3, 8, 3, 1, 1, rng));
    const int r1 = g.add(relu_op(c1));
    const int p1 = g.add(pool_op(r1, 2, 2));
    const int c2 = g.add(conv_op(p1, 8, 12, 3, 1, 1, rng));
    const int r2 = g.add(relu_op(c2));
    const int gp = g.add(gap_op(r2));
    g.set_output(g.add(conv_op(gp, 12, 5, 1, 1, 0, rng)));
    return g;
}

/// Branching graph: a residual Add plus a fire-style Concat, so several
/// intermediates are live at once and arena aliasing is actually at risk.
ir::Graph branch_graph(unsigned seed = 11) {
    std::mt19937 rng(seed);
    ir::Graph g;
    const int in = g.add_input({1, 3, 8, 8});
    const int c0 = g.add(conv_op(in, 3, 6, 3, 1, 1, rng));
    const int r0 = g.add(relu_op(c0));
    const int sq = g.add(conv_op(r0, 6, 4, 1, 1, 0, rng));
    const int rs = g.add(relu_op(sq));
    const int a1 = g.add(conv_op(rs, 4, 8, 3, 1, 1, rng));
    const int ra = g.add(relu_op(a1));
    const int a2 = g.add(conv_op(rs, 4, 8, 1, 1, 0, rng));
    ir::Op add;
    add.kind = ir::OpKind::Add;
    add.inputs = {ra, a2};
    const int sum = g.add(add);
    const int e1 = g.add(conv_op(rs, 4, 8, 1, 1, 0, rng));
    ir::Op cat;
    cat.kind = ir::OpKind::Concat;
    cat.inputs = {sum, e1};
    const int cc = g.add(cat);
    const int c3 = g.add(conv_op(cc, 16, 4, 1, 1, 0, rng));
    const int gp = g.add(gap_op(c3));
    g.set_output(g.add(conv_op(gp, 4, 3, 1, 1, 0, rng)));
    return g;
}

tensor::Tensor random_batch(int n, unsigned seed = 3) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.0f, 2.0f);
    tensor::Tensor batch({n, 3, 8, 8});
    for (auto& v : batch.vec()) v = dist(rng);
    return batch;
}

quant::QuantizedGraph quantize(const ir::Graph& graph, quant::Method method,
                               const quant::QuantConfig& config) {
    const tensor::Tensor calib_images = random_batch(12, 5);
    std::vector<int> labels(12, 0);
    const auto calib = quant::calibrate(graph, calib_images, labels);
    return quant::quantize_graph(graph, method, config, calib);
}

void expect_bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b,
                          const char* what) {
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " element " << i;
}

// ----------------------------------------------------------------- tests

TEST(ExecFloat, PlannedMatchesReferenceWalker) {
    for (const auto& graph : {chain_graph(), branch_graph()}) {
        exec::FloatRunner runner(graph, 4);
        for (const int n : {1, 2, 4}) {
            const tensor::Tensor batch = random_batch(n, 20 + static_cast<unsigned>(n));
            const auto reference = ir::run_float_all(graph, batch);
            const tensor::Tensor planned = runner.run(batch);
            expect_bitwise_equal(
                planned, reference[static_cast<std::size_t>(graph.output_id())], "float");
        }
    }
}

TEST(ExecQuant, PlannedMatchesSeedInterpreter) {
    // Per-tensor asymmetric (zero-point corrections exercised), per-channel
    // ACIQ, and an LSB-padded low-bit config (shift path in the stats).
    const auto lsb_cfg = quant::QuantConfig::from_compression({2, 3, common::Padding::Lsb});
    const struct {
        quant::Method method;
        quant::QuantConfig config;
    } cases[] = {
        {quant::Method::M2_MinMaxAsymmetric, quant::QuantConfig{}},
        {quant::Method::M4_Aciq, quant::QuantConfig{}},
        {quant::Method::M5_AciqNoBias, lsb_cfg},
    };
    for (const auto& graph : {chain_graph(), branch_graph()}) {
        for (const auto& c : cases) {
            auto qgraph = quantize(graph, c.method, c.config);
            // Exercise the precision-scaling mask on one conv as well.
            for (std::size_t op = 0; op < qgraph.graph().ops().size(); ++op) {
                if (qgraph.graph().ops()[op].kind != ir::OpKind::Conv2d) continue;
                qgraph.conv(op).act_mask_bits = 2;
                break;
            }
            const tensor::Tensor batch = random_batch(3, 31);
            quant::QuantExecStats ref_stats, planned_stats;
            const tensor::Tensor reference =
                seedref::run_quantized(qgraph, batch, nullptr, &ref_stats);
            const tensor::Tensor planned =
                quant::run_quantized(qgraph, batch, nullptr, &planned_stats);
            expect_bitwise_equal(planned, reference, "quant");
            EXPECT_EQ(planned_stats.mac_count, ref_stats.mac_count);
            EXPECT_EQ(planned_stats.max_abs_accumulator, ref_stats.max_abs_accumulator);
            EXPECT_EQ(planned_stats.accumulator_overflows, ref_stats.accumulator_overflows);
        }
    }
}

TEST(ExecQuant, InjectionStreamMatchesSeedInterpreter) {
    const auto qgraph = quantize(branch_graph(), quant::Method::M4_Aciq, quant::QuantConfig{});
    const tensor::Tensor batch = random_batch(2, 47);
    inject::InjectionConfig cfg;
    cfg.flip_probability = 5e-3;
    cfg.seed = 99;

    inject::BitFlipInjector ref_injector(cfg);
    quant::QuantExecStats ref_stats;
    const tensor::Tensor reference =
        seedref::run_quantized(qgraph, batch, &ref_injector, &ref_stats);

    inject::BitFlipInjector planned_injector(cfg);
    quant::QuantExecStats planned_stats;
    const tensor::Tensor planned =
        quant::run_quantized(qgraph, batch, &planned_injector, &planned_stats);

    // The injector is a seeded RNG stream: bit-identical logits prove the
    // engine preserves the seed's exact per-product hook order.
    expect_bitwise_equal(planned, reference, "injected");
    EXPECT_GT(planned_injector.flips_injected(), 0u);
    EXPECT_EQ(planned_injector.flips_injected(), ref_injector.flips_injected());
    EXPECT_EQ(planned_stats.flips, ref_stats.flips);
    EXPECT_EQ(planned_stats.mac_count, ref_stats.mac_count);
}

TEST(ExecPlan, ArenaAliasesDeadIntermediatesSafely) {
    const ir::Graph graph = branch_graph();
    const exec::ExecPlan plan(graph, exec::PlanOptions{2, true});
    // Reuse must actually happen on a branching graph...
    EXPECT_LT(plan.arena_floats(), plan.total_tensor_floats());
    // ...without perturbing a single output bit (checked via the walker).
    exec::FloatBackend backend;
    exec::ExecContext ctx;
    const tensor::Tensor batch = random_batch(2, 13);
    const tensor::Tensor planned = exec::run(plan, backend, ctx, batch);
    const auto reference = ir::run_float_all(graph, batch);
    expect_bitwise_equal(planned, reference[static_cast<std::size_t>(graph.output_id())],
                         "arena");
    // A no-reuse plan needs the full sum.
    const exec::ExecPlan flat(graph, exec::PlanOptions{2, false});
    EXPECT_EQ(flat.arena_floats(), flat.total_tensor_floats());
}

TEST(ExecPlan, RejectsOversizedBatchesAndBadShapes) {
    const ir::Graph graph = chain_graph();
    const exec::ExecPlan plan(graph, exec::PlanOptions{2, true});
    exec::FloatBackend backend;
    exec::ExecContext ctx;
    EXPECT_THROW((void)exec::run(plan, backend, ctx, random_batch(3)),
                 std::invalid_argument);
    const tensor::Tensor wrong({1, 4, 8, 8});
    EXPECT_THROW((void)exec::run(plan, backend, ctx, wrong), std::invalid_argument);
    EXPECT_THROW(exec::ExecPlan(graph, exec::PlanOptions{0, true}), std::invalid_argument);
}

TEST(ExecRunner, CapacityGrowsOnDemand) {
    const ir::Graph graph = chain_graph();
    const auto qgraph = quantize(graph, quant::Method::M2_MinMaxAsymmetric, {});
    quant::QuantRunner small(qgraph, 2);
    const tensor::Tensor batch = random_batch(6, 77);
    const tensor::Tensor grown = small.run(batch);
    EXPECT_GE(small.plan().batch_capacity(), 6);
    expect_bitwise_equal(grown, seedref::run_quantized(qgraph, batch), "grown");
}

TEST(ExecRunner, RebindSwapsPayloadOnSharedPlan) {
    const ir::Graph graph = branch_graph();
    const auto qa = quantize(graph, quant::Method::M2_MinMaxAsymmetric, {});
    const auto qb = quantize(graph, quant::Method::M4_Aciq, {});
    const tensor::Tensor batch = random_batch(2, 91);

    quant::QuantRunner runner(qa, 2);
    expect_bitwise_equal(runner.run(batch), seedref::run_quantized(qa, batch), "bind a");
    runner.rebind(qb);
    expect_bitwise_equal(runner.run(batch), seedref::run_quantized(qb, batch), "rebind b");

    const auto other = quantize(chain_graph(), quant::Method::M2_MinMaxAsymmetric, {});
    EXPECT_THROW(runner.rebind(other), std::invalid_argument);
}

TEST(ExecThreading, PoolExecutionIsBitIdentical) {
    exec::ThreadPool pool(3);
    const ir::Graph graph = branch_graph();
    const auto qgraph = quantize(graph, quant::Method::M4_Aciq, {});
    const tensor::Tensor batch = random_batch(5, 101);

    exec::FloatRunner serial_f(graph, 5);
    exec::FloatRunner parallel_f(graph, 5, &pool);
    expect_bitwise_equal(parallel_f.run(batch), serial_f.run(batch), "float pool");

    quant::QuantRunner serial_q(qgraph, 5);
    quant::QuantRunner parallel_q(qgraph, 5, &pool);
    expect_bitwise_equal(parallel_q.run(batch), serial_q.run(batch), "quant pool");
}

TEST(ExecThreading, ConcurrentContextReuseMatchesSerial) {
    // The serve worker-pool pattern: one immutable shared plan, one
    // (context, backend) pair per thread, each reused across many runs.
    const ir::Graph graph = branch_graph();
    const auto qgraph = quantize(graph, quant::Method::M2_MinMaxAsymmetric, {});
    const exec::ExecPlan plan(qgraph.graph(), exec::PlanOptions{1, true});
    constexpr int kThreads = 4;
    constexpr int kRunsPerThread = 8;

    const tensor::Tensor images = random_batch(kThreads * kRunsPerThread, 55);
    std::vector<tensor::Tensor> serial(static_cast<std::size_t>(images.shape().n));
    {
        exec::QuantBackend backend(qgraph);
        exec::ExecContext ctx;
        for (int i = 0; i < images.shape().n; ++i)
            serial[static_cast<std::size_t>(i)] =
                exec::run(plan, backend, ctx, images.batch_view(i, 1));
    }

    std::vector<tensor::Tensor> parallel(static_cast<std::size_t>(images.shape().n));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            exec::QuantBackend backend(qgraph);  // per-thread mutable halves
            exec::ExecContext ctx;
            for (int r = 0; r < kRunsPerThread; ++r) {
                const int i = t * kRunsPerThread + r;
                parallel[static_cast<std::size_t>(i)] =
                    exec::run(plan, backend, ctx, images.batch_view(i, 1));
            }
        });
    }
    for (auto& thread : threads) thread.join();
    for (int i = 0; i < images.shape().n; ++i)
        expect_bitwise_equal(parallel[static_cast<std::size_t>(i)],
                             serial[static_cast<std::size_t>(i)], "concurrent");
}

/// Odd-everything graph: odd spatial dims (cols = n·oh·ow never a
/// multiple of any SIMD column group), odd channel counts (row-block
/// remainders) and odd kdim (k-pair padding in the packed pipeline) —
/// every remainder path of every microkernel runs.
ir::Graph odd_graph(unsigned seed = 17) {
    std::mt19937 rng(seed);
    ir::Graph g;
    const int in = g.add_input({1, 3, 7, 7});
    const int c1 = g.add(conv_op(in, 3, 5, 3, 1, 1, rng));   // kdim 27, cols n·49
    const int r1 = g.add(relu_op(c1));
    const int c2 = g.add(conv_op(r1, 5, 7, 3, 2, 0, rng));   // kdim 45, cols n·9
    const int r2 = g.add(relu_op(c2));
    const int gp = g.add(gap_op(r2));
    g.set_output(g.add(conv_op(gp, 7, 3, 1, 1, 0, rng)));    // kdim 7, cols n
    return g;
}

TEST(ExecSimd, EveryDispatchTierMatchesScalarBitForBit) {
    // The whole SIMD contract in one sweep: every available tier (plain
    // and packed pipelines, vectorized quantize/colsum/epilogue) against
    // the scalar reference, across zero-point-heavy asymmetric quant,
    // per-channel ACIQ, an LSB-padded low-bit config with an act_mask,
    // and graphs with odd remainders in every GEMM dimension.
    const auto lsb_cfg = quant::QuantConfig::from_compression({2, 3, common::Padding::Lsb});
    const struct {
        quant::Method method;
        quant::QuantConfig config;
    } cases[] = {
        {quant::Method::M2_MinMaxAsymmetric, quant::QuantConfig{}},
        {quant::Method::M4_Aciq, quant::QuantConfig{}},
        {quant::Method::M5_AciqNoBias, lsb_cfg},
    };
    const auto shaped_batch = [](const ir::Graph& g, int n, unsigned seed) {
        std::mt19937 rng(seed);
        std::uniform_real_distribution<float> dist(-1.0f, 2.0f);
        tensor::Tensor batch(
            {n, g.input_shape().c, g.input_shape().h, g.input_shape().w});
        for (auto& v : batch.vec()) v = dist(rng);
        return batch;
    };
    for (const auto& graph : {chain_graph(), branch_graph(), odd_graph()}) {
        for (const auto& c : cases) {
            const tensor::Tensor calib_images = shaped_batch(graph, 12, 5);
            const std::vector<int> labels(12, 0);
            auto qgraph = quant::quantize_graph(
                graph, c.method, c.config,
                quant::calibrate(graph, calib_images, labels));
            for (std::size_t op = 0; op < qgraph.graph().ops().size(); ++op) {
                if (qgraph.graph().ops()[op].kind != ir::OpKind::Conv2d) continue;
                qgraph.conv(op).act_mask_bits = 2;
                break;
            }
            const tensor::Tensor batch = shaped_batch(graph, 3, 131);
            quant::QuantRunner scalar_runner(qgraph, 3);
            scalar_runner.set_kernel_tier(exec::kernels_simd::KernelTier::Scalar);
            const tensor::Tensor reference = scalar_runner.run(batch);
            for (const auto tier : exec::kernels_simd::available_tiers()) {
                if (tier == exec::kernels_simd::KernelTier::Scalar) continue;
                quant::QuantRunner runner(qgraph, 3);
                runner.set_kernel_tier(tier);
                EXPECT_EQ(runner.kernel_tier(), tier);
                expect_bitwise_equal(runner.run(batch), reference,
                                     exec::kernels_simd::tier_name(tier));
            }
        }
    }
}

TEST(ExecSimd, KernelFamiliesMatchScalarOnOddShapes) {
    // Direct microkernel-level check, below the conv plumbing: unpacked
    // and packed GEMMs of every tier against the scalar kernel on shapes
    // with remainders in rows (row-block), kdim (k-pair pad) and n
    // (column-group tail).
    const struct {
        std::size_t rows, kdim, n;
    } shapes[] = {{5, 7, 33}, {7, 27, 100}, {13, 61, 257}, {4, 64, 96}};
    std::mt19937 rng(271);
    std::uniform_int_distribution<int> byte(0, 255);
    const auto scalar = exec::kernels_simd::gemm_u8_kernel(
        exec::kernels_simd::KernelTier::Scalar);
    for (const auto& s : shapes) {
        std::vector<std::uint8_t> w(s.rows * s.kdim), cols(s.kdim * s.n);
        for (auto& v : w) v = static_cast<std::uint8_t>(byte(rng));
        for (auto& v : cols) v = static_cast<std::uint8_t>(byte(rng));
        std::vector<std::int32_t> ref(s.rows * s.n), acc(s.rows * s.n);
        scalar(w.data(), s.kdim, s.rows, cols.data(), s.n, s.kdim, s.n, ref.data(), s.n);
        for (const auto tier : exec::kernels_simd::available_tiers()) {
            if (tier == exec::kernels_simd::KernelTier::Scalar) continue;
            const auto kernel = exec::kernels_simd::gemm_u8_kernel(tier);
            std::fill(acc.begin(), acc.end(), -1);
            kernel(w.data(), s.kdim, s.rows, cols.data(), s.n, s.kdim, s.n, acc.data(),
                   s.n);
            EXPECT_EQ(acc, ref) << "unpacked " << exec::kernels_simd::tier_name(tier);

            const auto pk = exec::kernels_simd::packed_kernels(tier);
            if (pk.gemm == nullptr) continue;
            const std::size_t jv = s.n - s.n % pk.col_group;  // full column groups
            if (jv == 0) continue;
            const std::size_t wstride = s.kdim + (s.kdim & 1);
            std::vector<std::int16_t> w16(s.rows * wstride);
            exec::kernels_simd::widen_weights_u8(w.data(), s.rows, s.kdim, w16.data());
            std::vector<std::int16_t> packed(
                exec::kernels_simd::packed_panel_elems(s.kdim, jv, pk.col_group));
            pk.pack(cols.data(), s.n, s.kdim, jv, packed.data());
            std::fill(acc.begin(), acc.end(), -1);
            pk.gemm(w16.data(), wstride, s.rows, packed.data(), s.kdim, jv, acc.data(),
                    s.n);
            for (std::size_t r = 0; r < s.rows; ++r)
                for (std::size_t j = 0; j < jv; ++j)
                    ASSERT_EQ(acc[r * s.n + j], ref[r * s.n + j])
                        << "packed " << exec::kernels_simd::tier_name(tier) << " r=" << r
                        << " j=" << j;
        }
    }
}

TEST(ExecThreading, LevelParallelRunsAreCountedAndBitIdentical) {
    // The serve-fleet pattern under TSan: several threads, each with a
    // device-private pool and its own runner, executing the same branch
    // graph (which has multi-op dependency levels) level-parallel and
    // concurrently. Outputs must match serial execution bit for bit and
    // the process-wide level-parallel counters must advance.
    const ir::Graph graph = branch_graph();
    const auto qgraph = quantize(graph, quant::Method::M4_Aciq, {});
    const tensor::Tensor batch = random_batch(4, 163);
    quant::QuantRunner serial(qgraph, 4);
    const tensor::Tensor reference = serial.run(batch);

    const std::uint64_t runs_before = exec::level_parallel_runs();
    const std::uint64_t levels_before = exec::level_parallel_levels();
    constexpr int kThreads = 3;
    std::vector<tensor::Tensor> outputs(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            exec::ThreadPool pool(2);  // device-private, like NpuDevice
            quant::QuantRunner runner(qgraph, 4, &pool);
            for (int r = 0; r < 4; ++r) outputs[static_cast<std::size_t>(t)] =
                runner.run(batch);
        });
    }
    for (auto& thread : threads) thread.join();
    for (int t = 0; t < kThreads; ++t)
        expect_bitwise_equal(outputs[static_cast<std::size_t>(t)], reference,
                             "level-parallel");
    EXPECT_GE(exec::level_parallel_runs(), runs_before + kThreads * 4);
    EXPECT_GT(exec::level_parallel_levels(), levels_before);
}

TEST(ExecWalker, EagerFreeVisitsEveryTensorWithReferenceValues) {
    const ir::Graph graph = branch_graph();
    const tensor::Tensor batch = random_batch(2, 67);
    const auto reference = ir::run_float_all(graph, batch);
    std::vector<int> visits(static_cast<std::size_t>(graph.num_tensors()), 0);
    ir::for_each_float_tensor(graph, batch, [&](int id, const tensor::Tensor& t) {
        ++visits[static_cast<std::size_t>(id)];
        expect_bitwise_equal(t, reference[static_cast<std::size_t>(id)], "walker");
    });
    for (const int count : visits) EXPECT_EQ(count, 1);
}

TEST(TensorView, BatchViewIsZeroCopyAndEquivalent) {
    const tensor::Tensor images = random_batch(6, 42);
    const tensor::TensorView view = images.batch_view(2, 3);
    EXPECT_EQ(view.data, images.data() + 2 * images.size() / 6);  // aliases, no copy
    EXPECT_EQ(view.shape.n, 3);
    EXPECT_THROW((void)images.batch_view(4, 3), std::out_of_range);
    EXPECT_THROW((void)images.batch_view(-1, 2), std::out_of_range);

    // Running a view is identical to running a materialised copy.
    const ir::Graph graph = chain_graph();
    tensor::Tensor copy({3, 3, 8, 8});
    std::copy(view.data, view.data + view.size(), copy.data());
    exec::FloatRunner runner(graph, 3);
    expect_bitwise_equal(runner.run(view), runner.run(copy), "view");
}

TEST(IrGraph, TopologyEqualityIgnoresWeightsOnly) {
    const ir::Graph a = chain_graph(1);
    const ir::Graph b = chain_graph(2);  // same wiring, different weights
    EXPECT_TRUE(ir::topology_equals(a, b));
    EXPECT_FALSE(ir::topology_equals(a, branch_graph()));
}

TEST(IrGraph, TopologyFingerprintFollowsEquality) {
    const ir::Graph a = chain_graph(1);
    const ir::Graph b = chain_graph(2);  // same wiring, different weights
    EXPECT_EQ(ir::topology_fingerprint(a), ir::topology_fingerprint(b));
    EXPECT_NE(ir::topology_fingerprint(a), ir::topology_fingerprint(branch_graph()));
}

TEST(ExecPlanCache, SharesOnePlanPerTopologyAndCapacity) {
    exec::PlanCache cache(8);
    const ir::Graph a = chain_graph(1);
    const ir::Graph b = chain_graph(2);  // structurally identical
    const auto plan_a = cache.get(a, 4);
    const auto plan_b = cache.get(b, 4);
    EXPECT_EQ(plan_a.get(), plan_b.get());  // one compiled plan for both
    const auto plan_a8 = cache.get(a, 8);   // capacity is part of the key
    EXPECT_NE(plan_a.get(), plan_a8.get());
    const auto plan_branch = cache.get(branch_graph(), 4);
    EXPECT_NE(plan_a.get(), plan_branch.get());

    const exec::PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(ExecPlanCache, EvictsLeastRecentlyUsed) {
    exec::PlanCache cache(2);
    const ir::Graph chain = chain_graph();
    (void)cache.get(chain, 1);
    (void)cache.get(chain, 2);
    (void)cache.get(chain, 1);  // touch capacity-1: capacity-2 becomes LRU
    (void)cache.get(chain, 3);  // evicts capacity-2
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    (void)cache.get(chain, 1);  // survived the eviction: still a hit
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 2u);
    (void)cache.get(chain, 2);  // was evicted: recompiles
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ExecPlanCache, RepeatedRequantizationsRecompileZeroPlans) {
    // The wrapper path (run_quantized) and every QuantRunner resolve
    // plans through the global cache: after the first compilation of a
    // (topology, capacity), successive re-quantizations of the same
    // model compile nothing.
    const ir::Graph graph = chain_graph();
    const tensor::Tensor batch = random_batch(2, 55);
    tensor::Tensor first;
    const auto before = exec::PlanCache::global().stats();
    for (int requant = 0; requant < 4; ++requant) {
        // Fresh payload each round — what online re-quantization produces.
        const auto qgraph = quantize(graph, quant::Method::M5_AciqNoBias, {});
        const tensor::Tensor out = quant::run_quantized(qgraph, batch);
        if (requant == 0)
            first = out;
        else
            expect_bitwise_equal(first, out, "requant round");
    }
    const auto after = exec::PlanCache::global().stats();
    // At most one compilation (zero when an earlier test already warmed
    // this topology/capacity in the process-wide cache)...
    EXPECT_LE(after.misses, before.misses + 1);
    // ...and every re-quantization after the first resolves from cache.
    EXPECT_GE(after.hits, before.hits + 3);
}

}  // namespace
