#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "netlist/builders.hpp"
#include "netlist/netlist.hpp"

namespace {

using raq::netlist::AdderKind;
using raq::netlist::build_adder_circuit;
using raq::netlist::build_mac_circuit;
using raq::netlist::build_multiplier_circuit;
using raq::netlist::MacConfig;
using raq::netlist::MultiplierKind;
using raq::netlist::Netlist;

/// Evaluate a two-operand circuit on 64 (a, b) pairs at once and return
/// the selected output bus per lane.
std::vector<std::uint64_t> eval_pairs(const Netlist& nl, const std::string& out_bus,
                                      const std::vector<std::uint64_t>& as,
                                      const std::vector<std::uint64_t>& bs,
                                      const std::vector<std::uint64_t>* cs = nullptr) {
    const auto& abits = nl.input_bus("A");
    const auto& bbits = nl.input_bus("B");
    std::vector<std::uint64_t> pi_words(nl.primary_inputs().size(), 0);
    for (std::size_t lane = 0; lane < as.size(); ++lane) {
        for (std::size_t i = 0; i < abits.size(); ++i)
            pi_words[static_cast<std::size_t>(abits[i])] |= ((as[lane] >> i) & 1ULL) << lane;
        for (std::size_t i = 0; i < bbits.size(); ++i)
            pi_words[static_cast<std::size_t>(bbits[i])] |= ((bs[lane] >> i) & 1ULL) << lane;
        if (cs) {
            const auto& cbits = nl.input_bus("C");
            for (std::size_t i = 0; i < cbits.size(); ++i)
                pi_words[static_cast<std::size_t>(cbits[i])] |= (((*cs)[lane] >> i) & 1ULL) << lane;
        }
    }
    const auto words = nl.eval_words(pi_words);
    std::vector<std::uint64_t> out(as.size());
    for (std::size_t lane = 0; lane < as.size(); ++lane)
        out[lane] = nl.bus_value(words, out_bus, static_cast<int>(lane));
    return out;
}

class AdderExhaustive : public ::testing::TestWithParam<AdderKind> {};

TEST_P(AdderExhaustive, EightBitAllPairs) {
    const Netlist nl = build_adder_circuit(8, GetParam());
    std::vector<std::uint64_t> as, bs;
    as.reserve(64);
    bs.reserve(64);
    for (int a = 0; a < 256; ++a) {
        for (int b = 0; b < 256; ++b) {
            as.push_back(static_cast<std::uint64_t>(a));
            bs.push_back(static_cast<std::uint64_t>(b));
            if (as.size() == 64) {
                const auto sums = eval_pairs(nl, "S", as, bs);
                const auto couts = eval_pairs(nl, "COUT", as, bs);
                for (std::size_t lane = 0; lane < 64; ++lane) {
                    const std::uint64_t total = as[lane] + bs[lane];
                    ASSERT_EQ(sums[lane], total & 0xFF)
                        << as[lane] << "+" << bs[lane] << " kind "
                        << raq::netlist::adder_name(GetParam());
                    ASSERT_EQ(couts[lane], total >> 8);
                }
                as.clear();
                bs.clear();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllAdders, AdderExhaustive,
                         ::testing::Values(AdderKind::RippleCarry, AdderKind::Sklansky,
                                           AdderKind::KoggeStone, AdderKind::CarrySelect),
                         [](const auto& info) {
                             switch (info.param) {
                                 case AdderKind::RippleCarry: return "Ripple";
                                 case AdderKind::Sklansky: return "Sklansky";
                                 case AdderKind::KoggeStone: return "KoggeStone";
                                 case AdderKind::CarrySelect: return "CarrySelect";
                             }
                             return "Unknown";
                         });

class AdderRandomWide : public ::testing::TestWithParam<std::tuple<AdderKind, int>> {};

TEST_P(AdderRandomWide, RandomVectorsMatchArithmetic) {
    const auto [kind, width] = GetParam();
    const Netlist nl = build_adder_circuit(width, kind);
    raq::common::Rng rng(0xABCDu + static_cast<unsigned>(width));
    const std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
    std::vector<std::uint64_t> as(64), bs(64);
    for (int round = 0; round < 40; ++round) {
        for (auto& a : as) a = rng.next_u64() & mask;
        for (auto& b : bs) b = rng.next_u64() & mask;
        const auto sums = eval_pairs(nl, "S", as, bs);
        for (std::size_t lane = 0; lane < 64; ++lane)
            ASSERT_EQ(sums[lane], (as[lane] + bs[lane]) & mask);
    }
}

INSTANTIATE_TEST_SUITE_P(
    WideAdders, AdderRandomWide,
    ::testing::Combine(::testing::Values(AdderKind::RippleCarry, AdderKind::Sklansky,
                                         AdderKind::KoggeStone, AdderKind::CarrySelect),
                       ::testing::Values(16, 22, 33)));

class MultiplierExhaustive : public ::testing::TestWithParam<MultiplierKind> {};

TEST_P(MultiplierExhaustive, FourBitAllPairs) {
    const Netlist nl = build_multiplier_circuit(4, GetParam());
    std::vector<std::uint64_t> as, bs;
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b) {
            as.push_back(static_cast<std::uint64_t>(a));
            bs.push_back(static_cast<std::uint64_t>(b));
        }
    for (std::size_t base = 0; base < as.size(); base += 64) {
        const std::vector<std::uint64_t> asub(as.begin() + static_cast<long>(base),
                                              as.begin() + static_cast<long>(base + 64));
        const std::vector<std::uint64_t> bsub(bs.begin() + static_cast<long>(base),
                                              bs.begin() + static_cast<long>(base + 64));
        const auto prods = eval_pairs(nl, "P", asub, bsub);
        for (std::size_t lane = 0; lane < 64; ++lane)
            ASSERT_EQ(prods[lane], asub[lane] * bsub[lane]);
    }
}

TEST_P(MultiplierExhaustive, EightBitRandom) {
    const Netlist nl = build_multiplier_circuit(8, GetParam());
    raq::common::Rng rng(0xBEEF);
    std::vector<std::uint64_t> as(64), bs(64);
    for (int round = 0; round < 100; ++round) {
        for (auto& a : as) a = rng.next_below(256);
        for (auto& b : bs) b = rng.next_below(256);
        const auto prods = eval_pairs(nl, "P", as, bs);
        for (std::size_t lane = 0; lane < 64; ++lane)
            ASSERT_EQ(prods[lane], as[lane] * bs[lane]);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMultipliers, MultiplierExhaustive,
                         ::testing::Values(MultiplierKind::Array, MultiplierKind::Wallace),
                         [](const auto& info) {
                             return info.param == MultiplierKind::Array ? "Array" : "Wallace";
                         });

TEST(MultiplierCorners, EdgeOperands) {
    for (const auto kind : {MultiplierKind::Array, MultiplierKind::Wallace}) {
        const Netlist nl = build_multiplier_circuit(8, kind);
        std::vector<std::uint64_t> as{0, 0, 255, 255, 1, 128, 255, 1};
        std::vector<std::uint64_t> bs{0, 255, 0, 255, 1, 128, 1, 255};
        as.resize(64, 0);
        bs.resize(64, 0);
        const auto prods = eval_pairs(nl, "P", as, bs);
        for (std::size_t lane = 0; lane < 8; ++lane)
            EXPECT_EQ(prods[lane], as[lane] * bs[lane]);
    }
}

TEST(Mac, DefaultConfigMatchesArithmetic) {
    const Netlist nl = build_mac_circuit();
    raq::common::Rng rng(0xFACE);
    const std::uint64_t acc_mask = (1ULL << 22) - 1;
    std::vector<std::uint64_t> as(64), bs(64), cs(64);
    for (int round = 0; round < 60; ++round) {
        for (std::size_t i = 0; i < 64; ++i) {
            as[i] = rng.next_below(256);
            bs[i] = rng.next_below(256);
            cs[i] = rng.next_below(1ULL << 22);
        }
        const auto sums = eval_pairs(nl, "S", as, bs, &cs);
        for (std::size_t lane = 0; lane < 64; ++lane)
            ASSERT_EQ(sums[lane], (as[lane] * bs[lane] + cs[lane]) & acc_mask);
    }
}

TEST(Mac, AllArchitectureCombinationsCorrect) {
    raq::common::Rng rng(0xD00D);
    for (const auto mult : {MultiplierKind::Array, MultiplierKind::Wallace}) {
        for (const auto acc : {AdderKind::RippleCarry, AdderKind::Sklansky,
                               AdderKind::KoggeStone, AdderKind::CarrySelect}) {
            MacConfig cfg;
            cfg.multiplier = mult;
            cfg.accumulator_adder = acc;
            const Netlist nl = build_mac_circuit(cfg);
            std::vector<std::uint64_t> as(64), bs(64), cs(64);
            for (std::size_t i = 0; i < 64; ++i) {
                as[i] = rng.next_below(256);
                bs[i] = rng.next_below(256);
                cs[i] = rng.next_below(1ULL << 22);
            }
            const auto sums = eval_pairs(nl, "S", as, bs, &cs);
            for (std::size_t lane = 0; lane < 64; ++lane)
                ASSERT_EQ(sums[lane], (as[lane] * bs[lane] + cs[lane]) & ((1ULL << 22) - 1))
                    << raq::netlist::multiplier_name(mult) << "+"
                    << raq::netlist::adder_name(acc);
        }
    }
}

TEST(Mac, RejectsBadConfigs) {
    MacConfig narrow;
    narrow.acc_width = 10;  // narrower than the 16-bit product
    EXPECT_THROW(build_mac_circuit(narrow), std::invalid_argument);
    MacConfig tiny;
    tiny.mul_width = 1;
    EXPECT_THROW(build_mac_circuit(tiny), std::invalid_argument);
}

TEST(NetlistStructure, GatesAreTopologicallyOrdered) {
    const Netlist nl = build_mac_circuit();
    // Construction invariant: a gate's input nets always exist before its
    // output net is created.
    for (const auto& gate : nl.gates())
        for (int i = 0; i < gate.num_inputs(); ++i)
            ASSERT_LT(gate.inputs[i], gate.output);
}

TEST(NetlistStructure, DriversAndFanoutsConsistent) {
    const Netlist nl = build_multiplier_circuit(6);
    for (std::size_t g = 0; g < nl.num_gates(); ++g) {
        const auto& gate = nl.gates()[g];
        EXPECT_EQ(nl.driver(gate.output), static_cast<std::int32_t>(g));
        for (int i = 0; i < gate.num_inputs(); ++i) {
            const auto& fo = nl.fanout(gate.inputs[i]);
            EXPECT_NE(std::find(fo.begin(), fo.end(), static_cast<std::int32_t>(g)), fo.end());
        }
    }
}

TEST(NetlistStructure, MacSizeIsPlausible) {
    // The 8x8 Wallace multiplier + 22-bit accumulator should land in the
    // few-hundred-to-low-thousands gate range (DesignWare-class MAC).
    const Netlist nl = build_mac_circuit();
    EXPECT_GT(nl.num_gates(), 300u);
    EXPECT_LT(nl.num_gates(), 3000u);
    EXPECT_EQ(nl.input_bus("A").size(), 8u);
    EXPECT_EQ(nl.input_bus("B").size(), 8u);
    EXPECT_EQ(nl.input_bus("C").size(), 22u);
    EXPECT_EQ(nl.output_bus("S").size(), 22u);
}

TEST(NetlistStructure, CellHistogramCountsAllGates) {
    const Netlist nl = build_multiplier_circuit(8);
    const auto hist = nl.cell_histogram();
    std::size_t total = 0;
    for (int count : hist) total += static_cast<std::size_t>(count);
    EXPECT_EQ(total, nl.num_gates());
}

TEST(NetlistStructure, BusAccessorsValidate) {
    const Netlist nl = build_multiplier_circuit(4);
    EXPECT_TRUE(nl.has_input_bus("A"));
    EXPECT_TRUE(nl.has_output_bus("P"));
    EXPECT_FALSE(nl.has_bus("Z"));
    EXPECT_THROW(nl.input_bus("nope"), std::out_of_range);
    EXPECT_THROW(nl.output_bus("nope"), std::out_of_range);
}

TEST(NetlistStructure, EvalWordsValidatesInputCount) {
    const Netlist nl = build_multiplier_circuit(4);
    std::vector<std::uint64_t> wrong(3, 0);
    EXPECT_THROW(nl.eval_words(wrong), std::invalid_argument);
}

}  // namespace
