#include <gtest/gtest.h>

#include "cell/library.hpp"
#include "netlist/builders.hpp"
#include "nn/zoo.hpp"
#include "npu/energy.hpp"
#include "npu/systolic.hpp"

namespace {

using namespace raq;

TEST(Systolic, CyclesBoundedBelowByIdealThroughput) {
    auto net = nn::make_network("resnet20-mini");
    const auto graph = net.export_ir();
    const npu::SystolicArrayModel array;
    const auto result = array.analyze(graph);
    EXPECT_EQ(result.total_macs, graph.macs_per_sample());
    // 64x64 array: at best rows*cols MACs per cycle.
    EXPECT_GE(result.total_cycles * 64ull * 64ull, result.total_macs);
    for (const auto& layer : result.layers) {
        EXPECT_GT(layer.cycles, 0u);
        EXPECT_GT(layer.utilization, 0.0);
        EXPECT_LE(layer.utilization, 1.0);
    }
}

TEST(Systolic, SmallerArrayNeedsMoreCycles) {
    auto net = nn::make_network("vgg13-mini");
    const auto graph = net.export_ir();
    npu::SystolicConfig big;  // 64x64
    npu::SystolicConfig small;
    small.rows = small.cols = 16;
    small.pipeline_fill = 32;
    const auto big_result = npu::SystolicArrayModel(big).analyze(graph);
    const auto small_result = npu::SystolicArrayModel(small).analyze(graph);
    EXPECT_GT(small_result.total_cycles, big_result.total_cycles);
}

TEST(Systolic, LatencyScalesWithMacPeriod) {
    auto net = nn::make_network("alexnet-mini");
    const auto result = npu::SystolicArrayModel().analyze(net.export_ir());
    EXPECT_NEAR(result.latency_us(500.0), 2.0 * result.latency_us(250.0), 1e-9);
    EXPECT_GT(result.inferences_per_second(500.0), 0.0);
}

TEST(Energy, CompressionReducesMacEnergy) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    npu::EnergyModelConfig cfg;
    cfg.activity_cycles = 500;
    const npu::MacEnergyModel model(mac, cfg);
    const auto base = model.estimate(lib, common::Compression{}, 500.0);
    const auto compressed =
        model.estimate(lib, common::Compression{4, 4, common::Padding::Msb}, 500.0);
    EXPECT_LT(compressed.dynamic_fj, base.dynamic_fj);
    EXPECT_GT(base.total_fj(), 0.0);
}

TEST(Energy, GuardbandedPeriodRaisesLeakageShare) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    npu::EnergyModelConfig cfg;
    cfg.activity_cycles = 200;
    const npu::MacEnergyModel model(mac, cfg);
    const auto fast = model.estimate(lib, common::Compression{}, 450.0);
    const auto slow = model.estimate(lib, common::Compression{}, 450.0 * 1.23);
    EXPECT_NEAR(slow.leakage_fj, fast.leakage_fj * 1.23, 1e-9);
    // Same vectors and delays; only residual glitch tails beyond the
    // settle window can differ, so compare with a relative tolerance.
    EXPECT_NEAR(slow.dynamic_fj, fast.dynamic_fj, 1e-3 * fast.dynamic_fj);
}

}  // namespace
