#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/rng.hpp"
#include "data/synthetic_dataset.hpp"
#include "ir/float_executor.hpp"
#include "nn/model_cache.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"

namespace {

using namespace raq;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::Module;
using nn::Param;
using nn::ReLU;
using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(const Shape& s, std::uint64_t seed) {
    Tensor t(s);
    common::Rng rng(seed);
    for (auto& v : t.vec()) v = static_cast<float>(rng.next_gaussian());
    return t;
}

/// Scalar loss L = sum(out * coeffs) used for finite-difference checks.
double weighted_sum(const Tensor& out, const std::vector<float>& coeffs) {
    double acc = 0;
    for (std::size_t i = 0; i < out.size(); ++i) acc += static_cast<double>(out[i]) * coeffs[i];
    return acc;
}

/// Verify module input gradients and parameter gradients against central
/// finite differences on a handful of randomly chosen entries.
void check_gradients(Module& module, const Shape& in_shape, std::uint64_t seed,
                     double tolerance = 2e-2) {
    Tensor x = random_tensor(in_shape, seed);
    Tensor out = module.forward(x, /*training=*/true);
    std::vector<float> coeffs(out.size());
    common::Rng rng(seed ^ 0xC0FFEE);
    for (auto& c : coeffs) c = static_cast<float>(rng.next_gaussian());

    Tensor grad_out(out.shape());
    for (std::size_t i = 0; i < grad_out.size(); ++i) grad_out[i] = coeffs[i];
    std::vector<Param*> params;
    module.collect_params(params);
    for (Param* p : params) std::fill(p->grad.begin(), p->grad.end(), 0.0f);
    const Tensor grad_in = module.backward(grad_out);

    const float eps = 1e-2f;
    // Input gradients.
    for (int probe = 0; probe < 6; ++probe) {
        const auto idx = static_cast<std::size_t>(rng.next_below(x.size()));
        Tensor xp = x, xm = x;
        xp[idx] += eps;
        xm[idx] -= eps;
        const double lp = weighted_sum(module.forward(xp, true), coeffs);
        const double lm = weighted_sum(module.forward(xm, true), coeffs);
        const double numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(grad_in[idx], numeric,
                    tolerance * std::max(1.0, std::abs(numeric)))
            << "input idx " << idx;
    }
    // Parameter gradients (trainable only).
    for (Param* p : params) {
        if (!p->trainable || p->value.empty()) continue;
        for (int probe = 0; probe < 4; ++probe) {
            const auto idx = static_cast<std::size_t>(rng.next_below(p->value.size()));
            const float saved = p->value[idx];
            p->value[idx] = saved + eps;
            const double lp = weighted_sum(module.forward(x, true), coeffs);
            p->value[idx] = saved - eps;
            const double lm = weighted_sum(module.forward(x, true), coeffs);
            p->value[idx] = saved;
            const double numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(p->grad[idx], numeric,
                        tolerance * std::max(1.0, std::abs(numeric)))
                << p->name << " idx " << idx;
        }
    }
}

TEST(Gradients, Conv2d) {
    Conv2d conv(3, 4, 3, 1, 1, 42, "t.conv");
    check_gradients(conv, {2, 3, 5, 5}, 1);
}

TEST(Gradients, Conv2dStrided) {
    Conv2d conv(2, 3, 3, 2, 1, 43, "t.conv2");
    check_gradients(conv, {2, 2, 6, 6}, 2);
}

TEST(Gradients, Linear) {
    Linear fc(12, 5, 44, "t.fc");
    check_gradients(fc, {3, 12, 1, 1}, 3);
}

TEST(Gradients, BatchNorm) {
    BatchNorm2d bn(4, "t.bn");
    check_gradients(bn, {4, 4, 3, 3}, 4, /*tolerance=*/5e-2);
}

TEST(Gradients, ReLU) {
    ReLU relu;
    check_gradients(relu, {2, 3, 4, 4}, 5);
}

TEST(Gradients, MaxPool) {
    MaxPool2d pool(2, 2);
    check_gradients(pool, {2, 2, 6, 6}, 6);
}

TEST(Gradients, GlobalAvgPool) {
    GlobalAvgPool gap;
    check_gradients(gap, {2, 3, 4, 4}, 7);
}

TEST(Gradients, ResidualBlockWithProjection) {
    auto main = std::make_unique<nn::Sequential>();
    main->add(std::make_unique<Conv2d>(3, 4, 3, 2, 1, 48, "rb.c1"));
    main->add(std::make_unique<BatchNorm2d>(4, "rb.bn1"));
    main->add(std::make_unique<ReLU>());
    main->add(std::make_unique<Conv2d>(4, 4, 3, 1, 1, 49, "rb.c2"));
    auto shortcut = std::make_unique<nn::Sequential>();
    shortcut->add(std::make_unique<Conv2d>(3, 4, 1, 2, 0, 50, "rb.proj"));
    nn::ResidualBlock block(std::move(main), std::move(shortcut));
    check_gradients(block, {2, 3, 6, 6}, 8, /*tolerance=*/5e-2);
}

TEST(Gradients, FireModule) {
    // Zero-initialized biases put many pre-activations exactly on the
    // ReLU kink (the squeeze output is sparse), where finite differences
    // are ill-posed. Jitter all parameters off the kinks first.
    nn::FireModule fire(4, 2, 3, 51, "t.fire");
    std::vector<Param*> params;
    fire.collect_params(params);
    common::Rng jitter(123);
    for (Param* p : params)
        for (auto& v : p->value) v += 0.2f + 0.1f * static_cast<float>(jitter.next_gaussian());
    check_gradients(fire, {2, 4, 4, 4}, 9, /*tolerance=*/5e-2);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
    BatchNorm2d bn(2, "t.bn2");
    Tensor x = random_tensor({8, 2, 4, 4}, 11);
    for (auto& v : x.vec()) v = v * 3.0f + 5.0f;  // mean 5, std 3
    const Tensor y = bn.forward(x, true);
    double sum = 0, sq = 0;
    for (int n = 0; n < 8; ++n)
        for (int h = 0; h < 4; ++h)
            for (int w = 0; w < 4; ++w) {
                sum += y.at(n, 0, h, w);
                sq += static_cast<double>(y.at(n, 0, h, w)) * y.at(n, 0, h, w);
            }
    const double m = sum / (8 * 16);
    EXPECT_NEAR(m, 0.0, 1e-3);
    EXPECT_NEAR(sq / (8 * 16) - m * m, 1.0, 1e-2);
}

TEST(BatchNorm, FoldedAffineMatchesInferenceForward) {
    BatchNorm2d bn(3, "t.bn3");
    // Push the running stats away from the defaults.
    Tensor x = random_tensor({16, 3, 4, 4}, 12);
    for (int i = 0; i < 10; ++i) bn.forward(x, true);
    std::vector<float> scale, shift;
    bn.folded_affine(scale, shift);
    const Tensor y = bn.forward(x, /*training=*/false);
    for (int probe = 0; probe < 20; ++probe) {
        const int n = probe % 16, c = probe % 3, h = probe % 4, w = (probe * 7) % 4;
        EXPECT_NEAR(y.at(n, c, h, w),
                    scale[static_cast<std::size_t>(c)] * x.at(n, c, h, w) +
                        shift[static_cast<std::size_t>(c)],
                    1e-4);
    }
}

TEST(Zoo, AllNetworksConstructAndExport) {
    for (const auto& name : nn::all_networks()) {
        auto net = nn::make_network(name);
        EXPECT_GT(net.num_weights(), 1000u) << name;
        auto graph = net.export_ir();
        EXPECT_GT(graph.macs_per_sample(), 10000u) << name;
        EXPECT_GT(graph.num_conv_ops(), 3) << name;
        // Deterministic rebuild: same name -> same weights.
        auto net2 = nn::make_network(name);
        auto p1 = net.parameters();
        auto p2 = net2.parameters();
        ASSERT_EQ(p1.size(), p2.size());
        EXPECT_EQ(p1[0]->value, p2[0]->value) << name;
    }
    EXPECT_THROW(nn::make_network("not-a-net"), std::invalid_argument);
}

TEST(Zoo, DepthOrderingWithinFamilies) {
    auto macs = [](const char* name) {
        auto net = nn::make_network(name);
        return net.export_ir().macs_per_sample();
    };
    EXPECT_LT(macs("resnet50-mini"), macs("resnet101-mini"));
    EXPECT_LT(macs("resnet101-mini"), macs("resnet152-mini"));
    EXPECT_LT(macs("vgg13-mini"), macs("vgg16-mini"));
    EXPECT_LT(macs("vgg16-mini"), macs("vgg19-mini"));
    EXPECT_LT(macs("resnet20-mini"), macs("resnet32-mini"));
    EXPECT_LT(macs("resnet32-mini"), macs("resnet44-mini"));
    // Wide variants widen the bottleneck (more MACs than the plain ones).
    EXPECT_GT(macs("wide-resnet50-mini"), macs("resnet50-mini"));
    EXPECT_GT(macs("wide-resnet101-mini"), macs("resnet101-mini"));
}

TEST(Training, TinyNetworkLearnsTheTask) {
    data::DatasetConfig dc;
    dc.train_size = 900;
    dc.test_size = 200;
    const data::SyntheticDataset ds(dc);
    auto net = nn::make_network("vgg13-mini");
    nn::TrainConfig cfg;
    cfg.epochs = 4;
    nn::SgdTrainer trainer(cfg);
    const auto result = trainer.fit(net, ds);
    EXPECT_GT(result.test_accuracy, 0.60) << "chance level is 0.10";
    EXPECT_LT(result.final_train_loss, 1.2);
}

TEST(Training, CrossEntropyGradientSumsToZeroPerSample) {
    Tensor logits = random_tensor({4, 10, 1, 1}, 21);
    Tensor grad;
    const std::vector<int> labels{1, 3, 5, 9};
    const double loss = nn::cross_entropy_loss(logits, labels, grad);
    EXPECT_GT(loss, 0.0);
    for (int n = 0; n < 4; ++n) {
        double sum = 0;
        for (int c = 0; c < 10; ++c) sum += grad.at(n, c, 0, 0);
        EXPECT_NEAR(sum, 0.0, 1e-6);
    }
}

TEST(Network, SaveLoadRoundTrip) {
    const std::string path = "/tmp/raq_test_net.bin";
    auto net = nn::make_network("alexnet-mini");
    // Perturb weights so we are not just reloading the init.
    for (Param* p : net.parameters())
        for (auto& v : p->value) v += 0.125f;
    net.save(path);
    auto net2 = nn::make_network("alexnet-mini");
    net2.load(path);
    const auto p1 = net.parameters();
    const auto p2 = net2.parameters();
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i]->value, p2[i]->value);
    // Wrong-model load is rejected.
    auto other = nn::make_network("vgg13-mini");
    EXPECT_THROW(other.load(path), std::runtime_error);
    std::filesystem::remove(path);
}

TEST(Network, IrExportMatchesModuleInference) {
    data::DatasetConfig dc;
    dc.train_size = 300;
    dc.test_size = 100;
    const data::SyntheticDataset ds(dc);
    auto net = nn::make_network("resnet20-mini");
    nn::TrainConfig cfg;
    cfg.epochs = 1;
    nn::SgdTrainer trainer(cfg);
    trainer.fit(net, ds);  // realistic BN running stats

    const Tensor batch = ds.test_batch(0, 32);
    const Tensor module_logits = net.forward(batch, /*training=*/false);
    const auto graph = net.export_ir();
    const Tensor ir_logits = ir::run_float(graph, batch);
    ASSERT_EQ(module_logits.size(), ir_logits.size());
    for (std::size_t i = 0; i < module_logits.size(); ++i)
        ASSERT_NEAR(module_logits[i], ir_logits[i], 5e-3f) << "logit " << i;
}

TEST(ModelCache, TrainsOnceThenLoads) {
    const std::string dir = "/tmp/raq_test_cache";
    std::filesystem::remove_all(dir);
    data::DatasetConfig dc;
    dc.train_size = 256;
    dc.test_size = 64;
    {
        nn::ModelCache cache(dir, dc);
        auto& net = cache.get("alexnet-mini");  // trains (small data, fast)
        EXPECT_TRUE(std::filesystem::exists(cache.model_path("alexnet-mini")));
        auto& again = cache.get("alexnet-mini");
        EXPECT_EQ(&net, &again);  // same instance
    }
    {
        nn::ModelCache cache(dir, dc);
        EXPECT_NO_THROW(cache.get("alexnet-mini"));  // loads from disk
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
