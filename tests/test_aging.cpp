#include <gtest/gtest.h>

#include "aging/aging_model.hpp"

namespace {

using raq::aging::AgingModel;
using raq::aging::AgingParams;

TEST(AgingModel, FreshChipHasNoDegradation) {
    const AgingModel model;
    EXPECT_DOUBLE_EQ(model.dvth_mv(0.0), 0.0);
}

TEST(AgingModel, EndOfLifeAnchorIs50mVAt10Years) {
    const AgingModel model;
    EXPECT_NEAR(model.dvth_mv(10.0), 50.0, 1e-9);
}

TEST(AgingModel, DegradationIsStrictlyMonotone) {
    const AgingModel model;
    double prev = 0.0;
    for (double years = 0.25; years <= 15.0; years += 0.25) {
        const double d = model.dvth_mv(years);
        EXPECT_GT(d, prev) << "at " << years << " years";
        prev = d;
    }
}

TEST(AgingModel, PowerLawFrontLoadsDegradation) {
    // BTI kinetics: half the lifetime produces much more than half of the
    // remaining shift budget (sub-linear exponent).
    const AgingModel model;
    EXPECT_GT(model.dvth_mv(5.0), 0.5 * model.dvth_mv(10.0));
}

TEST(AgingModel, InverseMappingRoundTrips) {
    const AgingModel model;
    for (double years : {0.5, 1.0, 3.0, 7.0, 10.0}) {
        const double d = model.dvth_mv(years);
        EXPECT_NEAR(model.years_for_dvth(d), years, 1e-6);
    }
}

TEST(AgingModel, TwentyMillivoltsReachedWithinOneToTwoYearsAtMildConditions) {
    // The paper notes "ΔVth = 20 mV may correspond to 1-2 years" depending
    // on operating conditions; under nominal conditions our power law puts
    // 20 mV well before mid-life.
    const AgingModel model;
    const double years = model.years_for_dvth(20.0);
    EXPECT_GT(years, 0.001);
    EXPECT_LT(years, 5.0);
}

TEST(AgingModel, HotterChipAgesFaster) {
    AgingParams hot;
    hot.temperature_c = 105.0;
    AgingParams cold;
    cold.temperature_c = 65.0;
    const AgingModel nominal, hotter(hot), colder(cold);
    EXPECT_GT(hotter.dvth_mv(5.0), nominal.dvth_mv(5.0));
    EXPECT_LT(colder.dvth_mv(5.0), nominal.dvth_mv(5.0));
}

TEST(AgingModel, LowerDutyCycleAgesSlower) {
    AgingParams relaxed;
    relaxed.duty_cycle = 0.5;
    const AgingModel nominal, part_time(relaxed);
    EXPECT_LT(part_time.dvth_mv(5.0), nominal.dvth_mv(5.0));
}

TEST(AgingModel, HciContributionRaisesLateLifeSlope) {
    AgingParams no_hci;
    no_hci.hci_fraction = 0.0;
    AgingParams with_hci;
    with_hci.hci_fraction = 0.3;
    const AgingModel a(no_hci), b(with_hci);
    // Both hit the same EOL anchor...
    EXPECT_NEAR(a.dvth_mv(10.0), b.dvth_mv(10.0), 1e-9);
    // ...but the HCI blend is smaller early on (sqrt-like term lags).
    EXPECT_LT(b.dvth_mv(1.0), a.dvth_mv(1.0));
}

TEST(AgingModel, StandardLevelsMatchPaper) {
    const auto levels = AgingModel::standard_levels_mv();
    ASSERT_EQ(levels.size(), 6u);
    EXPECT_DOUBLE_EQ(levels.front(), 0.0);
    EXPECT_DOUBLE_EQ(levels.back(), 50.0);
}

TEST(AgingModel, RejectsInvalidInputs) {
    const AgingModel model;
    EXPECT_THROW(model.dvth_mv(-1.0), std::invalid_argument);
    EXPECT_THROW(model.years_for_dvth(-5.0), std::invalid_argument);
    AgingParams bad;
    bad.eol_years = 0.0;
    EXPECT_THROW(AgingModel{bad}, std::invalid_argument);
    AgingParams bad2;
    bad2.hci_fraction = 1.5;
    EXPECT_THROW(AgingModel{bad2}, std::invalid_argument);
}

}  // namespace
