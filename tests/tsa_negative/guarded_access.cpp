// Positive control for the thread-safety-analysis gate: the same
// guarded-field access as unguarded_access.cpp, but correctly locked.
// This translation unit MUST compile cleanly under clang with
// -Werror=thread-safety; if it does not, the probe flags (or the
// annotated Mutex/MutexLock wrappers) are broken, and the "violation
// fails to compile" result from unguarded_access.cpp would prove
// nothing.
//
// Not part of any build target; compiled only via try_compile.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(int amount) RAQ_EXCLUDES(mutex_) {
        const raq::common::MutexLock lock(mutex_);
        balance_ += amount;
    }

private:
    raq::common::Mutex mutex_;
    int balance_ RAQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit(1);
    return 0;
}
