// Negative-compile probe for the thread-safety-analysis gate: writes a
// RAQ_GUARDED_BY field without holding its mutex. Under clang with
// -Werror=thread-safety this translation unit MUST FAIL to compile; the
// try_compile block in the top-level CMakeLists asserts exactly that and
// aborts the configure if the violation slips through (gate rot — e.g.
// the macros silently expanding to nothing under clang).
//
// Not part of any build target; compiled only via try_compile.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(int amount) {  // BUG (on purpose): no lock held
        balance_ += amount;
    }

private:
    raq::common::Mutex mutex_;
    int balance_ RAQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit(1);
    return 0;
}
