#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "core/compression_selector.hpp"
#include "data/synthetic_dataset.hpp"
#include "exec/kernels_simd.hpp"
#include "netlist/builders.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

namespace {

using namespace raq;

/// Shared deployment context: one small trained model, the paper's MAC
/// timing stack, and the aging model. Trained once for the whole file.
class Serve : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::DatasetConfig dc;
        dc.train_size = 600;
        dc.test_size = 200;
        dataset_ = new data::SyntheticDataset(dc);

        auto net = nn::make_network("alexnet-mini");
        nn::TrainConfig tcfg;
        tcfg.epochs = 2;
        nn::SgdTrainer trainer(tcfg);
        trainer.fit(net, *dataset_);
        graph_ = new ir::Graph(net.export_ir());

        const auto calib_images = dataset_->train_batch(0, 48);
        const std::vector<int> calib_labels(dataset_->train_labels().begin(),
                                            dataset_->train_labels().begin() + 48);
        calib_ = new quant::CalibrationData(
            quant::calibrate(*graph_, calib_images, calib_labels));

        mac_ = new netlist::Netlist(netlist::build_mac_circuit());
        library_ = new cell::Library(cell::Library::finfet14());
        selector_ = new core::CompressionSelector(*mac_, *library_);
        aging_ = new aging::AgingModel();

        eval_images_ = new tensor::Tensor(dataset_->test_batch(0, 100));
        eval_labels_ = new std::vector<int>(dataset_->test_labels().begin(),
                                            dataset_->test_labels().begin() + 100);
    }
    static void TearDownTestSuite() {
        delete eval_labels_;
        delete eval_images_;
        delete aging_;
        delete selector_;
        delete library_;
        delete mac_;
        delete calib_;
        delete graph_;
        delete dataset_;
    }

    [[nodiscard]] static serve::ServeContext context() {
        serve::ServeContext ctx;
        ctx.graph = graph_;
        ctx.calib = calib_;
        ctx.selector = selector_;
        ctx.aging = aging_;
        ctx.eval_images = eval_images_;
        ctx.eval_labels = eval_labels_;
        return ctx;
    }

    [[nodiscard]] static tensor::Tensor test_image(int index) {
        return dataset_->test_batch(index, 1);
    }

    static data::SyntheticDataset* dataset_;
    static ir::Graph* graph_;
    static quant::CalibrationData* calib_;
    static netlist::Netlist* mac_;
    static cell::Library* library_;
    static core::CompressionSelector* selector_;
    static aging::AgingModel* aging_;
    static tensor::Tensor* eval_images_;
    static std::vector<int>* eval_labels_;
};

data::SyntheticDataset* Serve::dataset_ = nullptr;
ir::Graph* Serve::graph_ = nullptr;
quant::CalibrationData* Serve::calib_ = nullptr;
netlist::Netlist* Serve::mac_ = nullptr;
cell::Library* Serve::library_ = nullptr;
core::CompressionSelector* Serve::selector_ = nullptr;
aging::AgingModel* Serve::aging_ = nullptr;
tensor::Tensor* Serve::eval_images_ = nullptr;
std::vector<int>* Serve::eval_labels_ = nullptr;

TEST_F(Serve, ConcurrentBatchedExecutionIsBitIdenticalToSerial) {
    constexpr int kRequests = 48;

    // Serial reference: the exact graph a fresh device deploys (no
    // compression at dVth = 0, M5 ACIQ), executed one sample at a time.
    const auto choice = selector_->select(0.0);
    ASSERT_TRUE(choice.has_value());
    const auto qconfig = quant::QuantConfig::from_compression(choice->compression);
    const auto reference = quant::quantize_graph(*graph_, quant::Method::M5_AciqNoBias,
                                                 qconfig, *calib_);

    serve::ServeConfig cfg;
    cfg.num_devices = 4;
    cfg.num_workers = 4;
    cfg.max_batch = 8;
    // Device-private execution pools: intra-plan level-parallelism runs
    // UNDER the worker concurrency and must stay bit-identical.
    cfg.device.exec_threads = 2;
    cfg.telemetry.metrics = true;
    serve::NpuServer server(context(), cfg);

    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(test_image(i)));

    for (int i = 0; i < kRequests; ++i) {
        const serve::InferenceResult result = futures[static_cast<std::size_t>(i)].get();
        const tensor::Tensor serial = quant::run_quantized(reference, test_image(i));
        ASSERT_EQ(result.logits.size(), serial.size()) << "request " << i;
        for (std::size_t c = 0; c < serial.size(); ++c)
            EXPECT_EQ(result.logits[c], serial[c]) << "request " << i << " class " << c;
        EXPECT_GE(result.device_id, 0);
        EXPECT_GT(result.latency_cycles, 0u);
    }
    server.shutdown();

    const serve::FleetStats fleet = server.fleet_stats();
    EXPECT_EQ(fleet.completed, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(fleet.total_requants(), 0);  // nothing aged in this run

    // Execution-engine observability: the dispatch-tier gauge is always
    // exported; the level-parallel counter must have counted these runs
    // (every model here has concat/add levels that fan out).
    const std::string expo = server.export_metrics();
    EXPECT_NE(expo.find("raq_exec_dispatch_tier"), std::string::npos);
    EXPECT_NE(expo.find(exec::kernels_simd::tier_name(exec::kernels_simd::active_tier())),
              std::string::npos);
    EXPECT_NE(expo.find("raq_exec_level_parallel_runs_total"), std::string::npos);
}

TEST_F(Serve, AgingDeviceRequantizesExactlyOnce) {
    constexpr int kRequests = 180;
    constexpr double kThresholdMv = 10.0;

    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.device.requant_threshold_mv = kThresholdMv;

    // Scale aging so the run ends around 12 mV: the 10 mV threshold is
    // crossed mid-run (one re-quantization), while the next crossing
    // (20 mV) would need ~60x more stress time — unreachable here.
    {
        serve::NpuServer probe(context(), cfg);
        const auto& dev = probe.device(0);
        const double busy_hours_per_request =
            static_cast<double>(dev.per_image_cycles()) * dev.clock_period_ps() * 1e-12 /
            3600.0;
        const double target_hours = aging_->years_for_dvth(12.0) * 8760.0;
        cfg.device.age_acceleration =
            target_hours / (kRequests * busy_hours_per_request);
        probe.shutdown();
    }

    serve::NpuServer server(context(), cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(test_image(i % 100)));
    for (auto& f : futures) f.get();
    server.shutdown();

    const serve::DeviceStats stats = server.device(0).stats();
    EXPECT_EQ(stats.requant_count, 1);
    ASSERT_EQ(stats.requant_events.size(), 1u);
    EXPECT_GE(stats.requant_events[0].dvth_mv, kThresholdMv);
    EXPECT_TRUE(stats.requant_events[0].before.is_none());
    EXPECT_FALSE(stats.requant_events[0].after.is_none());
    // The event carries a monotonic host timestamp (µs since the
    // process-wide telemetry epoch) so cross-device ordering holds.
    EXPECT_GT(stats.requant_events[0].t_us, 0);
    EXPECT_GT(stats.dvth_mv, kThresholdMv);

    // The re-deployed graph still serves sensible accuracy.
    const double acc = server.sample_accuracy(0, 100);
    EXPECT_GT(acc, 0.3);
}

TEST_F(Serve, ShutdownDrainsQueueWithoutLosingRequests) {
    constexpr int kRequests = 120;

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 4;  // more workers than devices: pool must arbitrate
    cfg.max_batch = 8;
    serve::NpuServer server(context(), cfg);

    std::vector<std::future<serve::InferenceResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(test_image(i % 100)));

    // Shut down immediately: every accepted request must still complete.
    server.shutdown();
    for (int i = 0; i < kRequests; ++i) {
        const serve::InferenceResult result = futures[static_cast<std::size_t>(i)].get();
        EXPECT_GE(result.predicted_class, 0);
    }

    const serve::FleetStats fleet = server.fleet_stats();
    EXPECT_EQ(fleet.submitted, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(fleet.completed, static_cast<std::uint64_t>(kRequests));
    std::uint64_t served = 0;
    for (const auto& dev : fleet.devices) served += dev.requests;
    EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));

    EXPECT_THROW((void)server.submit(test_image(0)), std::runtime_error);
}

TEST_F(Serve, FaultInjectionIsReproducibleAcrossParallelRuns) {
    constexpr int kRequests = 32;

    const auto run_once = [&] {
        serve::ServeConfig cfg;
        cfg.num_devices = 3;
        cfg.num_workers = 3;
        cfg.max_batch = 4;
        cfg.device.flip_probability = 0.02;
        cfg.device.base_seed = 0xC0FFEE;
        serve::NpuServer server(context(), cfg);
        std::vector<std::future<serve::InferenceResult>> futures;
        for (int i = 0; i < kRequests; ++i)
            futures.push_back(server.submit(test_image(i)));
        std::vector<std::vector<float>> logits;
        logits.reserve(kRequests);
        for (auto& f : futures) logits.push_back(f.get().logits);
        server.shutdown();
        std::uint64_t flips = 0;
        for (const auto& dev : server.fleet_stats().devices) flips += dev.flips;
        return std::make_pair(std::move(logits), flips);
    };

    const auto [logits_a, flips_a] = run_once();
    const auto [logits_b, flips_b] = run_once();
    // Per-request seeding makes results independent of which worker or
    // batch served a request: two parallel runs agree bit for bit.
    EXPECT_EQ(flips_a, flips_b);
    ASSERT_EQ(logits_a.size(), logits_b.size());
    for (std::size_t i = 0; i < logits_a.size(); ++i) {
        ASSERT_EQ(logits_a[i].size(), logits_b[i].size()) << i;
        for (std::size_t c = 0; c < logits_a[i].size(); ++c)
            EXPECT_EQ(logits_a[i][c], logits_b[i][c]) << i;
    }
    EXPECT_GT(flips_a, 0u);
}

TEST_F(Serve, FullAlgorithm1WithoutEvalSetFailsAtConstruction) {
    serve::ServeConfig cfg;
    cfg.device.full_algorithm1 = true;

    serve::ServeContext no_eval = context();
    no_eval.eval_images = nullptr;
    no_eval.eval_labels = nullptr;
    EXPECT_THROW((serve::NpuServer(no_eval, cfg)), std::invalid_argument);

    // A present-but-undersized eval set is just as unusable: labels must
    // cover every image. No silent fast-path fallback either way.
    serve::ServeContext short_labels_ctx = context();
    const std::vector<int> short_labels(10, 0);
    short_labels_ctx.eval_labels = &short_labels;
    EXPECT_THROW((serve::NpuServer(short_labels_ctx, cfg)), std::invalid_argument);

    // With a usable eval set the same config constructs fine.
    serve::ServeConfig small = cfg;
    small.device.requant_threshold_mv = 1e9;  // no requants in this probe
    serve::NpuServer ok(context(), small);
    ok.shutdown();
}

TEST_F(Serve, BackgroundRequantKeepsGraphsUntornAndGenerationsMonotonic) {
    constexpr int kRequests = 320;
    constexpr double kThresholdMv = 2.0;

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 4;  // more workers than devices: pool arbitration on
    cfg.max_batch = 4;
    cfg.requant_workers = 2;
    cfg.device.requant_threshold_mv = kThresholdMv;

    // Aggressive aging: each device (serving roughly half the stream)
    // ends around 8 mV, crossing the 2 mV re-quantization threshold
    // several times while traffic is in flight.
    {
        serve::NpuServer probe(context(), cfg);
        const auto& dev = probe.device(0);
        const double busy_hours_per_request =
            static_cast<double>(dev.per_image_cycles()) * dev.clock_period_ps() * 1e-12 /
            3600.0;
        const double target_hours = aging_->years_for_dvth(8.0) * 8760.0;
        cfg.device.age_acceleration =
            target_hours / ((kRequests / 2) * busy_hours_per_request);
        probe.shutdown();
    }

    serve::NpuServer server(context(), cfg);
    // Hammer submit() from two producer threads while the workers serve
    // and the RequantService publishes new generations underneath them.
    std::vector<std::future<serve::InferenceResult>> futures(kRequests);
    std::vector<std::thread> producers;
    for (int t = 0; t < 2; ++t)
        producers.emplace_back([&server, &futures, t] {
            for (int i = t; i < kRequests; i += 2)
                futures[static_cast<std::size_t>(i)] = server.submit(test_image(i % 100));
        });
    for (auto& p : producers) p.join();
    std::vector<serve::InferenceResult> results;
    results.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        results.push_back(futures[static_cast<std::size_t>(i)].get());
    server.shutdown();

    // Per device: generations must advance by exactly one per event, the
    // deployed state must be the last event's generation, and every
    // event must come from the background service.
    std::map<int, std::map<std::uint64_t, quant::QuantizedGraph>> references;
    const auto initial_choice = selector_->select(0.0);
    ASSERT_TRUE(initial_choice.has_value());
    int total_requants = 0;
    for (int d = 0; d < server.num_devices(); ++d) {
        const serve::DeviceStats stats = server.device(d).stats();
        auto& refs = references[d];
        refs.emplace(1, quant::quantize_graph(
                            *graph_, quant::Method::M5_AciqNoBias,
                            quant::QuantConfig::from_compression(initial_choice->compression),
                            *calib_));
        std::uint64_t prev = 1;
        std::int64_t prev_t_us = 0;
        for (const serve::RequantEvent& event : stats.requant_events) {
            EXPECT_EQ(event.generation, prev + 1) << "device " << d;
            EXPECT_TRUE(event.background) << "device " << d;
            EXPECT_GT(event.build_ms, 0.0) << "device " << d;
            EXPECT_GE(event.dvth_mv, kThresholdMv) << "device " << d;
            // Swap timestamps are monotonic per device: generation k+1
            // cannot deploy before generation k on one steady clock.
            EXPECT_GT(event.t_us, 0) << "device " << d;
            EXPECT_GE(event.t_us, prev_t_us) << "device " << d;
            prev_t_us = event.t_us;
            prev = event.generation;
            refs.emplace(event.generation,
                         quant::quantize_graph(
                             *graph_, event.method,
                             quant::QuantConfig::from_compression(event.after), *calib_));
            total_requants += 1;
        }
        EXPECT_EQ(stats.generation, prev) << "device " << d;
        EXPECT_EQ(stats.requant_count, static_cast<int>(stats.requant_events.size()));
    }
    EXPECT_GE(total_requants, 2);

    // No torn graph: every result must be bit-identical to a serial run
    // on the exact generation it reports — a batch that observed half a
    // swap would match no generation.
    for (int i = 0; i < kRequests; ++i) {
        const serve::InferenceResult& result = results[static_cast<std::size_t>(i)];
        ASSERT_GE(result.generation, 1u) << "request " << i;
        const auto& refs = references.at(result.device_id);
        const auto ref = refs.find(result.generation);
        ASSERT_NE(ref, refs.end()) << "request " << i << " reports unknown generation "
                                   << result.generation;
        const tensor::Tensor serial = quant::run_quantized(ref->second, test_image(i % 100));
        ASSERT_EQ(result.logits.size(), serial.size()) << "request " << i;
        for (std::size_t c = 0; c < serial.size(); ++c)
            ASSERT_EQ(result.logits[c], serial[c])
                << "request " << i << " generation " << result.generation << " class " << c;
    }
}

TEST_F(Serve, AgedClockTracksInstalledCompression) {
    constexpr int kRequests = 180;
    constexpr double kThresholdMv = 10.0;

    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.background_requant = false;  // deterministic: requant at the boundary
    cfg.device.requant_threshold_mv = kThresholdMv;

    // Cross the threshold once mid-run (same scaling as the
    // requantizes-exactly-once test).
    {
        serve::NpuServer probe(context(), cfg);
        const auto& dev = probe.device(0);
        const double busy_hours_per_request =
            static_cast<double>(dev.per_image_cycles()) * dev.clock_period_ps() * 1e-12 /
            3600.0;
        const double target_hours = aging_->years_for_dvth(12.0) * 8760.0;
        cfg.device.age_acceleration =
            target_hours / (kRequests * busy_hours_per_request);
        probe.shutdown();
    }

    serve::NpuServer server(context(), cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(test_image(i % 100)));
    std::vector<serve::InferenceResult> results;
    results.reserve(kRequests);
    for (auto& f : futures) results.push_back(f.get());
    server.shutdown();

    const serve::DeviceStats stats = server.device(0).stats();
    ASSERT_GE(stats.requant_count, 1);
    const serve::RequantEvent& event = stats.requant_events.back();

    // Regression for the fresh-forever clock: the device clock must be
    // the installed compression's aged critical path, re-derived at the
    // install — not fresh_critical_path_ps() cached at construction.
    const double aged = selector_->delay_ps(event.dvth_mv, event.after);
    EXPECT_DOUBLE_EQ(event.aged_delay_ps, aged);
    EXPECT_DOUBLE_EQ(stats.clock_period_ps, aged);
    EXPECT_NE(stats.clock_period_ps, selector_->fresh_critical_path_ps());

    // latency_us changes across the requant generation: the per-request
    // implied clock (latency_us / latency_cycles) tracks the deployment.
    double clock_gen1 = 0.0, clock_gen2 = 0.0;
    for (const serve::InferenceResult& r : results) {
        ASSERT_GT(r.latency_cycles, 0u);
        const double implied = r.latency_us * 1e6 / static_cast<double>(r.latency_cycles);
        if (r.generation == 1)
            clock_gen1 = implied;
        else
            clock_gen2 = implied;
    }
    ASSERT_GT(clock_gen1, 0.0);  // some requests served before the swap
    ASSERT_GT(clock_gen2, 0.0);  // and some after
    EXPECT_NE(clock_gen1, clock_gen2);
    EXPECT_NEAR(clock_gen2, aged, 1e-9 * aged);

    // Simulated busy time accrued at the per-batch clock, so operating
    // hours and throughput reflect the aged clock too.
    EXPECT_GT(stats.busy_ps, 0.0);
    EXPECT_NE(stats.busy_ps,
              static_cast<double>(stats.busy_cycles) * selector_->fresh_critical_path_ps());
    EXPECT_GT(stats.sim_throughput_ips(), 0.0);
}

TEST_F(Serve, MalformedRequestFailsItsFutureWithoutKillingTheServer) {
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 1;  // the bad request fails alone, not a whole batch
    serve::NpuServer server(context(), cfg);

    // A multi-sample tensor is not a valid single request: the batcher
    // rejects it on the worker thread, which must fail this future (not
    // call std::terminate) and keep the device serving.
    const tensor::Shape sample = graph_->input_shape();
    auto bad = server.submit(tensor::Tensor({2, sample.c, sample.h, sample.w}));
    EXPECT_THROW((void)bad.get(), std::invalid_argument);

    auto good = server.submit(test_image(0));
    EXPECT_GE(good.get().predicted_class, 0);
    server.shutdown();
}

TEST(ServeStats, LatencyReservoirBoundedWithExactAggregates) {
    constexpr std::size_t kCapacity = 64;
    constexpr std::uint64_t kSamples = 10000;
    serve::LatencyRecorder recorder(kCapacity, /*seed=*/42);
    for (std::uint64_t i = 1; i <= kSamples; ++i) recorder.record(i);

    // Memory stays bounded at the reservoir capacity...
    EXPECT_EQ(recorder.reservoir_size(), kCapacity);
    // ...while count/mean/max stay exact.
    const serve::LatencySummary s = recorder.summary();
    EXPECT_EQ(s.count, kSamples);
    EXPECT_DOUBLE_EQ(s.mean_cycles, (1.0 + static_cast<double>(kSamples)) / 2.0);
    EXPECT_EQ(s.max_cycles, kSamples);
    // The percentiles are estimates from a uniform sample of 1..10000.
    EXPECT_NEAR(s.p50_cycles, 5000.0, 2000.0);
    EXPECT_GT(s.p99_cycles, s.p50_cycles);

    // Deterministic: same seed, same stream, same reservoir.
    serve::LatencyRecorder again(kCapacity, /*seed=*/42);
    for (std::uint64_t i = 1; i <= kSamples; ++i) again.record(i);
    const serve::LatencySummary s2 = again.summary();
    EXPECT_EQ(s2.p50_cycles, s.p50_cycles);
    EXPECT_EQ(s2.p99_cycles, s.p99_cycles);
}

TEST(ServeQueue, CloseWakesBlockedProducersWithoutLosingPromises) {
    constexpr int kProducers = 3;
    serve::BoundedChannel<serve::InferenceRequest> queue(2);
    for (int i = 0; i < 2; ++i) {
        serve::InferenceRequest fill;
        fill.id = static_cast<std::uint64_t>(i);
        ASSERT_TRUE(queue.push(std::move(fill)));
    }

    // Three producers block on the full queue; close() must wake every
    // one with push == false WITHOUT consuming its request, so the
    // caller still owns the promise and can resolve it.
    std::vector<std::future<serve::InferenceResult>> futures(kProducers);
    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t)
        producers.emplace_back([&queue, &futures, &rejected, t] {
            serve::InferenceRequest request;
            request.id = 100 + static_cast<std::uint64_t>(t);
            futures[static_cast<std::size_t>(t)] = request.promise.get_future();
            if (!queue.push(std::move(request))) {
                rejected.fetch_add(1);
                serve::InferenceResult result;
                result.request_id = request.id;
                result.predicted_class = -1;
                request.promise.set_value(std::move(result));
            }
        });
    // Let the producers reach the full-queue wait before closing.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(queue.size(), 2u);
    queue.close();
    for (std::thread& p : producers) p.join();

    EXPECT_EQ(rejected.load(), kProducers);
    for (auto& f : futures) {
        const serve::InferenceResult result = f.get();  // promise not lost
        EXPECT_EQ(result.predicted_class, -1);
    }
    // What was accepted before the close still drains.
    EXPECT_EQ(queue.pop_batch(10).size(), 2u);
    EXPECT_TRUE(queue.pop_batch(10).empty());
}

TEST(ServeBatcher, RejectsMalformedBatchesAndRows) {
    const std::vector<serve::InferenceRequest> empty;
    EXPECT_THROW((void)serve::stack_batch(empty), std::invalid_argument);

    std::vector<serve::InferenceRequest> mismatched(2);
    mismatched[0].image = tensor::Tensor({1, 2, 2, 2});
    mismatched[1].image = tensor::Tensor({1, 2, 3, 3});
    EXPECT_THROW((void)serve::stack_batch(mismatched), std::invalid_argument);

    std::vector<serve::InferenceRequest> multi_sample(1);
    multi_sample[0].image = tensor::Tensor({2, 2, 2, 2});  // n != 1
    EXPECT_THROW((void)serve::stack_batch(multi_sample), std::invalid_argument);

    tensor::Tensor logits({2, 4, 1, 1});
    EXPECT_THROW((void)serve::make_result(0, logits, -1), std::out_of_range);
    EXPECT_THROW((void)serve::make_result(0, logits, 2), std::out_of_range);
}

TEST(ServeQueue, BatchedPopRespectsLimitAndOrder) {
    serve::BoundedChannel<serve::InferenceRequest> queue(16);
    for (int i = 0; i < 10; ++i) {
        serve::InferenceRequest request;
        request.id = static_cast<std::uint64_t>(i);
        ASSERT_TRUE(queue.push(std::move(request)));
    }
    auto first = queue.pop_batch(4);
    ASSERT_EQ(first.size(), 4u);
    EXPECT_EQ(first[0].id, 0u);
    EXPECT_EQ(first[3].id, 3u);
    auto rest = queue.pop_batch(100);
    EXPECT_EQ(rest.size(), 6u);
    queue.close();
    EXPECT_FALSE(queue.push(serve::InferenceRequest{}));
    EXPECT_TRUE(queue.pop_batch(4).empty());
}

TEST(ServeBatcher, StackAndSplitRoundTrip) {
    std::vector<serve::InferenceRequest> batch(3);
    for (int i = 0; i < 3; ++i) {
        batch[static_cast<std::size_t>(i)].id = static_cast<std::uint64_t>(i);
        tensor::Tensor img({1, 2, 2, 2});
        for (std::size_t j = 0; j < img.size(); ++j)
            img.data()[j] = static_cast<float>(i * 100 + static_cast<int>(j));
        batch[static_cast<std::size_t>(i)].image = img;
    }
    const tensor::Tensor stacked = serve::stack_batch(batch);
    EXPECT_EQ(stacked.shape().n, 3);
    EXPECT_EQ(stacked.data()[8], 100.0f);  // row 1 starts at sample 1's data

    tensor::Tensor logits({3, 4, 1, 1});
    for (int n = 0; n < 3; ++n)
        for (int c = 0; c < 4; ++c) logits.at(n, c, 0, 0) = (c == n) ? 5.0f : 0.0f;
    for (int n = 0; n < 3; ++n) {
        const auto result = serve::make_result(batch[static_cast<std::size_t>(n)].id,
                                               logits, n);
        EXPECT_EQ(result.predicted_class, n);
        EXPECT_EQ(result.logits.size(), 4u);
    }
}

}  // namespace
