#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <thread>
#include <vector>

#include "common/compression.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_annotations.hpp"

namespace {

using raq::common::BoxStats;
using raq::common::Compression;
using raq::common::CondVar;
using raq::common::Mutex;
using raq::common::MutexLock;
using raq::common::Padding;
using raq::common::Rng;

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 255ULL, 65536ULL}) {
        for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange) {
    Rng rng(11);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i) hits[rng.next_below(8)]++;
    for (int h : hits) EXPECT_GT(h, 800);  // each bucket near 1000
}

TEST(Rng, NextIntInclusiveBounds) {
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.next_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GeometricMeanMatchesTheory) {
    Rng rng(19);
    for (double p : {0.5, 0.1, 0.01}) {
        double sum = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.next_geometric(p));
        const double expected = (1.0 - p) / p;
        EXPECT_NEAR(sum / n, expected, expected * 0.1 + 0.05) << "p=" << p;
    }
}

TEST(Rng, GeometricDegenerateProbabilities) {
    Rng rng(23);
    EXPECT_EQ(rng.next_geometric(1.0), 0u);
    EXPECT_EQ(rng.next_geometric(2.0), 0u);
}

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(raq::common::mean(xs), 3.0);
    EXPECT_DOUBLE_EQ(raq::common::variance(xs), 2.0);
    EXPECT_DOUBLE_EQ(raq::common::stddev(xs), std::sqrt(2.0));
}

TEST(Stats, MeanThrowsOnEmpty) {
    EXPECT_THROW(raq::common::mean({}), std::invalid_argument);
}

TEST(Stats, QuantileInterpolation) {
    const std::vector<double> xs{0, 10};
    EXPECT_DOUBLE_EQ(raq::common::quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(raq::common::quantile(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(raq::common::quantile(xs, 1.0), 10.0);
    EXPECT_THROW(raq::common::quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, BoxStatsOrdering) {
    const std::vector<double> xs{5, 1, 9, 3, 7, 2, 8};
    const BoxStats b = raq::common::box_stats(xs);
    EXPECT_LE(b.min, b.q1);
    EXPECT_LE(b.q1, b.median);
    EXPECT_LE(b.median, b.q3);
    EXPECT_LE(b.q3, b.max);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.max, 9.0);
}

TEST(Stats, BoxStatsPinsAllQuartilesOnKnownSeries) {
    // 1..9 shuffled: every quartile position lands exactly on a sample.
    const std::vector<double> xs{9, 1, 5, 3, 7, 4, 8, 2, 6};
    const BoxStats b = raq::common::box_stats(xs);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.q1, 3.0);
    EXPECT_DOUBLE_EQ(b.median, 5.0);
    EXPECT_DOUBLE_EQ(b.q3, 7.0);
    EXPECT_DOUBLE_EQ(b.max, 9.0);
    EXPECT_DOUBLE_EQ(b.mean, 5.0);

    // Even length: the quartiles interpolate between samples.
    const BoxStats c = raq::common::box_stats({4, 1, 3, 2});
    EXPECT_DOUBLE_EQ(c.min, 1.0);
    EXPECT_DOUBLE_EQ(c.q1, 1.75);
    EXPECT_DOUBLE_EQ(c.median, 2.5);
    EXPECT_DOUBLE_EQ(c.q3, 3.25);
    EXPECT_DOUBLE_EQ(c.max, 4.0);

    EXPECT_THROW(raq::common::box_stats({}), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(raq::common::pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> neg{8, 6, 4, 2};
    EXPECT_NEAR(raq::common::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
    EXPECT_DOUBLE_EQ(raq::common::pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Stats, RanksWithTies) {
    const auto r = raq::common::ranks({10, 20, 20, 30});
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
    std::vector<double> xs, ys;
    for (int i = 1; i <= 20; ++i) {
        xs.push_back(i);
        ys.push_back(std::exp(0.3 * i));  // nonlinear but monotone
    }
    EXPECT_NEAR(raq::common::spearman(xs, ys), 1.0, 1e-12);
}

TEST(Compression, NormAndFormatting) {
    const Compression c{3, 4, Padding::Lsb};
    EXPECT_DOUBLE_EQ(c.norm(), 5.0);
    EXPECT_EQ(c.to_string(), "(3,4)/LSB");
    EXPECT_FALSE(c.is_none());
    EXPECT_TRUE((Compression{0, 0, Padding::Msb}).is_none());
}

TEST(Table, AlignsAndFormats) {
    raq::common::Table t({"name", "value"});
    t.add_row({"a", raq::common::Table::fmt(1.5, 1)});
    t.add_row({"longer", raq::common::Table::pct(0.23, 0)});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("23%"), std::string::npos);
    EXPECT_THROW(t.add_row({"only-one-column"}), std::invalid_argument);
}

TEST(Table, ScientificFormat) {
    EXPECT_EQ(raq::common::Table::sci(0.0015, 1), "1.5e-03");
}

// ------------------------------------------------- annotated mutex layer
// Exercises the common::Mutex / MutexLock / CondVar wrappers exactly the
// way the runtime uses them: EXCLUDES on the public API, a REQUIRES
// private helper called under the lock, unlock-before-notify, and an
// explicit condition loop (no predicate lambda — TSA analyzes lambda
// bodies as separate functions). Runs multithreaded so the TSan job
// checks the same surface the clang analysis checks statically.
class GuardedCounter {
public:
    void add(int delta) RAQ_EXCLUDES(mutex_) {
        const MutexLock lock(mutex_);
        add_locked(delta);
    }

    [[nodiscard]] int value() const RAQ_EXCLUDES(mutex_) {
        const MutexLock lock(mutex_);
        return value_;
    }

private:
    void add_locked(int delta) RAQ_REQUIRES(mutex_) { value_ += delta; }

    mutable Mutex mutex_;
    int value_ RAQ_GUARDED_BY(mutex_) = 0;
};

TEST(AnnotatedMutex, CounterSurvivesContention) {
    GuardedCounter counter;
    constexpr int kThreads = 8;
    constexpr int kIncrements = 2000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&counter] {
            for (int i = 0; i < kIncrements; ++i) counter.add(1);
        });
    for (auto& w : workers) w.join();
    EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(AnnotatedMutex, TryLockReportsContention) {
    Mutex mutex;
    mutex.lock();
    std::thread other([&mutex] {
        // Distinct thread: std::mutex try_lock from the owner is UB.
        EXPECT_FALSE(mutex.try_lock());
    });
    other.join();
    mutex.unlock();
    ASSERT_TRUE(mutex.try_lock());
    mutex.unlock();
}

// The BoundedChannel/RequantService shape in miniature: producers wait
// on not-full, consumers on not-empty, both with manual unlock before
// notify and explicit while-loops around CondVar::wait.
class HandoffQueue {
public:
    void push(int item) RAQ_EXCLUDES(mutex_) {
        MutexLock lock(mutex_);
        while (items_.size() >= kCapacity) not_full_.wait(mutex_);
        items_.push_back(item);
        lock.unlock();
        not_empty_.notify_one();
    }

    [[nodiscard]] int pop() RAQ_EXCLUDES(mutex_) {
        MutexLock lock(mutex_);
        while (items_.empty()) not_empty_.wait(mutex_);
        const int item = items_.front();
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

private:
    static constexpr std::size_t kCapacity = 4;

    Mutex mutex_;
    CondVar not_empty_;
    CondVar not_full_;
    std::deque<int> items_ RAQ_GUARDED_BY(mutex_);
};

TEST(AnnotatedMutex, CondVarHandoffDeliversEverythingInOrder) {
    HandoffQueue queue;
    constexpr int kItems = 5000;  // >> capacity: forces both waits
    std::vector<int> received;
    received.reserve(kItems);
    std::thread consumer([&] {
        for (int i = 0; i < kItems; ++i) received.push_back(queue.pop());
    });
    for (int i = 0; i < kItems; ++i) queue.push(i);
    consumer.join();
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
