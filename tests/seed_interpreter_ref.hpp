// The seed quantized interpreter (pre-refactor quant/quant_executor.cpp),
// kept verbatim as the single bit-identity reference for the planned
// execution engine: full tree walk, per-call workspace allocation,
// per-channel int64 accumulation over the whole column matrix, ordered
// per-product injector hook. Shared by tests/test_exec.cpp and
// bench/exec_throughput.cpp so the reference cannot silently diverge
// between the two.
//
// (Sole deliberate deviation from the seed: the accumulator-occupancy
// stat shifts the magnitude instead of the signed value — identical
// numbers, without the seed's signed-shift UB under UBSan.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "inject/bitflip.hpp"
#include "ir/float_executor.hpp"
#include "quant/quant_executor.hpp"
#include "quant/quantized_graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::seedref {

inline void im2col_u8(const std::vector<std::uint8_t>& qx, const tensor::Shape& s, int kh,
                      int kw, int stride, int pad, std::vector<std::uint8_t>& columns,
                      int& oh, int& ow) {
    oh = tensor::conv_out_dim(s.h, kh, stride, pad);
    ow = tensor::conv_out_dim(s.w, kw, stride, pad);
    const std::size_t rows = static_cast<std::size_t>(s.c) * static_cast<std::size_t>(kh) *
                             static_cast<std::size_t>(kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) * static_cast<std::size_t>(oh) *
                             static_cast<std::size_t>(ow);
    columns.assign(rows * cols, 0);
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c)
            for (int ky = 0; ky < kh; ++ky)
                for (int kx = 0; kx < kw; ++kx) {
                    const std::size_t row =
                        (static_cast<std::size_t>(c) * static_cast<std::size_t>(kh) +
                         static_cast<std::size_t>(ky)) *
                            static_cast<std::size_t>(kw) +
                        static_cast<std::size_t>(kx);
                    for (int oy = 0; oy < oh; ++oy) {
                        const int iy = oy * stride - pad + ky;
                        if (iy < 0 || iy >= s.h) continue;
                        const std::size_t col_base =
                            (static_cast<std::size_t>(n) * static_cast<std::size_t>(oh) +
                             static_cast<std::size_t>(oy)) *
                            static_cast<std::size_t>(ow);
                        const std::size_t in_base =
                            ((static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                              static_cast<std::size_t>(c)) *
                                 static_cast<std::size_t>(s.h) +
                             static_cast<std::size_t>(iy)) *
                            static_cast<std::size_t>(s.w);
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            if (ix < 0 || ix >= s.w) continue;
                            columns[row * cols + col_base + static_cast<std::size_t>(ox)] =
                                qx[in_base + static_cast<std::size_t>(ix)];
                        }
                    }
                }
}

inline tensor::Tensor conv_quantized(const ir::Op& op, const quant::QConv& qc,
                                     const common::Padding padding, const tensor::Tensor& in,
                                     inject::BitFlipInjector* injector,
                                     quant::QuantExecStats* stats) {
    const auto& s = in.shape();
    const std::uint8_t act_mask =
        static_cast<std::uint8_t>(0xFFu << (qc.act_mask_bits & 7));
    std::vector<std::uint8_t> qx(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        qx[i] = static_cast<std::uint8_t>(qc.act.quantize(in[i])) & act_mask;

    std::vector<std::uint8_t> columns;
    int oh = 0, ow = 0;
    im2col_u8(qx, s, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad, columns, oh, ow);
    const std::size_t kdim = static_cast<std::size_t>(op.conv.in_c) *
                             static_cast<std::size_t>(op.conv.kh) *
                             static_cast<std::size_t>(op.conv.kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) * static_cast<std::size_t>(oh) *
                             static_cast<std::size_t>(ow);

    std::vector<std::int32_t> colsum(cols, 0);
    for (std::size_t k = 0; k < kdim; ++k) {
        const std::uint8_t* row = columns.data() + k * cols;
        for (std::size_t j = 0; j < cols; ++j) colsum[j] += row[j];
    }

    const int shift =
        padding == common::Padding::Lsb ? (8 - qc.act.bits) + (8 - qc.wq(0).bits) : 0;

    tensor::Tensor out({s.n, op.conv.out_c, oh, ow});
    const std::size_t hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    std::vector<std::int64_t> acc(cols);
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const std::uint8_t* wrow = qc.qweights.data() + static_cast<std::size_t>(oc) * kdim;
        std::fill(acc.begin(), acc.end(), 0);
        if (injector == nullptr) {
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                if (w == 0) continue;
                const std::uint8_t* crow = columns.data() + k * cols;
                for (std::size_t j = 0; j < cols; ++j) acc[j] += w * crow[j];
            }
        } else {
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                const std::uint8_t* crow = columns.data() + k * cols;
                for (std::size_t j = 0; j < cols; ++j) {
                    std::int64_t product = static_cast<std::int64_t>(w) * crow[j];
                    product = injector->apply(product);
                    acc[j] += product;
                }
            }
        }
        if (stats) stats->mac_count += kdim * cols;

        const quant::QuantParams& wq = qc.wq(oc);
        const float scale = qc.act.scale * wq.scale;
        const std::int32_t zw = wq.zero_point;
        const std::int64_t qb = qc.qbias[static_cast<std::size_t>(oc)];
        for (std::size_t j = 0; j < cols; ++j) {
            const std::int64_t corrected =
                acc[j] - static_cast<std::int64_t>(zw) * colsum[j] + qb;
            if (stats) {
                const std::int64_t mag = (corrected < 0 ? -corrected : corrected) << shift;
                stats->max_abs_accumulator = std::max(stats->max_abs_accumulator, mag);
                if (mag >= (std::int64_t{1} << 22)) ++stats->accumulator_overflows;
            }
            const std::size_t n = j / hw;
            const std::size_t pos = j % hw;
            out.data()[(n * static_cast<std::size_t>(op.conv.out_c) +
                        static_cast<std::size_t>(oc)) *
                           hw +
                       pos] = static_cast<float>(corrected) * scale;
        }
    }
    if (stats && injector) stats->flips = injector->flips_injected();
    return out;
}

inline tensor::Tensor run_quantized(const quant::QuantizedGraph& qgraph,
                                    const tensor::Tensor& batch,
                                    inject::BitFlipInjector* injector = nullptr,
                                    quant::QuantExecStats* stats = nullptr) {
    const ir::Graph& graph = qgraph.graph();
    std::vector<tensor::Tensor> tensors(static_cast<std::size_t>(graph.num_tensors()));
    tensors[static_cast<std::size_t>(graph.input_id())] = batch;
    for (std::size_t i = 0; i < graph.ops().size(); ++i) {
        const ir::Op& op = graph.ops()[i];
        tensor::Tensor out;
        if (op.kind == ir::OpKind::Conv2d) {
            out = conv_quantized(op, qgraph.conv(i), qgraph.config().padding,
                                 tensors[static_cast<std::size_t>(op.inputs.at(0))], injector,
                                 stats);
        } else {
            std::vector<const tensor::Tensor*> ins;
            ins.reserve(op.inputs.size());
            for (int id : op.inputs) ins.push_back(&tensors[static_cast<std::size_t>(id)]);
            out = ir::apply_nonconv_op(op, ins);
        }
        tensors[static_cast<std::size_t>(op.output)] = std::move(out);
    }
    return std::move(tensors[static_cast<std::size_t>(graph.output_id())]);
}

}  // namespace raq::seedref
