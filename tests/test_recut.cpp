// Online re-partitioning: the heterogeneous min-bottleneck DP, the
// repartition trigger/cost-table helpers, heterogeneous-stage initial
// cuts, and the ShardGroup drain-and-swap re-cut under continuous
// concurrent traffic (bit-identity with a single-device reference,
// monotonic generation/partition ids — the TSan regression surface).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/rng.hpp"
#include "core/compression_selector.hpp"
#include "data/synthetic_dataset.hpp"
#include "ir/partition.hpp"
#include "netlist/builders.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "npu/systolic.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "serve/repartition.hpp"
#include "serve/server.hpp"
#include "serve/shard_group.hpp"

namespace {

using namespace raq;
using namespace std::chrono_literals;

/// A chain of four equal 3x3 convolutions (relu between): every op
/// boundary is a cut candidate and every conv costs the same 192 cycles
/// on the default 64x64 array, so cut positions under different stage
/// cost tables are easy to reason about exactly.
ir::Graph make_conv_chain() {
    common::Rng rng(0xC0FFEE);
    const auto conv = [&rng](int in_c, int out_c) {
        ir::Op op;
        op.kind = ir::OpKind::Conv2d;
        op.conv = {in_c, out_c, 3, 3, 1, 1};
        op.weights.resize(static_cast<std::size_t>(out_c) * in_c * 9);
        for (float& w : op.weights) w = rng.next_float() - 0.5f;
        op.bias.resize(static_cast<std::size_t>(out_c));
        for (float& b : op.bias) b = 0.1f * (rng.next_float() - 0.5f);
        return op;
    };
    ir::Graph g;
    int t = g.add_input({1, 4, 8, 8});
    for (int i = 0; i < 4; ++i) {
        ir::Op c = conv(4, 4);
        c.inputs = {t};
        c.name = "c" + std::to_string(i);
        t = g.add(std::move(c));
        if (i + 1 < 4) {
            ir::Op r;
            r.kind = ir::OpKind::Relu;
            r.inputs = {t};
            r.name = "r" + std::to_string(i);
            t = g.add(std::move(r));
        }
    }
    g.set_output(t);
    return g;
}

TEST(Repartition, StageImbalanceNeedsAMatureWindow) {
    using serve::StageWindow;
    // Immature: any stage below min_batches, or without busy time.
    EXPECT_EQ(serve::stage_imbalance({}, 1), 0.0);
    EXPECT_EQ(serve::stage_imbalance({{4, 100.0}, {1, 100.0}}, 2), 0.0);
    EXPECT_EQ(serve::stage_imbalance({{4, 100.0}, {4, 0.0}}, 2), 0.0);
    // Mature: max/min busy picoseconds.
    EXPECT_DOUBLE_EQ(serve::stage_imbalance({{4, 100.0}, {4, 100.0}}, 2), 1.0);
    EXPECT_DOUBLE_EQ(serve::stage_imbalance({{4, 300.0}, {4, 100.0}}, 2), 3.0);
    EXPECT_DOUBLE_EQ(serve::stage_imbalance({{8, 50.0}, {9, 200.0}, {10, 100.0}}, 4),
                     4.0);
}

TEST(Repartition, AgedCostTablesScaleEachStagesCyclesByItsClock) {
    const ir::Graph g = make_conv_chain();
    const npu::SystolicConfig array{};
    const std::vector<std::uint64_t> cycles = npu::op_cycle_costs(g, array);
    const auto tables = serve::aged_cost_tables(g, {array, array}, {1.0, 2.5});
    ASSERT_EQ(tables.size(), 2u);
    ASSERT_EQ(tables[0].size(), g.ops().size());
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        EXPECT_EQ(tables[0][i], cycles[i]);
        EXPECT_EQ(tables[1][i], static_cast<std::uint64_t>(
                                    std::llround(2.5 * static_cast<double>(cycles[i]))));
    }
    EXPECT_THROW((void)serve::aged_cost_tables(g, {array}, {1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)serve::aged_cost_tables(g, {array, array}, {1.0, 0.0}),
                 std::invalid_argument);
}

TEST(Partition, HeterogeneousMatchesHomogeneousOnEqualTables) {
    const ir::Graph g = make_conv_chain();
    const std::vector<std::uint64_t> cycles = npu::op_cycle_costs(g);
    const auto homo = ir::partition_graph(g, 3, cycles);
    const auto hetero = ir::partition_graph_heterogeneous(g, {cycles, cycles, cycles});
    ASSERT_EQ(homo.size(), hetero.size());
    for (std::size_t k = 0; k < homo.size(); ++k) {
        EXPECT_EQ(homo[k].first_op, hetero[k].first_op);
        EXPECT_EQ(homo[k].last_op, hetero[k].last_op);
        EXPECT_EQ(homo[k].cost, hetero[k].cost);
    }
}

TEST(Partition, SlowStageShedsWorkUnderHeterogeneousCosts) {
    const ir::Graph g = make_conv_chain();
    const std::vector<std::uint64_t> cycles = npu::op_cycle_costs(g);
    // Four equal convs: a homogeneous 2-cut splits 2/2.
    const auto homo = ir::partition_graph(g, 2, cycles);
    EXPECT_EQ(homo[0].cost, homo[1].cost);

    // Stage 1 three times slower: the DP hands it one conv and keeps
    // three on stage 0 (bottleneck 3x192 = 576 either way; any other cut
    // is worse).
    std::vector<std::uint64_t> slow(cycles);
    for (std::uint64_t& c : slow) c *= 3;
    const auto hetero = ir::partition_graph_heterogeneous(g, {cycles, slow});
    ASSERT_EQ(hetero.size(), 2u);
    EXPECT_GT(hetero[0].last_op, homo[0].last_op);
    EXPECT_EQ(hetero[0].cost, 3u * 192u);  // three convs at stage 0 rates
    EXPECT_EQ(hetero[1].cost, 3u * 192u);  // one conv at 3x rates

    // Brute force over all 2-shard cut choices confirms the DP found the
    // minimum bottleneck on the mixed tables.
    std::uint64_t best = ~0ULL;
    for (const int cut : ir::cut_candidates(g)) {
        std::uint64_t s0 = 0, s1 = 0;
        for (int i = 0; i <= cut; ++i) s0 += cycles[static_cast<std::size_t>(i)];
        for (int i = cut + 1; i < static_cast<int>(g.ops().size()); ++i)
            s1 += slow[static_cast<std::size_t>(i)];
        if (s0 == 0 || s1 == 0) continue;
        best = std::min(best, std::max(s0, s1));
    }
    EXPECT_EQ(std::max(hetero[0].cost, hetero[1].cost), best);

    EXPECT_THROW((void)ir::partition_graph_heterogeneous(g, {}), std::invalid_argument);
    EXPECT_THROW((void)ir::partition_graph_heterogeneous(
                     g, {cycles, std::vector<std::uint64_t>(3, 1)}),
                 std::invalid_argument);
}

TEST(Partition, NarrowStageArrayShiftsTheInitialCut) {
    const ir::Graph g = make_conv_chain();
    const npu::SystolicConfig wide{};              // 64x64, fill 192
    npu::SystolicConfig narrow;
    narrow.rows = 8;
    narrow.cols = 8;
    narrow.pipeline_fill = 16;
    // On the narrow array every conv needs ceil(36/8) x ceil(4/8) = 5
    // tiles of (64 + 16) cycles = 400 cycles vs 192 on the wide one.
    const serve::ShardPartition hetero =
        serve::make_shard_partition(g, std::vector<npu::SystolicConfig>{wide, narrow}, 2);
    ASSERT_EQ(hetero.specs.size(), 2u);
    const serve::ShardPartition homo = serve::make_shard_partition(g, wide, 2, 2);
    // The narrow stage gets less of the graph than an equal-array split.
    EXPECT_GT(hetero.specs[0].last_op, homo.specs[0].last_op);
    EXPECT_EQ(hetero.specs[0].cost, 3u * 192u);  // three convs, wide rates
    EXPECT_EQ(hetero.specs[1].cost, 400u);       // one conv, narrow rates
}

/// Trained-model fixture for the serving re-cut tests (same deployment
/// stack as tests/test_shard.cpp).
class Recut : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::DatasetConfig dc;
        dc.train_size = 600;
        dc.test_size = 200;
        dataset_ = new data::SyntheticDataset(dc);

        auto net = nn::make_network("alexnet-mini");
        nn::TrainConfig tcfg;
        tcfg.epochs = 2;
        nn::SgdTrainer trainer(tcfg);
        trainer.fit(net, *dataset_);
        graph_ = new ir::Graph(net.export_ir());

        const auto calib_images = dataset_->train_batch(0, 48);
        const std::vector<int> calib_labels(dataset_->train_labels().begin(),
                                            dataset_->train_labels().begin() + 48);
        calib_ = new quant::CalibrationData(
            quant::calibrate(*graph_, calib_images, calib_labels));

        mac_ = new netlist::Netlist(netlist::build_mac_circuit());
        library_ = new cell::Library(cell::Library::finfet14());
        selector_ = new core::CompressionSelector(*mac_, *library_);
        aging_ = new aging::AgingModel();
    }
    static void TearDownTestSuite() {
        delete aging_;
        delete selector_;
        delete library_;
        delete mac_;
        delete calib_;
        delete graph_;
        delete dataset_;
    }

    [[nodiscard]] static serve::ServeContext context() {
        serve::ServeContext ctx;
        ctx.graph = graph_;
        ctx.calib = calib_;
        ctx.selector = selector_;
        ctx.aging = aging_;
        return ctx;
    }

    [[nodiscard]] static tensor::Tensor test_image(int index) {
        return dataset_->test_batch(index, 1);
    }

    /// ΔVth at which the minimum-norm (uncompressed) deployment's aged
    /// delay reaches `ratio` x the fresh critical path.
    [[nodiscard]] static double dvth_for_delay_ratio(double ratio) {
        const common::Compression none{};
        const double fresh = selector_->delay_ps(0.0, none);
        double lo = 0.0, hi = 300.0;
        while (selector_->delay_ps(hi, none) < ratio * fresh) hi += 50.0;
        for (int i = 0; i < 100; ++i) {
            const double mid = 0.5 * (lo + hi);
            (selector_->delay_ps(mid, none) < ratio * fresh ? lo : hi) = mid;
        }
        return hi;
    }

    static data::SyntheticDataset* dataset_;
    static ir::Graph* graph_;
    static quant::CalibrationData* calib_;
    static netlist::Netlist* mac_;
    static cell::Library* library_;
    static core::CompressionSelector* selector_;
    static aging::AgingModel* aging_;
};

data::SyntheticDataset* Recut::dataset_ = nullptr;
ir::Graph* Recut::graph_ = nullptr;
quant::CalibrationData* Recut::calib_ = nullptr;
netlist::Netlist* Recut::mac_ = nullptr;
cell::Library* Recut::library_ = nullptr;
core::CompressionSelector* Recut::selector_ = nullptr;
aging::AgingModel* Recut::aging_ = nullptr;

TEST_F(Recut, DrainAndSwapKeepsBitIdentityUnderContinuousTraffic) {
    constexpr int kPhase = 48;
    constexpr double kGuardband = 1.2;
    // Stage-1 device enters the field aged until its (uncompressed)
    // deployment clock runs 2x the fresh period; the guardband keeps the
    // compression selection identical on both shards, so the pipeline
    // stays bit-identical to one fresh device while its cut drifts far
    // off the real bottleneck.
    const double dvth_aged = dvth_for_delay_ratio(2.0);
    const double aged_years = aging_->years_for_dvth(dvth_aged);

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    // One worker: batches enter the pipeline in submit order (two pool
    // workers could hand the single group later requests first), so the
    // per-request partition ids must be monotonic in submit order.
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.initial_age_step_years = aged_years;
    cfg.device.guardband_fraction = kGuardband;
    cfg.device.requant_threshold_mv = 1e9;  // isolate the re-cut from requants
    // Re-cuts rebuild runners on devices that own execution pools; the
    // drained-and-swapped pipeline must stay bit-identical regardless.
    cfg.device.exec_threads = 2;
    cfg.repartition.enabled = true;
    cfg.repartition.imbalance_ratio = 1.4;
    cfg.repartition.min_batches = 2;
    cfg.repartition.poll_ms = 1;
    serve::NpuServer server(context(), cfg);

    const auto choice = selector_->select(0.0, kGuardband);
    ASSERT_TRUE(choice.has_value());
    const quant::QuantizedGraph reference = quant::quantize_graph(
        *graph_, quant::Method::M5_AciqNoBias,
        quant::QuantConfig::from_compression(choice->compression), *calib_);

    // Concurrent observers while traffic and the re-cut are in flight:
    // the TSan surface this test exists for.
    std::atomic<bool> stop_observer{false};
    std::thread observer([&] {
        while (!stop_observer.load(std::memory_order_acquire)) {
            (void)server.fleet_stats();
            (void)server.shard_group(0).repartition_stats();
            std::this_thread::sleep_for(1ms);
        }
    });

    std::vector<int> image_of;
    std::vector<serve::InferenceResult> results;
    const auto submit_phase = [&] {
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(kPhase);
        for (int i = 0; i < kPhase; ++i) {
            const int index = static_cast<int>(image_of.size()) % 100;
            image_of.push_back(index);
            futures.push_back(server.submit(test_image(index)));
        }
        for (auto& f : futures) results.push_back(f.get());
    };

    // Phase 1 exposes the imbalance; the monitor re-cuts while phase 2's
    // traffic keeps flowing through the swap.
    submit_phase();
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (server.shard_group(0).partition_generation() < 2 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    ASSERT_GE(server.shard_group(0).partition_generation(), 2u)
        << "online re-cut did not happen within the deadline";
    submit_phase();

    stop_observer.store(true, std::memory_order_release);
    observer.join();
    server.shutdown();

    // Every request — before, across and after the swap — must match the
    // single-device reference bit for bit, and the partition ids it
    // reports must be monotonic in submit order (no torn batches).
    std::uint64_t last_partition = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const tensor::Tensor serial =
            quant::run_quantized(reference, test_image(image_of[i]));
        ASSERT_EQ(results[i].logits.size(), serial.size()) << "request " << i;
        for (std::size_t c = 0; c < serial.size(); ++c)
            ASSERT_EQ(results[i].logits[c], serial[c])
                << "request " << i << " class " << c;
        ASSERT_GE(results[i].partition, 1u);
        ASSERT_GE(results[i].partition, last_partition)
            << "partition ids must be monotonic in submit order";
        last_partition = results[i].partition;
        EXPECT_GE(results[i].generation, 1u);
    }
    // Phase 2 ran entirely on the new partition.
    EXPECT_GE(results.back().partition, 2u);

    const auto& group = server.shard_group(0);
    const serve::RepartitionStats rp = group.repartition_stats();
    EXPECT_GE(rp.recuts, 1u);
    EXPECT_GE(rp.triggers, rp.recuts);
    EXPECT_EQ(rp.partition_generation, group.partition_generation());

    // The re-cut moved real work off the slow device: the new cut gives
    // stage 0 (fresh clock) more cycles than the fresh-silicon balance.
    const serve::ShardPartition fresh_cut = serve::make_shard_partition(
        *graph_, cfg.device.systolic, 2, cfg.max_batch);
    EXPECT_GT(group.shard_spec(0).last_op, fresh_cut.specs[0].last_op);

    // Each shard's version stream stays monotonic across the remap, and
    // the remap itself is recorded as a recut deployment.
    for (int k = 0; k < group.num_shards(); ++k) {
        const serve::DeviceStats stats = group.shard(k).stats();
        std::uint64_t prev = 1;
        int recut_events = 0;
        for (const serve::RequantEvent& event : stats.requant_events) {
            EXPECT_EQ(event.generation, prev + 1) << "shard " << k;
            recut_events += event.recut ? 1 : 0;
            prev = event.generation;
        }
        EXPECT_EQ(recut_events, 1) << "shard " << k;
        EXPECT_EQ(stats.generation, prev) << "shard " << k;
        EXPECT_EQ(stats.requests, results.size()) << "shard " << k;
    }
}

TEST_F(Recut, BalancedPipelineNeverRecuts) {
    constexpr int kRequests = 40;
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.repartition.enabled = true;  // monitor runs, trigger never fires
    cfg.repartition.imbalance_ratio = 1.5;
    // A window long enough to amortize pipeline-fill skew: while the
    // pipeline fills, stage 0 legitimately runs several batches ahead of
    // stage 1, which would fake an imbalance over a 2-batch window.
    cfg.repartition.min_batches = 8;
    cfg.repartition.poll_ms = 1;
    serve::NpuServer server(context(), cfg);

    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(test_image(i)));
    std::vector<serve::InferenceResult> results;
    results.reserve(kRequests);
    for (auto& f : futures) results.push_back(f.get());

    // Let the monitor evaluate at least one mature window, then stop.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (server.shard_group(0).repartition_stats().checks == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    server.shutdown();

    const serve::RepartitionStats rp = server.shard_group(0).repartition_stats();
    EXPECT_GE(rp.checks, 1u);
    EXPECT_EQ(rp.recuts, 0u);
    EXPECT_EQ(rp.partition_generation, 1u);
    EXPECT_GT(rp.last_imbalance, 0.0);
    EXPECT_LT(rp.last_imbalance, cfg.repartition.imbalance_ratio);
    for (const serve::InferenceResult& result : results)
        EXPECT_EQ(result.partition, 1u);
}

TEST_F(Recut, ShardingOnlyConfigIsRefusedOnAReplicatedLayout) {
    // Sharding-only features on num_shards == 1 would be silently dead
    // config; the server refuses them like every other misconfiguration.
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 1;
    cfg.repartition.enabled = true;
    EXPECT_THROW((serve::NpuServer(context(), cfg)), std::invalid_argument);
    cfg.repartition.enabled = false;
    cfg.shard_systolic = {npu::SystolicConfig{}};
    EXPECT_THROW((serve::NpuServer(context(), cfg)), std::invalid_argument);
}

TEST_F(Recut, HeterogeneousStageArraysServeBitIdenticallyOnAShiftedCut) {
    constexpr int kRequests = 16;
    npu::SystolicConfig narrow;
    narrow.rows = 16;
    narrow.cols = 16;
    narrow.pipeline_fill = 32;

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_shards = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 4;
    cfg.shard_systolic = {npu::SystolicConfig{}, narrow};
    serve::NpuServer server(context(), cfg);

    // The shared partition balanced each stage on its own array: the
    // narrow stage 1 gets less of the graph than an equal-array cut.
    const serve::ShardPartition homo = serve::make_shard_partition(
        *graph_, npu::SystolicConfig{}, 2, cfg.max_batch);
    const serve::ShardPartition hetero = serve::make_shard_partition(
        *graph_, cfg.shard_systolic, cfg.max_batch);
    const auto& group = server.shard_group(0);
    EXPECT_GT(group.shard_spec(0).last_op, homo.specs[0].last_op);
    EXPECT_EQ(group.shard_spec(0).last_op, hetero.specs[0].last_op);
    EXPECT_EQ(group.shard_spec(1).last_op, hetero.specs[1].last_op);

    // Arithmetic is untouched by the cycle model: results match the
    // fresh single-device deployment bit for bit.
    const auto choice = selector_->select(0.0);
    ASSERT_TRUE(choice.has_value());
    const quant::QuantizedGraph reference = quant::quantize_graph(
        *graph_, quant::Method::M5_AciqNoBias,
        quant::QuantConfig::from_compression(choice->compression), *calib_);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(test_image(i)));
    for (int i = 0; i < kRequests; ++i) {
        const serve::InferenceResult result = futures[static_cast<std::size_t>(i)].get();
        const tensor::Tensor serial = quant::run_quantized(reference, test_image(i));
        ASSERT_EQ(result.logits.size(), serial.size()) << "request " << i;
        for (std::size_t c = 0; c < serial.size(); ++c)
            ASSERT_EQ(result.logits[c], serial[c]) << "request " << i << " class " << c;
    }
    server.shutdown();

    // Each stage's cycle accounting runs on its own array model.
    EXPECT_EQ(group.shard(0).per_image_cycles(),
              npu::SystolicArrayModel(npu::SystolicConfig{})
                  .analyze(group.shard_graph(0))
                  .total_cycles);
    EXPECT_EQ(group.shard(1).per_image_cycles(),
              npu::SystolicArrayModel(narrow).analyze(group.shard_graph(1)).total_cycles);
}

}  // namespace
