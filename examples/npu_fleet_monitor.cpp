// Fleet monitor: live observability for a serving NPU fleet.
//
// Runs the worst-case fleet this repo models — a 2-shard pipeline whose
// stage-1 device entered the field aged hard, with accelerated aging,
// background re-quantization and online re-partitioning all active —
// with telemetry on, then renders what an operator would look at:
//
//   1. the reliability-event timeline (requant builds/swaps, re-cut
//      triggers, drain-and-swap re-cuts), one line per event
//   2. sampled per-request traces: the queue → batch → handoff →
//      execute(stage 0) → handoff → execute(stage 1) → complete journey
//      of deterministically sampled requests
//   3. a Prometheus-style metrics scrape (histogram buckets elided)
//   4. a per-level host-time profile of one quantized inference, via
//      QuantRunner's level timing hook
//
// Usage: npu_fleet_monitor [requests] [network]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"
#include "quant/calibration.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    const int requests = argc > 1 ? std::atoi(argv[1]) : 320;
    const std::string model = argc > 2 ? argv[2] : "alexnet-mini";

    nn::ModelCache cache;
    auto& net = cache.get(model);
    auto graph = net.export_ir();
    const auto& ds = cache.dataset();
    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);
    const auto calib = quant::calibrate(graph, calib_images, calib_labels);

    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    // Stage 1 enters the field aged to a ~2x clock: find the ΔVth whose
    // uncompressed aged delay doubles the fresh critical path.
    const common::Compression none{};
    const double fresh_delay = selector.delay_ps(0.0, none);
    double dvth_aged = 0.0;
    {
        double lo = 0.0, hi = 300.0;
        while (selector.delay_ps(hi, none) < 2.0 * fresh_delay) hi += 50.0;
        for (int i = 0; i < 100; ++i) {
            const double mid = 0.5 * (lo + hi);
            (selector.delay_ps(mid, none) < 2.0 * fresh_delay ? lo : hi) = mid;
        }
        dvth_aged = hi;
    }

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.num_shards = 2;
    cfg.initial_age_step_years = aging_model.years_for_dvth(dvth_aged);
    cfg.device.guardband_fraction = 1.2;
    cfg.device.requant_threshold_mv = 2.5;
    cfg.background_requant = true;
    cfg.repartition.enabled = true;
    cfg.repartition.imbalance_ratio = 1.4;
    cfg.repartition.min_batches = 4;
    cfg.repartition.poll_ms = 1;
    // Device-private execution pools: the scrape below shows the active
    // SIMD dispatch tier and counts the level-parallel runs these enable.
    cfg.device.exec_threads = 2;
    // Telemetry on: metrics registry + 10% deterministic trace sampling.
    cfg.telemetry.metrics = true;
    cfg.telemetry.trace_sample_rate = 0.10;
    cfg.telemetry.trace_reservoir = 32;

    // Scale aging so this stream adds ~8 mV of fresh-silicon ΔVth —
    // several requant-threshold crossings while serving.
    {
        serve::ServeConfig probe_cfg;
        serve::NpuServer probe(ctx, probe_cfg);
        const double busy_hours_per_request =
            static_cast<double>(probe.device(0).per_image_cycles()) *
            probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
        probe.shutdown();
        cfg.device.age_acceleration = aging_model.years_for_dvth(8.0) * 8760.0 /
                                      (requests * busy_hours_per_request);
    }

    std::printf("npu_fleet_monitor: %s, 2-shard pipeline, stage 1 aged to ΔVth "
                "%.1f mV (~2x clock),\nbackground requant + online re-cut + "
                "telemetry (10%% traces), %d requests\n\n",
                model.c_str(), dvth_aged, requests);

    serve::NpuServer server(ctx, cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        futures.push_back(server.submit(ds.test_batch(i % 200, 1)));
    for (auto& f : futures) f.get();

    // ---- 1. the reliability timeline: what happened to the fleet, when.
    std::printf("reliability timeline (steady-clock µs since server start):\n%s\n",
                server.export_timeline().c_str());

    // ---- 2. sampled request traces (deterministic: the same ids sample
    // on every run with this seed).
    std::printf("sampled request traces (%llu started, reservoir of %zu):\n%s\n",
                static_cast<unsigned long long>(server.telemetry()->traces().started()),
                server.telemetry()->traces().snapshot().size(),
                server.export_traces().c_str());

    // ---- 3. the metrics scrape, as a dashboard would pull it. Histogram
    // bucket series are elided here for brevity (the full exposition and
    // a JSONL dump are one export_metrics()/export_metrics_jsonl() away).
    {
        std::istringstream expo(server.export_metrics());
        std::string line;
        std::printf("metrics scrape (histogram buckets elided):\n");
        while (std::getline(expo, line))
            if (line.find("_bucket{") == std::string::npos)
                std::printf("  %s\n", line.c_str());
        std::printf("\n");
    }
    server.shutdown();

    // ---- 4. per-level host-time profile of one quantized inference: the
    // engine's level timing hook, fed by a standalone runner over the
    // same network at the aged shard's ΔVth.
    {
        const auto choice = selector.select(dvth_aged, cfg.device.guardband_fraction);
        const quant::QuantizedGraph qgraph = quant::quantize_graph(
            graph, quant::Method::M5_AciqNoBias,
            quant::QuantConfig::from_compression(choice->compression), calib);
        quant::QuantRunner runner(qgraph);
        std::vector<double> level_us;
        runner.set_level_hook([&](int level, double host_us) {
            if (level >= static_cast<int>(level_us.size()))
                level_us.resize(static_cast<std::size_t>(level) + 1, 0.0);
            level_us[static_cast<std::size_t>(level)] += host_us;
        });
        const tensor::Tensor image = ds.test_batch(0, 1);
        const int reps = 10;
        for (int r = 0; r < reps; ++r) (void)runner.run(image);
        double total = 0.0;
        for (const double us : level_us) total += us;
        std::printf("per-level host time, one inference at ΔVth %.1f mV "
                    "(avg of %d runs):\n", dvth_aged, reps);
        common::Table profile({"level", "host [us]", "share"});
        for (std::size_t l = 0; l < level_us.size(); ++l)
            profile.add_row({std::to_string(l),
                             common::Table::fmt(level_us[l] / reps, 1),
                             common::Table::pct(total > 0 ? level_us[l] / total : 0.0, 1)});
        std::printf("%s\n", profile.to_string().c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "npu_fleet_monitor: %s\n", e.what());
    return 1;
}
