// Fleet monitor: a cross-layer what-if for a deployed NPU at a chosen
// age. Compares three operating policies:
//
//   guardband  — conventional design: correct but 23 % slower from day 0
//   ignore     — fresh clock, no mitigation: the event-driven timing
//                simulator measures the real MSB flip rate of the aged
//                multiplier, which is then injected into the quantized
//                network to estimate the surviving accuracy
//   ours       — fresh clock + aging-aware re-quantization (Algorithm 1)
//
// Usage: npu_fleet_monitor [years] [network]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"
#include "quant/evaluate.hpp"
#include "sim/error_stats.hpp"
#include "sta/sta.hpp"

int main(int argc, char** argv) {
    using namespace raq;
    const double years = argc > 1 ? std::atof(argv[1]) : 6.0;
    const std::string model = argc > 2 ? argv[2] : "resnet32-mini";

    const aging::AgingModel aging_model;
    const double dvth = aging_model.dvth_mv(years);
    const cell::Library fresh = cell::Library::finfet14();
    const cell::Library aged = fresh.aged(dvth);

    const netlist::Netlist mac = netlist::build_mac_circuit();
    const netlist::Netlist mult = netlist::build_multiplier_circuit(8);
    const core::CompressionSelector selector(mac, fresh);
    const double fresh_cp = selector.fresh_critical_path_ps();

    std::printf("Fleet monitor: %s, %.1f years in the field (dVth = %.1f mV)\n\n",
                model.c_str(), years, dvth);

    // Measure the aged multiplier's real MSB flip rate at the fresh clock.
    const sta::Sta mult_sta(mult, fresh);
    sim::ErrorRunConfig err_cfg;
    err_cfg.clock_ps = mult_sta.critical_path_ps(fresh) * 1.0001;
    err_cfg.cycles = 40000;
    const auto err = sim::characterize_multiplier(mult, aged, err_cfg);
    std::printf("measured on silicon model: MSB flip probability %.2e, MED %.1f\n\n",
                err.msb2_flip_prob, err.med);

    nn::ModelCache cache;
    auto& net = cache.get(model);
    auto graph = net.export_ir();
    const auto& ds = cache.dataset();
    const auto test_images = ds.test_batch(0, 500);
    const std::vector<int> test_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 500);
    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);
    const auto calib = quant::calibrate(graph, calib_images, calib_labels);

    // 8-bit deployment baseline (what all three policies start from).
    const auto q8 = quant::quantize_graph(graph, quant::Method::M5_AciqNoBias,
                                          quant::QuantConfig{}, calib);
    const double acc8 = quant::quantized_accuracy(q8, test_images, test_labels);

    // Policy "ignore": inject the measured flip rate into the 8-bit model.
    quant::EvalOptions inject_opts;
    inject_opts.injection.flip_probability = err.msb2_flip_prob;
    inject_opts.injection.seed = 1234;
    inject_opts.repetitions = 5;
    const double acc_ignore =
        err.msb2_flip_prob > 0
            ? quant::quantized_accuracy(q8, test_images, test_labels, inject_opts)
            : acc8;

    // Policy "ours": Algorithm 1 at this aging level.
    core::AagInputs inputs;
    inputs.graph = &graph;
    inputs.test_images = &test_images;
    inputs.test_labels = &test_labels;
    inputs.calib_images = &calib_images;
    inputs.calib_labels = &calib_labels;
    const core::AgingAwareQuantizer quantizer(selector);
    const auto ours = quantizer.run(inputs, dvth);

    const double guardband_period = fresh_cp * fresh.derate_for(50.0);
    common::Table table({"policy", "clock [ps]", "rel. speed", "accuracy", "note"});
    table.add_row({"guardband (conventional)", common::Table::fmt(guardband_period, 1),
                   common::Table::fmt(fresh_cp / guardband_period, 2), common::Table::pct(acc8, 1),
                   "pays 23% forever"});
    table.add_row({"ignore aging", common::Table::fmt(fresh_cp, 1), "1.00",
                   common::Table::pct(acc_ignore, 1), "timing errors corrupt MACs"});
    table.add_row({"aging-aware quantization", common::Table::fmt(fresh_cp, 1), "1.00",
                   common::Table::pct(ours.quantized_accuracy, 1),
                   "compression " + ours.compression.compression.to_string() + ", method " +
                       quant::method_label(ours.selected_method)});
    std::printf("%s\n", table.to_string().c_str());
    return 0;
}
