// Standalone load-generator CLI for the net front-end: drive any running
// raq socket endpoint (e.g. examples/serve_edge) with one of the
// production traffic shapes and print the LoadReport.
//
// The sample stream is u8-quantized from the synthetic dataset — the
// same encoding the tests use for bit-identity, so an `ok` here is a
// fully served inference, not a ping.
//
// Usage: net_load_gen <host> <port> [traffic] [rate_rps] [duration_s]
//                     [connections] [network]
//   traffic: closed-loop | constant | poisson | diurnal | bursty
//   rate_rps: open-loop offered load across all connections (peak for
//             diurnal); ignored by closed-loop
//   duration_s: open-loop run length; closed-loop sends
//               rate_rps x duration_s requests instead
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/load_gen.hpp"
#include "nn/model_cache.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: net_load_gen <host> <port> [traffic] [rate_rps] "
                     "[duration_s] [connections] [network]\n");
        return 1;
    }
    net::LoadGenConfig cfg;
    cfg.host = argv[1];
    cfg.port = static_cast<std::uint16_t>(std::atoi(argv[2]));
    const std::string traffic = argc > 3 ? argv[3] : "closed-loop";
    cfg.rate_rps = argc > 4 ? std::atof(argv[4]) : 100.0;
    const double duration_s = argc > 5 ? std::atof(argv[5]) : 10.0;
    cfg.connections = argc > 6 ? std::atoi(argv[6]) : 8;
    const std::string model = argc > 7 ? argv[7] : "alexnet-mini";

    if (traffic == "closed-loop") {
        cfg.model = net::TrafficModel::ClosedLoop;
        cfg.total_requests =
            static_cast<std::uint64_t>(std::max(1.0, cfg.rate_rps * duration_s));
    } else if (traffic == "constant") {
        cfg.model = net::TrafficModel::Constant;
    } else if (traffic == "poisson") {
        cfg.model = net::TrafficModel::Poisson;
    } else if (traffic == "diurnal") {
        cfg.model = net::TrafficModel::Diurnal;
    } else if (traffic == "bursty") {
        cfg.model = net::TrafficModel::Bursty;
    } else {
        std::fprintf(stderr,
                     "net_load_gen: unknown traffic '%s' (closed-loop|constant|"
                     "poisson|diurnal|bursty)\n",
                     traffic.c_str());
        return 1;
    }
    cfg.duration_s = duration_s;

    // The dataset shape must match what the server deployed — both sides
    // default to the synthetic dataset's (3, 16, 16) samples.
    nn::ModelCache cache;
    (void)model;  // the wire carries tensors, not weights; any sample set works
    std::vector<net::EncodedSample> samples;
    samples.reserve(64);
    for (int i = 0; i < 64; ++i)
        samples.push_back(net::encode_sample(cache.dataset().test_batch(i % 200, 1), 1));

    std::printf("net_load_gen: %s traffic -> %s:%u, %d connection(s), "
                "%.0f rps offered, %.1f s\n",
                net::traffic_model_name(cfg.model), cfg.host.c_str(), cfg.port,
                cfg.connections, cfg.rate_rps, duration_s);

    const net::LoadReport report = net::run_load(cfg, samples);
    std::printf("%s\n", report.to_string().c_str());
    return report.lossless() ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "net_load_gen: %s\n", e.what());
    return 1;
}
