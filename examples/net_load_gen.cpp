// Standalone load-generator CLI for the net front-end: drive any running
// raq socket endpoint (e.g. examples/serve_edge) with one of the
// production traffic shapes and print the LoadReport.
//
// The sample stream is u8-quantized from the synthetic dataset — the
// same encoding the tests use for bit-identity, so an `ok` here is a
// fully served inference, not a ping.
//
// Usage: net_load_gen <host> <port> [traffic] [rate_rps] [duration_s]
//                     [connections] [network] [--interactive-frac F]
//   traffic: closed-loop | constant | poisson | diurnal | bursty
//   rate_rps: open-loop offered load across all connections (peak for
//             diurnal); ignored by closed-loop
//   duration_s: open-loop run length; closed-loop sends
//               rate_rps x duration_s requests instead
//   --interactive-frac F: fraction of requests sent on the interactive
//               lane (default 1.0); the rest go out as batch-class
//               Op::InferClass frames and the report breaks out per-class
//               percentiles
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/load_gen.hpp"
#include "nn/model_cache.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    net::LoadGenConfig cfg;
    // Strip --interactive-frac (either "--interactive-frac F" or
    // "--interactive-frac=F") so the positional arguments keep their slots.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--interactive-frac=", 0) == 0) {
            cfg.interactive_frac = std::atof(arg.c_str() + std::strlen("--interactive-frac="));
        } else if (arg == "--interactive-frac" && i + 1 < argc) {
            cfg.interactive_frac = std::atof(argv[++i]);
        } else {
            args.push_back(arg);
        }
    }
    cfg.interactive_frac = std::clamp(cfg.interactive_frac, 0.0, 1.0);
    if (args.size() < 2) {
        std::fprintf(stderr,
                     "usage: net_load_gen <host> <port> [traffic] [rate_rps] "
                     "[duration_s] [connections] [network] [--interactive-frac F]\n");
        return 1;
    }
    cfg.host = args[0];
    cfg.port = static_cast<std::uint16_t>(std::atoi(args[1].c_str()));
    const std::string traffic = args.size() > 2 ? args[2] : "closed-loop";
    cfg.rate_rps = args.size() > 3 ? std::atof(args[3].c_str()) : 100.0;
    const double duration_s = args.size() > 4 ? std::atof(args[4].c_str()) : 10.0;
    cfg.connections = args.size() > 5 ? std::atoi(args[5].c_str()) : 8;
    const std::string model = args.size() > 6 ? args[6] : "alexnet-mini";

    if (traffic == "closed-loop") {
        cfg.model = net::TrafficModel::ClosedLoop;
        cfg.total_requests =
            static_cast<std::uint64_t>(std::max(1.0, cfg.rate_rps * duration_s));
    } else if (traffic == "constant") {
        cfg.model = net::TrafficModel::Constant;
    } else if (traffic == "poisson") {
        cfg.model = net::TrafficModel::Poisson;
    } else if (traffic == "diurnal") {
        cfg.model = net::TrafficModel::Diurnal;
    } else if (traffic == "bursty") {
        cfg.model = net::TrafficModel::Bursty;
    } else {
        std::fprintf(stderr,
                     "net_load_gen: unknown traffic '%s' (closed-loop|constant|"
                     "poisson|diurnal|bursty)\n",
                     traffic.c_str());
        return 1;
    }
    cfg.duration_s = duration_s;

    // The dataset shape must match what the server deployed — both sides
    // default to the synthetic dataset's (3, 16, 16) samples.
    nn::ModelCache cache;
    (void)model;  // the wire carries tensors, not weights; any sample set works
    std::vector<net::EncodedSample> samples;
    samples.reserve(64);
    for (int i = 0; i < 64; ++i)
        samples.push_back(net::encode_sample(cache.dataset().test_batch(i % 200, 1), 1));

    std::printf("net_load_gen: %s traffic -> %s:%u, %d connection(s), "
                "%.0f rps offered, %.1f s, %.0f%% interactive\n",
                net::traffic_model_name(cfg.model), cfg.host.c_str(), cfg.port,
                cfg.connections, cfg.rate_rps, duration_s,
                cfg.interactive_frac * 100.0);

    const net::LoadReport report = net::run_load(cfg, samples);
    std::printf("%s\n", report.to_string().c_str());
    return report.lossless() ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "net_load_gen: %s\n", e.what());
    return 1;
}
