// Quickstart: the whole reliability-aware quantization flow in ~60 lines.
//
//   1. Build the Edge-TPU-class MAC netlist (8-bit mul + 22-bit acc).
//   2. Ask the STA how much the paper's 10-year aging (ΔVth = 50 mV)
//      slows it down -> that is the guardband a normal design pays.
//   3. Run Algorithm 1: find the minimal input compression that makes
//      the aged MAC meet the fresh clock, then re-quantize a trained
//      CNN with the best method from the PTQ library.
//
// Models are trained once and cached under ./models_cache (first run
// takes a few minutes; later runs are instant).
#include <cstdio>

#include "cell/library.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"

int main() {
    using namespace raq;

    // -- device/circuit level ------------------------------------------------
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    std::printf("MAC: %zu gates, fresh critical path %.1f ps\n", mac.num_gates(),
                selector.fresh_critical_path_ps());
    std::printf("aged 10 years (dVth = 50 mV): delay x%.3f -> a conventional design "
                "needs a %.0f%% timing guardband\n",
                fresh.derate_for(50.0), 100.0 * (fresh.derate_for(50.0) - 1.0));

    const auto choice = selector.select(50.0);
    std::printf("Algorithm 1 picks compression %s: aged delay %.1f ps (%.3f of the "
                "fresh clock) -> no guardband needed\n\n",
                choice->compression.to_string().c_str(), choice->delay_ps,
                choice->normalized_delay);

    // -- system/NN level -----------------------------------------------------
    nn::ModelCache cache;
    auto& net = cache.get("resnet20-mini");
    auto graph = net.export_ir();

    const auto& ds = cache.dataset();
    const auto test_images = ds.test_batch(0, 500);
    const std::vector<int> test_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 500);
    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);

    core::AagInputs inputs;
    inputs.graph = &graph;
    inputs.test_images = &test_images;
    inputs.test_labels = &test_labels;
    inputs.calib_images = &calib_images;
    inputs.calib_labels = &calib_labels;

    const core::AgingAwareQuantizer quantizer(selector);
    const auto result = quantizer.run(inputs, 50.0);
    std::printf("%s after 10 years of aging:\n", net.name().c_str());
    std::printf("  FP32 accuracy        : %.1f%%\n", 100.0 * result.fp32_accuracy);
    std::printf("  aging-aware quantized: %.1f%% (method %s, compression %s)\n",
                100.0 * result.quantized_accuracy, quant::method_label(result.selected_method),
                result.compression.compression.to_string().c_str());
    std::printf("  accuracy traded for 23%% more performance: %.2f pp\n",
                result.accuracy_loss);
    return 0;
}
