// Explore the PTQ method library: quantize one network at every
// (weights, activations) bit-width pair with all five methods and print
// the accuracy-loss grid — the tool to reproduce the paper's "different
// methods win in different regimes" observation on any model.
//
// Usage: explore_quant_methods [network]
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "ir/float_executor.hpp"
#include "nn/model_cache.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

int main(int argc, char** argv) {
    using namespace raq;
    const std::string model = argc > 1 ? argv[1] : "wide-resnet50-mini";

    nn::ModelCache cache;
    auto& net = cache.get(model);
    auto graph = net.export_ir();
    const auto& ds = cache.dataset();
    const auto test_images = ds.test_batch(0, 500);
    const std::vector<int> test_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 500);
    const auto calib = quant::calibrate(graph, ds.train_batch(0, 64),
                                        {ds.train_labels().begin(),
                                         ds.train_labels().begin() + 64});
    const double fp32 = ir::float_accuracy(graph, test_images, test_labels);

    std::printf("%s: FP32 accuracy %.1f%% — accuracy loss (pp) per method and "
                "bit-width\n\n",
                model.c_str(), 100.0 * fp32);
    common::Table table({"bits (W/A)", "M1", "M2", "M3", "M4", "M5", "best"});
    for (const int weight_bits : {8, 6, 5, 4, 3}) {
        for (const int act_bits : {8, 5, 4}) {
            quant::QuantConfig cfg;
            cfg.weight_bits = weight_bits;
            cfg.act_bits = act_bits;
            cfg.bias_bits = weight_bits + act_bits;
            std::vector<std::string> row{"W" + std::to_string(weight_bits) + "A" +
                                         std::to_string(act_bits)};
            double best = 1e9;
            std::string best_label = "-";
            for (const auto method : quant::all_methods()) {
                const auto q = quant::quantize_graph(graph, method, cfg, calib);
                const double loss =
                    100.0 * (fp32 - quant::quantized_accuracy(q, test_images, test_labels));
                row.push_back(common::Table::fmt(loss, 2));
                if (loss < best) {
                    best = loss;
                    best_label = quant::method_label(method);
                }
            }
            row.push_back(best_label);
            table.add_row(row);
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    return 0;
}
