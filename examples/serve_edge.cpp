// Edge deployment demo: an aging NPU fleet behind the epoll socket
// front-end, under diurnal traffic, with live metric scrapes.
//
// Starts an NpuServer with traffic-driven aging enabled (devices measure
// their own utilization and age at the duty-scaled rate), puts the
// net::Server front-end on a localhost port, and drives it with a
// diurnal load trace — a raised-cosine "day" compressed into a few
// seconds. While the run serves, the main thread scrapes the wire
// METRICS endpoint once per simulated half-day and prints the live
// `raq_net_*` counters and each device's duty-cycle gauge: the quiet
// trough and the busy peak show up both in the traffic counters and in
// the duty fraction the aging integral consumes.
//
// Usage: serve_edge [days] [day_s] [peak_rps] [connections] [network]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "core/compression_selector.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"
#include "quant/calibration.hpp"
#include "serve/server.hpp"

namespace {

/// Print the scrape lines whose series name starts with one of the
/// given prefixes (Prometheus text: `name{labels} value`).
void print_series(const std::string& scrape, const std::vector<std::string>& prefixes) {
    std::istringstream lines(scrape);
    std::string line;
    while (std::getline(lines, line))
        for (const std::string& prefix : prefixes)
            if (line.compare(0, prefix.size(), prefix) == 0) {
                std::printf("    %s\n", line.c_str());
                break;
            }
}

}  // namespace

int main(int argc, char** argv) try {
    using namespace raq;
    const int days = argc > 1 ? std::atoi(argv[1]) : 2;
    const double day_s = argc > 2 ? std::atof(argv[2]) : 4.0;
    const double peak_rps = argc > 3 ? std::atof(argv[3]) : 300.0;
    const int connections = argc > 4 ? std::atoi(argv[4]) : 8;
    const std::string model = argc > 5 ? argv[5] : "alexnet-mini";

    nn::ModelCache cache;
    auto& net_model = cache.get(model);
    auto graph = net_model.export_ir();
    const auto& ds = cache.dataset();
    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);
    const auto calib = quant::calibrate(graph, calib_images, calib_labels);

    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.telemetry.metrics = true;
    // Devices measure their own utilization: the trough of the diurnal
    // trace ages them measurably slower than the peak.
    cfg.device.traffic_aging.enabled = true;
    cfg.device.traffic_aging.window_us =
        static_cast<std::int64_t>(0.25 * day_s * 1e6);  // quarter-day window

    // Accelerate aging so the run's served traffic adds visible ΔVth.
    {
        serve::NpuServer probe(ctx, cfg);
        const double busy_hours_per_request =
            static_cast<double>(probe.device(0).per_image_cycles()) *
            probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
        probe.shutdown();
        const double expected_requests = 0.5 * peak_rps * days * day_s;
        cfg.device.age_acceleration = aging_model.years_for_dvth(6.0) * 8760.0 /
                                      std::max(1.0, expected_requests *
                                                        busy_hours_per_request / 2.0);
    }

    serve::NpuServer npu(ctx, cfg);
    net::NetConfig ncfg;
    ncfg.num_loops = 2;
    net::Server front(npu, ncfg);
    std::printf("serve_edge: %s fleet of %d behind 127.0.0.1:%u — %d day(s) of "
                "diurnal traffic (%.1f s/day, peak %.0f rps, %d conns)\n\n",
                model.c_str(), cfg.num_devices, front.port(), days, day_s, peak_rps,
                connections);

    // Drive the diurnal trace from a background thread; the main thread
    // is a monitoring sidecar scraping the same socket endpoint.
    net::LoadGenConfig lcfg;
    lcfg.port = front.port();
    lcfg.connections = connections;
    lcfg.model = net::TrafficModel::Diurnal;
    lcfg.rate_rps = peak_rps;
    lcfg.diurnal_period_s = day_s;
    lcfg.diurnal_trough = 0.05;
    lcfg.duration_s = days * day_s;
    std::vector<net::EncodedSample> samples;
    for (int i = 0; i < 32; ++i)
        samples.push_back(net::encode_sample(ds.test_batch(i % 200, 1), 1));

    net::LoadReport report;
    std::thread driver([&] { report = net::run_load(lcfg, samples); });

    const int scrapes = 2 * days;  // one per simulated half-day
    for (int s = 0; s < scrapes; ++s) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<int>(500.0 * day_s)));
        const std::string scrape = net::fetch_metrics("127.0.0.1", front.port());
        std::printf("  scrape %d/%d (t = %.1f s):\n", s + 1, scrapes,
                    (s + 1) * 0.5 * day_s);
        print_series(scrape, {"raq_net_requests_total", "raq_net_shed_total",
                              "raq_net_connections_active", "raq_device_duty_fraction",
                              "raq_device_dvth_mv"});
    }

    driver.join();
    front.stop();
    npu.shutdown();

    std::printf("\nload: %s\n", report.to_string().c_str());
    const net::NetStats stats = front.stats();
    std::printf("front-end: %llu conns, %llu requests, %llu responses, %llu shed\n\n",
                static_cast<unsigned long long>(stats.connections),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.responses),
                static_cast<unsigned long long>(stats.shed));
    for (int d = 0; d < npu.num_devices(); ++d) {
        const serve::DeviceStats s = npu.device(d).stats();
        std::printf("device %d: %llu requests, duty %.2f, effective stress %.0f h, "
                    "dVth %.2f mV, %d requant(s)\n",
                    d, static_cast<unsigned long long>(s.requests), s.duty_fraction,
                    s.operating_hours, s.dvth_mv, s.requant_count);
    }
    std::printf("\nreliability timeline:\n%s", npu.export_timeline().c_str());
    return report.lossless() ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_edge: %s\n", e.what());
    return 1;
}
