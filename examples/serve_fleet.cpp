// Serve a heterogeneous NPU fleet with online aging-aware re-quantization.
//
// Spins up an NpuServer over a pool of simulated devices that entered the
// field at different times (staggered initial ages), pushes a stream of
// requests through it, and lets aging run at high acceleration so devices
// cross the re-quantization threshold *while serving*. The fleet report
// shows each device's age, ΔVth, deployed compression/method, latency
// percentiles and its re-quantization events — the serving-runtime view
// of the paper's Fig. 4: accuracy stays on the "ours" curve at the fresh
// (zero-guardband) clock.
//
// Usage: serve_fleet [requests] [devices] [workers] [network]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"
#include "quant/calibration.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    const int requests = argc > 1 ? std::atoi(argv[1]) : 400;
    const int devices = argc > 2 ? std::atoi(argv[2]) : 4;
    const int workers = argc > 3 ? std::atoi(argv[3]) : devices;
    const std::string model = argc > 4 ? argv[4] : "resnet20-mini";

    nn::ModelCache cache;
    auto& net = cache.get(model);
    auto graph = net.export_ir();
    const auto& ds = cache.dataset();

    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);
    const auto calib = quant::calibrate(graph, calib_images, calib_labels);
    const auto eval_images = ds.test_batch(0, 200);
    const std::vector<int> eval_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 200);

    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;
    ctx.eval_images = &eval_images;
    ctx.eval_labels = &eval_labels;

    serve::ServeConfig cfg;
    cfg.num_devices = devices;
    cfg.num_workers = workers;
    cfg.max_batch = 8;
    // A young heterogeneous fleet (devices joined half a year apart):
    // early-life ΔVth grows fastest, so accelerated aging drives several
    // re-quantizations while the run serves traffic.
    cfg.initial_age_years = 0.0;
    cfg.initial_age_step_years = 0.5;
    cfg.device.requant_threshold_mv = 5.0;

    // Scale acceleration so this run adds about two years of stress.
    serve::NpuServer probe(ctx, cfg);
    const double busy_hours_per_request =
        static_cast<double>(probe.device(0).per_image_cycles()) *
        probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
    probe.shutdown();
    const double per_device_requests =
        static_cast<double>(requests) / static_cast<double>(devices);
    cfg.device.age_acceleration =
        2.0 * 8760.0 / (per_device_requests * busy_hours_per_request);

    std::printf("serve_fleet: %s on %d device(s), %d worker(s), %d requests\n",
                model.c_str(), devices, workers, requests);
    std::printf("fresh clock %.1f ps, %llu cycles/inference, ~2 simulated years of "
                "aging this run\n\n",
                probe.device(0).clock_period_ps(),
                static_cast<unsigned long long>(probe.device(0).per_image_cycles()));

    serve::NpuServer server(ctx, cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        futures.push_back(server.submit(ds.test_batch(i % 200, 1)));
    std::size_t correct = 0;
    for (int i = 0; i < requests; ++i)
        correct += futures[static_cast<std::size_t>(i)].get().predicted_class ==
                   eval_labels[static_cast<std::size_t>(i % 200)];
    server.shutdown();

    const serve::FleetStats fleet = server.fleet_stats();
    std::printf("%s\n", fleet.to_string().c_str());
    std::printf("served accuracy: %.1f%% over %d requests\n\n",
                100.0 * static_cast<double>(correct) / requests, requests);

    common::Table table({"device", "age [h]", "dVth [mV]", "compression", "method",
                         "requants", "sampled acc"});
    for (int d = 0; d < server.num_devices(); ++d) {
        const serve::DeviceStats s = server.device(d).stats();
        table.add_row({std::to_string(d), common::Table::fmt(s.operating_hours, 0),
                       common::Table::fmt(s.dvth_mv, 1), s.compression.to_string(),
                       quant::method_label(s.method), std::to_string(s.requant_count),
                       common::Table::pct(server.sample_accuracy(d, 200), 1)});
    }
    std::printf("%s\n", table.to_string().c_str());

    for (int d = 0; d < server.num_devices(); ++d)
        for (const serve::RequantEvent& e : server.device(d).stats().requant_events)
            std::printf("requant: dev%d gen %llu at %.0f h (dVth %.1f mV): %s -> %s via "
                        "%s, built %s in %.1f ms, swapped in %.0f us\n",
                        d, static_cast<unsigned long long>(e.generation), e.at_hours,
                        e.dvth_mv, e.before.to_string().c_str(),
                        e.after.to_string().c_str(), quant::method_label(e.method),
                        e.background ? "in background" : "inline", e.build_ms, e.swap_us);
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_fleet: %s\n", e.what());
    return 1;
}
