// Lifetime planner: given a network and a projected lifetime, print the
// year-by-year operating plan — ΔVth trajectory, the compression the NPU
// should switch to, the resulting clock headroom, accuracy, and the
// throughput of a 64x64 systolic array at the (guardband-free) clock.
//
// Usage: lifetime_planner [network] [years]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "core/lifetime.hpp"
#include "netlist/builders.hpp"
#include "ir/float_executor.hpp"
#include "nn/model_cache.hpp"
#include "npu/systolic.hpp"

int main(int argc, char** argv) {
    using namespace raq;
    const std::string model = argc > 1 ? argv[1] : "vgg16-mini";
    const double lifetime_years = argc > 2 ? std::atof(argv[2]) : 10.0;

    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;
    const core::LifetimeScheduler scheduler(selector, aging_model);
    const core::AgingAwareQuantizer quantizer(selector);

    nn::ModelCache cache;
    auto& net = cache.get(model);
    auto graph = net.export_ir();
    const auto& ds = cache.dataset();
    const auto test_images = ds.test_batch(0, 500);
    const std::vector<int> test_labels(ds.test_labels().begin(),
                                       ds.test_labels().begin() + 500);
    const auto calib_images = ds.train_batch(0, 64);
    const std::vector<int> calib_labels(ds.train_labels().begin(),
                                        ds.train_labels().begin() + 64);
    core::AagInputs inputs;
    inputs.graph = &graph;
    inputs.test_images = &test_images;
    inputs.test_labels = &test_labels;
    inputs.calib_images = &calib_images;
    inputs.calib_labels = &calib_labels;

    const npu::SystolicArrayModel array;
    const auto cycles = array.analyze(graph);
    const double fresh_cp = selector.fresh_critical_path_ps();

    std::printf("Lifetime plan for %s over %.0f years (%lu MACs/inference, "
                "%lu cycles on a 64x64 array)\n\n",
                model.c_str(), lifetime_years, (unsigned long)graph.macs_per_sample(),
                (unsigned long)cycles.total_cycles);
    common::Table table({"year", "dVth [mV]", "compression", "clock headroom", "accuracy",
                         "inferences/s"});
    for (double year : {0.0, 0.5, 1.0, 2.0, 4.0, 7.0, lifetime_years}) {
        const double dvth = aging_model.dvth_mv(year);
        std::string comp = "(0,0)";
        double headroom = 1.0;
        double accuracy;
        if (dvth < 1.0) {
            accuracy = ir::float_accuracy(graph, test_images, test_labels);
        } else {
            const auto result = quantizer.run(inputs, dvth);
            comp = result.compression.compression.to_string();
            headroom = result.compression.normalized_delay;
            accuracy = result.quantized_accuracy;
        }
        table.add_row({common::Table::fmt(year, 1), common::Table::fmt(dvth, 1), comp,
                       common::Table::fmt(headroom, 3), common::Table::pct(accuracy, 1),
                       common::Table::fmt(cycles.inferences_per_second(fresh_cp), 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("The clock never slows down: the baseline would instead run %.0f%% "
                "slower for the whole lifetime.\n",
                100.0 * (fresh.derate_for(aging_model.dvth_mv(lifetime_years)) - 1.0));
    return 0;
}
