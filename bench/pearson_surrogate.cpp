// §6.2 in-text experiment — how well does the Euclidean norm √(α²+β²)
// rank compression levels by their true accuracy cost? For every network
// and quantization method, quantize at each (α, β) ∈ [0, 4]², rank by
// measured accuracy loss and by the norm, and correlate the rankings.
//
// Paper: average correlation 0.84 (range 0.71-0.92) — "very strong".
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

int main() {
    using namespace raq;
    benchutil::Workbench wb;
    const auto names = nn::paper_networks();
    wb.cache.ensure(names);

    std::vector<ir::Graph> graphs;
    for (const auto& name : names) graphs.push_back(wb.cache.get(name).export_ir());

    // The search is the expensive part: 25 grid points x 5 methods x 10
    // nets. LAPQ's clip search runs on the calibration batch only.
    const auto methods = quant::all_methods();
    std::vector<std::vector<double>> corr(names.size(),
                                          std::vector<double>(methods.size(), 0.0));
    benchutil::parallel_for(static_cast<int>(names.size()), [&](int i) {
        const auto& graph = graphs[static_cast<std::size_t>(i)];
        const auto calib = quant::calibrate(graph, wb.calib_images, wb.calib_labels);
        for (std::size_t m = 0; m < methods.size(); ++m) {
            std::vector<double> norms, loss;
            for (int a = 0; a <= 4; ++a) {
                for (int b = 0; b <= 4; ++b) {
                    const common::Compression comp{a, b, common::Padding::Msb};
                    const auto cfg = quant::QuantConfig::from_compression(comp);
                    const auto q = quant::quantize_graph(graph, methods[m], cfg, calib);
                    const double acc =
                        quant::quantized_accuracy(q, wb.test_images, wb.test_labels);
                    norms.push_back(comp.norm());
                    loss.push_back(-acc);  // higher loss = lower accuracy
                }
            }
            // "Pearson correlation between the two rankings" = Spearman.
            corr[static_cast<std::size_t>(i)][m] = common::spearman(norms, loss);
        }
    });

    std::printf("Section 6.2: rank correlation of the sqrt(a^2+b^2) compression "
                "surrogate vs measured accuracy loss, (a,b) in [0,4]^2\n\n");
    common::Table table({"network", "M1", "M2", "M3", "M4", "M5"});
    std::vector<double> all;
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> row{names[i]};
        for (std::size_t m = 0; m < methods.size(); ++m) {
            row.push_back(common::Table::fmt(corr[i][m], 2));
            all.push_back(corr[i][m]);
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("average correlation: %.2f, range [%.2f, %.2f] "
                "(paper: 0.84 average, range 0.71-0.92)\n",
                common::mean(all), common::quantile(all, 0.0), common::quantile(all, 1.0));
    return 0;
}
