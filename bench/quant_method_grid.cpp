// §5 in-text examples — different methods win for different networks and
// bit-widths: the paper reports that for ResNet50, LAPQ is best at W8A4
// while ACIQ is best at W4A4 (LAPQ degrades hard there), whereas VGG13
// prefers LAPQ at both. This bench prints the full method x bit-width
// grid for those two architectures.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

int main() {
    using namespace raq;
    benchutil::Workbench wb;
    const std::vector<std::string> names = {"resnet50-mini", "vgg13-mini"};
    wb.cache.ensure(names);

    struct Config {
        const char* label;
        int weight_bits, act_bits;
    };
    const Config configs[] = {{"W8A8", 8, 8}, {"W8A4", 8, 4}, {"W4A8", 4, 8}, {"W4A4", 4, 4}};

    for (const auto& name : names) {
        auto graph = wb.cache.get(name).export_ir();
        const auto calib = quant::calibrate(graph, wb.calib_images, wb.calib_labels);
        const double fp32 = ir::float_accuracy(graph, wb.test_images, wb.test_labels);
        std::printf("%s (fp32 accuracy %.1f%%): accuracy loss in percentage points\n",
                    name.c_str(), 100.0 * fp32);
        common::Table table({"config", "M1", "M2", "M3 (LAPQ)", "M4 (ACIQ)", "M5", "best"});
        for (const auto& cfg : configs) {
            quant::QuantConfig qcfg;
            qcfg.weight_bits = cfg.weight_bits;
            qcfg.act_bits = cfg.act_bits;
            qcfg.bias_bits = cfg.weight_bits + cfg.act_bits;
            std::vector<std::string> row{cfg.label};
            double best_loss = 1e9;
            std::string best = "-";
            for (const auto method : quant::all_methods()) {
                const auto q = quant::quantize_graph(graph, method, qcfg, calib);
                const double loss =
                    100.0 * (fp32 - quant::quantized_accuracy(q, wb.test_images,
                                                              wb.test_labels));
                row.push_back(common::Table::fmt(loss, 2));
                if (loss < best_loss) {
                    best_loss = loss;
                    best = quant::method_label(method);
                }
            }
            row.push_back(best);
            table.add_row(row);
        }
        std::printf("%s\n", table.to_string().c_str());
    }
    std::printf("paper shape check: the best method varies with the bit-width and "
                "the network; the sophisticated methods (M3/M4/M5) dominate at 4-bit.\n");
    return 0;
}
