// Fig. 5 — Normalized energy of our technique vs the guardbanded
// baseline per aging level.
//
// Baseline: uncompressed operands, clock slowed by the full 10-year
// guardband (+23 %). Ours: compressed operands at the fresh clock.
// Energy = switching activity (gate-level event simulation) + leakage
// integrated over the cycle. Paper: no overhead when fresh, 46 % average
// reduction over 10-50 mV (range 21-67 %).
#include <cstdio>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"
#include "npu/energy.hpp"

int main() {
    using namespace raq;
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const npu::MacEnergyModel energy(mac);

    const double fresh_cp = selector.fresh_critical_path_ps();
    const double guardband = fresh.derate_for(50.0);  // +23% for 10 years
    const double baseline_period = fresh_cp * guardband;

    std::printf("Fig. 5: normalized MAC energy vs guardbanded baseline "
                "(baseline period %.1f ps = fresh CP x %.3f; ours at fresh CP %.1f ps)\n\n",
                baseline_period, guardband, fresh_cp);
    common::Table table({"dVth [mV]", "(a,b)/pad", "baseline [fJ]", "ours [fJ]",
                         "normalized", "reduction"});
    double sum_reduction = 0.0;
    int reduction_points = 0;
    for (const double dvth : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0}) {
        const cell::Library aged = fresh.aged(dvth);
        // Baseline: full-width operands, guardbanded clock.
        const auto base = energy.estimate(aged, common::Compression{}, baseline_period);
        // Ours: compressed operands, fresh clock (no guardband).
        common::Compression comp{};
        if (dvth > 0.0) comp = selector.select(dvth)->compression;
        const auto ours = energy.estimate(aged, comp, fresh_cp);
        const double normalized = ours.total_fj() / base.total_fj();
        table.add_row({common::Table::fmt(dvth, 0), comp.to_string(),
                       common::Table::fmt(base.total_fj(), 2),
                       common::Table::fmt(ours.total_fj(), 2),
                       common::Table::fmt(normalized, 3),
                       common::Table::pct(1.0 - normalized, 1)});
        if (dvth > 0.0) {
            sum_reduction += 1.0 - normalized;
            ++reduction_points;
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("average energy reduction over 10-50 mV: %.1f%% (paper: 46%%, "
                "range 21-67%%)\n",
                100.0 * sum_reduction / reduction_points);
    return 0;
}
