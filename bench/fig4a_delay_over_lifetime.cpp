// Fig. 4a — Normalized MAC delay over lifetime: the guardband-free
// baseline degrades to +23 % at 10 years, while the aging-aware
// compression schedule keeps the delay at or below the fresh clock
// (normalized delay <= 1.0) for the entire lifetime.
#include <cstdio>

#include "aging/aging_model.hpp"
#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/lifetime.hpp"
#include "netlist/builders.hpp"

int main() {
    using namespace raq;
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel model;
    const core::LifetimeScheduler scheduler(selector, model);

    std::printf("Fig. 4a: normalized delay over lifetime (fresh CP = %.1f ps)\n\n",
                selector.fresh_critical_path_ps());
    common::Table table(
        {"dVth [mV]", "~years", "baseline (aged, no GB)", "ours (compressed)", "(a,b)/pad"});
    for (const auto& point : scheduler.standard_schedule()) {
        table.add_row({common::Table::fmt(point.dvth_mv, 0),
                       common::Table::fmt(point.years, 2),
                       common::Table::fmt(point.baseline_normalized_delay, 3),
                       point.ours_feasible ? common::Table::fmt(point.ours_normalized_delay, 3)
                                           : "infeasible",
                       point.compression.to_string()});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("guardband a conventional design needs for 10 years: %.1f%% "
                "(paper: 23%%) -> removing it is a %.1f%% performance gain.\n",
                100.0 * scheduler.required_guardband_fraction(),
                100.0 * scheduler.required_guardband_fraction());
    return 0;
}
