// google-benchmark microbenchmarks of the library's hot kernels: STA
// analysis, event-driven simulation, the integer-GEMM microkernel family
// (every available SIMD dispatch tier, unpacked and packed), im2col,
// float GEMM variants, and end-to-end float/quantized inference.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "common/rng.hpp"
#include "data/synthetic_dataset.hpp"
#include "exec/kernels.hpp"
#include "exec/kernels_simd.hpp"
#include "ir/float_executor.hpp"
#include "netlist/builders.hpp"
#include "nn/zoo.hpp"
#include "quant/evaluate.hpp"
#include "quant/quant_executor.hpp"
#include "quant/methods.hpp"
#include "sim/event_sim.hpp"
#include "sta/sta.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace raq;

void BM_StaMacAnalysis(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sta.run(lib));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(mac.num_gates()));
}
BENCHMARK(BM_StaMacAnalysis);

void BM_StaCaseAnalysisSweep(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    for (auto _ : state) {
        double total = 0.0;
        for (int a = 0; a <= 4; ++a)
            for (int b = 0; b <= 4; ++b)
                total += sta.critical_path_ps(
                    lib, sta::compression_case(mac, {a, b, common::Padding::Lsb}));
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_StaCaseAnalysisSweep);

void BM_EventSimMacCycle(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    const double period = sta.critical_path_ps(lib) * 1.01;
    sim::EventSimulator simulator(mac, lib);
    std::vector<bool> pi(mac.primary_inputs().size(), false);
    common::Rng rng(3);
    for (auto _ : state) {
        for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.next_bool(0.5);
        simulator.step(pi, period);
        benchmark::DoNotOptimize(simulator.read_bus("S"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSimMacCycle);

void BM_NetlistFunctionalEval64(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    std::vector<std::uint64_t> words(mac.primary_inputs().size());
    common::Rng rng(5);
    for (auto _ : state) {
        for (auto& w : words) w = rng.next_u64();
        benchmark::DoNotOptimize(mac.eval_words(words));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetlistFunctionalEval64);

// ---- integer-GEMM microkernel family -------------------------------------
//
// One representative mid-network conv tile: 64 output channels over a
// kdim = 64·3·3 reduction and a 1024-column (batch·hw) panel — the shape
// class the packed pipeline was tuned on. Registered once per available
// dispatch tier so a single run shows the scalar → sse41 → avx2 ladder.

constexpr std::size_t kGemmRows = 64;
constexpr std::size_t kGemmKdim = 64 * 3 * 3;
constexpr std::size_t kGemmCols = 1024;

struct GemmU8Fixture {
    std::vector<std::uint8_t> w;     // [rows, kdim]
    std::vector<std::uint8_t> cols;  // [kdim, cols]
    std::vector<std::int32_t> acc;   // [rows, cols]

    GemmU8Fixture() : w(kGemmRows * kGemmKdim), cols(kGemmKdim * kGemmCols),
                      acc(kGemmRows * kGemmCols) {
        common::Rng rng(7);
        for (auto& v : w) v = static_cast<std::uint8_t>(rng.next_u64());
        for (auto& v : cols) v = static_cast<std::uint8_t>(rng.next_u64());
    }
};

void gemm_counters(benchmark::State& state) {
    const std::int64_t macs = static_cast<std::int64_t>(kGemmRows * kGemmKdim * kGemmCols);
    const std::int64_t bytes =
        static_cast<std::int64_t>(kGemmRows * kGemmKdim + kGemmKdim * kGemmCols +
                                  kGemmRows * kGemmCols * sizeof(std::int32_t));
    state.SetItemsProcessed(state.iterations() * macs);    // items = MAC products
    state.SetBytesProcessed(state.iterations() * bytes);   // one full operand sweep
}

void BM_GemmU8Unpacked(benchmark::State& state, exec::kernels_simd::KernelTier tier) {
    static GemmU8Fixture fx;
    const auto kernel = exec::kernels_simd::gemm_u8_kernel(tier);
    for (auto _ : state) {
        kernel(fx.w.data(), kGemmKdim, kGemmRows, fx.cols.data(), kGemmCols, kGemmKdim,
               kGemmCols, fx.acc.data(), kGemmCols);
        benchmark::DoNotOptimize(fx.acc.data());
    }
    gemm_counters(state);
}

void BM_GemmU8Packed(benchmark::State& state, exec::kernels_simd::KernelTier tier) {
    static GemmU8Fixture fx;
    const auto pk = exec::kernels_simd::packed_kernels(tier);
    if (pk.gemm == nullptr) {
        state.SkipWithError("tier has no packed pipeline");
        return;
    }
    // Weights are widened once per conv call in QuantBackend (amortized
    // over every column tile), so the widening stays outside the loop;
    // the per-tile pack is what each iteration pays, so it stays inside.
    const std::size_t wstride = kGemmKdim + (kGemmKdim & 1);
    std::vector<std::int16_t> w16(kGemmRows * wstride);
    exec::kernels_simd::widen_weights_u8(fx.w.data(), kGemmRows, kGemmKdim, w16.data());
    std::vector<std::int16_t> packed(
        exec::kernels_simd::packed_panel_elems(kGemmKdim, kGemmCols, pk.col_group));
    for (auto _ : state) {
        pk.pack(fx.cols.data(), kGemmCols, kGemmKdim, kGemmCols, packed.data());
        pk.gemm(w16.data(), wstride, kGemmRows, packed.data(), kGemmKdim, kGemmCols,
                fx.acc.data(), kGemmCols);
        benchmark::DoNotOptimize(fx.acc.data());
    }
    gemm_counters(state);
}

void BM_Im2colU8(benchmark::State& state) {
    // conv2 of the mini networks: 32×32 input, 64 channels, 3×3, pad 1.
    const tensor::Shape s{8, 64, 32, 32};
    const std::size_t rows = 64 * 3 * 3;
    const std::size_t cols = static_cast<std::size_t>(s.n) * 32 * 32;
    std::vector<std::uint8_t> qx(s.size());
    std::vector<std::uint8_t> columns(rows * cols);
    common::Rng rng(11);
    for (auto& v : qx) v = static_cast<std::uint8_t>(rng.next_u64());
    for (auto _ : state) {
        exec::kernels::im2col_u8(qx.data(), s, 3, 3, 1, 1, columns.data(), 32, 32, true);
        benchmark::DoNotOptimize(columns.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows * cols));
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(rows * cols));
}

template <void (*Gemm)(const float*, const float*, float*, std::size_t, std::size_t,
                       std::size_t, bool)>
void BM_FloatGemm(benchmark::State& state) {
    static GemmU8Fixture fx;  // reuse the integer shapes for the operand data
    std::vector<float> a(kGemmRows * kGemmKdim), b(kGemmKdim * kGemmCols);
    std::vector<float> c(kGemmRows * kGemmCols);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(fx.w[i]) / 255.0f;
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(fx.cols[i]) / 255.0f;
    for (auto _ : state) {
        Gemm(a.data(), b.data(), c.data(), kGemmRows, kGemmKdim, kGemmCols, false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kGemmRows * kGemmKdim * kGemmCols));
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>((a.size() + b.size() + c.size()) * sizeof(float)));
}

// Per-tier registration has to happen at runtime (the available set is a
// CPUID question), so it rides a static initializer instead of the
// BENCHMARK macro.
const int kRegisterTierBenches = [] {
    for (const auto tier : exec::kernels_simd::available_tiers()) {
        const std::string name = exec::kernels_simd::tier_name(tier);
        benchmark::RegisterBenchmark(("BM_GemmU8Unpacked/" + name).c_str(),
                                     BM_GemmU8Unpacked, tier);
        if (exec::kernels_simd::packed_kernels(tier).gemm != nullptr)
            benchmark::RegisterBenchmark(("BM_GemmU8Packed/" + name).c_str(),
                                         BM_GemmU8Packed, tier);
    }
    return 0;
}();

BENCHMARK(BM_Im2colU8);
BENCHMARK_TEMPLATE(BM_FloatGemm, tensor::gemm)->Name("BM_FloatGemm/nn");
BENCHMARK_TEMPLATE(BM_FloatGemm, tensor::gemm_at)->Name("BM_FloatGemm/at");
BENCHMARK_TEMPLATE(BM_FloatGemm, tensor::gemm_bt)->Name("BM_FloatGemm/bt");

struct InferenceFixtures {
    data::SyntheticDataset dataset;
    ir::Graph graph;
    tensor::Tensor batch;
    quant::QuantizedGraph qgraph;

    InferenceFixtures()
        : dataset(small_config()),
          graph(make_graph()),
          batch(dataset.test_batch(0, 32)),
          qgraph(make_quant(graph, dataset)) {}

    static data::DatasetConfig small_config() {
        data::DatasetConfig cfg;
        cfg.train_size = 128;
        cfg.test_size = 64;
        return cfg;
    }
    static ir::Graph make_graph() {
        auto net = nn::make_network("resnet20-mini");
        return net.export_ir();
    }
    static quant::QuantizedGraph make_quant(const ir::Graph& graph,
                                            const data::SyntheticDataset& ds) {
        std::vector<int> labels(ds.train_labels().begin(), ds.train_labels().begin() + 64);
        const auto calib = quant::calibrate(graph, ds.train_batch(0, 64), labels);
        return quant::quantize_graph(graph, quant::Method::M5_AciqNoBias,
                                     quant::QuantConfig{}, calib);
    }
};

// Inference benches hold a runner — the intended hot-path API — so they
// measure steady-state kernel throughput, not per-call plan compilation.
void BM_FloatInference(benchmark::State& state) {
    static InferenceFixtures fx;
    exec::FloatRunner runner(fx.graph, fx.batch.shape().n);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_FloatInference);

void BM_QuantizedInference(benchmark::State& state) {
    static InferenceFixtures fx;
    quant::QuantRunner runner(fx.qgraph, fx.batch.shape().n);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QuantizedInference);

void BM_QuantizedInferenceWithInjection(benchmark::State& state) {
    static InferenceFixtures fx;
    quant::QuantRunner runner(fx.qgraph, fx.batch.shape().n);
    inject::InjectionConfig cfg;
    cfg.flip_probability = 1e-4;
    inject::BitFlipInjector injector(cfg);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch, &injector));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QuantizedInferenceWithInjection);

}  // namespace

BENCHMARK_MAIN();
