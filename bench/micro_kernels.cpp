// google-benchmark microbenchmarks of the library's hot kernels: STA
// analysis, event-driven simulation, float and quantized inference.
#include <benchmark/benchmark.h>

#include "cell/library.hpp"
#include "data/synthetic_dataset.hpp"
#include "ir/float_executor.hpp"
#include "netlist/builders.hpp"
#include "nn/zoo.hpp"
#include "quant/evaluate.hpp"
#include "quant/quant_executor.hpp"
#include "quant/methods.hpp"
#include "sim/event_sim.hpp"
#include "sta/sta.hpp"

namespace {

using namespace raq;

void BM_StaMacAnalysis(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sta.run(lib));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(mac.num_gates()));
}
BENCHMARK(BM_StaMacAnalysis);

void BM_StaCaseAnalysisSweep(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    for (auto _ : state) {
        double total = 0.0;
        for (int a = 0; a <= 4; ++a)
            for (int b = 0; b <= 4; ++b)
                total += sta.critical_path_ps(
                    lib, sta::compression_case(mac, {a, b, common::Padding::Lsb}));
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_StaCaseAnalysisSweep);

void BM_EventSimMacCycle(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library lib = cell::Library::finfet14();
    const sta::Sta sta(mac, lib);
    const double period = sta.critical_path_ps(lib) * 1.01;
    sim::EventSimulator simulator(mac, lib);
    std::vector<bool> pi(mac.primary_inputs().size(), false);
    common::Rng rng(3);
    for (auto _ : state) {
        for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.next_bool(0.5);
        simulator.step(pi, period);
        benchmark::DoNotOptimize(simulator.read_bus("S"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSimMacCycle);

void BM_NetlistFunctionalEval64(benchmark::State& state) {
    const netlist::Netlist mac = netlist::build_mac_circuit();
    std::vector<std::uint64_t> words(mac.primary_inputs().size());
    common::Rng rng(5);
    for (auto _ : state) {
        for (auto& w : words) w = rng.next_u64();
        benchmark::DoNotOptimize(mac.eval_words(words));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetlistFunctionalEval64);

struct InferenceFixtures {
    data::SyntheticDataset dataset;
    ir::Graph graph;
    tensor::Tensor batch;
    quant::QuantizedGraph qgraph;

    InferenceFixtures()
        : dataset(small_config()),
          graph(make_graph()),
          batch(dataset.test_batch(0, 32)),
          qgraph(make_quant(graph, dataset)) {}

    static data::DatasetConfig small_config() {
        data::DatasetConfig cfg;
        cfg.train_size = 128;
        cfg.test_size = 64;
        return cfg;
    }
    static ir::Graph make_graph() {
        auto net = nn::make_network("resnet20-mini");
        return net.export_ir();
    }
    static quant::QuantizedGraph make_quant(const ir::Graph& graph,
                                            const data::SyntheticDataset& ds) {
        std::vector<int> labels(ds.train_labels().begin(), ds.train_labels().begin() + 64);
        const auto calib = quant::calibrate(graph, ds.train_batch(0, 64), labels);
        return quant::quantize_graph(graph, quant::Method::M5_AciqNoBias,
                                     quant::QuantConfig{}, calib);
    }
};

// Inference benches hold a runner — the intended hot-path API — so they
// measure steady-state kernel throughput, not per-call plan compilation.
void BM_FloatInference(benchmark::State& state) {
    static InferenceFixtures fx;
    exec::FloatRunner runner(fx.graph, fx.batch.shape().n);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_FloatInference);

void BM_QuantizedInference(benchmark::State& state) {
    static InferenceFixtures fx;
    quant::QuantRunner runner(fx.qgraph, fx.batch.shape().n);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QuantizedInference);

void BM_QuantizedInferenceWithInjection(benchmark::State& state) {
    static InferenceFixtures fx;
    quant::QuantRunner runner(fx.qgraph, fx.batch.shape().n);
    inject::InjectionConfig cfg;
    cfg.flip_probability = 1e-4;
    inject::BitFlipInjector injector(cfg);
    for (auto _ : state) benchmark::DoNotOptimize(runner.run(fx.batch, &injector));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QuantizedInferenceWithInjection);

}  // namespace

BENCHMARK_MAIN();
