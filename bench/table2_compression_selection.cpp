// Table 2 — The compression (α, β) and padding extracted by Algorithm 1
// (lines 1-5) for each aging level: the minimum-norm (α, β) whose aged
// delay still meets the fresh-clock constraint.
//
// Paper values: (2,0)/LSB, (2,2)/MSB, (3,1)/LSB, (2,4)/LSB, (3,4)/LSB —
// i.e. compression grows with ΔVth and LSB padding dominates. Our
// generated MAC reproduces the shape (monotone growth, LSB-dominant),
// not necessarily identical cells.
#include <cstdio>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"

int main() {
    using namespace raq;
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);

    std::printf("Table 2: extracted compression per aging level "
                "(constraint: fresh CP = %.1f ps, no guardband)\n\n",
                selector.fresh_critical_path_ps());
    common::Table table({"dVth [mV]", "(a,b)/padding", "aged delay [ps]", "norm. delay",
                         "feasible set size"});
    for (const double dvth : {10.0, 20.0, 30.0, 40.0, 50.0}) {
        const auto choice = selector.select(dvth);
        const auto feasible = selector.feasible(dvth);
        if (!choice) {
            table.add_row({common::Table::fmt(dvth, 0), "none", "-", "-",
                           std::to_string(feasible.size())});
            continue;
        }
        table.add_row({common::Table::fmt(dvth, 0), choice->compression.to_string(),
                       common::Table::fmt(choice->delay_ps, 1),
                       common::Table::fmt(choice->normalized_delay, 3),
                       std::to_string(feasible.size())});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: alpha+beta grows monotonically with dVth; "
                "normalized delay stays <= 1.0 (timing met without guardband).\n");
    return 0;
}
