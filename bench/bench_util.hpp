// Shared plumbing for the benchmark harnesses: the cached model zoo, the
// evaluation datasets and the driving MAC circuit. Every bench prints the
// seeds and sample sizes it uses so runs are reproducible.
#pragma once

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "data/synthetic_dataset.hpp"
#include "ir/float_executor.hpp"
#include "netlist/builders.hpp"
#include "nn/model_cache.hpp"
#include "nn/zoo.hpp"
#include "quant/calibration.hpp"

namespace raq::benchutil {

inline constexpr int kTestSamples = 500;   ///< accuracy evaluation subset
inline constexpr int kCalibSamples = 64;   ///< calibration batch

struct Workbench {
    nn::ModelCache cache;
    tensor::Tensor test_images;
    std::vector<int> test_labels;
    tensor::Tensor calib_images;
    std::vector<int> calib_labels;

    Workbench() : cache() {
        const auto& ds = cache.dataset();
        test_images = ds.test_batch(0, kTestSamples);
        test_labels.assign(ds.test_labels().begin(), ds.test_labels().begin() + kTestSamples);
        calib_images = ds.train_batch(0, kCalibSamples);
        calib_labels.assign(ds.train_labels().begin(),
                            ds.train_labels().begin() + kCalibSamples);
    }
};

/// The paper's driving circuit: 8-bit multiplier + 22-bit accumulator.
inline netlist::Netlist paper_mac() { return netlist::build_mac_circuit(); }

/// Run `fn(i)` for i in [0, n) on up to `threads` worker threads.
template <typename Fn>
void parallel_for(int n, Fn fn, int threads = 0) {
    if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(1, std::min(threads, n));
    std::mutex mutex;
    int next = 0;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (;;) {
                int i;
                {
                    const std::lock_guard<std::mutex> lock(mutex);
                    if (next >= n) return;
                    i = next++;
                }
                fn(i);
            }
        });
    }
    for (auto& w : workers) w.join();
}

}  // namespace raq::benchutil
