// Fig. 4b — Box plots of the accuracy loss over the ten networks at each
// aging level (the distribution behind Table 1).
//
// Paper values: mean loss 0.24 / 0.45 / 1.11 / 1.80 / 2.96 % at
// 10/20/30/40/50 mV, losses concentrated around the median, SqueezeNet
// always the worst outlier.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "core/compression_selector.hpp"

int main() {
    using namespace raq;
    benchutil::Workbench wb;
    const auto names = nn::paper_networks();
    wb.cache.ensure(names);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const core::AgingAwareQuantizer quantizer(selector);
    const double levels[] = {10.0, 20.0, 30.0, 40.0, 50.0};

    std::vector<ir::Graph> graphs;
    for (const auto& name : names) graphs.push_back(wb.cache.get(name).export_ir());

    // losses[level][network]
    std::vector<std::vector<double>> losses(std::size(levels),
                                            std::vector<double>(names.size(), 0.0));
    std::vector<std::string> worst(std::size(levels));
    benchutil::parallel_for(static_cast<int>(names.size()), [&](int i) {
        core::AagInputs in;
        in.graph = &graphs[static_cast<std::size_t>(i)];
        in.test_images = &wb.test_images;
        in.test_labels = &wb.test_labels;
        in.calib_images = &wb.calib_images;
        in.calib_labels = &wb.calib_labels;
        for (std::size_t l = 0; l < std::size(levels); ++l)
            losses[l][static_cast<std::size_t>(i)] = quantizer.run(in, levels[l]).accuracy_loss;
    });

    std::printf("Fig. 4b: accuracy-loss distribution over the 10 networks per aging level\n\n");
    common::Table table({"dVth [mV]", "min", "q1", "median", "q3", "max", "mean", "worst net"});
    for (std::size_t l = 0; l < std::size(levels); ++l) {
        const auto box = common::box_stats(losses[l]);
        std::size_t worst_idx = 0;
        for (std::size_t i = 1; i < names.size(); ++i)
            if (losses[l][i] > losses[l][worst_idx]) worst_idx = i;
        table.add_row({common::Table::fmt(levels[l], 0), common::Table::fmt(box.min, 2),
                       common::Table::fmt(box.q1, 2), common::Table::fmt(box.median, 2),
                       common::Table::fmt(box.q3, 2), common::Table::fmt(box.max, 2),
                       common::Table::fmt(box.mean, 2), names[worst_idx]});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: mean loss grows gracefully with aging "
                "(paper: 0.24/0.45/1.11/1.80/2.96%%); squeezenet1.1 should be the "
                "recurring worst case.\n");
    return 0;
}
