// Planned-vs-legacy execution throughput: the Algorithm 1 inner loop
// (repeated quantized evaluation of one model over the test set) timed
// against the pre-refactor tree-walking interpreter — the verbatim seed
// copy shared with the engine tests (tests/seed_interpreter_ref.hpp) —
// and against the planned engine pinned to the scalar reference kernels.
// Reports MACs/s for every path, asserts all logits agree bit for bit,
// and fails (exit 1) when the planned engine misses the 1.5x acceptance
// speedup over the legacy interpreter or the SIMD dispatch tier misses
// the 2.0x speedup over the scalar-pinned engine.
//
// Usage: exec_throughput [repetitions] [network] [batch]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "exec/kernels_simd.hpp"
#include "ir/float_executor.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"
#include "quant/quant_executor.hpp"
#include "tests/seed_interpreter_ref.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    using Clock = std::chrono::steady_clock;
    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::string model = argc > 2 ? argv[2] : "alexnet-mini";
    const int batch_size = argc > 3 ? std::atoi(argv[3]) : 100;
    if (reps < 1 || batch_size < 1) {
        std::fprintf(stderr, "exec_throughput: reps and batch must be >= 1\n");
        return 1;
    }

    benchutil::Workbench bench;
    auto& net = bench.cache.get(model);
    const auto graph = net.export_ir();
    const auto calib = quant::calibrate(graph, bench.calib_images, bench.calib_labels);
    const auto qgraph =
        quant::quantize_graph(graph, quant::Method::M5_AciqNoBias, quant::QuantConfig{}, calib);

    const int samples = bench.test_images.shape().n;
    const std::uint64_t total_macs = graph.macs_per_sample() *
                                     static_cast<std::uint64_t>(samples) *
                                     static_cast<std::uint64_t>(reps);
    std::printf(
        "exec_throughput: %s, %d samples x %d reps, batch %d (%llu MMACs per pass)\n",
        model.c_str(), samples, reps, batch_size,
        static_cast<unsigned long long>(total_macs / 1000000ull));
    const auto active_tier = exec::kernels_simd::active_tier();
    {
        std::string avail;
        for (const auto tier : exec::kernels_simd::available_tiers()) {
            if (!avail.empty()) avail += ' ';
            avail += exec::kernels_simd::tier_name(tier);
        }
        std::printf("kernel dispatch tier: %s (available: %s)\n\n",
                    exec::kernels_simd::tier_name(active_tier), avail.c_str());
    }

    // The paths alternate per repetition and each is scored by its best
    // pass: on a noisy shared core, min-of-N is robust to drift that a
    // single back-to-back measurement is not.
    //
    // Legacy pass: the seed interpreter, re-walking the graph and
    // reallocating every workspace per batch — what Algorithm 1 paid
    // before the planned engine. Planned pass: one QuantRunner — plan,
    // arena and scratch compiled once, zero-copy batch views, cache-tiled
    // int32 GEMM on the active SIMD dispatch tier. Scalar-pinned pass:
    // the same engine forced onto the scalar reference kernels, isolating
    // the SIMD microkernel contribution from the planning one.
    const bool simd_active = active_tier != exec::kernels_simd::KernelTier::Scalar;
    std::vector<float> legacy_logit_sink, planned_logit_sink, scalar_logit_sink;
    quant::QuantRunner runner(qgraph, std::min(batch_size, samples));
    quant::QuantRunner scalar_runner(qgraph, std::min(batch_size, samples));
    scalar_runner.set_kernel_tier(exec::kernels_simd::KernelTier::Scalar);
    double legacy_s = 1e300, planned_s = 1e300, scalar_s = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        for (int start = 0; start < samples; start += batch_size) {
            const int count = std::min(batch_size, samples - start);
            tensor::Tensor batch({count, bench.test_images.shape().c,
                                  bench.test_images.shape().h, bench.test_images.shape().w});
            const tensor::TensorView view = bench.test_images.batch_view(start, count);
            std::copy(view.data, view.data + view.size(), batch.data());  // legacy copied
            const tensor::Tensor logits = seedref::run_quantized(qgraph, batch);
            if (rep == 0)
                legacy_logit_sink.insert(legacy_logit_sink.end(), logits.data(),
                                         logits.data() + logits.size());
        }
        legacy_s = std::min(legacy_s, std::chrono::duration<double>(Clock::now() - t0).count());

        const auto t1 = Clock::now();
        for (int start = 0; start < samples; start += batch_size) {
            const int count = std::min(batch_size, samples - start);
            const tensor::Tensor logits =
                runner.run(bench.test_images.batch_view(start, count));
            if (rep == 0)
                planned_logit_sink.insert(planned_logit_sink.end(), logits.data(),
                                          logits.data() + logits.size());
        }
        planned_s =
            std::min(planned_s, std::chrono::duration<double>(Clock::now() - t1).count());

        const auto t2 = Clock::now();
        for (int start = 0; start < samples; start += batch_size) {
            const int count = std::min(batch_size, samples - start);
            const tensor::Tensor logits =
                scalar_runner.run(bench.test_images.batch_view(start, count));
            if (rep == 0)
                scalar_logit_sink.insert(scalar_logit_sink.end(), logits.data(),
                                         logits.data() + logits.size());
        }
        scalar_s =
            std::min(scalar_s, std::chrono::duration<double>(Clock::now() - t2).count());
    }

    if (legacy_logit_sink != planned_logit_sink) {
        std::fprintf(stderr, "exec_throughput: FAIL — logits diverge from the seed interpreter\n");
        return 1;
    }
    if (scalar_logit_sink != planned_logit_sink) {
        std::fprintf(stderr,
                     "exec_throughput: FAIL — %s-tier logits diverge from the scalar tier\n",
                     exec::kernels_simd::tier_name(active_tier));
        return 1;
    }

    const std::uint64_t pass_macs = total_macs / static_cast<std::uint64_t>(reps);
    const double speedup = legacy_s / planned_s;
    const double simd_speedup = scalar_s / planned_s;
    common::Table table({"path", "best pass [s]", "GMACs/s", "speedup"});
    table.add_row({"legacy interpreter", common::Table::fmt(legacy_s, 3),
                   common::Table::fmt(static_cast<double>(pass_macs) / legacy_s / 1e9, 2),
                   "1.00"});
    table.add_row({"planned engine (scalar)", common::Table::fmt(scalar_s, 3),
                   common::Table::fmt(static_cast<double>(pass_macs) / scalar_s / 1e9, 2),
                   common::Table::fmt(legacy_s / scalar_s, 2)});
    table.add_row({std::string("planned engine (") +
                       exec::kernels_simd::tier_name(active_tier) + ")",
                   common::Table::fmt(planned_s, 3),
                   common::Table::fmt(static_cast<double>(pass_macs) / planned_s / 1e9, 2),
                   common::Table::fmt(speedup, 2)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("logits bit-identical across %zu values (all paths)\n",
                planned_logit_sink.size());

    if (speedup < 1.5) {
        std::fprintf(stderr,
                     "exec_throughput: FAIL — %.2fx below the 1.5x acceptance threshold\n",
                     speedup);
        return 1;
    }
    std::printf("PASS: %.2fx >= 1.5x acceptance threshold (vs legacy)\n", speedup);
    if (simd_active) {
        if (simd_speedup < 2.0) {
            std::fprintf(stderr,
                         "exec_throughput: FAIL — %s tier %.2fx below the 2.0x "
                         "threshold over the scalar-pinned engine\n",
                         exec::kernels_simd::tier_name(active_tier), simd_speedup);
            return 1;
        }
        std::printf("PASS: %.2fx >= 2.0x SIMD threshold (%s vs scalar-pinned)\n",
                    simd_speedup, exec::kernels_simd::tier_name(active_tier));
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "exec_throughput: %s\n", e.what());
    return 1;
}
