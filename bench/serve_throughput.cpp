// Serving throughput scaling: the same request stream served by fleets
// of 1, 2, 4 and 8 devices (workers == devices), reporting simulated
// fleet throughput (model cycles × MAC clock — the figure of merit for
// the modelled NPU, independent of the simulation host) alongside host
// wall-clock. Devices run concurrently in model time, so simulated
// throughput scales linearly with fleet size; host wall-clock scaling is
// bounded by the machine running the simulation.
//
// Usage: serve_throughput [requests] [network]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) try {
    using namespace raq;
    const int requests = argc > 1 ? std::atoi(argv[1]) : 256;
    const std::string model = argc > 2 ? argv[2] : "alexnet-mini";

    benchutil::Workbench bench;
    auto& net = bench.cache.get(model);
    auto graph = net.export_ir();
    const auto calib = quant::calibrate(graph, bench.calib_images, bench.calib_labels);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    // Pre-build the request stream so submission cost is not measured.
    std::vector<tensor::Tensor> images;
    images.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        images.push_back(bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    std::printf("serve_throughput: %s, %d requests per fleet size\n\n", model.c_str(),
                requests);
    common::Table table({"devices=workers", "sim inf/s", "sim scaling", "wall inf/s",
                         "p99 [cycles]"});
    double base_sim = 0.0;
    for (const int fleet_size : {1, 2, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.num_devices = fleet_size;
        cfg.num_workers = fleet_size;
        cfg.max_batch = 8;
        serve::NpuServer server(ctx, cfg);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(images.size());
        for (const tensor::Tensor& image : images) futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const auto t1 = std::chrono::steady_clock::now();
        server.shutdown();

        const double wall_s = std::chrono::duration<double>(t1 - t0).count();
        const serve::FleetStats fleet = server.fleet_stats();
        const double sim_ips = fleet.sim_throughput_ips();
        if (fleet_size == 1) base_sim = sim_ips;
        double p99 = 0.0;
        for (const auto& dev : fleet.devices)
            p99 = std::max(p99, dev.latency.p99_cycles);
        table.add_row({std::to_string(fleet_size), common::Table::fmt(sim_ips, 0),
                       common::Table::fmt(base_sim > 0 ? sim_ips / base_sim : 0.0, 2),
                       common::Table::fmt(requests / wall_s, 0),
                       common::Table::fmt(p99, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("sim scaling is the acceptance metric: the modelled fleet serves\n"
                "concurrently in model time regardless of host core count.\n");
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
}
