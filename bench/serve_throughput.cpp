// Serving throughput scaling + the requant-stall and sharding scenarios.
//
// Part 1 — scaling: the same request stream served by fleets of 1, 2, 4
// and 8 devices (workers == devices), reporting simulated fleet
// throughput (model cycles × MAC clock — the figure of merit for the
// modelled NPU, independent of the simulation host) alongside host
// wall-clock. Devices run concurrently in model time, so simulated
// throughput scales linearly with fleet size.
//
// Part 2 — requant stall: a single fast-aging device (high
// age_acceleration, low requant_threshold_mv, full Algorithm 1) under a
// paced request stream, served once with inline re-quantization (the
// device stalls at the batch boundary for the full PTQ method search)
// and once with the background RequantService (build off the serving
// path, double-buffered swap). Reported latency here is host wall-clock
// per request (submit → completion): the stall is host time spent not
// serving, invisible in model cycles. Acceptance: background p99 ≤ 0.5×
// inline p99 with identical final deployed generations, and zero
// ExecPlan recompiles across the second run's re-quantizations.
//
// Part 3 — sharding: resnet20-mini partitioned across 4 devices
// (shard = sub-plan, one pipeline group) against the replicated layout
// at equal device count. The pipeline's simulated throughput is bounded
// by its bottleneck shard, so the acceptance gate is pipelined ≥ 0.8×
// replicated — i.e. the systolic-cycle-balanced graph cut keeps the
// bottleneck within 1.25× of the ideal quarter.
//
// Part 4 — recut: one device of a 2-shard pipeline enters the field aged
// hard (large ΔVth), so the clock its deployment installs runs ~2× the
// fresh period and the static fresh-silicon cut leaves it the pipeline
// bottleneck. Served twice: once with the stale static partition and
// once with online re-partitioning (RepartitionMonitor → heterogeneous
// min-bottleneck re-cut → drain-and-swap). Acceptance: the aged clock is
// ≥ 1.25× the fresh one, post-re-cut simulated throughput ≥ 1.15× the
// stale cut's, outputs stay bit-identical to single-device execution
// across the swap, and per-request partition ids are monotonic.
//
// Part 5 — obs-overhead: the recut fleet (2-shard pipeline, stage-1 aged
// hard, online re-partitioning on) plus a fast-aging requant threshold,
// served twice over the same request stream: telemetry compiled in but
// disabled, then metrics on with 1% deterministic trace sampling. The
// instrumented pass must keep simulated throughput within 3% of the
// baseline, and its scrape must show live series — non-zero queue-depth
// peak, device busy time, ΔVth, requant and re-cut counters — plus at
// least one sampled trace reconstructing the full queue → batch →
// (handoff → execute) × stages → complete journey.
//
// Part 6 — net: the epoll socket front-end against in-process serving.
// Pass 1 serves a closed-loop stream (8 concurrent submitters) straight
// through NpuServer::submit — the no-network baseline. Pass 2 serves
// the same stream over localhost TCP through net::Server + net::LoadGen
// (8 connections). Pass 3 offers an open-loop Poisson stream at ~2× the
// measured socket capacity against a small admission queue. Acceptance:
// socket QPS ≥ 0.7× in-process and socket p99 ≤ 2× in-process (the
// front-end adds syscalls, not stalls); under overload the excess is
// shed with BUSY, nothing is lost or blackholed, and every accepted
// response stays bit-identical to in-process execution.
//
// Part 7 — slo: the PR 10 multi-tenant scheduling + reliability-planner
// gate. A 2-shard pipeline with one hard-aged stage and accelerated
// aging serves two phased open-loop streams over the socket front-end:
// a high-rate phase (the requant threshold crossing and the re-cut
// trigger both land here) followed by a low-rate phase. The baseline
// pass is the single-FIFO status quo: every request on one lane,
// planner off, reliability work firing reactively into peak traffic.
// The mixed pass sends 50% interactive / 50% batch through the
// class-aware scheduler with the planner on. Acceptance: interactive
// p99 in the mixed pass meets its SLO (max of the scheduler target and
// 3× the baseline's own p99 under the identical stream), batch
// throughput keeps ≥ 85% of its pro-rata share of the baseline, the
// planner defers reliability work out of the high phase and lands it
// inside a predicted low-traffic window (timeline-asserted:
// window-predicted → build-scheduled "(low window)", with ≥ 1 deferral
// and ≥ 1 re-cut), and accepted socket responses stay bit-identical to
// in-process submission on the same quiesced fleet.
//
// Usage: serve_throughput [--scenario all|scaling|requant|shard|recut|
//                          obs-overhead|net|slo] [requests] [network]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "exec/plan_cache.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "obs/telemetry.hpp"
#include "quant/methods.hpp"
#include "serve/server.hpp"

namespace {

using namespace raq;
using Clock = std::chrono::steady_clock;


struct StallReport {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t final_generation = 0;
    int requants = 0;
    double max_build_ms = 0.0;
    double max_swap_us = 0.0;
};

/// One paced pass over the aging device; `background` toggles the
/// RequantService vs. the inline batch-boundary rebuild.
StallReport run_stall_scenario(const serve::ServeContext& ctx,
                               const std::vector<tensor::Tensor>& images, bool background,
                               double threshold_mv, double acceleration,
                               std::chrono::microseconds pace) {
    const int requests = static_cast<int>(images.size());
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 8;
    cfg.background_requant = background;
    cfg.device.requant_threshold_mv = threshold_mv;
    cfg.device.age_acceleration = acceleration;
    cfg.device.full_algorithm1 = true;
    serve::NpuServer server(ctx, cfg);

    std::vector<std::future<serve::InferenceResult>> futures(
        static_cast<std::size_t>(requests));
    std::vector<Clock::time_point> submitted(static_cast<std::size_t>(requests));
    std::vector<double> latency_ms(static_cast<std::size_t>(requests));
    std::atomic<int> ready{0};

    // Completion stamping runs concurrently with paced submission; one
    // device and one worker keep completion in FIFO order, so waiting in
    // submission order observes each future as it resolves.
    std::thread waiter([&] {
        for (int i = 0; i < requests; ++i) {
            while (ready.load(std::memory_order_acquire) <= i)
                std::this_thread::yield();
            futures[static_cast<std::size_t>(i)].wait();
            latency_ms[static_cast<std::size_t>(i)] =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - submitted[static_cast<std::size_t>(i)])
                    .count();
        }
    });
    for (int i = 0; i < requests; ++i) {
        submitted[static_cast<std::size_t>(i)] = Clock::now();
        futures[static_cast<std::size_t>(i)] =
            server.submit(images[static_cast<std::size_t>(i)]);
        ready.store(i + 1, std::memory_order_release);
        std::this_thread::sleep_for(pace);
    }
    waiter.join();
    server.shutdown();

    const serve::DeviceStats stats = server.device(0).stats();
    StallReport report;
    // One quantile definition project-wide: the same common::quantile
    // interpolation serve's LatencyRecorder reports, so the bench gate
    // and the serving stats agree on what "p99" means (one sort here).
    std::sort(latency_ms.begin(), latency_ms.end());
    report.p50_ms = common::quantile_sorted(latency_ms, 0.50);
    report.p99_ms = common::quantile_sorted(latency_ms, 0.99);
    report.final_generation = stats.generation;
    report.requants = stats.requant_count;
    for (const serve::RequantEvent& e : stats.requant_events) {
        report.max_build_ms = std::max(report.max_build_ms, e.build_ms);
        report.max_swap_us = std::max(report.max_swap_us, e.swap_us);
    }
    return report;
}

/// One pass of the recut scenario: a 2-shard pipeline whose stage-1
/// device entered the field aged `aged_years`. Warm-up traffic exposes
/// the stage imbalance; with `repartition` on, the pass then waits for
/// the online re-cut before measuring.
struct RecutReport {
    double throughput_ips = 0.0;       ///< measured phase, simulated
    double clock_ratio = 0.0;          ///< aged shard clock / fresh shard clock
    std::uint64_t partition_generation = 1;
    std::uint64_t recuts = 0;
    std::uint64_t triggers = 0;
    int requants = 0;                  ///< requant events across both shards
    bool bit_identical = true;         ///< vs. single-device reference logits
    bool partitions_monotonic = true;  ///< per-request partition ids, submit order
    std::vector<std::uint64_t> shard_cycles;  ///< per-image cycles per shard, final cut
};

RecutReport run_recut_pass(const serve::ServeContext& ctx,
                           const std::vector<tensor::Tensor>& warmup,
                           const std::vector<tensor::Tensor>& measure,
                           const quant::QuantizedGraph& reference, bool repartition,
                           double aged_years, double guardband) {
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    // One worker: batches enter the single pipeline group in submit
    // order, so the reported partition ids are monotonic per submit
    // index (two pool workers could reorder entry).
    cfg.num_workers = 1;
    cfg.max_batch = 8;
    cfg.num_shards = 2;
    cfg.initial_age_step_years = aged_years;  // stage 1 enters the field aged hard
    cfg.device.guardband_fraction = guardband;
    // No threshold crossings during the pass: the slow clock is already
    // installed by the aged shard's initial deployment (what any
    // re-quantization at that ΔVth would install), so both passes serve
    // identical arithmetic and the comparison isolates the cut.
    cfg.device.requant_threshold_mv = 1e9;
    cfg.repartition.enabled = repartition;
    cfg.repartition.imbalance_ratio = 1.4;
    cfg.repartition.min_batches = 4;
    cfg.repartition.poll_ms = 1;
    serve::NpuServer server(ctx, cfg);

    RecutReport report;
    const auto wait_all = [](std::vector<std::future<serve::InferenceResult>>& futures) {
        std::vector<serve::InferenceResult> results;
        results.reserve(futures.size());
        for (auto& f : futures) results.push_back(f.get());
        return results;
    };

    // Phase 1 — warm up: enough batches per stage for the monitor's
    // window to mature and (with repartitioning on) the re-cut to land.
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(warmup.size());
    for (const tensor::Tensor& image : warmup) futures.push_back(server.submit(image));
    (void)wait_all(futures);
    if (repartition) {
        const auto deadline = Clock::now() + std::chrono::seconds(30);
        while (server.shard_group(0).partition_generation() < 2 &&
               Clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Phase 2 — measure simulated throughput over the (possibly re-cut)
    // steady state: completed requests over the bottleneck stage's busy
    // time, deltas so the warm-up era doesn't dilute the figure.
    std::vector<double> busy_before;
    for (const auto& d : server.fleet_stats().devices) busy_before.push_back(d.busy_ps);
    futures.clear();
    futures.reserve(measure.size());
    for (const tensor::Tensor& image : measure) futures.push_back(server.submit(image));
    const std::vector<serve::InferenceResult> results = wait_all(futures);
    double bottleneck_ps = 0.0;
    {
        const serve::FleetStats fleet = server.fleet_stats();
        for (std::size_t k = 0; k < fleet.devices.size(); ++k)
            bottleneck_ps =
                std::max(bottleneck_ps, fleet.devices[k].busy_ps - busy_before[k]);
    }
    report.throughput_ips = bottleneck_ps > 0.0
                                ? static_cast<double>(measure.size()) /
                                      (bottleneck_ps * 1e-12)
                                : 0.0;

    // Bit-identity across the swap: every measured-phase result must
    // match the single-device reference exactly (the re-cut moves op
    // boundaries, never arithmetic).
    std::uint64_t last_partition = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const tensor::Tensor serial = quant::run_quantized(reference, measure[i]);
        if (results[i].logits.size() != serial.size()) report.bit_identical = false;
        for (std::size_t c = 0; report.bit_identical && c < serial.size(); ++c)
            if (results[i].logits[c] != serial[c]) report.bit_identical = false;
        if (results[i].partition < last_partition) report.partitions_monotonic = false;
        last_partition = results[i].partition;
    }

    server.shutdown();
    const auto& group = server.shard_group(0);
    report.clock_ratio = group.shard(1).clock_period_ps() / group.shard(0).clock_period_ps();
    const serve::RepartitionStats rp = group.repartition_stats();
    report.partition_generation = rp.partition_generation;
    report.recuts = rp.recuts;
    report.triggers = rp.triggers;
    for (int k = 0; k < group.num_shards(); ++k) {
        report.requants += group.shard(k).requant_count();
        report.shard_cycles.push_back(group.shard(k).per_image_cycles());
    }
    return report;
}

/// The ΔVth at which the minimum-norm (uncompressed) deployment's aged
/// delay reaches `ratio` × the fresh delay — how the recut and
/// obs-overhead scenarios age a shard into the pipeline bottleneck.
double aged_dvth_for_ratio(const core::CompressionSelector& selector, double ratio) {
    const common::Compression none{};
    const double fresh_delay = selector.delay_ps(0.0, none);
    double lo = 0.0, hi = 300.0;
    while (selector.delay_ps(hi, none) < ratio * fresh_delay) hi += 50.0;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        (selector.delay_ps(mid, none) < ratio * fresh_delay ? lo : hi) = mid;
    }
    return hi;
}

/// One pass of the obs-overhead scenario. Both passes serve the same
/// stream through the same aged-pipeline fleet; `telemetry` toggles the
/// metrics registry + 1% trace sampling on the second pass.
struct ObsReport {
    double sim_ips = 0.0;   ///< measured phase (post-re-cut), simulated
    double wall_s = 0.0;    ///< measured phase host wall-clock
    std::uint64_t recuts = 0;
    int requants = 0;       ///< requant events across both shards
    // Instrumented pass only:
    bool series_ok = false;      ///< scrape shows every required live series
    bool trace_ok = false;       ///< a sampled trace covers the full journey
    std::uint64_t traces_started = 0;
    std::string trace_line;      ///< the full-journey trace, rendered
    std::string timeline_text;   ///< reliability-event timeline, rendered
};

ObsReport run_obs_pass(const serve::ServeContext& ctx,
                       const std::vector<tensor::Tensor>& warmup,
                       const std::vector<tensor::Tensor>& measure, bool telemetry,
                       double aged_years, double guardband, double acceleration) {
    serve::ServeConfig cfg;
    cfg.num_devices = 2;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.num_shards = 2;
    cfg.initial_age_step_years = aged_years;  // stage 1 enters the field aged hard
    cfg.device.guardband_fraction = guardband;
    cfg.device.requant_threshold_mv = 2.5;
    cfg.device.age_acceleration = acceleration;
    cfg.background_requant = true;
    cfg.repartition.enabled = true;
    cfg.repartition.imbalance_ratio = 1.4;
    cfg.repartition.min_batches = 4;
    cfg.repartition.poll_ms = 1;
    cfg.telemetry.metrics = telemetry;
    cfg.telemetry.trace_sample_rate = telemetry ? 0.01 : 0.0;
    cfg.telemetry.trace_reservoir = 64;
    serve::NpuServer server(ctx, cfg);

    const auto wait_all = [](std::vector<std::future<serve::InferenceResult>>& futures) {
        for (auto& f : futures) f.get();
    };

    // Phase 1 — warm up until the online re-cut lands, so the measured
    // phase runs the same steady-state cut in both passes (the re-cut's
    // host-time arrival would otherwise skew the comparison).
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(warmup.size());
    for (const tensor::Tensor& image : warmup) futures.push_back(server.submit(image));
    wait_all(futures);
    {
        const auto deadline = Clock::now() + std::chrono::seconds(30);
        while (server.shard_group(0).partition_generation() < 2 &&
               Clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Phase 2 — measure simulated throughput (completed requests over the
    // bottleneck stage's busy-time delta — model time, host-independent).
    std::vector<double> busy_before;
    for (const auto& d : server.fleet_stats().devices) busy_before.push_back(d.busy_ps);
    futures.clear();
    futures.reserve(measure.size());
    const auto t0 = Clock::now();
    for (const tensor::Tensor& image : measure) futures.push_back(server.submit(image));
    wait_all(futures);
    ObsReport report;
    report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    double bottleneck_ps = 0.0;
    {
        const serve::FleetStats fleet = server.fleet_stats();
        for (std::size_t k = 0; k < fleet.devices.size(); ++k)
            bottleneck_ps =
                std::max(bottleneck_ps, fleet.devices[k].busy_ps - busy_before[k]);
    }
    report.sim_ips = bottleneck_ps > 0.0
                         ? static_cast<double>(measure.size()) / (bottleneck_ps * 1e-12)
                         : 0.0;

    // Scrape the live server (instrumented pass): every required series
    // must be present and non-zero, and some sampled trace must span the
    // whole sharded journey.
    if (telemetry && server.telemetry()) {
        const obs::MetricsRegistry& reg = server.telemetry()->metrics();
        double busy = 0.0, dvth = 0.0;
        for (int d = 0; d < 2; ++d) {
            const obs::Labels labels{{"device", std::to_string(d)},
                                     {"stage", std::to_string(d)}};
            if (const obs::Gauge* g = reg.find_gauge("raq_device_busy_ps", labels))
                busy = std::max(busy, g->value());
            if (const obs::Gauge* g = reg.find_gauge("raq_device_dvth_mv", labels))
                dvth = std::max(dvth, g->value());
        }
        const obs::Gauge* peak = reg.find_gauge("raq_queue_depth_peak");
        const std::string expo = server.export_metrics();
        report.series_ok = peak != nullptr && peak->value() > 0.0 && busy > 0.0 &&
                           dvth > 0.0 && reg.counter_sum("raq_requants_total") >= 1 &&
                           reg.counter_sum("raq_repartition_recuts_total") >= 1 &&
                           expo.find("raq_queue_wait_us_bucket") != std::string::npos;
        for (const obs::TraceContext& trace : server.telemetry()->traces().snapshot()) {
            bool queue = false, batch = false, handoff = false, complete = false;
            bool stage0 = false, stage1 = false;
            for (const obs::TraceSpan& span : trace.spans) {
                switch (span.kind) {
                    case obs::SpanKind::Queue: queue = true; break;
                    case obs::SpanKind::Batch: batch = true; break;
                    case obs::SpanKind::Handoff: handoff = true; break;
                    case obs::SpanKind::Execute:
                        if (span.stage == 0) stage0 = true;
                        if (span.stage == 1) stage1 = true;
                        break;
                    case obs::SpanKind::Complete: complete = true; break;
                }
            }
            if (queue && batch && handoff && stage0 && stage1 && complete) {
                report.trace_ok = true;
                report.trace_line = trace.to_string();
                break;
            }
        }
        report.traces_started = server.telemetry()->traces().started();
        report.timeline_text = server.export_timeline();
    }

    server.shutdown();
    report.recuts = server.shard_group(0).repartition_stats().recuts;
    const auto& group = server.shard_group(0);
    for (int k = 0; k < group.num_shards(); ++k)
        report.requants += group.shard(k).requant_count();
    return report;
}

}  // namespace

int main(int argc, char** argv) try {
    using namespace raq;
    int argi = 1;
    std::string scenario = "all";
    if (argc > argi && std::strncmp(argv[argi], "--scenario", 10) == 0) {
        if (const char* eq = std::strchr(argv[argi], '=')) {
            scenario = eq + 1;
            ++argi;
        } else if (argc > argi + 1) {
            scenario = argv[argi + 1];
            argi += 2;
        } else {
            std::fprintf(stderr, "serve_throughput: --scenario needs a value\n");
            return 1;
        }
    }
    if (scenario != "all" && scenario != "scaling" && scenario != "requant" &&
        scenario != "shard" && scenario != "recut" && scenario != "obs-overhead" &&
        scenario != "net" && scenario != "slo") {
        std::fprintf(stderr,
                     "serve_throughput: unknown scenario '%s' (all|scaling|requant|"
                     "shard|recut|obs-overhead|net|slo)\n",
                     scenario.c_str());
        return 1;
    }
    const bool run_scaling = scenario == "all" || scenario == "scaling";
    const bool run_requant = scenario == "all" || scenario == "requant";
    const bool run_shard = scenario == "all" || scenario == "shard";
    const bool run_recut = scenario == "all" || scenario == "recut";
    const bool run_obs = scenario == "all" || scenario == "obs-overhead";
    const bool run_net = scenario == "all" || scenario == "net";
    const bool run_slo = scenario == "all" || scenario == "slo";
    const int requests = argc > argi ? std::atoi(argv[argi]) : 256;
    const std::string model = argc > argi + 1 ? argv[argi + 1] : "alexnet-mini";

    benchutil::Workbench bench;
    auto& net = bench.cache.get(model);
    auto graph = net.export_ir();
    const auto calib = quant::calibrate(graph, bench.calib_images, bench.calib_labels);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    // Pre-build the request stream so submission cost is not measured.
    std::vector<tensor::Tensor> images;
    images.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        images.push_back(bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    bool stall_pass = true;
    bool shard_pass = true;
    bool recut_pass = true;
    bool obs_pass = true;
    bool net_pass = true;
    bool slo_pass = true;

    if (run_scaling) {
    std::printf("serve_throughput: %s, %d requests per fleet size\n\n", model.c_str(),
                requests);
    common::Table table({"devices=workers", "sim inf/s", "sim scaling", "wall inf/s",
                         "p99 [cycles]"});
    double base_sim = 0.0;
    for (const int fleet_size : {1, 2, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.num_devices = fleet_size;
        cfg.num_workers = fleet_size;
        cfg.max_batch = 8;
        serve::NpuServer server(ctx, cfg);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(images.size());
        for (const tensor::Tensor& image : images) futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const auto t1 = std::chrono::steady_clock::now();
        server.shutdown();

        const double wall_s = std::chrono::duration<double>(t1 - t0).count();
        const serve::FleetStats fleet = server.fleet_stats();
        const double sim_ips = fleet.sim_throughput_ips();
        if (fleet_size == 1) base_sim = sim_ips;
        double p99 = 0.0;
        for (const auto& dev : fleet.devices)
            p99 = std::max(p99, dev.latency.p99_cycles);
        table.add_row({std::to_string(fleet_size), common::Table::fmt(sim_ips, 0),
                       common::Table::fmt(base_sim > 0 ? sim_ips / base_sim : 0.0, 2),
                       common::Table::fmt(requests / wall_s, 0),
                       common::Table::fmt(p99, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("sim scaling is the acceptance metric: the modelled fleet serves\n"
                "concurrently in model time regardless of host core count.\n\n");
    }

    // ---------------------------------------------- requant-stall scenario
    if (run_requant) {
    const int stall_requests = 900;
    const double threshold_mv = 2.5;
    const double end_dvth_mv = 6.0;  // two crossings (2.5, 5.0) per pass
    const auto pace = std::chrono::microseconds(3000);

    const tensor::Tensor eval_images = bench.cache.dataset().test_batch(0, 32);
    const std::vector<int> eval_labels(bench.test_labels.begin(),
                                       bench.test_labels.begin() + 32);
    serve::ServeContext stall_ctx = ctx;
    stall_ctx.eval_images = &eval_images;
    stall_ctx.eval_labels = &eval_labels;

    std::vector<tensor::Tensor> stall_images;
    stall_images.reserve(static_cast<std::size_t>(stall_requests));
    for (int i = 0; i < stall_requests; ++i)
        stall_images.push_back(
            bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    // Scale aging so this stream ends around end_dvth_mv on one device.
    double acceleration = 0.0;
    {
        serve::ServeConfig probe_cfg;
        serve::NpuServer probe(ctx, probe_cfg);
        const double busy_hours_per_request =
            static_cast<double>(probe.device(0).per_image_cycles()) *
            probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
        probe.shutdown();
        acceleration = aging_model.years_for_dvth(end_dvth_mv) * 8760.0 /
                       (stall_requests * busy_hours_per_request);
    }

    std::printf("requant-stall: %d paced requests (%.1f ms apart), threshold %.1f mV,\n"
                "full Algorithm 1 per re-quantization (eval on %d samples)\n\n",
                stall_requests, 1e-3 * static_cast<double>(pace.count()), threshold_mv,
                eval_images.shape().n);

    const StallReport inline_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/false, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_before = exec::PlanCache::global().stats();
    const StallReport bg_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/true, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_after = exec::PlanCache::global().stats();

    common::Table stall({"requant mode", "requants", "final gen", "p50 [ms]", "p99 [ms]",
                         "max build [ms]", "max swap [us]"});
    stall.add_row({"inline", std::to_string(inline_run.requants),
                   std::to_string(inline_run.final_generation),
                   common::Table::fmt(inline_run.p50_ms, 2),
                   common::Table::fmt(inline_run.p99_ms, 2),
                   common::Table::fmt(inline_run.max_build_ms, 1),
                   common::Table::fmt(inline_run.max_swap_us, 0)});
    stall.add_row({"background", std::to_string(bg_run.requants),
                   std::to_string(bg_run.final_generation),
                   common::Table::fmt(bg_run.p50_ms, 2),
                   common::Table::fmt(bg_run.p99_ms, 2),
                   common::Table::fmt(bg_run.max_build_ms, 1),
                   common::Table::fmt(bg_run.max_swap_us, 0)});
    std::printf("%s\n", stall.to_string().c_str());

    const double ratio =
        inline_run.p99_ms > 0.0 ? bg_run.p99_ms / inline_run.p99_ms : 0.0;
    std::printf("p99 ratio (background / inline): %.3f  [gate: <= 0.5]\n", ratio);
    std::printf("final generations: inline %llu vs background %llu  [gate: identical]\n",
                static_cast<unsigned long long>(inline_run.final_generation),
                static_cast<unsigned long long>(bg_run.final_generation));
    std::printf("ExecPlan recompiles during the background pass: %llu  [gate: 0 — the\n"
                "plan cache serves every re-quantization of an already-seen topology]\n",
                static_cast<unsigned long long>(cache_after.misses - cache_before.misses));
    stall_pass = ratio <= 0.5 &&
                 inline_run.final_generation == bg_run.final_generation &&
                 cache_after.misses == cache_before.misses;
    std::printf("requant-stall gate: %s\n\n", stall_pass ? "PASS" : "FAIL");
    }

    // ------------------------------------------------- sharding scenario
    if (run_shard) {
    const int shard_devices = 4;
    const int shard_requests = requests;
    auto& shard_net = bench.cache.get("resnet20-mini");
    auto shard_graph = shard_net.export_ir();
    const auto shard_calib =
        quant::calibrate(shard_graph, bench.calib_images, bench.calib_labels);
    serve::ServeContext shard_ctx;
    shard_ctx.graph = &shard_graph;
    shard_ctx.calib = &shard_calib;
    shard_ctx.selector = &selector;
    shard_ctx.aging = &aging_model;

    std::vector<tensor::Tensor> shard_images;
    shard_images.reserve(static_cast<std::size_t>(shard_requests));
    for (int i = 0; i < shard_requests; ++i)
        shard_images.push_back(
            bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    const auto run_layout = [&](int num_shards, int workers) {
        serve::ServeConfig cfg;
        cfg.num_devices = shard_devices;
        cfg.num_workers = workers;
        cfg.max_batch = 8;
        cfg.num_shards = num_shards;
        serve::NpuServer server(shard_ctx, cfg);
        const auto t0 = Clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(shard_images.size());
        for (const tensor::Tensor& image : shard_images)
            futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
        server.shutdown();
        const serve::FleetStats fleet = server.fleet_stats();
        return std::make_pair(fleet, wall_s);
    };

    std::printf("sharding: resnet20-mini, %d requests, %d devices — replicated "
                "(4 full copies) vs pipelined (one 4-shard group)\n\n",
                shard_requests, shard_devices);
    const auto [replicated, replicated_wall] = run_layout(/*num_shards=*/1, shard_devices);
    const auto [pipelined, pipelined_wall] = run_layout(shard_devices, /*workers=*/2);

    common::Table shard_table(
        {"layout", "sim inf/s", "wall inf/s", "bottleneck busy [Mcyc]"});
    const auto busiest_mcyc = [](const serve::FleetStats& fleet) {
        std::uint64_t busiest = 0;
        for (const auto& d : fleet.devices) busiest = std::max(busiest, d.busy_cycles);
        return 1e-6 * static_cast<double>(busiest);
    };
    shard_table.add_row({"replicated x4",
                         common::Table::fmt(replicated.sim_throughput_ips(), 0),
                         common::Table::fmt(shard_requests / replicated_wall, 0),
                         common::Table::fmt(busiest_mcyc(replicated), 2)});
    shard_table.add_row({"pipelined 4 shards",
                         common::Table::fmt(pipelined.sim_throughput_ips(), 0),
                         common::Table::fmt(shard_requests / pipelined_wall, 0),
                         common::Table::fmt(busiest_mcyc(pipelined), 2)});
    std::printf("%s\n", shard_table.to_string().c_str());
    for (const auto& d : pipelined.devices)
        std::printf("  shard %d: %llu cycles/inference-pass, clk %.1f ps\n", d.device_id,
                    static_cast<unsigned long long>(
                        d.requests ? d.busy_cycles / d.requests : 0),
                    d.clock_period_ps);

    const double shard_ratio =
        replicated.sim_throughput_ips() > 0.0
            ? pipelined.sim_throughput_ips() / replicated.sim_throughput_ips()
            : 0.0;
    std::printf("pipelined / replicated simulated throughput: %.3f  [gate: >= 0.8]\n",
                shard_ratio);
    shard_pass = shard_ratio >= 0.8;
    std::printf("sharding gate: %s\n\n", shard_pass ? "PASS" : "FAIL");
    }

    // --------------------------------------------------- recut scenario
    if (run_recut) {
        // The aged shard's clock: find the ΔVth whose aged delay on the
        // minimum-norm (uncompressed) deployment is ~2× the fresh one,
        // then admit it with a guardband so compression selection keeps
        // the SAME compression on both shards — the pipeline stays
        // bit-identical to a fresh single device while one stage's clock
        // halves its speed.
        const common::Compression none{};
        const double fresh_delay = selector.delay_ps(0.0, none);
        const double dvth_aged = aged_dvth_for_ratio(selector, 2.0);
        const double aged_years = aging_model.years_for_dvth(dvth_aged);
        const double guardband = 1.2;  // admits the 2x aged clock uncompressed

        const int warmup_n = std::max(48, std::min(requests, 96));
        const int measure_n = std::max(64, requests);
        std::vector<tensor::Tensor> warmup, measure;
        warmup.reserve(static_cast<std::size_t>(warmup_n));
        measure.reserve(static_cast<std::size_t>(measure_n));
        for (int i = 0; i < warmup_n; ++i)
            warmup.push_back(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));
        for (int i = 0; i < measure_n; ++i)
            measure.push_back(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

        // Single-device reference at the shared compression (the
        // selection both shards make under the guardband).
        const auto ref_choice = selector.select(0.0, guardband);
        const quant::QuantizedGraph reference = quant::quantize_graph(
            graph, quant::Method::M5_AciqNoBias,
            quant::QuantConfig::from_compression(ref_choice->compression), calib);

        std::printf("recut: %s, 2-shard pipeline, stage-1 device aged to ΔVth %.1f mV\n"
                    "(aged clock %.0f ps vs fresh %.0f ps), %d warm-up + %d measured "
                    "requests\n\n",
                    model.c_str(), dvth_aged, selector.delay_ps(dvth_aged, none),
                    fresh_delay, warmup_n, measure_n);

        const RecutReport stale = run_recut_pass(ctx, warmup, measure, reference,
                                                 /*repartition=*/false, aged_years,
                                                 guardband);
        const RecutReport recut = run_recut_pass(ctx, warmup, measure, reference,
                                                 /*repartition=*/true, aged_years,
                                                 guardband);

        common::Table recut_table({"partition", "sim inf/s", "partition gen", "re-cuts",
                                   "shard cycles (s0/s1)", "bit-identical"});
        const auto cycles_str = [](const RecutReport& r) {
            std::string out;
            for (std::size_t k = 0; k < r.shard_cycles.size(); ++k)
                out += (k ? "/" : "") + std::to_string(r.shard_cycles[k]);
            return out;
        };
        recut_table.add_row({"stale static", common::Table::fmt(stale.throughput_ips, 0),
                             std::to_string(stale.partition_generation),
                             std::to_string(stale.recuts), cycles_str(stale),
                             stale.bit_identical ? "yes" : "NO"});
        recut_table.add_row({"online re-cut", common::Table::fmt(recut.throughput_ips, 0),
                             std::to_string(recut.partition_generation),
                             std::to_string(recut.recuts), cycles_str(recut),
                             recut.bit_identical ? "yes" : "NO"});
        std::printf("%s\n", recut_table.to_string().c_str());

        const double recovery = stale.throughput_ips > 0.0
                                    ? recut.throughput_ips / stale.throughput_ips
                                    : 0.0;
        std::printf("aged / fresh shard clock: %.2f  [gate: >= 1.25]\n",
                    recut.clock_ratio);
        std::printf("re-cut / stale simulated throughput: %.3f  [gate: >= 1.15]\n",
                    recovery);
        std::printf("online re-cuts: %llu (triggers %llu), partition ids monotonic: %s,"
                    " outputs bit-identical: %s\n",
                    static_cast<unsigned long long>(recut.recuts),
                    static_cast<unsigned long long>(recut.triggers),
                    recut.partitions_monotonic ? "yes" : "NO",
                    (stale.bit_identical && recut.bit_identical) ? "yes" : "NO");
        recut_pass = recut.clock_ratio >= 1.25 && recovery >= 1.15 &&
                     recut.recuts >= 1 && stale.recuts == 0 && stale.bit_identical &&
                     recut.bit_identical && recut.partitions_monotonic;
        std::printf("recut gate: %s\n", recut_pass ? "PASS" : "FAIL");
    }

    // -------------------------------------------- obs-overhead scenario
    if (run_obs) {
        const double dvth_aged = aged_dvth_for_ratio(selector, 2.0);
        const double aged_years = aging_model.years_for_dvth(dvth_aged);
        const double guardband = 1.2;

        const int warmup_n = std::max(48, std::min(requests, 96));
        const int measure_n = std::max(128, requests);
        std::vector<tensor::Tensor> warmup, measure;
        warmup.reserve(static_cast<std::size_t>(warmup_n));
        measure.reserve(static_cast<std::size_t>(measure_n));
        for (int i = 0; i < warmup_n; ++i)
            warmup.push_back(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));
        for (int i = 0; i < measure_n; ++i)
            measure.push_back(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

        // Scale aging so the pass crosses the requant threshold: target
        // ~8 mV of fresh-silicon ΔVth growth over the whole stream (a
        // shard sees about half the full-model busy time, leaving the
        // fresh stage 2-3 crossings at 2.5 mV).
        double acceleration = 0.0;
        {
            serve::ServeConfig probe_cfg;
            serve::NpuServer probe(ctx, probe_cfg);
            const double busy_hours_per_request =
                static_cast<double>(probe.device(0).per_image_cycles()) *
                probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
            probe.shutdown();
            acceleration = aging_model.years_for_dvth(8.0) * 8760.0 /
                           ((warmup_n + measure_n) * busy_hours_per_request);
        }

        std::printf("obs-overhead: %s, 2-shard pipeline (stage 1 aged to ΔVth %.1f mV),\n"
                    "online re-cut + background requant, %d warm-up + %d measured "
                    "requests,\ntelemetry off vs metrics + 1%% trace sampling\n\n",
                    model.c_str(), dvth_aged, warmup_n, measure_n);

        const ObsReport base = run_obs_pass(ctx, warmup, measure, /*telemetry=*/false,
                                            aged_years, guardband, acceleration);
        const ObsReport inst = run_obs_pass(ctx, warmup, measure, /*telemetry=*/true,
                                            aged_years, guardband, acceleration);

        common::Table obs_table(
            {"telemetry", "sim inf/s", "wall inf/s", "re-cuts", "requants", "traces"});
        obs_table.add_row({"off", common::Table::fmt(base.sim_ips, 0),
                           common::Table::fmt(measure_n / base.wall_s, 0),
                           std::to_string(base.recuts), std::to_string(base.requants),
                           "-"});
        obs_table.add_row({"metrics + 1% traces", common::Table::fmt(inst.sim_ips, 0),
                           common::Table::fmt(measure_n / inst.wall_s, 0),
                           std::to_string(inst.recuts), std::to_string(inst.requants),
                           std::to_string(inst.traces_started)});
        std::printf("%s\n", obs_table.to_string().c_str());

        if (!inst.timeline_text.empty())
            std::printf("reliability timeline (instrumented pass):\n%s\n",
                        inst.timeline_text.c_str());
        if (inst.trace_ok)
            std::printf("sampled full-journey trace:\n  %s\n\n", inst.trace_line.c_str());

        const double ratio = base.sim_ips > 0.0 ? inst.sim_ips / base.sim_ips : 0.0;
        std::printf("instrumented / baseline simulated throughput: %.3f  "
                    "[gate: >= 0.97]\n", ratio);
        std::printf("scrape shows live queue/busy/ΔVth/requant/re-cut series: %s  "
                    "[gate: yes]\n", inst.series_ok ? "yes" : "NO");
        std::printf("sampled trace spans queue→batch→handoff→execute(x2)→complete: %s  "
                    "[gate: yes]\n", inst.trace_ok ? "yes" : "NO");
        obs_pass = ratio >= 0.97 && inst.series_ok && inst.trace_ok &&
                   inst.recuts >= 1 && inst.requants >= 1;
        std::printf("obs-overhead gate: %s\n", obs_pass ? "PASS" : "FAIL");
    }

    // ---------------------------------------------------- net scenario
    if (run_net) {
        const int kConns = 8;
        const int net_requests = std::max(128, requests);

        // The wire-ready sample set: each carries both the u8 payload and
        // the reconstructed reference tensor, so the in-process baseline
        // serves EXACTLY what the socket path will (same dequant output).
        std::vector<net::EncodedSample> samples;
        samples.reserve(32);
        for (int i = 0; i < 32; ++i)
            samples.push_back(net::encode_sample(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1), 1));

        // Bit-identity reference: the graph a fresh device deploys.
        const auto net_choice = selector.select(0.0);
        const quant::QuantizedGraph net_reference = quant::quantize_graph(
            graph, quant::Method::M5_AciqNoBias,
            quant::QuantConfig::from_compression(net_choice->compression), calib);

        serve::ServeConfig cfg;
        cfg.num_devices = 2;
        cfg.num_workers = 2;
        cfg.max_batch = 8;

        std::printf("net: %s, %d closed-loop requests x %d concurrent clients,\n"
                    "in-process submit() vs localhost TCP through the epoll front-end\n\n",
                    model.c_str(), net_requests, kConns);

        // Pass 1 — in-process closed loop: kConns submitter threads, one
        // outstanding request each, straight into NpuServer::submit.
        double base_qps = 0.0, base_p50 = 0.0, base_p99 = 0.0;
        {
            serve::NpuServer server(ctx, cfg);
            std::vector<double> latency_ms;
            latency_ms.reserve(static_cast<std::size_t>(net_requests));
            std::mutex lat_mutex;
            const auto t0 = Clock::now();
            std::vector<std::thread> clients;
            clients.reserve(kConns);
            for (int c = 0; c < kConns; ++c)
                clients.emplace_back([&, c] {
                    const int quota = net_requests / kConns +
                                      (c < net_requests % kConns ? 1 : 0);
                    for (int i = 0; i < quota; ++i) {
                        const net::EncodedSample& sample =
                            samples[static_cast<std::size_t>(c + i * kConns) %
                                    samples.size()];
                        const auto s0 = Clock::now();
                        (void)server.submit(sample.reference).get();
                        const double ms = std::chrono::duration<double, std::milli>(
                                              Clock::now() - s0)
                                              .count();
                        const std::lock_guard<std::mutex> lock(lat_mutex);
                        latency_ms.push_back(ms);
                    }
                });
            for (std::thread& t : clients) t.join();
            const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
            server.shutdown();
            std::sort(latency_ms.begin(), latency_ms.end());
            base_qps = net_requests / wall_s;
            base_p50 = common::quantile_sorted(latency_ms, 0.50);
            base_p99 = common::quantile_sorted(latency_ms, 0.99);
        }

        // Pass 2 — the same closed-loop stream over localhost TCP.
        double sock_qps = 0.0, sock_p50 = 0.0, sock_p99 = 0.0;
        bool sock_lossless = false;
        {
            serve::NpuServer server(ctx, cfg);
            net::NetConfig ncfg;
            ncfg.num_loops = 2;
            net::Server front(server, ncfg);
            net::LoadGenConfig lcfg;
            lcfg.port = front.port();
            lcfg.connections = kConns;
            lcfg.model = net::TrafficModel::ClosedLoop;
            lcfg.total_requests = static_cast<std::uint64_t>(net_requests);
            const net::LoadReport report = net::run_load(lcfg, samples);
            front.stop();
            server.shutdown();
            sock_qps = report.qps();
            sock_p50 = report.p50_ms;
            sock_p99 = report.p99_ms;
            sock_lossless = report.lossless() &&
                            report.ok == static_cast<std::uint64_t>(net_requests);
        }

        common::Table net_table({"path", "qps", "p50 [ms]", "p99 [ms]"});
        net_table.add_row({"in-process", common::Table::fmt(base_qps, 0),
                           common::Table::fmt(base_p50, 3),
                           common::Table::fmt(base_p99, 3)});
        net_table.add_row({"socket", common::Table::fmt(sock_qps, 0),
                           common::Table::fmt(sock_p50, 3),
                           common::Table::fmt(sock_p99, 3)});
        std::printf("%s\n", net_table.to_string().c_str());

        // Pass 3 — overload: an open-loop Poisson stream at ~2× the
        // socket capacity against a deliberately small admission queue.
        // Offered load is a property of the trace, so the excess MUST
        // surface as BUSY sheds — never as lost requests.
        serve::ServeConfig small = cfg;
        small.queue_capacity = 32;
        serve::NpuServer server(ctx, small);
        net::NetConfig ncfg;
        ncfg.num_loops = 2;
        net::Server front(server, ncfg);
        net::LoadGenConfig over;
        over.port = front.port();
        over.connections = kConns;
        over.model = net::TrafficModel::Poisson;
        over.rate_rps = std::max(200.0, 2.0 * sock_qps);
        over.duration_s = 2.0;
        over.capture = true;
        const net::LoadReport storm = net::run_load(over, samples);
        front.stop();
        server.shutdown();

        // Every accepted (OK) response must match serial in-process
        // execution of the same reconstructed tensor bit for bit.
        bool identical = true;
        std::size_t checked = 0;
        for (const net::CapturedResult& cap : storm.captured) {
            if (checked >= 64) break;  // spot-check a bounded prefix
            ++checked;
            const tensor::Tensor serial =
                quant::run_quantized(net_reference, samples[cap.sample_index].reference);
            if (cap.logits.size() != serial.size()) identical = false;
            for (std::size_t k = 0; identical && k < serial.size(); ++k)
                if (cap.logits[k] != serial[k]) identical = false;
        }

        std::printf("overload: %s\n", storm.to_string().c_str());
        const double qps_ratio = base_qps > 0.0 ? sock_qps / base_qps : 0.0;
        const double p99_ratio = base_p99 > 0.0 ? sock_p99 / base_p99 : 0.0;
        std::printf("socket / in-process qps: %.3f  [gate: >= 0.7]\n", qps_ratio);
        std::printf("socket / in-process p99: %.3f  [gate: <= 2.0]\n", p99_ratio);
        std::printf("overload sheds BUSY: %llu, lossless: %s, accepted bit-identical:"
                    " %s (%zu checked)  [gates: > 0 / yes / yes]\n",
                    static_cast<unsigned long long>(storm.busy),
                    storm.lossless() ? "yes" : "NO", identical ? "yes" : "NO", checked);
        net_pass = sock_lossless && qps_ratio >= 0.7 && p99_ratio <= 2.0 &&
                   storm.busy > 0 && storm.lossless() && storm.errors == 0 &&
                   identical && checked > 0;
        std::printf("net gate: %s\n", net_pass ? "PASS" : "FAIL");
    }

    // ---------------------------------------------------- slo scenario
    if (run_slo) {
        const int kConns = 8;

        std::vector<net::EncodedSample> samples;
        samples.reserve(32);
        for (int i = 0; i < 32; ++i)
            samples.push_back(net::encode_sample(
                bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1), 1));

        // The reliability workload: a 2-shard pipeline whose stage-1
        // device enters the field aged to ~1.8x the fresh clock. That
        // imbalance trips the re-cut trigger (1.8 >= 1.4) but stays under
        // the planner's urgent bound (1.5 x 1.4 = 2.1), so placing the
        // re-cut is the planner's call. Guardband 1.2 keeps both shards
        // on the same compression choice across the aging spread.
        const double dvth_aged = aged_dvth_for_ratio(selector, 1.8);
        const double aged_years = aging_model.years_for_dvth(dvth_aged);

        const auto make_config = [&](bool planner_on, double acceleration) {
            serve::ServeConfig cfg;
            cfg.num_devices = 2;
            cfg.num_workers = 2;
            cfg.max_batch = 8;
            cfg.num_shards = 2;
            cfg.initial_age_step_years = aged_years;
            cfg.device.guardband_fraction = 1.2;
            cfg.device.requant_threshold_mv = 2.5;
            cfg.device.age_acceleration = acceleration;
            cfg.background_requant = true;
            cfg.repartition.enabled = true;
            cfg.repartition.imbalance_ratio = 1.4;
            cfg.repartition.min_batches = 4;
            cfg.repartition.poll_ms = 1;
            cfg.telemetry.metrics = true;
            cfg.planner.enabled = planner_on;
            return cfg;
        };

        // Socket capacity probe on the same (non-aging) topology sizes
        // the offered load so both timed passes run below saturation.
        double capacity_qps = 0.0;
        {
            serve::NpuServer server(ctx, make_config(false, 0.0));
            net::NetConfig ncfg;
            ncfg.num_loops = 2;
            net::Server front(server, ncfg);
            net::LoadGenConfig probe;
            probe.port = front.port();
            probe.connections = kConns;
            probe.model = net::TrafficModel::ClosedLoop;
            probe.total_requests = 96;
            const net::LoadReport r = net::run_load(probe, samples);
            front.stop();
            server.shutdown();
            capacity_qps = r.qps();
        }
        const double rate_high = std::max(80.0, 0.7 * capacity_qps);
        const double rate_low = std::max(10.0, 0.02 * capacity_qps);
        const double dur_high = 2.5, dur_low = 3.0;

        // Scale aging so the requant crossing lands inside the high
        // phase: ~7 mV of full-model fresh ΔVth growth over the expected
        // stream. A shard sees about half that busy time, so the 2.5 mV
        // per-shard crossing arrives ~70% of the way through — deep in
        // the high phase — while the gap peaks near 1.4x threshold,
        // inside the planner's 1.6x deferral headroom. The build must
        // therefore wait for the predicted low window.
        double acceleration = 0.0;
        {
            serve::ServeConfig probe_cfg;
            serve::NpuServer probe(ctx, probe_cfg);
            const double busy_hours_per_request =
                static_cast<double>(probe.device(0).per_image_cycles()) *
                probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
            probe.shutdown();
            const double expected_requests =
                rate_high * dur_high + rate_low * dur_low + 64.0;
            acceleration = aging_model.years_for_dvth(7.0) * 8760.0 /
                           (expected_requests * busy_hours_per_request);
        }

        std::printf("slo: %s, 2-shard pipeline (stage 1 aged to ΔVth %.1f mV),\n"
                    "phased Poisson over TCP: %.0f rps x %.1fs high, %.0f rps x %.1fs "
                    "low (capacity %.0f qps),\nsingle-FIFO reactive baseline vs "
                    "class-aware scheduler + reliability planner\n\n",
                    model.c_str(), dvth_aged, rate_high, dur_high, rate_low, dur_low,
                    capacity_qps);

        struct SloPass {
            net::LoadReport high, low;
            bool lossless = true;
            int requants = 0;
            std::uint64_t recuts = 0;
            std::uint64_t ev_predicted = 0, ev_scheduled = 0, ev_deferred = 0,
                          ev_recut = 0;
            bool scheduled_in_low_window = false;
            bool identical = true;
            std::size_t checked = 0;
            serve::SchedulerStats sched;
            std::string timeline_text;
        };

        const auto run_slo_pass = [&](bool planner_on, double frac,
                                      std::uint64_t seed) {
            SloPass out;
            serve::NpuServer server(ctx, make_config(planner_on, acceleration));
            net::NetConfig ncfg;
            ncfg.num_loops = 2;
            net::Server front(server, ncfg);

            net::LoadGenConfig phase;
            phase.port = front.port();
            phase.connections = kConns;
            phase.model = net::TrafficModel::Poisson;
            phase.interactive_frac = frac;
            phase.rate_rps = rate_high;
            phase.duration_s = dur_high;
            phase.seed = seed;
            out.high = net::run_load(phase, samples);

            phase.rate_rps = rate_low;
            phase.duration_s = dur_low;
            phase.seed = seed ^ 0x10ULL;
            out.low = net::run_load(phase, samples);

            // Quiesced bit-identity pass: closed-loop captures over the
            // socket, then the SAME live fleet serves the same tensors
            // in-process. Builds and re-cuts have landed by now and the
            // residual ΔVth gap is far from the threshold, so the model
            // generation is stable and the two paths must agree bit for
            // bit.
            net::LoadGenConfig idc;
            idc.port = front.port();
            idc.connections = 4;
            idc.model = net::TrafficModel::ClosedLoop;
            idc.total_requests = 32;
            idc.interactive_frac = frac;
            idc.capture = true;
            idc.seed = seed ^ 0x1DULL;
            const net::LoadReport id_report = net::run_load(idc, samples);
            for (const net::CapturedResult& cap : id_report.captured) {
                ++out.checked;
                const serve::InferenceResult ref =
                    server.submit(samples[cap.sample_index].reference).get();
                if (cap.logits.size() != ref.logits.size()) out.identical = false;
                for (std::size_t k = 0; out.identical && k < ref.logits.size(); ++k)
                    if (cap.logits[k] != ref.logits[k]) out.identical = false;
            }

            out.lossless = out.high.lossless() && out.low.lossless() &&
                           id_report.lossless() && out.high.errors == 0 &&
                           out.low.errors == 0 && id_report.errors == 0 &&
                           id_report.ok == idc.total_requests;
            out.sched = server.scheduler().stats();
            if (server.telemetry()) {
                const obs::EventTimeline& tl = server.telemetry()->timeline();
                out.ev_predicted = tl.count(obs::EventKind::WindowPredicted);
                out.ev_scheduled = tl.count(obs::EventKind::BuildScheduled);
                out.ev_deferred = tl.count(obs::EventKind::BuildDeferred);
                out.ev_recut = tl.count(obs::EventKind::Recut);
                // The planner's core promise, asserted off the timeline:
                // some build was scheduled into a low window AT OR AFTER
                // the first predicted low-window entry.
                std::int64_t first_low = -1;
                const std::vector<obs::ReliabilityEvent> events = tl.snapshot();
                for (const obs::ReliabilityEvent& ev : events)
                    if (ev.kind == obs::EventKind::WindowPredicted &&
                        (first_low < 0 || ev.t_us < first_low))
                        first_low = ev.t_us;
                for (const obs::ReliabilityEvent& ev : events)
                    if (ev.kind == obs::EventKind::BuildScheduled && first_low >= 0 &&
                        ev.t_us >= first_low &&
                        ev.detail.find("low window") != std::string::npos)
                        out.scheduled_in_low_window = true;
                out.timeline_text = server.export_timeline();
            }
            front.stop();
            server.shutdown();
            const auto& group = server.shard_group(0);
            out.recuts = group.repartition_stats().recuts;
            for (int k = 0; k < group.num_shards(); ++k)
                out.requants += group.shard(k).requant_count();
            return out;
        };

        const SloPass base = run_slo_pass(/*planner_on=*/false, /*frac=*/1.0,
                                          0x510ABULL);
        const SloPass mixed = run_slo_pass(/*planner_on=*/true, /*frac=*/0.5,
                                           0x510BBULL);

        common::Table slo_table({"pass", "phase", "ok", "qps", "interactive p99 [ms]",
                                 "batch p99 [ms]"});
        const auto add_phase = [&](const char* pass, const char* name,
                                   const net::LoadReport& r) {
            slo_table.add_row({pass, name, std::to_string(r.ok),
                               common::Table::fmt(r.qps(), 0),
                               common::Table::fmt(r.interactive_p99_ms, 3),
                               r.ok_batch > 0 ? common::Table::fmt(r.batch_p99_ms, 3)
                                              : "-"});
        };
        add_phase("single-FIFO", "high", base.high);
        add_phase("single-FIFO", "low", base.low);
        add_phase("scheduler+planner", "high", mixed.high);
        add_phase("scheduler+planner", "low", mixed.low);
        std::printf("%s\n", slo_table.to_string().c_str());

        if (!mixed.timeline_text.empty())
            std::printf("reliability timeline (scheduler+planner pass):\n%s\n",
                        mixed.timeline_text.c_str());

        const serve::ServeConfig defaults;
        const double slo_ms = std::max(
            static_cast<double>(defaults.scheduler.interactive_target_us) / 1000.0,
            3.0 * base.high.p99_ms);
        const double base_qps =
            static_cast<double>(base.high.ok + base.low.ok) /
            std::max(1e-9, base.high.wall_s + base.low.wall_s);
        const std::uint64_t mixed_batch_ok = mixed.high.ok_batch + mixed.low.ok_batch;
        const std::uint64_t mixed_ok = mixed.high.ok + mixed.low.ok;
        const double mixed_batch_qps =
            static_cast<double>(mixed_batch_ok) /
            std::max(1e-9, mixed.high.wall_s + mixed.low.wall_s);
        const double batch_share =
            mixed_ok > 0 ? static_cast<double>(mixed_batch_ok) /
                               static_cast<double>(mixed_ok)
                         : 0.0;
        const double batch_floor = 0.85 * base_qps * batch_share;

        std::printf("interactive p99 under load (mixed): %.3f ms  [gate: <= %.3f ms]\n",
                    mixed.high.interactive_p99_ms, slo_ms);
        std::printf("batch qps (mixed): %.0f  [gate: >= %.0f = 85%% of pro-rata "
                    "single-FIFO %.0f]\n",
                    mixed_batch_qps, batch_floor, base_qps);
        std::printf("planner: windows predicted %llu, builds scheduled %llu "
                    "(in low window after prediction: %s), deferred %llu, re-cuts "
                    "%llu  [gates: >=1 / >=1 / yes / >=1 / >=1]\n",
                    static_cast<unsigned long long>(mixed.ev_predicted),
                    static_cast<unsigned long long>(mixed.ev_scheduled),
                    mixed.scheduled_in_low_window ? "yes" : "NO",
                    static_cast<unsigned long long>(mixed.ev_deferred),
                    static_cast<unsigned long long>(mixed.ev_recut));
        std::printf("requants %d/%d, re-cuts %llu/%llu (baseline/mixed), "
                    "batch lane admitted %llu, starvation grants %llu\n",
                    base.requants, mixed.requants,
                    static_cast<unsigned long long>(base.recuts),
                    static_cast<unsigned long long>(mixed.recuts),
                    static_cast<unsigned long long>(mixed.sched.admitted[1]),
                    static_cast<unsigned long long>(mixed.sched.starvation_grants));
        std::printf("lossless: %s, accepted bit-identical to in-process: %s "
                    "(%zu + %zu checked)  [gates: yes / yes]\n",
                    (base.lossless && mixed.lossless) ? "yes" : "NO",
                    (base.identical && mixed.identical) ? "yes" : "NO", base.checked,
                    mixed.checked);

        slo_pass = base.lossless && mixed.lossless &&
                   mixed.high.interactive_p99_ms > 0.0 &&
                   mixed.high.interactive_p99_ms <= slo_ms &&
                   mixed_batch_qps >= batch_floor && mixed.ev_predicted >= 1 &&
                   mixed.ev_scheduled >= 1 && mixed.ev_deferred >= 1 &&
                   mixed.scheduled_in_low_window && mixed.ev_recut >= 1 &&
                   base.requants >= 1 && mixed.requants >= 1 && base.recuts >= 1 &&
                   mixed.recuts >= 1 && mixed.sched.admitted[1] > 0 &&
                   base.identical && mixed.identical && base.checked > 0 &&
                   mixed.checked > 0;
        std::printf("slo gate: %s\n", slo_pass ? "PASS" : "FAIL");
    }

    return (stall_pass && shard_pass && recut_pass && obs_pass && net_pass && slo_pass)
               ? 0
               : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
}
