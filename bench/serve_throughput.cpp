// Serving throughput scaling + the requant-stall and sharding scenarios.
//
// Part 1 — scaling: the same request stream served by fleets of 1, 2, 4
// and 8 devices (workers == devices), reporting simulated fleet
// throughput (model cycles × MAC clock — the figure of merit for the
// modelled NPU, independent of the simulation host) alongside host
// wall-clock. Devices run concurrently in model time, so simulated
// throughput scales linearly with fleet size.
//
// Part 2 — requant stall: a single fast-aging device (high
// age_acceleration, low requant_threshold_mv, full Algorithm 1) under a
// paced request stream, served once with inline re-quantization (the
// device stalls at the batch boundary for the full PTQ method search)
// and once with the background RequantService (build off the serving
// path, double-buffered swap). Reported latency here is host wall-clock
// per request (submit → completion): the stall is host time spent not
// serving, invisible in model cycles. Acceptance: background p99 ≤ 0.5×
// inline p99 with identical final deployed generations, and zero
// ExecPlan recompiles across the second run's re-quantizations.
//
// Part 3 — sharding: resnet20-mini partitioned across 4 devices
// (shard = sub-plan, one pipeline group) against the replicated layout
// at equal device count. The pipeline's simulated throughput is bounded
// by its bottleneck shard, so the acceptance gate is pipelined ≥ 0.8×
// replicated — i.e. the systolic-cycle-balanced graph cut keeps the
// bottleneck within 1.25× of the ideal quarter.
//
// Usage: serve_throughput [requests] [network]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "exec/plan_cache.hpp"
#include "serve/server.hpp"

namespace {

using namespace raq;
using Clock = std::chrono::steady_clock;


struct StallReport {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t final_generation = 0;
    int requants = 0;
    double max_build_ms = 0.0;
    double max_swap_us = 0.0;
};

/// One paced pass over the aging device; `background` toggles the
/// RequantService vs. the inline batch-boundary rebuild.
StallReport run_stall_scenario(const serve::ServeContext& ctx,
                               const std::vector<tensor::Tensor>& images, bool background,
                               double threshold_mv, double acceleration,
                               std::chrono::microseconds pace) {
    const int requests = static_cast<int>(images.size());
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 8;
    cfg.background_requant = background;
    cfg.device.requant_threshold_mv = threshold_mv;
    cfg.device.age_acceleration = acceleration;
    cfg.device.full_algorithm1 = true;
    serve::NpuServer server(ctx, cfg);

    std::vector<std::future<serve::InferenceResult>> futures(
        static_cast<std::size_t>(requests));
    std::vector<Clock::time_point> submitted(static_cast<std::size_t>(requests));
    std::vector<double> latency_ms(static_cast<std::size_t>(requests));
    std::atomic<int> ready{0};

    // Completion stamping runs concurrently with paced submission; one
    // device and one worker keep completion in FIFO order, so waiting in
    // submission order observes each future as it resolves.
    std::thread waiter([&] {
        for (int i = 0; i < requests; ++i) {
            while (ready.load(std::memory_order_acquire) <= i)
                std::this_thread::yield();
            futures[static_cast<std::size_t>(i)].wait();
            latency_ms[static_cast<std::size_t>(i)] =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - submitted[static_cast<std::size_t>(i)])
                    .count();
        }
    });
    for (int i = 0; i < requests; ++i) {
        submitted[static_cast<std::size_t>(i)] = Clock::now();
        futures[static_cast<std::size_t>(i)] =
            server.submit(images[static_cast<std::size_t>(i)]);
        ready.store(i + 1, std::memory_order_release);
        std::this_thread::sleep_for(pace);
    }
    waiter.join();
    server.shutdown();

    const serve::DeviceStats stats = server.device(0).stats();
    StallReport report;
    // One quantile definition project-wide: the same common::quantile
    // interpolation serve's LatencyRecorder reports, so the bench gate
    // and the serving stats agree on what "p99" means (one sort here).
    std::sort(latency_ms.begin(), latency_ms.end());
    report.p50_ms = common::quantile_sorted(latency_ms, 0.50);
    report.p99_ms = common::quantile_sorted(latency_ms, 0.99);
    report.final_generation = stats.generation;
    report.requants = stats.requant_count;
    for (const serve::RequantEvent& e : stats.requant_events) {
        report.max_build_ms = std::max(report.max_build_ms, e.build_ms);
        report.max_swap_us = std::max(report.max_swap_us, e.swap_us);
    }
    return report;
}

}  // namespace

int main(int argc, char** argv) try {
    using namespace raq;
    const int requests = argc > 1 ? std::atoi(argv[1]) : 256;
    const std::string model = argc > 2 ? argv[2] : "alexnet-mini";

    benchutil::Workbench bench;
    auto& net = bench.cache.get(model);
    auto graph = net.export_ir();
    const auto calib = quant::calibrate(graph, bench.calib_images, bench.calib_labels);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    // Pre-build the request stream so submission cost is not measured.
    std::vector<tensor::Tensor> images;
    images.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        images.push_back(bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    std::printf("serve_throughput: %s, %d requests per fleet size\n\n", model.c_str(),
                requests);
    common::Table table({"devices=workers", "sim inf/s", "sim scaling", "wall inf/s",
                         "p99 [cycles]"});
    double base_sim = 0.0;
    for (const int fleet_size : {1, 2, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.num_devices = fleet_size;
        cfg.num_workers = fleet_size;
        cfg.max_batch = 8;
        serve::NpuServer server(ctx, cfg);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(images.size());
        for (const tensor::Tensor& image : images) futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const auto t1 = std::chrono::steady_clock::now();
        server.shutdown();

        const double wall_s = std::chrono::duration<double>(t1 - t0).count();
        const serve::FleetStats fleet = server.fleet_stats();
        const double sim_ips = fleet.sim_throughput_ips();
        if (fleet_size == 1) base_sim = sim_ips;
        double p99 = 0.0;
        for (const auto& dev : fleet.devices)
            p99 = std::max(p99, dev.latency.p99_cycles);
        table.add_row({std::to_string(fleet_size), common::Table::fmt(sim_ips, 0),
                       common::Table::fmt(base_sim > 0 ? sim_ips / base_sim : 0.0, 2),
                       common::Table::fmt(requests / wall_s, 0),
                       common::Table::fmt(p99, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("sim scaling is the acceptance metric: the modelled fleet serves\n"
                "concurrently in model time regardless of host core count.\n\n");

    // ---------------------------------------------- requant-stall scenario
    const int stall_requests = 900;
    const double threshold_mv = 2.5;
    const double end_dvth_mv = 6.0;  // two crossings (2.5, 5.0) per pass
    const auto pace = std::chrono::microseconds(3000);

    const tensor::Tensor eval_images = bench.cache.dataset().test_batch(0, 32);
    const std::vector<int> eval_labels(bench.test_labels.begin(),
                                       bench.test_labels.begin() + 32);
    serve::ServeContext stall_ctx = ctx;
    stall_ctx.eval_images = &eval_images;
    stall_ctx.eval_labels = &eval_labels;

    std::vector<tensor::Tensor> stall_images;
    stall_images.reserve(static_cast<std::size_t>(stall_requests));
    for (int i = 0; i < stall_requests; ++i)
        stall_images.push_back(
            bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    // Scale aging so this stream ends around end_dvth_mv on one device.
    double acceleration = 0.0;
    {
        serve::ServeConfig probe_cfg;
        serve::NpuServer probe(ctx, probe_cfg);
        const double busy_hours_per_request =
            static_cast<double>(probe.device(0).per_image_cycles()) *
            probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
        probe.shutdown();
        acceleration = aging_model.years_for_dvth(end_dvth_mv) * 8760.0 /
                       (stall_requests * busy_hours_per_request);
    }

    std::printf("requant-stall: %d paced requests (%.1f ms apart), threshold %.1f mV,\n"
                "full Algorithm 1 per re-quantization (eval on %d samples)\n\n",
                stall_requests, 1e-3 * static_cast<double>(pace.count()), threshold_mv,
                eval_images.shape().n);

    const StallReport inline_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/false, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_before = exec::PlanCache::global().stats();
    const StallReport bg_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/true, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_after = exec::PlanCache::global().stats();

    common::Table stall({"requant mode", "requants", "final gen", "p50 [ms]", "p99 [ms]",
                         "max build [ms]", "max swap [us]"});
    stall.add_row({"inline", std::to_string(inline_run.requants),
                   std::to_string(inline_run.final_generation),
                   common::Table::fmt(inline_run.p50_ms, 2),
                   common::Table::fmt(inline_run.p99_ms, 2),
                   common::Table::fmt(inline_run.max_build_ms, 1),
                   common::Table::fmt(inline_run.max_swap_us, 0)});
    stall.add_row({"background", std::to_string(bg_run.requants),
                   std::to_string(bg_run.final_generation),
                   common::Table::fmt(bg_run.p50_ms, 2),
                   common::Table::fmt(bg_run.p99_ms, 2),
                   common::Table::fmt(bg_run.max_build_ms, 1),
                   common::Table::fmt(bg_run.max_swap_us, 0)});
    std::printf("%s\n", stall.to_string().c_str());

    const double ratio =
        inline_run.p99_ms > 0.0 ? bg_run.p99_ms / inline_run.p99_ms : 0.0;
    std::printf("p99 ratio (background / inline): %.3f  [gate: <= 0.5]\n", ratio);
    std::printf("final generations: inline %llu vs background %llu  [gate: identical]\n",
                static_cast<unsigned long long>(inline_run.final_generation),
                static_cast<unsigned long long>(bg_run.final_generation));
    std::printf("ExecPlan recompiles during the background pass: %llu  [gate: 0 — the\n"
                "plan cache serves every re-quantization of an already-seen topology]\n",
                static_cast<unsigned long long>(cache_after.misses - cache_before.misses));
    const bool stall_pass = ratio <= 0.5 &&
                            inline_run.final_generation == bg_run.final_generation &&
                            cache_after.misses == cache_before.misses;
    std::printf("requant-stall gate: %s\n\n", stall_pass ? "PASS" : "FAIL");

    // ------------------------------------------------- sharding scenario
    const int shard_devices = 4;
    const int shard_requests = requests;
    auto& shard_net = bench.cache.get("resnet20-mini");
    auto shard_graph = shard_net.export_ir();
    const auto shard_calib =
        quant::calibrate(shard_graph, bench.calib_images, bench.calib_labels);
    serve::ServeContext shard_ctx;
    shard_ctx.graph = &shard_graph;
    shard_ctx.calib = &shard_calib;
    shard_ctx.selector = &selector;
    shard_ctx.aging = &aging_model;

    std::vector<tensor::Tensor> shard_images;
    shard_images.reserve(static_cast<std::size_t>(shard_requests));
    for (int i = 0; i < shard_requests; ++i)
        shard_images.push_back(
            bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    const auto run_layout = [&](int num_shards, int workers) {
        serve::ServeConfig cfg;
        cfg.num_devices = shard_devices;
        cfg.num_workers = workers;
        cfg.max_batch = 8;
        cfg.num_shards = num_shards;
        serve::NpuServer server(shard_ctx, cfg);
        const auto t0 = Clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(shard_images.size());
        for (const tensor::Tensor& image : shard_images)
            futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
        server.shutdown();
        const serve::FleetStats fleet = server.fleet_stats();
        return std::make_pair(fleet, wall_s);
    };

    std::printf("sharding: resnet20-mini, %d requests, %d devices — replicated "
                "(4 full copies) vs pipelined (one 4-shard group)\n\n",
                shard_requests, shard_devices);
    const auto [replicated, replicated_wall] = run_layout(/*num_shards=*/1, shard_devices);
    const auto [pipelined, pipelined_wall] = run_layout(shard_devices, /*workers=*/2);

    common::Table shard_table(
        {"layout", "sim inf/s", "wall inf/s", "bottleneck busy [Mcyc]"});
    const auto busiest_mcyc = [](const serve::FleetStats& fleet) {
        std::uint64_t busiest = 0;
        for (const auto& d : fleet.devices) busiest = std::max(busiest, d.busy_cycles);
        return 1e-6 * static_cast<double>(busiest);
    };
    shard_table.add_row({"replicated x4",
                         common::Table::fmt(replicated.sim_throughput_ips(), 0),
                         common::Table::fmt(shard_requests / replicated_wall, 0),
                         common::Table::fmt(busiest_mcyc(replicated), 2)});
    shard_table.add_row({"pipelined 4 shards",
                         common::Table::fmt(pipelined.sim_throughput_ips(), 0),
                         common::Table::fmt(shard_requests / pipelined_wall, 0),
                         common::Table::fmt(busiest_mcyc(pipelined), 2)});
    std::printf("%s\n", shard_table.to_string().c_str());
    for (const auto& d : pipelined.devices)
        std::printf("  shard %d: %llu cycles/inference-pass, clk %.1f ps\n", d.device_id,
                    static_cast<unsigned long long>(
                        d.requests ? d.busy_cycles / d.requests : 0),
                    d.clock_period_ps);

    const double shard_ratio =
        replicated.sim_throughput_ips() > 0.0
            ? pipelined.sim_throughput_ips() / replicated.sim_throughput_ips()
            : 0.0;
    std::printf("pipelined / replicated simulated throughput: %.3f  [gate: >= 0.8]\n",
                shard_ratio);
    const bool shard_pass = shard_ratio >= 0.8;
    std::printf("sharding gate: %s\n", shard_pass ? "PASS" : "FAIL");
    return (stall_pass && shard_pass) ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
}
