// Serving throughput scaling + the requant-stall scenario.
//
// Part 1 — scaling: the same request stream served by fleets of 1, 2, 4
// and 8 devices (workers == devices), reporting simulated fleet
// throughput (model cycles × MAC clock — the figure of merit for the
// modelled NPU, independent of the simulation host) alongside host
// wall-clock. Devices run concurrently in model time, so simulated
// throughput scales linearly with fleet size.
//
// Part 2 — requant stall: a single fast-aging device (high
// age_acceleration, low requant_threshold_mv, full Algorithm 1) under a
// paced request stream, served once with inline re-quantization (the
// device stalls at the batch boundary for the full PTQ method search)
// and once with the background RequantService (build off the serving
// path, double-buffered swap). Reported latency here is host wall-clock
// per request (submit → completion): the stall is host time spent not
// serving, invisible in model cycles. Acceptance: background p99 ≤ 0.5×
// inline p99 with identical final deployed generations, and zero
// ExecPlan recompiles across the second run's re-quantizations.
//
// Usage: serve_throughput [requests] [network]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "exec/plan_cache.hpp"
#include "serve/server.hpp"

namespace {

using namespace raq;
using Clock = std::chrono::steady_clock;

double percentile_ms(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t index =
        static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
    return values[index];
}

struct StallReport {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t final_generation = 0;
    int requants = 0;
    double max_build_ms = 0.0;
    double max_swap_us = 0.0;
};

/// One paced pass over the aging device; `background` toggles the
/// RequantService vs. the inline batch-boundary rebuild.
StallReport run_stall_scenario(const serve::ServeContext& ctx,
                               const std::vector<tensor::Tensor>& images, bool background,
                               double threshold_mv, double acceleration,
                               std::chrono::microseconds pace) {
    const int requests = static_cast<int>(images.size());
    serve::ServeConfig cfg;
    cfg.num_devices = 1;
    cfg.num_workers = 1;
    cfg.max_batch = 8;
    cfg.background_requant = background;
    cfg.device.requant_threshold_mv = threshold_mv;
    cfg.device.age_acceleration = acceleration;
    cfg.device.full_algorithm1 = true;
    serve::NpuServer server(ctx, cfg);

    std::vector<std::future<serve::InferenceResult>> futures(
        static_cast<std::size_t>(requests));
    std::vector<Clock::time_point> submitted(static_cast<std::size_t>(requests));
    std::vector<double> latency_ms(static_cast<std::size_t>(requests));
    std::atomic<int> ready{0};

    // Completion stamping runs concurrently with paced submission; one
    // device and one worker keep completion in FIFO order, so waiting in
    // submission order observes each future as it resolves.
    std::thread waiter([&] {
        for (int i = 0; i < requests; ++i) {
            while (ready.load(std::memory_order_acquire) <= i)
                std::this_thread::yield();
            futures[static_cast<std::size_t>(i)].wait();
            latency_ms[static_cast<std::size_t>(i)] =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - submitted[static_cast<std::size_t>(i)])
                    .count();
        }
    });
    for (int i = 0; i < requests; ++i) {
        submitted[static_cast<std::size_t>(i)] = Clock::now();
        futures[static_cast<std::size_t>(i)] =
            server.submit(images[static_cast<std::size_t>(i)]);
        ready.store(i + 1, std::memory_order_release);
        std::this_thread::sleep_for(pace);
    }
    waiter.join();
    server.shutdown();

    const serve::DeviceStats stats = server.device(0).stats();
    StallReport report;
    report.p50_ms = percentile_ms(latency_ms, 0.50);
    report.p99_ms = percentile_ms(latency_ms, 0.99);
    report.final_generation = stats.generation;
    report.requants = stats.requant_count;
    for (const serve::RequantEvent& e : stats.requant_events) {
        report.max_build_ms = std::max(report.max_build_ms, e.build_ms);
        report.max_swap_us = std::max(report.max_swap_us, e.swap_us);
    }
    return report;
}

}  // namespace

int main(int argc, char** argv) try {
    using namespace raq;
    const int requests = argc > 1 ? std::atoi(argv[1]) : 256;
    const std::string model = argc > 2 ? argv[2] : "alexnet-mini";

    benchutil::Workbench bench;
    auto& net = bench.cache.get(model);
    auto graph = net.export_ir();
    const auto calib = quant::calibrate(graph, bench.calib_images, bench.calib_labels);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const aging::AgingModel aging_model;

    serve::ServeContext ctx;
    ctx.graph = &graph;
    ctx.calib = &calib;
    ctx.selector = &selector;
    ctx.aging = &aging_model;

    // Pre-build the request stream so submission cost is not measured.
    std::vector<tensor::Tensor> images;
    images.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        images.push_back(bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    std::printf("serve_throughput: %s, %d requests per fleet size\n\n", model.c_str(),
                requests);
    common::Table table({"devices=workers", "sim inf/s", "sim scaling", "wall inf/s",
                         "p99 [cycles]"});
    double base_sim = 0.0;
    for (const int fleet_size : {1, 2, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.num_devices = fleet_size;
        cfg.num_workers = fleet_size;
        cfg.max_batch = 8;
        serve::NpuServer server(ctx, cfg);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(images.size());
        for (const tensor::Tensor& image : images) futures.push_back(server.submit(image));
        for (auto& f : futures) f.get();
        const auto t1 = std::chrono::steady_clock::now();
        server.shutdown();

        const double wall_s = std::chrono::duration<double>(t1 - t0).count();
        const serve::FleetStats fleet = server.fleet_stats();
        const double sim_ips = fleet.sim_throughput_ips();
        if (fleet_size == 1) base_sim = sim_ips;
        double p99 = 0.0;
        for (const auto& dev : fleet.devices)
            p99 = std::max(p99, dev.latency.p99_cycles);
        table.add_row({std::to_string(fleet_size), common::Table::fmt(sim_ips, 0),
                       common::Table::fmt(base_sim > 0 ? sim_ips / base_sim : 0.0, 2),
                       common::Table::fmt(requests / wall_s, 0),
                       common::Table::fmt(p99, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("sim scaling is the acceptance metric: the modelled fleet serves\n"
                "concurrently in model time regardless of host core count.\n\n");

    // ---------------------------------------------- requant-stall scenario
    const int stall_requests = 900;
    const double threshold_mv = 2.5;
    const double end_dvth_mv = 6.0;  // two crossings (2.5, 5.0) per pass
    const auto pace = std::chrono::microseconds(3000);

    const tensor::Tensor eval_images = bench.cache.dataset().test_batch(0, 32);
    const std::vector<int> eval_labels(bench.test_labels.begin(),
                                       bench.test_labels.begin() + 32);
    serve::ServeContext stall_ctx = ctx;
    stall_ctx.eval_images = &eval_images;
    stall_ctx.eval_labels = &eval_labels;

    std::vector<tensor::Tensor> stall_images;
    stall_images.reserve(static_cast<std::size_t>(stall_requests));
    for (int i = 0; i < stall_requests; ++i)
        stall_images.push_back(
            bench.cache.dataset().test_batch(i % benchutil::kTestSamples, 1));

    // Scale aging so this stream ends around end_dvth_mv on one device.
    double acceleration = 0.0;
    {
        serve::ServeConfig probe_cfg;
        serve::NpuServer probe(ctx, probe_cfg);
        const double busy_hours_per_request =
            static_cast<double>(probe.device(0).per_image_cycles()) *
            probe.device(0).clock_period_ps() * 1e-12 / 3600.0;
        probe.shutdown();
        acceleration = aging_model.years_for_dvth(end_dvth_mv) * 8760.0 /
                       (stall_requests * busy_hours_per_request);
    }

    std::printf("requant-stall: %d paced requests (%.1f ms apart), threshold %.1f mV,\n"
                "full Algorithm 1 per re-quantization (eval on %d samples)\n\n",
                stall_requests, 1e-3 * static_cast<double>(pace.count()), threshold_mv,
                eval_images.shape().n);

    const StallReport inline_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/false, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_before = exec::PlanCache::global().stats();
    const StallReport bg_run = run_stall_scenario(
        stall_ctx, stall_images, /*background=*/true, threshold_mv, acceleration, pace);
    const exec::PlanCacheStats cache_after = exec::PlanCache::global().stats();

    common::Table stall({"requant mode", "requants", "final gen", "p50 [ms]", "p99 [ms]",
                         "max build [ms]", "max swap [us]"});
    stall.add_row({"inline", std::to_string(inline_run.requants),
                   std::to_string(inline_run.final_generation),
                   common::Table::fmt(inline_run.p50_ms, 2),
                   common::Table::fmt(inline_run.p99_ms, 2),
                   common::Table::fmt(inline_run.max_build_ms, 1),
                   common::Table::fmt(inline_run.max_swap_us, 0)});
    stall.add_row({"background", std::to_string(bg_run.requants),
                   std::to_string(bg_run.final_generation),
                   common::Table::fmt(bg_run.p50_ms, 2),
                   common::Table::fmt(bg_run.p99_ms, 2),
                   common::Table::fmt(bg_run.max_build_ms, 1),
                   common::Table::fmt(bg_run.max_swap_us, 0)});
    std::printf("%s\n", stall.to_string().c_str());

    const double ratio =
        inline_run.p99_ms > 0.0 ? bg_run.p99_ms / inline_run.p99_ms : 0.0;
    std::printf("p99 ratio (background / inline): %.3f  [gate: <= 0.5]\n", ratio);
    std::printf("final generations: inline %llu vs background %llu  [gate: identical]\n",
                static_cast<unsigned long long>(inline_run.final_generation),
                static_cast<unsigned long long>(bg_run.final_generation));
    std::printf("ExecPlan recompiles during the background pass: %llu  [gate: 0 — the\n"
                "plan cache serves every re-quantization of an already-seen topology]\n",
                static_cast<unsigned long long>(cache_after.misses - cache_before.misses));
    const bool pass = ratio <= 0.5 &&
                      inline_run.final_generation == bg_run.final_generation &&
                      cache_after.misses == cache_before.misses;
    std::printf("requant-stall gate: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
}
