// Table 1 — Accuracy loss (%) and selected quantization method for the
// ten paper networks at each aging level (ΔVth = 10..50 mV), running the
// full Algorithm 1 per (network, level).
//
// Paper shape: losses grow gracefully with aging (means 0.24 -> 2.96 %),
// SqueezeNet is consistently the worst, and only M3 (LAPQ), M4 (ACIQ)
// and M5 (ACIQ w/o bias) are ever selected — never M1/M2.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "core/compression_selector.hpp"

int main() {
    using namespace raq;
    benchutil::Workbench wb;
    const auto names = nn::paper_networks();
    wb.cache.ensure(names);

    const netlist::Netlist mac = benchutil::paper_mac();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);
    const core::AgingAwareQuantizer quantizer(selector);
    const double levels[] = {10.0, 20.0, 30.0, 40.0, 50.0};

    std::printf("Table 1: accuracy loss %% / selected method per aging level "
                "(%d test samples, %d calibration samples)\n",
                benchutil::kTestSamples, benchutil::kCalibSamples);
    std::printf("compression per level: ");
    for (const double dvth : levels)
        std::printf("%s@%gmV ", selector.select(dvth)->compression.to_string().c_str(), dvth);
    std::printf("\n\n");

    struct Row {
        std::string cells[6];
        double fp32 = 0.0;
    };
    std::vector<Row> rows(names.size());
    int method_count[5] = {0, 0, 0, 0, 0};
    std::mutex count_mutex;

    // Pre-load models serially (ModelCache is not thread-safe), analyze in
    // parallel (each worker only touches its own graphs).
    std::vector<ir::Graph> graphs;
    graphs.reserve(names.size());
    for (const auto& name : names) graphs.push_back(wb.cache.get(name).export_ir());

    benchutil::parallel_for(static_cast<int>(names.size()), [&](int i) {
        Row& row = rows[static_cast<std::size_t>(i)];
        row.cells[0] = names[static_cast<std::size_t>(i)];
        core::AagInputs in;
        in.graph = &graphs[static_cast<std::size_t>(i)];
        in.test_images = &wb.test_images;
        in.test_labels = &wb.test_labels;
        in.calib_images = &wb.calib_images;
        in.calib_labels = &wb.calib_labels;
        for (std::size_t l = 0; l < std::size(levels); ++l) {
            const auto result = quantizer.run(in, levels[l]);
            row.fp32 = result.fp32_accuracy;
            row.cells[l + 1] = common::Table::fmt(result.accuracy_loss, 2) + " / " +
                               quant::method_label(result.selected_method);
            const std::lock_guard<std::mutex> lock(count_mutex);
            ++method_count[static_cast<int>(result.selected_method)];
        }
    });

    common::Table table({"network (fp32 acc)", "10mV", "20mV", "30mV", "40mV", "50mV"});
    for (auto& row : rows) {
        row.cells[0] += " (" + common::Table::fmt(100.0 * row.fp32, 1) + "%)";
        table.add_row({row.cells[0], row.cells[1], row.cells[2], row.cells[3], row.cells[4],
                       row.cells[5]});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("method selection histogram: M1=%d M2=%d M3=%d M4=%d M5=%d "
                "(paper: M3 14%%, M4 44%%, M5 42%%, M1/M2 never)\n",
                method_count[0], method_count[1], method_count[2], method_count[3],
                method_count[4]);
    return 0;
}
