// Fig. 1a — Error characteristics of the 8-bit multiplier under aging.
//
// The multiplier is clocked at the critical-path period of the FRESH
// circuit (no guardband). For each aging level (ΔVth = 0..50 mV) random
// operand streams run through the event-driven timing simulator; we
// report the Mean Error Distance (MED) and the probability that one of
// the two product MSBs flips — the two series of the paper's Fig. 1a.
// Paper reference points: MSB-flip probability ~1e-3 at 20 mV, rising
// steeply toward end of life; MED grows monotonically into the hundreds.
#include <cstdio>
#include <cstdlib>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "netlist/builders.hpp"
#include "sim/error_stats.hpp"
#include "sta/sta.hpp"

int main(int argc, char** argv) {
    using namespace raq;
    const int vectors = argc > 1 ? std::atoi(argv[1]) : 100000;
    const netlist::Netlist mult = netlist::build_multiplier_circuit(8);
    const cell::Library fresh = cell::Library::finfet14();
    const sta::Sta sta(mult, fresh);
    const double clock_ps = sta.critical_path_ps(fresh) * 1.0001;

    std::printf("Fig. 1a: 8-bit multiplier aging errors (fresh-clocked at %.1f ps, "
                "%d random vectors per level, seed 1)\n\n",
                clock_ps, vectors);
    common::Table table({"dVth [mV]", "MED", "error rate", "P(MSB-2 flip)", "worst bit"});
    for (const double dvth : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0}) {
        sim::ErrorRunConfig cfg;
        cfg.clock_ps = clock_ps;
        cfg.cycles = vectors;
        const auto stats = sim::characterize_multiplier(mult, fresh.aged(dvth), cfg);
        int worst_bit = 0;
        for (std::size_t b = 0; b < stats.bit_flip_prob.size(); ++b)
            if (stats.bit_flip_prob[b] >= stats.bit_flip_prob[static_cast<std::size_t>(worst_bit)])
                worst_bit = static_cast<int>(b);
        table.add_row({common::Table::fmt(dvth, 0), common::Table::fmt(stats.med, 1),
                       common::Table::sci(stats.error_rate()),
                       common::Table::sci(stats.msb2_flip_prob),
                       "P[" + std::to_string(worst_bit) + "]"});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: MED and MSB-flip probability must grow "
                "monotonically with dVth and be ~0 when fresh.\n");
    return 0;
}
