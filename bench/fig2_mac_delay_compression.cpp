// Fig. 2 — Normalized delay of the 8-bit MAC under (α, β) input
// compression, (α, β) ∈ [0, 4]², for both MSB and LSB zero-padding.
//
// Paper shape: up to ~23 % delay gain at (4,4); some points favour MSB
// padding, others LSB, so both must be examined.
#include <cstdio>
#include <algorithm>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"

int main() {
    using namespace raq;
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);

    std::printf("Fig. 2: normalized MAC delay under (alpha,beta) compression "
                "(fresh library, CP = %.1f ps, %zu gates)\n\n",
                selector.fresh_critical_path_ps(), mac.num_gates());
    common::Table table({"(a,b)", "MSB padding", "LSB padding", "winner"});
    double best = 1.0;
    for (int a = 0; a <= 4; ++a) {
        for (int b = 0; b <= 4; ++b) {
            if (a == 0 && b == 0) continue;
            const double msb =
                selector.delay_ps(0.0, {a, b, common::Padding::Msb}) /
                selector.fresh_critical_path_ps();
            const double lsb =
                selector.delay_ps(0.0, {a, b, common::Padding::Lsb}) /
                selector.fresh_critical_path_ps();
            best = std::min(best, std::min(msb, lsb));
            const char* winner = msb < lsb - 1e-9 ? "MSB" : (lsb < msb - 1e-9 ? "LSB" : "tie");
            table.add_row({"(" + std::to_string(a) + "," + std::to_string(b) + ")",
                           common::Table::fmt(msb, 3), common::Table::fmt(lsb, 3), winner});
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("max delay gain at (4,4)-class compression: %.1f%% "
                "(paper: ~23%%)\n", 100.0 * (1.0 - best));
    return 0;
}
