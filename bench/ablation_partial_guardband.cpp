// §7 in-text ablation — partial guardbands: the paper notes that keeping
// a small 9 % guardband lets the NPU stay at (3,1)-class compression for
// the whole lifetime, cutting the 10-year accuracy loss to 1.11 % on
// average. This bench sweeps the guardband fraction and reports the
// compression and delay cost at end of life (50 mV).
#include <cstdio>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/compression_selector.hpp"
#include "netlist/builders.hpp"

int main() {
    using namespace raq;
    const netlist::Netlist mac = netlist::build_mac_circuit();
    const cell::Library fresh = cell::Library::finfet14();
    const core::CompressionSelector selector(mac, fresh);

    std::printf("Partial-guardband ablation at end of life (dVth = 50 mV):\n"
                "a small guardband relaxes the timing constraint, allowing a milder\n"
                "compression (higher accuracy) at a bounded performance cost.\n\n");
    common::Table table({"guardband", "perf. cost vs no-GB", "selected (a,b)/pad",
                         "norm", "norm. delay"});
    for (const double gb : {0.00, 0.03, 0.06, 0.09, 0.12, 0.15, 0.23}) {
        const auto choice = selector.select(50.0, gb);
        if (!choice) {
            table.add_row({common::Table::pct(gb, 0), common::Table::pct(gb, 0), "none", "-",
                           "-"});
            continue;
        }
        table.add_row({common::Table::pct(gb, 0), common::Table::pct(gb, 0),
                       choice->compression.to_string(),
                       common::Table::fmt(choice->compression.norm(), 2),
                       common::Table::fmt(choice->normalized_delay, 3)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: compression norm decreases monotonically as the "
                "guardband grows; at the full 23%% guardband no compression is needed "
                "(the conventional design point).\n");
    return 0;
}
