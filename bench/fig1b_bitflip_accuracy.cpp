// Fig. 1b — Accuracy of ResNet20/32/44 under random MSB bit-flip
// injection in every convolution multiply, flip probability 1e-5..1e-2,
// each point averaged over repeated injection runs (paper: 10).
//
// Paper shape: accuracy is stable below ~1e-4, collapses beyond ~5e-4,
// and deeper ResNets degrade faster.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

int main(int argc, char** argv) {
    using namespace raq;
    const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
    benchutil::Workbench wb;
    const auto names = nn::fig1b_networks();
    wb.cache.ensure(names);

    const double probs[] = {0.0, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};
    std::printf("Fig. 1b: normalized accuracy vs MSB flip probability "
                "(8-bit quantized baseline, %d repetitions, %d test samples)\n\n",
                reps, benchutil::kTestSamples);

    // One quantized 8-bit baseline per network (alpha = beta = 0).
    struct Row {
        std::string name;
        double acc[8];
    };
    std::vector<Row> rows(names.size());
    benchutil::parallel_for(static_cast<int>(names.size()), [&](int i) {
        auto& net = wb.cache.get(names[static_cast<std::size_t>(i)]);
        const auto graph = net.export_ir();
        const auto calib = quant::calibrate(graph, wb.calib_images, wb.calib_labels);
        const auto qgraph = quant::quantize_graph(graph, quant::Method::M2_MinMaxAsymmetric,
                                                  quant::QuantConfig{}, calib);
        rows[static_cast<std::size_t>(i)].name = names[static_cast<std::size_t>(i)];
        for (std::size_t p = 0; p < std::size(probs); ++p) {
            quant::EvalOptions opts;
            opts.injection.flip_probability = probs[p];
            opts.injection.seed = 17 + p;
            opts.repetitions = reps;
            rows[static_cast<std::size_t>(i)].acc[p] =
                quant::quantized_accuracy(qgraph, wb.test_images, wb.test_labels, opts);
        }
    });

    common::Table table({"flip prob", rows[0].name, rows[1].name, rows[2].name});
    for (std::size_t p = 0; p < std::size(probs); ++p) {
        std::vector<std::string> row{probs[p] == 0.0 ? "0 (clean)"
                                                     : common::Table::sci(probs[p], 0)};
        for (const auto& r : rows)
            row.push_back(common::Table::fmt(r.acc[p] / r.acc[0], 3));  // normalized
        table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: accuracy collapses beyond ~5e-4 and the deepest "
                "network (resnet44) should degrade fastest.\n");
    return 0;
}
