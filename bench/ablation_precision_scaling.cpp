// §7 in-text ablation — precision scaling via LSB masking ([10, 11]): the
// paper evaluated truncating LSBs of the already-8-bit-quantized model
// (no re-quantization, no retraining) and found the accuracy loss
// "unacceptable for all examined NNs and aging levels". This bench
// compares LSB masking against proper re-quantization at the same
// effective bit-width.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

int main() {
    using namespace raq;
    benchutil::Workbench wb;
    const std::vector<std::string> names = {"resnet50-mini", "vgg16-mini",
                                            "squeezenet1.1-mini"};
    wb.cache.ensure(names);

    std::printf("Precision-scaling ablation: LSB masking of the 8-bit model vs "
                "aging-aware re-quantization at the same effective width\n\n");
    common::Table table({"network", "masked bits", "eff. width", "LSB masking loss",
                         "re-quant loss (best method)"});
    for (const auto& name : names) {
        auto graph = wb.cache.get(name).export_ir();
        const auto calib = quant::calibrate(graph, wb.calib_images, wb.calib_labels);
        const double fp32 = ir::float_accuracy(graph, wb.test_images, wb.test_labels);
        for (const int mask_bits : {2, 3, 4}) {
            // Precision scaling: quantize at 8 bit, then truncate LSBs of
            // both weight codes and activation codes at run time.
            auto masked = quant::quantize_graph(graph, quant::Method::M2_MinMaxAsymmetric,
                                                quant::QuantConfig{}, calib);
            for (std::size_t op = 0; op < masked.graph().ops().size(); ++op) {
                if (masked.graph().ops()[op].kind != ir::OpKind::Conv2d) continue;
                auto& qc = masked.conv(op);
                qc.act_mask_bits = mask_bits;
                const std::uint8_t mask = static_cast<std::uint8_t>(0xFFu << mask_bits);
                for (auto& w : qc.qweights) w &= mask;
            }
            const double masked_loss =
                100.0 * (fp32 - quant::quantized_accuracy(masked, wb.test_images,
                                                          wb.test_labels));

            // Proper re-quantization at the same effective width, best method.
            common::Compression comp{mask_bits, mask_bits, common::Padding::Msb};
            const auto cfg = quant::QuantConfig::from_compression(comp);
            double best_loss = 1e9;
            for (const auto method : quant::all_methods()) {
                const auto q = quant::quantize_graph(graph, method, cfg, calib);
                best_loss = std::min(
                    best_loss, 100.0 * (fp32 - quant::quantized_accuracy(
                                                   q, wb.test_images, wb.test_labels)));
            }
            table.add_row({name, std::to_string(mask_bits),
                           "W" + std::to_string(8 - mask_bits) + "A" +
                               std::to_string(8 - mask_bits),
                           common::Table::fmt(masked_loss, 2) + " pp",
                           common::Table::fmt(best_loss, 2) + " pp"});
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper shape check: masking loses far more accuracy than aging-aware "
                "re-quantization at every effective width.\n");
    return 0;
}
