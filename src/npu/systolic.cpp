#include "npu/systolic.hpp"

#include <stdexcept>

namespace raq::npu {

InferenceCycles SystolicArrayModel::analyze(const ir::Graph& graph) const {
    const auto shapes = ir::infer_shapes(graph, 1);
    InferenceCycles result;
    for (const ir::Op& op : graph.ops()) {
        if (op.kind != ir::OpKind::Conv2d) continue;
        const auto& out = shapes[static_cast<std::size_t>(op.output)];
        const std::uint64_t positions =
            static_cast<std::uint64_t>(out.h) * static_cast<std::uint64_t>(out.w);
        const std::uint64_t reduce = static_cast<std::uint64_t>(op.conv.in_c) *
                                     static_cast<std::uint64_t>(op.conv.kh) *
                                     static_cast<std::uint64_t>(op.conv.kw);
        // Weight-stationary tiling: the [reduce, out_c] weight matrix is cut
        // into rows x cols tiles; each tile streams all output positions.
        const std::uint64_t row_tiles =
            (reduce + static_cast<std::uint64_t>(config_.rows) - 1) /
            static_cast<std::uint64_t>(config_.rows);
        const std::uint64_t col_tiles =
            (static_cast<std::uint64_t>(op.conv.out_c) +
             static_cast<std::uint64_t>(config_.cols) - 1) /
            static_cast<std::uint64_t>(config_.cols);
        LayerCycles layer;
        layer.name = op.name;
        layer.macs = reduce * static_cast<std::uint64_t>(op.conv.out_c) * positions;
        layer.cycles = row_tiles * col_tiles *
                       (positions + static_cast<std::uint64_t>(config_.pipeline_fill));
        layer.utilization =
            static_cast<double>(layer.macs) /
            (static_cast<double>(layer.cycles) * config_.rows * config_.cols);
        result.total_cycles += layer.cycles;
        result.total_macs += layer.macs;
        result.layers.push_back(std::move(layer));
    }
    if (result.layers.empty())
        throw std::invalid_argument("SystolicArrayModel: graph has no conv layers");
    return result;
}

std::vector<std::uint64_t> op_cycle_costs(const ir::Graph& graph,
                                          const SystolicConfig& config) {
    const SystolicArrayModel array(config);
    const InferenceCycles cycles = array.analyze(graph);
    std::vector<std::uint64_t> costs(graph.ops().size(), 0);
    std::size_t layer = 0;
    for (std::size_t i = 0; i < costs.size(); ++i)
        if (graph.ops()[i].kind == ir::OpKind::Conv2d)
            costs[i] = cycles.layers.at(layer++).cycles;
    return costs;
}

}  // namespace raq::npu
