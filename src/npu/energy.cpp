#include "npu/energy.hpp"

#include "sim/activity.hpp"

namespace raq::npu {

MacEnergyPoint MacEnergyModel::estimate(const cell::Library& lib,
                                        const common::Compression& comp,
                                        double period_ps) const {
    sim::ActivityRunConfig cfg;
    cfg.period_ps = period_ps;
    cfg.cycles = config_.activity_cycles;
    cfg.seed = config_.seed;
    cfg.compression = comp;
    const sim::ActivityStats stats = sim::measure_mac_activity(*mac_, lib, cfg);
    MacEnergyPoint point;
    point.dynamic_fj = stats.avg_dynamic_energy_fj;
    point.leakage_fj = stats.leakage_energy_fj;
    return point;
}

}  // namespace raq::npu
