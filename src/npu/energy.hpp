// NPU energy model (Fig. 5 substrate): per-MAC dynamic energy measured by
// gate-level switching-activity simulation of the MAC under the operating
// compression, plus leakage power integrated over the (possibly
// guardbanded) clock period.
#pragma once

#include "cell/library.hpp"
#include "common/compression.hpp"
#include "netlist/netlist.hpp"

namespace raq::npu {

struct MacEnergyPoint {
    double dynamic_fj = 0.0;   ///< per MAC operation
    double leakage_fj = 0.0;   ///< per cycle (leakage power x period)
    [[nodiscard]] double total_fj() const { return dynamic_fj + leakage_fj; }
};

struct EnergyModelConfig {
    int activity_cycles = 3000;    ///< simulated MAC operations per estimate
    std::uint64_t seed = 0xE4E26;
};

class MacEnergyModel {
public:
    MacEnergyModel(const netlist::Netlist& mac, EnergyModelConfig config = {})
        : mac_(&mac), config_(config) {}

    /// Energy of one MAC operation at the given aging level, input
    /// compression and clock period.
    [[nodiscard]] MacEnergyPoint estimate(const cell::Library& lib,
                                          const common::Compression& comp,
                                          double period_ps) const;

private:
    const netlist::Netlist* mac_;
    EnergyModelConfig config_;
};

}  // namespace raq::npu
