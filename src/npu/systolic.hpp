// Edge-TPU-class systolic array performance model (paper §4: 64×64 MAC
// array). Maps each IR convolution onto the array with weight-stationary
// tiling and reports cycle counts; combined with the MAC critical-path
// delay from STA this yields inference latency and throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.hpp"

namespace raq::npu {

struct SystolicConfig {
    int rows = 64;  ///< dot-product (reduction) dimension
    int cols = 64;  ///< output-channel dimension
    int pipeline_fill = 64 + 64;  ///< array drain/fill latency per tile pass
};

struct LayerCycles {
    std::string name;
    std::uint64_t macs = 0;
    std::uint64_t cycles = 0;
    double utilization = 0.0;  ///< macs / (cycles * rows * cols)
};

struct InferenceCycles {
    std::vector<LayerCycles> layers;
    std::uint64_t total_cycles = 0;
    std::uint64_t total_macs = 0;

    [[nodiscard]] double latency_us(double mac_period_ps) const {
        return static_cast<double>(total_cycles) * mac_period_ps * 1e-6;
    }
    [[nodiscard]] double inferences_per_second(double mac_period_ps) const {
        return 1e6 / latency_us(mac_period_ps);
    }
};

class SystolicArrayModel {
public:
    explicit SystolicArrayModel(const SystolicConfig& config = {}) : config_(config) {}

    /// Cycle model for one inference of the graph (batch 1).
    [[nodiscard]] InferenceCycles analyze(const ir::Graph& graph) const;

    [[nodiscard]] const SystolicConfig& config() const { return config_; }

private:
    SystolicConfig config_;
};

/// Per-op cost table aligned with graph.ops(): each Conv2d op's systolic
/// cycle count on `config`'s array (tiling and utilization included),
/// zero for MAC-free ops. This is the cost model behind the graph
/// partitioner's pipeline balance — one inference pass per stage costs
/// the sum of its ops' entries.
[[nodiscard]] std::vector<std::uint64_t> op_cycle_costs(const ir::Graph& graph,
                                                        const SystolicConfig& config = {});

}  // namespace raq::npu
