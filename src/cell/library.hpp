// Aging-aware standard-cell library.
//
// Substitution note (DESIGN.md §2): the paper characterizes Silvaco
// open-source FinFET standard cells with Synopsys SiliconSmart / SPICE at
// every ΔVth step, on top of a BSIM-CMG model calibrated to Intel 14 nm
// measurements [21,22]. We replace that flow with an analytical library:
//
//  * per-cell linear delay model:   d = intrinsic + resistance × load
//  * aging derating (alpha-power law, Eq. 1-2 of the paper):
//        Ion ∝ (Vdd − Vth − ΔVth)^alpha
//        derate(ΔVth) = ((Vdd − Vth0) / (Vdd − Vth0 − ΔVth))^alpha
//    calibrated so ΔVth = 50 mV ⇒ ≈ +23 % delay, the paper's 10-year
//    guardband anchor (Fig. 4a).
//  * switching energy per output toggle (load-dependent) and leakage
//    power; leakage *decreases* as Vth rises (subthreshold slope model),
//    a second-order effect the energy bench accounts for.
#pragma once

#include <array>
#include <string>

#include "cell/cell.hpp"

namespace raq::cell {

struct CellSpec {
    CellType type = CellType::Inv;
    double intrinsic_delay_ps = 0.0;     ///< unloaded propagation delay
    double resistance_ps_per_ff = 0.0;   ///< delay slope vs. output load
    double input_cap_ff = 0.0;           ///< per-pin input capacitance
    double switching_energy_fj = 0.0;    ///< internal energy per output toggle
    double leakage_nw = 0.0;             ///< static leakage at Vth0
};

struct TechnologyParams {
    double vdd_v = 0.70;     ///< nominal supply (14 nm FinFET class)
    double vth0_v = 0.30;    ///< fresh threshold voltage
    double alpha = 1.55;     ///< alpha-power-law velocity-saturation index
    double leakage_slope_mv_per_decade = 90.0;  ///< subthreshold slope
    double output_pin_cap_ff = 1.0;  ///< load seen by primary-output drivers
};

class Library {
public:
    /// Fresh (ΔVth = 0) 14 nm-class library with default technology params.
    static Library finfet14();

    /// Derived library at the given aging level. Delays are derated by the
    /// alpha-power law; leakage shrinks with the raised threshold.
    [[nodiscard]] Library aged(double dvth_mv) const;

    [[nodiscard]] const CellSpec& spec(CellType type) const {
        return specs_[static_cast<int>(type)];
    }

    /// Propagation delay of a cell driving `load_ff` of capacitance,
    /// including the aging derate of this library instance.
    [[nodiscard]] double cell_delay_ps(CellType type, double load_ff) const {
        const CellSpec& s = spec(type);
        return (s.intrinsic_delay_ps + s.resistance_ps_per_ff * load_ff) * derate_;
    }

    /// Energy per output toggle driving `load_ff` (internal + wire/pin CV²).
    [[nodiscard]] double switching_energy_fj(CellType type, double load_ff) const;

    /// Leakage power of one cell instance at this library's aging level.
    [[nodiscard]] double leakage_nw(CellType type) const {
        return spec(type).leakage_nw * leakage_factor_;
    }

    [[nodiscard]] double dvth_mv() const { return dvth_mv_; }
    [[nodiscard]] double derate_factor() const { return derate_; }
    [[nodiscard]] const TechnologyParams& tech() const { return tech_; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Alpha-power-law derate for an arbitrary ΔVth under these tech params
    /// (exposed so benches can print the analytic baseline curve).
    [[nodiscard]] double derate_for(double dvth_mv) const;

private:
    Library() = default;

    std::string name_;
    TechnologyParams tech_;
    std::array<CellSpec, kNumCellTypes> specs_{};
    double dvth_mv_ = 0.0;
    double derate_ = 1.0;
    double leakage_factor_ = 1.0;
};

}  // namespace raq::cell
