#include "cell/library.hpp"

#include <cmath>
#include <stdexcept>

namespace raq::cell {

namespace {

// 14 nm-class cell characterization. Values are representative of a
// high-performance FinFET library (single drive strength): complex cells
// pay more intrinsic delay and input capacitance; XOR-class cells are the
// slowest two-input functions, as in any real library.
constexpr CellSpec kSpecs[kNumCellTypes] = {
    // type              intr   res    cap    energy leak
    {CellType::Inv,      3.2,   1.9,   0.70,  0.45,  1.6},
    {CellType::Buf,      5.1,   1.7,   0.70,  0.62,  2.1},
    {CellType::Nand2,    4.6,   2.3,   0.82,  0.78,  2.6},
    {CellType::Nor2,     5.0,   2.6,   0.82,  0.80,  2.6},
    {CellType::And2,     6.8,   2.1,   0.80,  0.95,  3.1},
    {CellType::Or2,      7.1,   2.2,   0.80,  0.97,  3.1},
    {CellType::Xor2,     9.6,   2.8,   1.10,  1.60,  4.2},
    {CellType::Xnor2,    9.8,   2.8,   1.10,  1.62,  4.2},
    {CellType::Nand3,    6.1,   2.9,   0.90,  1.05,  3.6},
    {CellType::Nor3,     6.9,   3.3,   0.90,  1.08,  3.6},
    {CellType::And3,     8.3,   2.4,   0.88,  1.22,  4.1},
    {CellType::Or3,      8.8,   2.5,   0.88,  1.25,  4.1},
    {CellType::Aoi21,    6.0,   2.8,   0.92,  1.02,  3.4},
    {CellType::Oai21,    6.2,   2.8,   0.92,  1.04,  3.4},
    {CellType::Mux2,     8.9,   2.6,   0.95,  1.35,  4.6},
};

}  // namespace

Library Library::finfet14() {
    Library lib;
    lib.name_ = "raq-finfet14-fresh";
    for (int i = 0; i < kNumCellTypes; ++i) lib.specs_[i] = kSpecs[i];
    return lib;
}

double Library::derate_for(double dvth_mv) const {
    if (dvth_mv < 0) throw std::invalid_argument("Library: negative ΔVth");
    const double overdrive_fresh = tech_.vdd_v - tech_.vth0_v;
    const double overdrive_aged = overdrive_fresh - dvth_mv * 1e-3;
    if (overdrive_aged <= 0.05)
        throw std::invalid_argument("Library: ΔVth too large, transistor no longer switches");
    return std::pow(overdrive_fresh / overdrive_aged, tech_.alpha);
}

Library Library::aged(double dvth_mv) const {
    Library lib = *this;
    lib.dvth_mv_ = dvth_mv;
    lib.derate_ = derate_for(dvth_mv);
    // Subthreshold leakage falls by one decade per ~90 mV of extra Vth.
    lib.leakage_factor_ =
        std::pow(10.0, -dvth_mv / tech_.leakage_slope_mv_per_decade);
    lib.name_ = "raq-finfet14-aged-" + std::to_string(static_cast<int>(dvth_mv)) + "mV";
    return lib;
}

double Library::switching_energy_fj(CellType type, double load_ff) const {
    // Internal energy plus the CV² charge of the driven load at Vdd.
    const double cv2 = load_ff * tech_.vdd_v * tech_.vdd_v;  // fF * V^2 = fJ
    return spec(type).switching_energy_fj + 0.5 * cv2;
}

}  // namespace raq::cell
