// Primitive standard-cell types and their logic functions.
//
// The functions are shared by three engines: the bit-parallel functional
// simulator (64 vectors per word), the event-driven timing simulator
// (scalar) and the STA constant propagation (ternary logic, used for
// PrimeTime-style case analysis of zero-padded input bits).
#pragma once

#include <cstdint>
#include "common/span.hpp"
#include <string_view>

namespace raq::cell {

enum class CellType : std::uint8_t {
    Inv,
    Buf,
    Nand2,
    Nor2,
    And2,
    Or2,
    Xor2,
    Xnor2,
    Nand3,
    Nor3,
    And3,
    Or3,
    Aoi21,  // !((a & b) | c)
    Oai21,  // !((a | b) & c)
    Mux2,   // ins: {a, b, sel} -> sel ? b : a
};

inline constexpr int kNumCellTypes = static_cast<int>(CellType::Mux2) + 1;

[[nodiscard]] int num_inputs(CellType type) noexcept;
[[nodiscard]] std::string_view cell_name(CellType type) noexcept;

/// Bit-parallel evaluation: each word carries 64 independent vectors.
[[nodiscard]] std::uint64_t eval_word(CellType type, common::Span<const std::uint64_t> ins) noexcept;

/// Ternary logic for constant propagation.
enum class Logic : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Ternary evaluation with controlling-value semantics, e.g.
/// Nand2(0, X) = 1, And2(0, X) = 0, Xor2(X, anything) = X.
[[nodiscard]] Logic eval_logic(CellType type, common::Span<const Logic> ins) noexcept;

}  // namespace raq::cell
