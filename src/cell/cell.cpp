#include "cell/cell.hpp"

namespace raq::cell {

int num_inputs(CellType type) noexcept {
    switch (type) {
        case CellType::Inv:
        case CellType::Buf:
            return 1;
        case CellType::Nand2:
        case CellType::Nor2:
        case CellType::And2:
        case CellType::Or2:
        case CellType::Xor2:
        case CellType::Xnor2:
            return 2;
        case CellType::Nand3:
        case CellType::Nor3:
        case CellType::And3:
        case CellType::Or3:
        case CellType::Aoi21:
        case CellType::Oai21:
        case CellType::Mux2:
            return 3;
    }
    return 0;
}

std::string_view cell_name(CellType type) noexcept {
    switch (type) {
        case CellType::Inv: return "INV";
        case CellType::Buf: return "BUF";
        case CellType::Nand2: return "NAND2";
        case CellType::Nor2: return "NOR2";
        case CellType::And2: return "AND2";
        case CellType::Or2: return "OR2";
        case CellType::Xor2: return "XOR2";
        case CellType::Xnor2: return "XNOR2";
        case CellType::Nand3: return "NAND3";
        case CellType::Nor3: return "NOR3";
        case CellType::And3: return "AND3";
        case CellType::Or3: return "OR3";
        case CellType::Aoi21: return "AOI21";
        case CellType::Oai21: return "OAI21";
        case CellType::Mux2: return "MUX2";
    }
    return "?";
}

std::uint64_t eval_word(CellType type, common::Span<const std::uint64_t> ins) noexcept {
    switch (type) {
        case CellType::Inv: return ~ins[0];
        case CellType::Buf: return ins[0];
        case CellType::Nand2: return ~(ins[0] & ins[1]);
        case CellType::Nor2: return ~(ins[0] | ins[1]);
        case CellType::And2: return ins[0] & ins[1];
        case CellType::Or2: return ins[0] | ins[1];
        case CellType::Xor2: return ins[0] ^ ins[1];
        case CellType::Xnor2: return ~(ins[0] ^ ins[1]);
        case CellType::Nand3: return ~(ins[0] & ins[1] & ins[2]);
        case CellType::Nor3: return ~(ins[0] | ins[1] | ins[2]);
        case CellType::And3: return ins[0] & ins[1] & ins[2];
        case CellType::Or3: return ins[0] | ins[1] | ins[2];
        case CellType::Aoi21: return ~((ins[0] & ins[1]) | ins[2]);
        case CellType::Oai21: return ~((ins[0] | ins[1]) & ins[2]);
        case CellType::Mux2: return (ins[0] & ~ins[2]) | (ins[1] & ins[2]);
    }
    return 0;
}

namespace {

constexpr Logic kZero = Logic::Zero;
constexpr Logic kOne = Logic::One;
constexpr Logic kX = Logic::X;

Logic l_not(Logic a) noexcept {
    if (a == kX) return kX;
    return a == kZero ? kOne : kZero;
}

Logic l_and(Logic a, Logic b) noexcept {
    if (a == kZero || b == kZero) return kZero;
    if (a == kOne && b == kOne) return kOne;
    return kX;
}

Logic l_or(Logic a, Logic b) noexcept {
    if (a == kOne || b == kOne) return kOne;
    if (a == kZero && b == kZero) return kZero;
    return kX;
}

Logic l_xor(Logic a, Logic b) noexcept {
    if (a == kX || b == kX) return kX;
    return a == b ? kZero : kOne;
}

}  // namespace

Logic eval_logic(CellType type, common::Span<const Logic> ins) noexcept {
    switch (type) {
        case CellType::Inv: return l_not(ins[0]);
        case CellType::Buf: return ins[0];
        case CellType::Nand2: return l_not(l_and(ins[0], ins[1]));
        case CellType::Nor2: return l_not(l_or(ins[0], ins[1]));
        case CellType::And2: return l_and(ins[0], ins[1]);
        case CellType::Or2: return l_or(ins[0], ins[1]);
        case CellType::Xor2: return l_xor(ins[0], ins[1]);
        case CellType::Xnor2: return l_not(l_xor(ins[0], ins[1]));
        case CellType::Nand3: return l_not(l_and(l_and(ins[0], ins[1]), ins[2]));
        case CellType::Nor3: return l_not(l_or(l_or(ins[0], ins[1]), ins[2]));
        case CellType::And3: return l_and(l_and(ins[0], ins[1]), ins[2]);
        case CellType::Or3: return l_or(l_or(ins[0], ins[1]), ins[2]);
        case CellType::Aoi21: return l_not(l_or(l_and(ins[0], ins[1]), ins[2]));
        case CellType::Oai21: return l_not(l_and(l_or(ins[0], ins[1]), ins[2]));
        case CellType::Mux2: {
            const Logic sel = ins[2];
            if (sel == kZero) return ins[0];
            if (sel == kOne) return ins[1];
            // Unknown select: output known only if both data inputs agree.
            if (ins[0] != kX && ins[0] == ins[1]) return ins[0];
            return kX;
        }
    }
    return kX;
}

}  // namespace raq::cell
