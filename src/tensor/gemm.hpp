// Row-major float GEMM used by the float conv/linear paths. Contiguous
// inner loops for auto-vectorization plus row/column blocking for cache
// reuse (each loaded B row feeds a block of A rows, C tiles stay hot).
// The per-element accumulation order is strictly p-ascending in every
// variant — blocking must never change it, because trainer checkpoints
// and the float reference path depend on bit-identical results.
#pragma once

#include <cstddef>

namespace raq::tensor {

/// C[m,n] += A[m,k] * B[k,n]  (row-major; C must be pre-sized; if
/// `accumulate` is false C is overwritten).
void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate = false);

/// C[m,n] += A^T[k,m] * B[k,n]  (A stored row-major as [k, m]).
void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

/// C[m,n] += A[m,k] * B^T[n,k]  (B stored row-major as [n, k]).
void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

}  // namespace raq::tensor
