#include "tensor/tensor.hpp"

#include <stdexcept>

namespace raq::tensor {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
    if (data_.size() != shape_.size())
        throw std::invalid_argument("Tensor: data size does not match shape " +
                                    shape_.to_string());
}

void Tensor::reshape(Shape shape) {
    if (shape.size() != data_.size())
        throw std::invalid_argument("Tensor: reshape size mismatch");
    shape_ = shape;
}

TensorView::TensorView(const Tensor& tensor) : data(tensor.data()), shape(tensor.shape()) {}

TensorView TensorView::batch_view(int start, int count) const {
    if (start < 0 || count < 1 || start + count > shape.n)
        throw std::out_of_range("TensorView: batch_view range [" + std::to_string(start) +
                                ", " + std::to_string(start + count) + ") outside batch of " +
                                std::to_string(shape.n));
    const std::size_t pixels = static_cast<std::size_t>(shape.c) *
                               static_cast<std::size_t>(shape.h) *
                               static_cast<std::size_t>(shape.w);
    Shape s = shape;
    s.n = count;
    return TensorView(data + static_cast<std::size_t>(start) * pixels, s);
}

TensorView Tensor::batch_view(int start, int count) const {
    return TensorView(*this).batch_view(start, count);
}

int conv_out_dim(int in, int kernel, int stride, int pad) {
    const int out = (in + 2 * pad - kernel) / stride + 1;
    if (out <= 0) throw std::invalid_argument("conv_out_dim: empty output");
    return out;
}

void im2col(const Tensor& in, int kh, int kw, int stride, int pad,
            std::vector<float>& columns, int& out_h, int& out_w) {
    const Shape& s = in.shape();
    out_h = conv_out_dim(s.h, kh, stride, pad);
    out_w = conv_out_dim(s.w, kw, stride, pad);
    const std::size_t rows = static_cast<std::size_t>(s.c) * static_cast<std::size_t>(kh) *
                             static_cast<std::size_t>(kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) *
                             static_cast<std::size_t>(out_h) *
                             static_cast<std::size_t>(out_w);
    columns.assign(rows * cols, 0.0f);
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            for (int ky = 0; ky < kh; ++ky) {
                for (int kx = 0; kx < kw; ++kx) {
                    const std::size_t row =
                        (static_cast<std::size_t>(c) * static_cast<std::size_t>(kh) +
                         static_cast<std::size_t>(ky)) *
                            static_cast<std::size_t>(kw) +
                        static_cast<std::size_t>(kx);
                    for (int oy = 0; oy < out_h; ++oy) {
                        const int iy = oy * stride - pad + ky;
                        if (iy < 0 || iy >= s.h) continue;
                        const std::size_t col_base =
                            (static_cast<std::size_t>(n) * static_cast<std::size_t>(out_h) +
                             static_cast<std::size_t>(oy)) *
                            static_cast<std::size_t>(out_w);
                        for (int ox = 0; ox < out_w; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            if (ix < 0 || ix >= s.w) continue;
                            columns[row * cols + col_base + static_cast<std::size_t>(ox)] =
                                in.at(n, c, iy, ix);
                        }
                    }
                }
            }
        }
    }
}

void col2im(const std::vector<float>& columns, const Shape& in_shape, int kh, int kw,
            int stride, int pad, Tensor& grad_in) {
    const int out_h = conv_out_dim(in_shape.h, kh, stride, pad);
    const int out_w = conv_out_dim(in_shape.w, kw, stride, pad);
    const std::size_t cols = static_cast<std::size_t>(in_shape.n) *
                             static_cast<std::size_t>(out_h) *
                             static_cast<std::size_t>(out_w);
    grad_in = Tensor(in_shape);
    for (int n = 0; n < in_shape.n; ++n) {
        for (int c = 0; c < in_shape.c; ++c) {
            for (int ky = 0; ky < kh; ++ky) {
                for (int kx = 0; kx < kw; ++kx) {
                    const std::size_t row =
                        (static_cast<std::size_t>(c) * static_cast<std::size_t>(kh) +
                         static_cast<std::size_t>(ky)) *
                            static_cast<std::size_t>(kw) +
                        static_cast<std::size_t>(kx);
                    for (int oy = 0; oy < out_h; ++oy) {
                        const int iy = oy * stride - pad + ky;
                        if (iy < 0 || iy >= in_shape.h) continue;
                        const std::size_t col_base =
                            (static_cast<std::size_t>(n) * static_cast<std::size_t>(out_h) +
                             static_cast<std::size_t>(oy)) *
                            static_cast<std::size_t>(out_w);
                        for (int ox = 0; ox < out_w; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            if (ix < 0 || ix >= in_shape.w) continue;
                            grad_in.at(n, c, iy, ix) +=
                                columns[row * cols + col_base + static_cast<std::size_t>(ox)];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace raq::tensor
