// Minimal NCHW float tensor used by the NN substrate (PyTorch substitute,
// DESIGN.md §2). Deliberately simple: contiguous storage, explicit shape,
// no views/broadcasting — every consumer in this project iterates layouts
// explicitly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace raq::tensor {

class Tensor;

struct Shape {
    int n = 1, c = 1, h = 1, w = 1;

    [[nodiscard]] std::size_t size() const {
        return static_cast<std::size_t>(n) * static_cast<std::size_t>(c) *
               static_cast<std::size_t>(h) * static_cast<std::size_t>(w);
    }
    [[nodiscard]] std::string to_string() const {
        return "(" + std::to_string(n) + "," + std::to_string(c) + "," + std::to_string(h) +
               "," + std::to_string(w) + ")";
    }
    friend bool operator==(const Shape& a, const Shape& b) {
        return a.n == b.n && a.c == b.c && a.h == b.h && a.w == b.w;
    }
    friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }
};

/// Non-owning read-only view over contiguous NCHW data. Cheap to copy and
/// implicitly constructible from a Tensor; valid only while the viewed
/// storage lives. Batch slices (Tensor::batch_view) alias the owner's
/// samples without copying.
struct TensorView {
    const float* data = nullptr;
    Shape shape;

    TensorView() = default;
    TensorView(const float* data, Shape shape) : data(data), shape(shape) {}
    TensorView(const Tensor& tensor);  // NOLINT(google-explicit-constructor)

    [[nodiscard]] std::size_t size() const { return shape.size(); }

    /// Zero-copy sub-view of `count` samples starting at sample `start`.
    [[nodiscard]] TensorView batch_view(int start, int count) const;
};

class Tensor {
public:
    Tensor() = default;
    explicit Tensor(Shape shape) : shape_(shape), data_(shape.size(), 0.0f) {}
    Tensor(Shape shape, std::vector<float> data);

    [[nodiscard]] const Shape& shape() const { return shape_; }
    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }
    [[nodiscard]] std::vector<float>& vec() { return data_; }
    [[nodiscard]] const std::vector<float>& vec() const { return data_; }

    [[nodiscard]] float& at(int n, int c, int h, int w) {
        return data_[index(n, c, h, w)];
    }
    [[nodiscard]] float at(int n, int c, int h, int w) const {
        return data_[index(n, c, h, w)];
    }
    [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

    void fill(float value) { data_.assign(data_.size(), value); }

    /// Reshape without copying; total size must match.
    void reshape(Shape shape);

    /// Zero-copy view of `count` samples starting at sample `start`
    /// (samples are contiguous in NCHW). The view aliases this tensor's
    /// storage: no per-batch copy, but it must not outlive the tensor.
    [[nodiscard]] TensorView batch_view(int start, int count) const;

private:
    [[nodiscard]] std::size_t index(int n, int c, int h, int w) const {
        return ((static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_.c) +
                 static_cast<std::size_t>(c)) *
                    static_cast<std::size_t>(shape_.h) +
                static_cast<std::size_t>(h)) *
                   static_cast<std::size_t>(shape_.w) +
               static_cast<std::size_t>(w);
    }

    Shape shape_;
    std::vector<float> data_;
};

/// Spatial output size of a convolution/pooling window.
[[nodiscard]] int conv_out_dim(int in, int kernel, int stride, int pad);

/// im2col: expand input patches into a [C*kh*kw, N*oh*ow] column matrix
/// (row-major), so convolution becomes a GEMM with the [OC, C*kh*kw]
/// weight matrix.
void im2col(const Tensor& in, int kh, int kw, int stride, int pad,
            std::vector<float>& columns, int& out_h, int& out_w);

/// col2im: scatter-add the column matrix back into input gradient layout.
void col2im(const std::vector<float>& columns, const Shape& in_shape, int kh, int kw,
            int stride, int pad, Tensor& grad_in);

}  // namespace raq::tensor
