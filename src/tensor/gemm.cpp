#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace raq::tensor {

namespace {

/// Register/cache blocking of the float GEMM family. Correctness
/// constraint: the per-element accumulation order must stay exactly
/// p-ascending (and the aip == 0 skip must stay per (i, p)), because the
/// trainer, the model cache and the float reference path all depend on
/// bit-identical float results. Blocking only changes *which* C elements
/// are being swept between those adds, never the order of adds into any
/// single element — so outputs are unchanged bit for bit.
constexpr std::size_t kRowBlock = 4;   ///< A rows sharing one B-row sweep
constexpr std::size_t kColTile = 512;  ///< C/B columns resident per sweep

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
        const std::size_t im = std::min(kRowBlock, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
            const std::size_t jn = std::min(kColTile, n - j0);
            // Each loaded B row feeds `im` C rows; the C tile stays hot
            // across the whole p sweep.
            for (std::size_t p = 0; p < k; ++p) {
                const float* brow = b + p * n + j0;
                for (std::size_t r = 0; r < im; ++r) {
                    const float aip = a[(i0 + r) * k + p];
                    if (aip == 0.0f) continue;
                    float* crow = c + (i0 + r) * n + j0;
                    for (std::size_t j = 0; j < jn; ++j) crow[j] += aip * brow[j];
                }
            }
        }
    }
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
        const std::size_t im = std::min(kRowBlock, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
            const std::size_t jn = std::min(kColTile, n - j0);
            for (std::size_t p = 0; p < k; ++p) {
                const float* arow = a + p * m;
                const float* brow = b + p * n + j0;
                for (std::size_t r = 0; r < im; ++r) {
                    const float aip = arow[i0 + r];
                    if (aip == 0.0f) continue;
                    float* crow = c + (i0 + r) * n + j0;
                    for (std::size_t j = 0; j < jn; ++j) crow[j] += aip * brow[j];
                }
            }
        }
    }
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        // Four dot products share each arow load; each element's local
        // accumulator still sums strictly p-ascending, then lands on C
        // with one add — exactly the unblocked arithmetic.
        for (std::size_t j0 = 0; j0 < n; j0 += kRowBlock) {
            const std::size_t jn = std::min(kRowBlock, n - j0);
            float acc[kRowBlock] = {0.0f, 0.0f, 0.0f, 0.0f};
            for (std::size_t p = 0; p < k; ++p) {
                const float av = arow[p];
                for (std::size_t jj = 0; jj < jn; ++jj)
                    acc[jj] += av * b[(j0 + jj) * k + p];
            }
            for (std::size_t jj = 0; jj < jn; ++jj) crow[j0 + jj] += acc[jj];
        }
    }
}

}  // namespace raq::tensor
