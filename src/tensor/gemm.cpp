#include "tensor/gemm.hpp"

#include <cstring>

namespace raq::tensor {

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float aip = a[i * k + p];
            if (aip == 0.0f) continue;
            const float* brow = b + p * n;
            float* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
    }
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a + p * m;
        const float* brow = b + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aip = arow[i];
            if (aip == 0.0f) continue;
            float* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
    }
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] += acc;
        }
    }
}

}  // namespace raq::tensor
