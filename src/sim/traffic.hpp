// Traffic-driven duty cycle: close the loop between *served* load and
// the aging model.
//
// The paper's aging trajectories assume a duty cycle — how much of wall
// time the MAC array actually switches — but PRs 1–7 aged devices on
// simulated busy time alone, which is equivalent to assuming every
// deployed NPU runs saturated around the clock. With a network
// front-end in place the serving runtime finally observes real traffic,
// so a device can measure its own utilization and age accordingly: a
// quiet fleet stays cooler and accumulates ΔVth slower than one pinned
// at 100% by a diurnal peak.
//
// Mechanism (BTI self-heating, same Arrhenius form as
// aging::AgingParams::temperature_activation): a device busy for
// fraction f of host time sits at roughly T_sat − (1 − f) × self_heat_c
// degrees, where self_heat_c is the busy-vs-idle die temperature delta.
// The aging accrual for a batch is scaled by
//   duty_aging_factor(f) = exp(temperature_activation × self_heat_c × (f − 1))
// which is exactly the AgingModel's own temperature acceleration applied
// to the utilization-dependent die temperature. At f == 1 the factor is
// 1 — a saturated device ages exactly like the pre-traffic-aware
// runtime, so enabling the feature never *adds* stress, it only relieves
// devices that measured idle time.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/activity.hpp"

namespace raq::sim {

/// Per-device traffic-driven aging knobs (DeviceConfig::traffic_aging).
struct TrafficAgingConfig {
    bool enabled = false;
    /// Sliding utilization window (host µs). Short enough to track a
    /// diurnal trace through an accelerated simulation, long enough to
    /// average over batch granularity.
    std::int64_t window_us = 250'000;
    /// Busy-vs-idle die temperature delta in °C (self-heating under full
    /// MAC switching activity). Derive from measured activity energy via
    /// self_heat_c_from_activity(), or take the default — 15 °C is a
    /// typical inference-accelerator package delta.
    double self_heat_c = 15.0;
};

/// Sliding-window busy-fraction monitor over host-time execution spans.
/// Not thread-safe: the owning device records under its stats mutex.
class DutyCycleMonitor {
public:
    explicit DutyCycleMonitor(std::int64_t window_us = 250'000);

    /// Record one execution span [start_us, end_us] (obs::monotonic_us).
    /// Spans arrive in order: the device is held exclusively per batch.
    void record_busy(std::int64_t start_us, std::int64_t end_us);

    /// Fraction of the trailing window spent executing, in [0, 1]. The
    /// denominator is clipped to the monitor's observed lifetime so a
    /// device busy since startup reads ~1 before a full window elapsed;
    /// with nothing recorded yet the device is idle → 0.
    [[nodiscard]] double busy_fraction(std::int64_t now_us);

    [[nodiscard]] std::int64_t window_us() const { return window_us_; }

private:
    struct Span {
        std::int64_t start_us = 0;
        std::int64_t end_us = 0;
    };
    const std::int64_t window_us_;
    std::deque<Span> spans_;
    std::int64_t first_seen_us_ = -1;  ///< start of the first recorded span
};

/// Knobs for the arrival-rate predictor the ReliabilityPlanner consults
/// when placing requant builds / re-cuts into low-traffic windows.
struct TrafficPredictorConfig {
    /// Arrival-rate sampling window (host µs). Matches the
    /// DutyCycleMonitor default so the two views of load line up.
    std::int64_t window_us = 250'000;
    /// EWMA smoothing across completed windows (1 = last window only).
    double ewma_alpha = 0.4;
    /// Per-window decay of the tracked peak rate, so a one-off burst
    /// months ago does not keep every later lull looking "low".
    double peak_decay = 0.99;
    /// A window is low-traffic when the smoothed rate is at or below
    /// this fraction of the (decayed) peak rate.
    double low_traffic_fraction = 0.35;
    /// Diurnal phase profile: > 0 folds completed windows into this many
    /// phase bins over `period_us`, giving predicted_rate() a seasonal
    /// estimate; 0 disables the profile (EWMA only).
    int diurnal_bins = 0;
    std::int64_t period_us = 4'000'000;
};

/// EWMA + decayed-peak (optionally diurnal-phase) arrival-rate estimator
/// over fixed windows. Arrivals are observed with their monotonic
/// timestamps; nothing here reads a clock. Not thread-safe: the owning
/// ReliabilityPlanner records under its own leaf mutex (the same
/// ownership discipline as DutyCycleMonitor under the device stats
/// mutex).
class TrafficPredictor {
public:
    explicit TrafficPredictor(const TrafficPredictorConfig& config = {});

    /// Record one request arrival at `now_us` (obs::monotonic_us).
    void observe(std::int64_t now_us);

    /// Smoothed arrival rate (requests/sec) as of `now_us`; rolls any
    /// windows that have fully elapsed (empty ones count as zero-rate).
    [[nodiscard]] double rate_now(std::int64_t now_us);
    /// Decayed historical peak of the smoothed rate.
    [[nodiscard]] double rate_peak(std::int64_t now_us);
    /// Seasonal estimate for the window containing `at_us`: the diurnal
    /// phase-bin average when enabled and warmed up, else the EWMA.
    [[nodiscard]] double predicted_rate(std::int64_t at_us);
    /// True when `now_us` sits in a low-traffic window: smoothed rate at
    /// or below low_traffic_fraction × peak (a never-loaded fleet is
    /// trivially low-traffic).
    [[nodiscard]] bool low_traffic(std::int64_t now_us);

    [[nodiscard]] const TrafficPredictorConfig& config() const { return config_; }

private:
    void roll_to(std::int64_t now_us);
    [[nodiscard]] int bin_of(std::int64_t t_us) const;

    const TrafficPredictorConfig config_;
    std::int64_t window_start_us_ = -1;  ///< -1 until the first arrival
    std::uint64_t window_count_ = 0;     ///< arrivals in the open window
    double ewma_rate_ = 0.0;             ///< requests/sec over closed windows
    double peak_rate_ = 0.0;
    bool warmed_ = false;                ///< at least one closed window
    std::vector<double> bin_rate_;       ///< diurnal phase profile
    std::vector<std::uint64_t> bin_windows_;
};

/// Aging-rate multiplier for a device busy for fraction `f` of host
/// time: exp(temperature_activation × self_heat_c × (f − 1)). Equals 1
/// at saturation (f == 1) and decays toward the idle-temperature rate as
/// the device cools — the same per-°C Arrhenius slope the AgingModel
/// applies to its configured operating temperature.
[[nodiscard]] double duty_aging_factor(double busy_fraction, double self_heat_c,
                                       double temperature_activation);

/// Derive the busy-vs-idle die temperature delta from measured MAC
/// switching activity: per-cycle dynamic energy → array power at the
/// operating clock → ΔT through the package thermal resistance
/// (`theta_c_per_w`, °C per watt). Leakage burns at idle too, so only
/// the dynamic share contributes to the busy-idle delta.
[[nodiscard]] double self_heat_c_from_activity(const ActivityStats& stats,
                                               double period_ps, double theta_c_per_w,
                                               std::int64_t num_macs);

}  // namespace raq::sim
