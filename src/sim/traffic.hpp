// Traffic-driven duty cycle: close the loop between *served* load and
// the aging model.
//
// The paper's aging trajectories assume a duty cycle — how much of wall
// time the MAC array actually switches — but PRs 1–7 aged devices on
// simulated busy time alone, which is equivalent to assuming every
// deployed NPU runs saturated around the clock. With a network
// front-end in place the serving runtime finally observes real traffic,
// so a device can measure its own utilization and age accordingly: a
// quiet fleet stays cooler and accumulates ΔVth slower than one pinned
// at 100% by a diurnal peak.
//
// Mechanism (BTI self-heating, same Arrhenius form as
// aging::AgingParams::temperature_activation): a device busy for
// fraction f of host time sits at roughly T_sat − (1 − f) × self_heat_c
// degrees, where self_heat_c is the busy-vs-idle die temperature delta.
// The aging accrual for a batch is scaled by
//   duty_aging_factor(f) = exp(temperature_activation × self_heat_c × (f − 1))
// which is exactly the AgingModel's own temperature acceleration applied
// to the utilization-dependent die temperature. At f == 1 the factor is
// 1 — a saturated device ages exactly like the pre-traffic-aware
// runtime, so enabling the feature never *adds* stress, it only relieves
// devices that measured idle time.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/activity.hpp"

namespace raq::sim {

/// Per-device traffic-driven aging knobs (DeviceConfig::traffic_aging).
struct TrafficAgingConfig {
    bool enabled = false;
    /// Sliding utilization window (host µs). Short enough to track a
    /// diurnal trace through an accelerated simulation, long enough to
    /// average over batch granularity.
    std::int64_t window_us = 250'000;
    /// Busy-vs-idle die temperature delta in °C (self-heating under full
    /// MAC switching activity). Derive from measured activity energy via
    /// self_heat_c_from_activity(), or take the default — 15 °C is a
    /// typical inference-accelerator package delta.
    double self_heat_c = 15.0;
};

/// Sliding-window busy-fraction monitor over host-time execution spans.
/// Not thread-safe: the owning device records under its stats mutex.
class DutyCycleMonitor {
public:
    explicit DutyCycleMonitor(std::int64_t window_us = 250'000);

    /// Record one execution span [start_us, end_us] (obs::monotonic_us).
    /// Spans arrive in order: the device is held exclusively per batch.
    void record_busy(std::int64_t start_us, std::int64_t end_us);

    /// Fraction of the trailing window spent executing, in [0, 1]. The
    /// denominator is clipped to the monitor's observed lifetime so a
    /// device busy since startup reads ~1 before a full window elapsed;
    /// with nothing recorded yet the device is idle → 0.
    [[nodiscard]] double busy_fraction(std::int64_t now_us);

    [[nodiscard]] std::int64_t window_us() const { return window_us_; }

private:
    struct Span {
        std::int64_t start_us = 0;
        std::int64_t end_us = 0;
    };
    const std::int64_t window_us_;
    std::deque<Span> spans_;
    std::int64_t first_seen_us_ = -1;  ///< start of the first recorded span
};

/// Aging-rate multiplier for a device busy for fraction `f` of host
/// time: exp(temperature_activation × self_heat_c × (f − 1)). Equals 1
/// at saturation (f == 1) and decays toward the idle-temperature rate as
/// the device cools — the same per-°C Arrhenius slope the AgingModel
/// applies to its configured operating temperature.
[[nodiscard]] double duty_aging_factor(double busy_fraction, double self_heat_c,
                                       double temperature_activation);

/// Derive the busy-vs-idle die temperature delta from measured MAC
/// switching activity: per-cycle dynamic energy → array power at the
/// operating clock → ΔT through the package thermal resistance
/// (`theta_c_per_w`, °C per watt). Leakage burns at idle too, so only
/// the dynamic share contributes to the busy-idle delta.
[[nodiscard]] double self_heat_c_from_activity(const ActivityStats& stats,
                                               double period_ps, double theta_c_per_w,
                                               std::int64_t num_macs);

}  // namespace raq::sim
