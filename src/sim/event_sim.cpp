#include "sim/event_sim.hpp"

#include <stdexcept>

namespace raq::sim {

EventSimulator::EventSimulator(const netlist::Netlist& nl, const cell::Library& lib)
    : nl_(&nl), lib_(&lib) {
    // Cache per-gate propagation delay and per-toggle energy under this
    // (possibly aged) library. Loads mirror the STA load model.
    std::vector<double> loads_ff(nl.num_nets(), 0.0);
    for (const auto& gate : nl.gates()) {
        const double pin_cap = lib.spec(gate.type).input_cap_ff;
        for (int i = 0; i < gate.num_inputs(); ++i)
            loads_ff[static_cast<std::size_t>(gate.inputs[i])] += pin_cap;
    }
    for (netlist::NetId out : nl.primary_outputs())
        loads_ff[static_cast<std::size_t>(out)] += lib.tech().output_pin_cap_ff;

    gate_delay_ps_.reserve(nl.num_gates());
    toggle_energy_fj_.reserve(nl.num_gates());
    for (const auto& gate : nl.gates()) {
        const double load = loads_ff[static_cast<std::size_t>(gate.output)];
        gate_delay_ps_.push_back(lib.cell_delay_ps(gate.type, load));
        toggle_energy_fj_.push_back(lib.switching_energy_fj(gate.type, load));
    }
    reset();
}

void EventSimulator::reset() {
    // Settle the all-zero input vector instantaneously via functional
    // evaluation: a consistent quiescent state without an event storm.
    std::vector<std::uint64_t> pi_words(nl_->primary_inputs().size(), 0);
    const auto words = nl_->eval_words(pi_words);
    values_.assign(nl_->num_nets(), 0);
    for (std::size_t i = 0; i < words.size(); ++i)
        values_[i] = static_cast<std::uint8_t>(words[i] & 1ULL);
    pending_ = values_;
    queue_ = {};
    now_ps_ = 0.0;
    seq_ = 0;
    toggles_ = 0;
    switching_energy_fj_ = 0.0;
}

void EventSimulator::schedule(netlist::NetId net, std::uint8_t value, double time) {
    // Transport delay: each computed transition is queued. Scheduling is
    // suppressed only when it would repeat the most recently projected
    // value of the net, which keeps glitch trains while bounding work.
    if (pending_[static_cast<std::size_t>(net)] == value) return;
    pending_[static_cast<std::size_t>(net)] = value;
    queue_.push(Event{time, net, value, seq_++});
}

void EventSimulator::evaluate_gate(std::int32_t gate_index, double at_time) {
    const auto& gate = nl_->gates()[static_cast<std::size_t>(gate_index)];
    std::uint64_t ins[3] = {0, 0, 0};
    const int n = gate.num_inputs();
    for (int i = 0; i < n; ++i)
        ins[i] = values_[static_cast<std::size_t>(gate.inputs[i])] ? ~0ULL : 0ULL;
    const std::uint8_t out = static_cast<std::uint8_t>(
        cell::eval_word(gate.type, common::Span<const std::uint64_t>(ins, static_cast<std::size_t>(n))) & 1ULL);
    schedule(gate.output, out, at_time + gate_delay_ps_[static_cast<std::size_t>(gate_index)]);
}

void EventSimulator::apply_events_before(double deadline_ps) {
    while (!queue_.empty() && queue_.top().time < deadline_ps) {
        const Event ev = queue_.top();
        queue_.pop();
        const auto idx = static_cast<std::size_t>(ev.net);
        if (values_[idx] == ev.value) continue;  // superseded transition
        values_[idx] = ev.value;
        const auto driver = nl_->driver(ev.net);
        if (driver >= 0) {
            ++toggles_;
            switching_energy_fj_ += toggle_energy_fj_[static_cast<std::size_t>(driver)];
        }
        for (std::int32_t g : nl_->fanout(ev.net)) evaluate_gate(g, ev.time);
    }
}

void EventSimulator::step(const std::vector<bool>& pi_values, double period_ps) {
    const auto& pis = nl_->primary_inputs();
    if (pi_values.size() != pis.size())
        throw std::invalid_argument("EventSimulator: wrong primary-input count");
    if (period_ps <= 0) throw std::invalid_argument("EventSimulator: period must be positive");

    // New inputs switch exactly at the clock edge (now).
    for (std::size_t i = 0; i < pis.size(); ++i) {
        const auto value = static_cast<std::uint8_t>(pi_values[i] ? 1 : 0);
        const auto idx = static_cast<std::size_t>(pis[i]);
        if (values_[idx] == value) continue;
        values_[idx] = value;
        pending_[idx] = value;
        for (std::int32_t g : nl_->fanout(pis[i])) evaluate_gate(g, now_ps_);
    }
    // Run the wave up to (but excluding) the next active edge: flip-flops
    // capture strictly-earlier arrivals only.
    now_ps_ += period_ps;
    apply_events_before(now_ps_);
}

std::uint64_t EventSimulator::read_bus(const std::string& bus) const {
    const auto& bits =
        nl_->has_output_bus(bus) ? nl_->output_bus(bus) : nl_->input_bus(bus);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        value |= static_cast<std::uint64_t>(values_[static_cast<std::size_t>(bits[i])] & 1U) << i;
    return value;
}

}  // namespace raq::sim
