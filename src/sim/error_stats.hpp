// Aging-induced timing-error characterization of arithmetic circuits
// (the measurement behind Fig. 1a): clock the circuit at the fresh
// critical-path period, age the cells, feed random operand streams, and
// compare the flip-flop-sampled outputs against golden arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/library.hpp"
#include "common/compression.hpp"
#include "netlist/netlist.hpp"

namespace raq::sim {

struct ErrorStats {
    std::uint64_t cycles = 0;
    std::uint64_t erroneous_cycles = 0;
    double med = 0.0;  ///< mean |golden − sampled| over all cycles
    std::vector<double> bit_flip_prob;  ///< per output bit position
    double msb2_flip_prob = 0.0;  ///< P(either of the two MSBs flipped)

    [[nodiscard]] double error_rate() const {
        return cycles == 0 ? 0.0
                           : static_cast<double>(erroneous_cycles) / static_cast<double>(cycles);
    }
};

struct ErrorRunConfig {
    double clock_ps = 0.0;      ///< sampling period (e.g. fresh critical path)
    int cycles = 100000;        ///< random vectors (paper: 10^6)
    std::uint64_t seed = 1;
    /// Optional input compression applied to the *operand data* (quantized
    /// range + padding). The circuit itself is never modified.
    common::Compression compression{};
};

/// Characterize a standalone multiplier circuit (buses "A","B" -> "P").
[[nodiscard]] ErrorStats characterize_multiplier(const netlist::Netlist& mult,
                                                 const cell::Library& aged_lib,
                                                 const ErrorRunConfig& cfg);

/// Characterize a MAC circuit (buses "A","B","C" -> "S"); C carries an
/// accumulating value (fed back from the golden sum, wrapping at the
/// accumulator width) to mimic real dot-product traffic.
[[nodiscard]] ErrorStats characterize_mac(const netlist::Netlist& mac,
                                          const cell::Library& aged_lib,
                                          const ErrorRunConfig& cfg);

}  // namespace raq::sim
