// Event-driven gate-level timing simulator with transport-delay semantics.
//
// The paper declares post-synthesis timing simulation "infeasible" at DNN
// scale and approximates aging errors with random MSB flips (§3). Our MAC
// is only ~10³ gates, so we *can* simulate it: inputs switch every clock
// period, events propagate with per-cell aged delays, and outputs are
// sampled at the next active edge. Signals that have not settled by the
// edge are captured mid-flight — exactly the aging-induced timing errors
// of Fig. 1a. The simulator also counts output toggles to provide the
// switching-activity energy model used for Fig. 5.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/netlist.hpp"

namespace raq::sim {

class EventSimulator {
public:
    EventSimulator(const netlist::Netlist& nl, const cell::Library& lib);

    /// Reset to the settled state of the all-zero input vector at t = 0.
    void reset();

    /// Apply a new primary-input vector at the current clock edge and
    /// advance one period; returns with all events earlier than the next
    /// edge applied. Values still in flight stay pending (they spill into
    /// the next cycle, as in real silicon).
    void step(const std::vector<bool>& pi_values, double period_ps);

    /// Value of a named bus at the current simulation time (LSB-first).
    [[nodiscard]] std::uint64_t read_bus(const std::string& bus) const;
    [[nodiscard]] bool read_net(netlist::NetId net) const {
        return values_[static_cast<std::size_t>(net)] != 0;
    }

    /// Cumulative statistics since the last reset().
    [[nodiscard]] std::uint64_t toggle_count() const { return toggles_; }
    [[nodiscard]] double switching_energy_fj() const { return switching_energy_fj_; }
    [[nodiscard]] double now_ps() const { return now_ps_; }

    [[nodiscard]] const netlist::Netlist& netlist() const { return *nl_; }

private:
    struct Event {
        double time;
        netlist::NetId net;
        std::uint8_t value;
        std::uint64_t seq;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void schedule(netlist::NetId net, std::uint8_t value, double time);
    void apply_events_before(double deadline_ps);
    void evaluate_gate(std::int32_t gate_index, double at_time);

    const netlist::Netlist* nl_;
    const cell::Library* lib_;
    std::vector<double> gate_delay_ps_;   ///< per gate, library-derated
    std::vector<double> toggle_energy_fj_;  ///< per gate output toggle
    std::vector<std::uint8_t> values_;    ///< current value per net
    std::vector<std::uint8_t> pending_;   ///< last scheduled value per net
    std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
    double now_ps_ = 0.0;
    std::uint64_t seq_ = 0;
    std::uint64_t toggles_ = 0;
    double switching_energy_fj_ = 0.0;
};

}  // namespace raq::sim
