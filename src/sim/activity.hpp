// Switching-activity / energy measurement of the MAC under realistic
// operand traffic — the measurement behind Fig. 5: input compression
// reduces toggling (freed bit positions are constant zero), which lowers
// dynamic energy; a longer guardbanded clock period raises the leakage
// energy share of the baseline.
#pragma once

#include <cstdint>

#include "cell/library.hpp"
#include "common/compression.hpp"
#include "netlist/netlist.hpp"

namespace raq::sim {

struct ActivityStats {
    double avg_dynamic_energy_fj = 0.0;   ///< per MAC operation (cycle)
    double avg_toggles = 0.0;             ///< per cycle
    double leakage_energy_fj = 0.0;       ///< per cycle = P_leak × period
    [[nodiscard]] double total_energy_fj() const {
        return avg_dynamic_energy_fj + leakage_energy_fj;
    }
};

struct ActivityRunConfig {
    double period_ps = 0.0;   ///< operating clock period (sets leakage share)
    int cycles = 4000;
    std::uint64_t seed = 7;
    common::Compression compression{};
};

/// Measure a MAC circuit (buses "A","B","C") by simulating `cycles` MAC
/// operations with accumulating C traffic. The clock the events are run
/// at is stretched so that all transitions complete (energy, not errors,
/// is measured here); `period_ps` only scales the leakage contribution.
[[nodiscard]] ActivityStats measure_mac_activity(const netlist::Netlist& mac,
                                                 const cell::Library& lib,
                                                 const ActivityRunConfig& cfg);

}  // namespace raq::sim
