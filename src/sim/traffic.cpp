#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

namespace raq::sim {

DutyCycleMonitor::DutyCycleMonitor(std::int64_t window_us)
    : window_us_(std::max<std::int64_t>(1, window_us)) {}

void DutyCycleMonitor::record_busy(std::int64_t start_us, std::int64_t end_us) {
    if (end_us < start_us) std::swap(start_us, end_us);
    if (first_seen_us_ < 0) first_seen_us_ = start_us;
    spans_.push_back({start_us, end_us});
}

double DutyCycleMonitor::busy_fraction(std::int64_t now_us) {
    if (first_seen_us_ < 0) return 0.0;
    const std::int64_t window_start = now_us - window_us_;
    while (!spans_.empty() && spans_.front().end_us <= window_start) spans_.pop_front();
    double busy_us = 0.0;
    for (const Span& s : spans_) {
        const std::int64_t lo = std::max(s.start_us, window_start);
        const std::int64_t hi = std::min(s.end_us, now_us);
        if (hi > lo) busy_us += static_cast<double>(hi - lo);
    }
    // Clip the denominator to the monitor's lifetime: a device that has
    // been executing since its very first span reads ~1 even before a
    // full window has elapsed.
    const std::int64_t lifetime = now_us - first_seen_us_;
    const double denom =
        static_cast<double>(std::max<std::int64_t>(1, std::min(window_us_, lifetime)));
    return std::min(1.0, busy_us / denom);
}

double duty_aging_factor(double busy_fraction, double self_heat_c,
                         double temperature_activation) {
    const double f = std::clamp(busy_fraction, 0.0, 1.0);
    return std::exp(temperature_activation * self_heat_c * (f - 1.0));
}

double self_heat_c_from_activity(const ActivityStats& stats, double period_ps,
                                 double theta_c_per_w, std::int64_t num_macs) {
    if (period_ps <= 0.0 || theta_c_per_w <= 0.0 || num_macs <= 0) return 0.0;
    // fJ per cycle / ps per cycle = (1e-15 J) / (1e-12 s) = 1e-3 W.
    const double watts_per_mac = stats.avg_dynamic_energy_fj / period_ps * 1e-3;
    return watts_per_mac * static_cast<double>(num_macs) * theta_c_per_w;
}

}  // namespace raq::sim
