#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

namespace raq::sim {

DutyCycleMonitor::DutyCycleMonitor(std::int64_t window_us)
    : window_us_(std::max<std::int64_t>(1, window_us)) {}

void DutyCycleMonitor::record_busy(std::int64_t start_us, std::int64_t end_us) {
    if (end_us < start_us) std::swap(start_us, end_us);
    if (first_seen_us_ < 0) first_seen_us_ = start_us;
    spans_.push_back({start_us, end_us});
}

double DutyCycleMonitor::busy_fraction(std::int64_t now_us) {
    if (first_seen_us_ < 0) return 0.0;
    const std::int64_t window_start = now_us - window_us_;
    while (!spans_.empty() && spans_.front().end_us <= window_start) spans_.pop_front();
    double busy_us = 0.0;
    for (const Span& s : spans_) {
        const std::int64_t lo = std::max(s.start_us, window_start);
        const std::int64_t hi = std::min(s.end_us, now_us);
        if (hi > lo) busy_us += static_cast<double>(hi - lo);
    }
    // Clip the denominator to the monitor's lifetime: a device that has
    // been executing since its very first span reads ~1 even before a
    // full window has elapsed.
    const std::int64_t lifetime = now_us - first_seen_us_;
    const double denom =
        static_cast<double>(std::max<std::int64_t>(1, std::min(window_us_, lifetime)));
    return std::min(1.0, busy_us / denom);
}

TrafficPredictor::TrafficPredictor(const TrafficPredictorConfig& config)
    : config_(config) {
    if (config_.diurnal_bins > 0) {
        bin_rate_.assign(static_cast<std::size_t>(config_.diurnal_bins), 0.0);
        bin_windows_.assign(static_cast<std::size_t>(config_.diurnal_bins), 0);
    }
}

int TrafficPredictor::bin_of(std::int64_t t_us) const {
    const std::int64_t period = std::max<std::int64_t>(1, config_.period_us);
    const std::int64_t phase = ((t_us % period) + period) % period;
    const auto bin = static_cast<int>(phase * config_.diurnal_bins / period);
    return std::min(bin, config_.diurnal_bins - 1);
}

void TrafficPredictor::roll_to(std::int64_t now_us) {
    if (window_start_us_ < 0) return;
    const std::int64_t window_us = std::max<std::int64_t>(1, config_.window_us);
    const double window_s = static_cast<double>(window_us) * 1e-6;
    // Close elapsed windows one at a time (bounded: past the cap the
    // remaining empty windows collapse into closed-form EWMA/peak decay —
    // a predictor idle for hours must not loop per window).
    int closed = 0;
    while (now_us >= window_start_us_ + window_us && closed < 4096) {
        const double rate = static_cast<double>(window_count_) / window_s;
        ewma_rate_ = warmed_
                         ? config_.ewma_alpha * rate +
                               (1.0 - config_.ewma_alpha) * ewma_rate_
                         : rate;
        warmed_ = true;
        peak_rate_ = std::max(peak_rate_ * config_.peak_decay, ewma_rate_);
        if (config_.diurnal_bins > 0) {
            const auto b = static_cast<std::size_t>(bin_of(window_start_us_));
            bin_rate_[b] = bin_windows_[b] == 0
                               ? rate
                               : config_.ewma_alpha * rate +
                                     (1.0 - config_.ewma_alpha) * bin_rate_[b];
            ++bin_windows_[b];
        }
        window_count_ = 0;
        window_start_us_ += window_us;
        ++closed;
    }
    if (now_us >= window_start_us_ + window_us) {
        const auto skipped =
            static_cast<double>((now_us - window_start_us_) / window_us);
        ewma_rate_ *= std::pow(1.0 - config_.ewma_alpha, skipped);
        peak_rate_ = std::max(peak_rate_ * std::pow(config_.peak_decay, skipped),
                              ewma_rate_);
        window_start_us_ = now_us - (now_us - window_start_us_) % window_us;
    }
}

void TrafficPredictor::observe(std::int64_t now_us) {
    if (window_start_us_ < 0) window_start_us_ = now_us;
    roll_to(now_us);
    ++window_count_;
}

double TrafficPredictor::rate_now(std::int64_t now_us) {
    roll_to(now_us);
    return ewma_rate_;
}

double TrafficPredictor::rate_peak(std::int64_t now_us) {
    roll_to(now_us);
    return peak_rate_;
}

double TrafficPredictor::predicted_rate(std::int64_t at_us) {
    if (config_.diurnal_bins > 0) {
        const auto b = static_cast<std::size_t>(bin_of(at_us));
        if (bin_windows_[b] > 0) return bin_rate_[b];
    }
    return ewma_rate_;
}

bool TrafficPredictor::low_traffic(std::int64_t now_us) {
    roll_to(now_us);
    if (peak_rate_ <= 1e-9) return true;  // never loaded
    return ewma_rate_ <= config_.low_traffic_fraction * peak_rate_;
}

double duty_aging_factor(double busy_fraction, double self_heat_c,
                         double temperature_activation) {
    const double f = std::clamp(busy_fraction, 0.0, 1.0);
    return std::exp(temperature_activation * self_heat_c * (f - 1.0));
}

double self_heat_c_from_activity(const ActivityStats& stats, double period_ps,
                                 double theta_c_per_w, std::int64_t num_macs) {
    if (period_ps <= 0.0 || theta_c_per_w <= 0.0 || num_macs <= 0) return 0.0;
    // fJ per cycle / ps per cycle = (1e-15 J) / (1e-12 s) = 1e-3 W.
    const double watts_per_mac = stats.avg_dynamic_energy_fj / period_ps * 1e-3;
    return watts_per_mac * static_cast<double>(num_macs) * theta_c_per_w;
}

}  // namespace raq::sim
