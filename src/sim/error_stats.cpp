#include "sim/error_stats.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/event_sim.hpp"

namespace raq::sim {

namespace {

/// Draw an operand compressed to `width − removed` bits with the requested
/// zero-padding (value in the low bits for MSB padding, shifted up for LSB
/// padding) — the data-side counterpart of the STA case analysis.
std::uint64_t draw_compressed(common::Rng& rng, int width, int removed,
                              common::Padding padding) {
    const int effective = width - removed;
    if (effective <= 0) return 0;
    const std::uint64_t value = rng.next_below(1ULL << effective);
    return padding == common::Padding::Lsb ? value << removed : value;
}

void set_bus_bits(const netlist::Netlist& nl, const std::string& bus, std::uint64_t value,
                  std::vector<bool>& pi_values) {
    const auto& bits = nl.input_bus(bus);
    // Primary inputs are indexed positionally; build a net->index map once
    // per call site would be cleaner, but buses are added first in all our
    // circuits so net id == position for PIs. Verify instead of assuming.
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const auto& pis = nl.primary_inputs();
        std::size_t pos = static_cast<std::size_t>(bits[i]);
        if (pos >= pis.size() || pis[pos] != bits[i])
            throw std::logic_error("set_bus_bits: bus nets are not leading primary inputs");
        pi_values[pos] = ((value >> i) & 1ULL) != 0;
    }
}

struct Accumulators {
    std::uint64_t cycles = 0;
    std::uint64_t erroneous = 0;
    long double abs_error_sum = 0.0L;
    std::vector<std::uint64_t> bit_flips;
    std::uint64_t msb2_flips = 0;

    explicit Accumulators(std::size_t out_bits) : bit_flips(out_bits, 0) {}

    void record(std::uint64_t sampled, std::uint64_t golden) {
        ++cycles;
        if (sampled != golden) {
            ++erroneous;
            const auto diff = sampled > golden ? sampled - golden : golden - sampled;
            abs_error_sum += static_cast<long double>(diff);
        }
        const std::uint64_t flipped = sampled ^ golden;
        for (std::size_t b = 0; b < bit_flips.size(); ++b)
            if ((flipped >> b) & 1ULL) ++bit_flips[b];
        const std::size_t n = bit_flips.size();
        if (n >= 2 && ((flipped >> (n - 1)) & 1ULL || (flipped >> (n - 2)) & 1ULL))
            ++msb2_flips;
    }

    [[nodiscard]] ErrorStats finish() const {
        ErrorStats s;
        s.cycles = cycles;
        s.erroneous_cycles = erroneous;
        s.med = cycles == 0 ? 0.0
                            : static_cast<double>(abs_error_sum / static_cast<long double>(cycles));
        s.bit_flip_prob.resize(bit_flips.size());
        for (std::size_t b = 0; b < bit_flips.size(); ++b)
            s.bit_flip_prob[b] =
                static_cast<double>(bit_flips[b]) / static_cast<double>(cycles);
        s.msb2_flip_prob = static_cast<double>(msb2_flips) / static_cast<double>(cycles);
        return s;
    }
};

}  // namespace

ErrorStats characterize_multiplier(const netlist::Netlist& mult,
                                   const cell::Library& aged_lib, const ErrorRunConfig& cfg) {
    if (cfg.clock_ps <= 0) throw std::invalid_argument("characterize_multiplier: clock_ps");
    const int width = static_cast<int>(mult.input_bus("A").size());
    const auto out_bits = mult.output_bus("P").size();

    EventSimulator sim(mult, aged_lib);
    common::Rng rng(cfg.seed);
    Accumulators acc(out_bits);
    std::vector<bool> pi(mult.primary_inputs().size(), false);

    // One warm-up cycle so the pipeline-style sampling starts from a
    // settled previous vector.
    sim.step(pi, cfg.clock_ps * 4.0);

    const std::uint64_t out_mask = (out_bits >= 64) ? ~0ULL : ((1ULL << out_bits) - 1);
    for (int k = 0; k < cfg.cycles; ++k) {
        const std::uint64_t a =
            draw_compressed(rng, width, cfg.compression.alpha, cfg.compression.padding);
        const std::uint64_t b =
            draw_compressed(rng, width, cfg.compression.beta, cfg.compression.padding);
        set_bus_bits(mult, "A", a, pi);
        set_bus_bits(mult, "B", b, pi);
        // step() applies the vector at this edge and runs to just before the
        // next edge; read_bus then sees what the capture flops latch for
        // this very vector (residual transitions spill into later cycles).
        sim.step(pi, cfg.clock_ps);
        acc.record(sim.read_bus("P"), (a * b) & out_mask);
    }
    return acc.finish();
}

ErrorStats characterize_mac(const netlist::Netlist& mac, const cell::Library& aged_lib,
                            const ErrorRunConfig& cfg) {
    if (cfg.clock_ps <= 0) throw std::invalid_argument("characterize_mac: clock_ps");
    const int width = static_cast<int>(mac.input_bus("A").size());
    const auto acc_bits = mac.output_bus("S").size();
    const std::uint64_t acc_mask =
        (acc_bits >= 64) ? ~0ULL : ((1ULL << acc_bits) - 1);

    EventSimulator sim(mac, aged_lib);
    common::Rng rng(cfg.seed);
    Accumulators acc(acc_bits);
    std::vector<bool> pi(mac.primary_inputs().size(), false);
    sim.step(pi, cfg.clock_ps * 4.0);

    std::uint64_t c = 0;  // golden running accumulator (dot-product traffic)
    const int reset_interval = 64;  // dot-product length before restarting
    for (int k = 0; k < cfg.cycles; ++k) {
        const std::uint64_t a =
            draw_compressed(rng, width, cfg.compression.alpha, cfg.compression.padding);
        const std::uint64_t b =
            draw_compressed(rng, width, cfg.compression.beta, cfg.compression.padding);
        if (k % reset_interval == 0) c = 0;
        set_bus_bits(mac, "A", a, pi);
        set_bus_bits(mac, "B", b, pi);
        set_bus_bits(mac, "C", c, pi);
        sim.step(pi, cfg.clock_ps);
        const std::uint64_t golden = (a * b + c) & acc_mask;
        acc.record(sim.read_bus("S"), golden);
        c = golden;
    }
    return acc.finish();
}

}  // namespace raq::sim
