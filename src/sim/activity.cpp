#include "sim/activity.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "sim/event_sim.hpp"
#include "sta/sta.hpp"

namespace raq::sim {

namespace {

std::uint64_t draw_compressed(common::Rng& rng, int width, int removed,
                              common::Padding padding) {
    const int effective = width - removed;
    if (effective <= 0) return 0;
    const std::uint64_t value = rng.next_below(1ULL << effective);
    return padding == common::Padding::Lsb ? value << removed : value;
}

}  // namespace

ActivityStats measure_mac_activity(const netlist::Netlist& mac, const cell::Library& lib,
                                   const ActivityRunConfig& cfg) {
    if (cfg.period_ps <= 0) throw std::invalid_argument("measure_mac_activity: period_ps");
    if (cfg.cycles <= 0) throw std::invalid_argument("measure_mac_activity: cycles");

    const int width = static_cast<int>(mac.input_bus("A").size());
    const auto acc_bits = mac.output_bus("S").size();
    const std::uint64_t acc_mask = (acc_bits >= 64) ? ~0ULL : ((1ULL << acc_bits) - 1);
    const int ab_removed_c = cfg.compression.alpha + cfg.compression.beta;

    EventSimulator sim(mac, lib);
    common::Rng rng(cfg.seed);
    std::vector<bool> pi(mac.primary_inputs().size(), false);

    auto set_bus = [&](const std::string& bus, std::uint64_t value) {
        const auto& bits = mac.input_bus(bus);
        for (std::size_t i = 0; i < bits.size(); ++i)
            pi[static_cast<std::size_t>(bits[i])] = ((value >> i) & 1ULL) != 0;
    };

    // Long settle period: we measure energy of complete operations.
    const double settle_ps = cfg.period_ps * 50.0;
    sim.step(pi, settle_ps);
    const double energy_baseline = sim.switching_energy_fj();

    std::uint64_t c = 0;
    const int reset_interval = 64;
    for (int k = 0; k < cfg.cycles; ++k) {
        if (k % reset_interval == 0) c = 0;
        const std::uint64_t a =
            draw_compressed(rng, width, cfg.compression.alpha, cfg.compression.padding);
        const std::uint64_t b =
            draw_compressed(rng, width, cfg.compression.beta, cfg.compression.padding);
        // C traffic honours the compressed accumulator range of §5:
        // 22−(α+β) live bits, on the side chosen by the padding.
        std::uint64_t c_in = c & acc_mask;
        if (cfg.compression.padding == common::Padding::Lsb) {
            c_in &= acc_mask << ab_removed_c;
        } else {
            c_in &= acc_mask >> ab_removed_c;
        }
        set_bus("A", a);
        set_bus("B", b);
        set_bus("C", c_in);
        sim.step(pi, settle_ps);
        c = (a * b + c_in) & acc_mask;
    }

    ActivityStats stats;
    stats.avg_dynamic_energy_fj =
        (sim.switching_energy_fj() - energy_baseline) / static_cast<double>(cfg.cycles);
    stats.avg_toggles =
        static_cast<double>(sim.toggle_count()) / static_cast<double>(cfg.cycles);
    // Leakage power (nW) × period (ps) = 1e-9 W × 1e-12 s = 1e-21 J = 1e-6 fJ.
    const double leak_nw = sta::Sta::total_leakage_nw(mac, lib);
    stats.leakage_energy_fj = leak_nw * cfg.period_ps * 1e-6;
    return stats;
}

}  // namespace raq::sim
