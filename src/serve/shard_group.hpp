// ShardGroup — cross-device model sharding (shard = sub-plan).
//
// Instead of replicating the whole graph on every device, a ShardGroup
// partitions the model into contiguous single-tensor-cut op ranges
// (ir::partition_graph, balanced on systolic per-layer cycles), compiles
// each partition into its own ExecPlan sub-plan (exec::compile_subplan —
// resolved through the PlanCache keyed by the partition's topology
// fingerprint), and runs each shard on its own NpuDevice. The devices
// form a pipeline: every shard has a stage thread and bounded handoff
// queues carry the cut tensor (plus the riding requests) device to
// device, so while shard 1 runs batch k, shard 0 already runs batch k+1
// — throughput is bounded by the bottleneck shard, not the sum.
//
// Each shard versions its own core::ModelState: a shard device owns a
// RequantJob over its sub-graph (with calibration statistics sliced onto
// the shard's tensors), ages with its own busy time, re-derives its own
// aged clock, and re-quantizes independently — inline or through the
// shared background RequantService, exactly like a whole-model device.
// Because every PTQ step the fast path performs is per-convolution-
// local, a chain of shard deployments built at the same aging level is
// bit-identical to the whole-model deployment (verified in
// tests/test_shard.cpp, boundary tensors included).
//
// Online re-partitioning (RepartitionConfig.enabled): devices age at
// different rates (deployed at different times, different utilization),
// so a cut balanced at fresh silicon drifts away from the true pipeline
// bottleneck once a re-quantization installs a slower clock on one
// shard. A RepartitionMonitor thread watches the measured per-stage busy
// time; when one window's max/min ratio crosses the configured
// threshold, it prices every op per device (its systolic cycles × its
// current aged clock period), computes a fresh heterogeneous
// min-bottleneck cut (ir::partition_graph_heterogeneous), warm-compiles
// the new sub-plans through the shared PlanCache — all off the serving
// path — and then performs a drain-and-swap: admission pauses, the
// handoff channels close-and-drain at a batch boundary (every in-flight
// batch completes on the old cut; no batch ever straddles two cuts), the
// devices are remapped onto the new sub-graphs/calibration slices
// (NpuDevice::reshard — aging state and stats history carry over), fresh
// channels and stage threads resume, and the group's partition
// generation increments. Outputs are bit-identical before and after a
// swap whenever the per-shard compressions are (re-cutting moves op
// boundaries, not arithmetic).
//
// Heterogeneous stages: per_shard_systolic gives each pipeline stage its
// own array config; the initial cut then balances per-stage cycle
// counts across the differing arrays, and re-cuts keep using each
// stage's own model.
//
// Restrictions (validated at construction): fault injection is
// per-request on a whole-model device and is not supported on a
// pipeline; the full Algorithm 1 method search needs end-to-end eval and
// shards re-quantize via the fast path.
//
// Shutdown protocol (driven by NpuServer): after the serve workers have
// joined, drain() stops the repartition monitor (waiting out an
// in-flight re-cut), then closes the stage-0 queue — each stage drains
// its queue and then closes the next, so every accepted batch completes
// — and joins the stage threads; after the RequantService has drained,
// finish_requants() lands every shard on its final generation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "exec/subplan.hpp"
#include "ir/partition.hpp"
#include "serve/bounded_channel.hpp"
#include "serve/device.hpp"
#include "serve/repartition.hpp"

namespace raq::serve {

/// One model partition, precomputed for sharing: the specs plus the
/// immutable per-shard sub-graphs/plans. Every group sharding one model
/// at the same cut reuses it — one copy of the shard weights fleet-wide
/// and one partitioning pass, however many groups the server builds.
struct ShardPartition {
    std::vector<ir::ShardSpec> specs;
    std::vector<exec::Subplan> subplans;  ///< graph + cache-resolved plan + tensor map
};

/// Cut `graph` into `num_shards` pipeline stages balanced on the
/// systolic per-layer cycle model and compile each as a sub-plan at
/// `batch_capacity` (through the global PlanCache).
[[nodiscard]] ShardPartition make_shard_partition(const ir::Graph& graph,
                                                  const npu::SystolicConfig& systolic,
                                                  int num_shards, int batch_capacity);

/// Heterogeneous-stage cut: stage k is balanced on ITS array's cycle
/// model (`stage_systolic[k]`), so a narrow array gets proportionally
/// less of the graph. One shard per entry.
[[nodiscard]] ShardPartition make_shard_partition(
    const ir::Graph& graph, const std::vector<npu::SystolicConfig>& stage_systolic,
    int batch_capacity);

struct ShardGroupConfig {
    int num_shards = 2;
    /// Bounded inter-shard handoff queues, in batches: the pipeline
    /// depth per stage boundary (push blocks when full — backpressure
    /// reaches the server's request queue through the feeding worker).
    std::size_t handoff_capacity = 4;
    /// Device ids for the shard devices: shard k gets first_device_id+k.
    int first_device_id = 0;
    /// Shard k enters the field aged device.initial_age_years + k × step
    /// (shards live on distinct physical devices, deployed at different
    /// times — heterogeneous aging across one pipeline).
    double initial_age_step_years = 0.0;
    DeviceConfig device;  ///< per-shard knobs (aging, requant, plan capacity)
    /// Per-stage systolic array configs (empty: every stage uses
    /// device.systolic). Size must equal num_shards when set; the
    /// initial cut and every re-cut then balance on each stage's own
    /// cycle model.
    std::vector<npu::SystolicConfig> per_shard_systolic;
    /// Online re-partitioning (off by default): re-cut the pipeline when
    /// the measured stage busy-time imbalance crosses the ratio.
    RepartitionConfig repartition;
    /// Optional precomputed partition (must match num_shards and the
    /// context graph; needed only for the constructor's duration). Null:
    /// the group partitions the model itself.
    const ShardPartition* partition = nullptr;
    /// Optional telemetry bundle (owned by the server, must outlive the
    /// group): shard devices register per-stage metric series, stage
    /// threads stamp Handoff/Execute/Complete trace spans, and the
    /// repartition monitor records its trigger/futile/re-cut activity.
    obs::Telemetry* telemetry = nullptr;
    /// Optional reliability planner (owned by the server, must outlive
    /// the group): gates triggered re-cuts into predicted low-traffic
    /// windows (urgent bottlenecks still re-cut immediately) and makes
    /// shard requant decisions predictive.
    ReliabilityPlanner* planner = nullptr;
};

class ShardGroup : public ServeUnit {
public:
    /// `ctx` describes the WHOLE model; the group extracts per-shard
    /// sub-graphs and sliced calibration internally (the pointed-to
    /// objects must outlive the group). `completed` (optional) is
    /// incremented by the final stage as promises are fulfilled.
    ShardGroup(int group_id, const ServeContext& ctx, const ShardGroupConfig& config,
               RequantService* requant_service = nullptr,
               std::atomic<std::uint64_t>* completed = nullptr);
    ~ShardGroup() override;

    ShardGroup(const ShardGroup&) = delete;
    ShardGroup& operator=(const ShardGroup&) = delete;

    /// Enqueue one batch into the pipeline and return immediately (the
    /// final stage fulfills the promises; InferenceResult.device_id
    /// reports the group id, generation the minimum shard generation
    /// that served the batch, partition the partition generation it ran
    /// under, latency the accumulated pipeline latency). Blocks while
    /// the stage-0 handoff queue is full or a re-cut swap is in flight.
    void serve(std::vector<InferenceRequest>& batch) override RAQ_EXCLUDES(swap_mutex_);

    /// Close admission into the pipeline, stop the repartition monitor,
    /// drain every accepted batch and join the stage threads.
    /// Idempotent. Must be called before the shared RequantService shuts
    /// down (NpuServer orders this).
    void drain();

    /// After the RequantService has drained: adopt pending generations
    /// and catch up absorbed crossings on every shard.
    void finish_requants();

    [[nodiscard]] int group_id() const { return group_id_; }
    [[nodiscard]] int num_shards() const { return static_cast<int>(shards_.size()); }
    [[nodiscard]] const NpuDevice& shard(int k) const { return *shards_.at(static_cast<std::size_t>(k))->device; }
    [[nodiscard]] NpuDevice& shard(int k) { return *shards_.at(static_cast<std::size_t>(k))->device; }
    /// Current cut metadata. Stable only while no re-cut is in flight
    /// (quiescent group, or repartitioning disabled).
    [[nodiscard]] const ir::ShardSpec& shard_spec(int k) const { return shards_.at(static_cast<std::size_t>(k))->spec; }
    [[nodiscard]] const ir::Graph& shard_graph(int k) const { return *shards_.at(static_cast<std::size_t>(k))->graph; }

    /// Monotonic partition generation: 1 for the construction cut,
    /// bumped by every completed drain-and-swap re-cut.
    [[nodiscard]] std::uint64_t partition_generation() const {
        return partition_generation_.load(std::memory_order_acquire);
    }

    /// Monitor activity counters (zeros when repartitioning is off).
    [[nodiscard]] RepartitionStats repartition_stats() const RAQ_EXCLUDES(repart_mutex_);

    /// Per-shard device stats, in pipeline order.
    [[nodiscard]] std::vector<DeviceStats> stats() const;

    /// Online accuracy sampling through the pipeline: chain the shards'
    /// currently deployed graphs over the first `samples` eval images.
    /// Excludes a concurrent re-cut (the chain is always one consistent
    /// partition).
    [[nodiscard]] double sample_accuracy(const tensor::Tensor& images,
                                         const std::vector<int>& labels,
                                         int samples) const RAQ_EXCLUDES(swap_mutex_);

private:
    /// One batch in flight between stages: the requests ride along with
    /// the cut-tensor activations and the accumulated model-time cost.
    struct ShardBatch {
        std::vector<InferenceRequest> requests;
        tensor::Tensor activations;
        std::uint64_t latency_cycles = 0;
        double latency_us = 0.0;
        std::uint64_t min_generation = ~0ULL;
    };

    struct ShardState {
        ir::ShardSpec spec;
        std::shared_ptr<const ir::Graph> graph;  ///< shared with the sub-plan
        quant::CalibrationData calib;            ///< sliced onto shard tensors
        ServeContext ctx;                        ///< points at the members above
        std::unique_ptr<NpuDevice> device;
    };

    void stage_loop(std::size_t k);
    void start_stages();

    /// Everything a drain-and-swap needs, prepared entirely off the
    /// serving path so the swap itself cannot fail: the new cut, its
    /// cache-resolved sub-plans, the re-sliced calibration, and one
    /// pre-built (feasibility-proven) ModelState per shard.
    struct PreparedRecut {
        std::vector<ir::ShardSpec> specs;
        std::vector<exec::Subplan> subplans;
        std::vector<quant::CalibrationData> calibs;
        std::vector<core::ModelState> states;
        std::vector<double> build_ms;
    };

    /// Monitor step: snapshot the stage busy-time window, evaluate the
    /// trigger, compute + warm-compile + pre-build a better
    /// heterogeneous cut, and drain-and-swap onto it. Runs on the
    /// monitor thread only; exceptions abort the round, never the swap.
    void repartition_step() RAQ_EXCLUDES(swap_mutex_, repart_mutex_);
    void perform_recut(PreparedRecut prepared) RAQ_EXCLUDES(swap_mutex_, repart_mutex_);

    const int group_id_;
    std::atomic<std::uint64_t>* completed_;
    obs::Telemetry* telemetry_;  ///< null = telemetry disabled

    /// Repartition-monitor instrument handles (all null without
    /// telemetry), registered once at construction under group=<id>.
    struct MonitorMetrics {
        obs::Counter* checks = nullptr;
        obs::Counter* triggers = nullptr;
        obs::Counter* futile = nullptr;
        obs::Counter* recuts = nullptr;
        obs::Gauge* imbalance = nullptr;
        obs::Gauge* partition_generation = nullptr;
        /// The server-wide per-class completion counters (same labeled
        /// series the replicated path bumps); the pipeline's last stage
        /// owns completion here. Indexed by RequestClass.
        obs::Counter* completed[kNumRequestClasses] = {};
    };
    MonitorMetrics metrics_;

    ServeContext full_ctx_;     ///< the WHOLE model's context (re-slicing source)
    ShardGroupConfig config_;   ///< owned copy (partition pointer nulled)
    std::vector<npu::SystolicConfig> stage_systolic_;  ///< resolved, one per stage
    std::vector<std::unique_ptr<ShardState>> shards_;
    /// Channel k feeds shard k (bounded, close-and-drain — the same
    /// protocol as the Scheduler's lanes). Replaced wholesale by a
    /// re-cut (old channels are closed and fully drained first).
    std::vector<std::unique_ptr<BoundedChannel<ShardBatch>>> channels_;
    std::vector<std::thread> stage_threads_;
    std::atomic<bool> drained_{false};

    /// Serializes admission (serve) against the drain-and-swap: a push
    /// never lands in a closed-for-re-cut channel, and sample_accuracy
    /// always reads one consistent chain of deployments. Deliberately
    /// guards no fields — `channels_`/`stage_threads_` are synchronized
    /// by close-and-join (stage_loop reads them lock-free), which is
    /// outside the analysis's vocabulary; the mutex is a pure
    /// serialization capability (see src/common/README.md).
    mutable common::Mutex swap_mutex_ RAQ_ACQUIRED_BEFORE(repart_mutex_);
    std::atomic<std::uint64_t> partition_generation_{1};

    mutable common::Mutex repart_mutex_;
    RepartitionStats repart_stats_ RAQ_GUARDED_BY(repart_mutex_);
    /// Measurement-window baselines (cumulative counters at the last
    /// mature window). Monitor thread only.
    std::vector<std::uint64_t> window_batches_;
    std::vector<double> window_busy_ps_;
    /// Clock periods at which the last triggered re-cut attempt turned
    /// out futile (best cut == current cut, or an infeasible shard):
    /// while no clock has changed, a persistent imbalance skips the DP
    /// and pre-build instead of re-deriving the same answer every
    /// window. Monitor thread only.
    std::vector<double> futile_clocks_;
    /// Declared last: started after the group is fully built, stopped
    /// first in drain().
    std::unique_ptr<RepartitionMonitor> monitor_;
};

}  // namespace raq::serve
