#include "serve/shard_group.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/requant_job.hpp"
#include "ir/float_executor.hpp"
#include "npu/systolic.hpp"
#include "quant/quant_executor.hpp"
#include "serve/batcher.hpp"

namespace raq::serve {

ShardPartition make_shard_partition(const ir::Graph& graph,
                                    const npu::SystolicConfig& systolic, int num_shards,
                                    int batch_capacity) {
    // Balance the cut on the systolic cycle model — the pipeline
    // bottleneck is the slowest shard, so per-layer cycles (not MACs)
    // are the cost that matters.
    ShardPartition out;
    out.specs = ir::partition_graph(graph, num_shards, npu::op_cycle_costs(graph, systolic));
    out.subplans.reserve(out.specs.size());
    for (const ir::ShardSpec& spec : out.specs)
        out.subplans.push_back(
            exec::compile_subplan(graph, spec, std::max(1, batch_capacity)));
    return out;
}

ShardPartition make_shard_partition(const ir::Graph& graph,
                                    const std::vector<npu::SystolicConfig>& stage_systolic,
                                    int batch_capacity) {
    // Fresh-silicon heterogeneous cut: every stage priced on its own
    // array's cycle model at a unit clock (no aging yet — re-cuts fold
    // the aged clock periods in later).
    const std::vector<double> unit_clocks(stage_systolic.size(), 1.0);
    ShardPartition out;
    out.specs = ir::partition_graph_heterogeneous(
        graph, aged_cost_tables(graph, stage_systolic, unit_clocks));
    out.subplans.reserve(out.specs.size());
    for (const ir::ShardSpec& spec : out.specs)
        out.subplans.push_back(
            exec::compile_subplan(graph, spec, std::max(1, batch_capacity)));
    return out;
}

ShardGroup::ShardGroup(int group_id, const ServeContext& ctx, const ShardGroupConfig& config,
                       RequantService* requant_service,
                       std::atomic<std::uint64_t>* completed)
    : group_id_(group_id),
      completed_(completed),
      telemetry_(config.telemetry),
      full_ctx_(ctx),
      config_(config) {
    if (telemetry_) {
        const obs::Labels labels{{"group", std::to_string(group_id)}};
        obs::MetricsRegistry& reg = telemetry_->metrics();
        metrics_.checks = &reg.counter("raq_repartition_checks_total", labels);
        metrics_.triggers = &reg.counter("raq_repartition_triggers_total", labels);
        metrics_.futile = &reg.counter("raq_repartition_futile_total", labels);
        metrics_.recuts = &reg.counter("raq_repartition_recuts_total", labels);
        metrics_.imbalance = &reg.gauge("raq_repartition_imbalance", labels);
        metrics_.partition_generation = &reg.gauge("raq_partition_generation", labels);
        metrics_.partition_generation->set(1.0);
        for (std::size_t c = 0; c < kNumRequestClasses; ++c)
            metrics_.completed[c] = &reg.counter(
                "raq_requests_completed_total",
                {{"class", request_class_name(static_cast<RequestClass>(c))}});
    }
    if (!ctx.graph || !ctx.calib || !ctx.selector || !ctx.aging)
        throw std::invalid_argument("ShardGroup: graph/calib/selector/aging are required");
    if (config.num_shards < 2)
        throw std::invalid_argument("ShardGroup: num_shards must be >= 2");
    if (config.device.flip_probability > 0.0)
        throw std::invalid_argument(
            "ShardGroup: fault injection is per-request on a whole-model device and is "
            "not supported on a sharded pipeline");
    if (config.device.full_algorithm1)
        throw std::invalid_argument(
            "ShardGroup: the full Algorithm 1 method search needs end-to-end evaluation; "
            "shards re-quantize via the fast path");
    if (!config.per_shard_systolic.empty() &&
        static_cast<int>(config.per_shard_systolic.size()) != config.num_shards)
        throw std::invalid_argument(
            "ShardGroup: per_shard_systolic must have one entry per shard");
    // The config copy outlives the constructor; the partition pointer
    // must not (the caller only guarantees it for the call).
    config_.partition = nullptr;
    stage_systolic_ = config.per_shard_systolic.empty()
                          ? std::vector<npu::SystolicConfig>(
                                static_cast<std::size_t>(config.num_shards),
                                config.device.systolic)
                          : config.per_shard_systolic;

    // A server building several groups over one model computes the
    // partition once and shares it; a standalone group cuts for itself
    // (on the per-stage arrays when they differ).
    ShardPartition own;
    const ShardPartition* partition = config.partition;
    if (partition == nullptr) {
        if (config.per_shard_systolic.empty())
            own = make_shard_partition(*ctx.graph, config.device.systolic, config.num_shards,
                                       std::max(1, config.device.plan_batch_capacity));
        else
            own = make_shard_partition(*ctx.graph, stage_systolic_,
                                       std::max(1, config.device.plan_batch_capacity));
        partition = &own;
    }
    if (static_cast<int>(partition->specs.size()) != config.num_shards ||
        partition->subplans.size() != partition->specs.size())
        throw std::invalid_argument(
            "ShardGroup: the provided partition does not match num_shards");

    shards_.reserve(partition->specs.size());
    for (std::size_t k = 0; k < partition->specs.size(); ++k) {
        const exec::Subplan& sub = partition->subplans[k];
        auto shard = std::make_unique<ShardState>();
        shard->spec = partition->specs[k];
        shard->graph = sub.graph;  // shared across groups; pins the sub-plan's graph
        shard->calib = quant::slice_calibration(*ctx.calib, sub.full_tensor_of);
        shard->ctx.graph = shard->graph.get();
        shard->ctx.calib = &shard->calib;
        shard->ctx.selector = ctx.selector;
        shard->ctx.aging = ctx.aging;
        DeviceConfig dev = config.device;
        dev.systolic = stage_systolic_[k];
        dev.initial_age_years = config.device.initial_age_years +
                                static_cast<double>(k) * config.initial_age_step_years;
        // The ShardState owns the context the device points at; both live
        // behind a stable unique_ptr for the group's lifetime.
        shard->device = std::make_unique<NpuDevice>(
            config.first_device_id + static_cast<int>(k), shard->ctx, dev, requant_service,
            telemetry_, config_.planner, static_cast<int>(k));
        shards_.push_back(std::move(shard));
    }

    channels_.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k)
        channels_.push_back(std::make_unique<BoundedChannel<ShardBatch>>(
            std::max<std::size_t>(1, config.handoff_capacity)));
    start_stages();

    window_batches_.assign(shards_.size(), 0);
    window_busy_ps_.assign(shards_.size(), 0.0);
    if (config_.repartition.enabled)
        monitor_ = std::make_unique<RepartitionMonitor>(config_.repartition,
                                                        [this] { repartition_step(); });
}

ShardGroup::~ShardGroup() { drain(); }

void ShardGroup::start_stages() {
    stage_threads_.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k)
        stage_threads_.emplace_back([this, k] { stage_loop(k); });
}

void ShardGroup::serve(std::vector<InferenceRequest>& batch) {
    if (batch.empty()) return;
    ShardBatch sb;
    sb.activations = stack_batch(batch);  // may throw; batch stays intact
    sb.requests = std::move(batch);
    // Close the Batch span (worker pop → pipeline admission) before the
    // push moves the requests into the channel; the first stage's pop
    // then opens the Handoff span.
    for (InferenceRequest& request : sb.requests)
        if (request.trace) request.trace->mark(obs::SpanKind::Batch, obs::monotonic_us());
    // The swap mutex pends admission while a re-cut drains and remaps
    // the pipeline: a push always lands in the current cut's channel.
    common::MutexLock lock(swap_mutex_);
    if (!channels_.front()->push(std::move(sb))) {
        lock.unlock();
        // A failed push leaves sb untouched: hand the requests (and
        // their promises) back to the caller before failing, so nothing
        // dies as a broken promise.
        batch = std::move(sb.requests);
        throw std::runtime_error("ShardGroup: serve after drain");
    }
}

void ShardGroup::stage_loop(std::size_t k) {
    NpuDevice& device = *shards_[k]->device;
    const bool last = k + 1 == shards_.size();
    ShardBatch batch;
    while (channels_[k]->pop(batch)) {
        try {
            bool any_trace = false;
            for (const InferenceRequest& request : batch.requests)
                any_trace |= request.trace != nullptr;
            if (any_trace) {
                // Handoff span: time spent in this stage's channel (and,
                // for k > 0, since the previous stage finished).
                const std::int64_t now = obs::monotonic_us();
                for (InferenceRequest& request : batch.requests)
                    if (request.trace) request.trace->mark(obs::SpanKind::Handoff, now);
            }
            const int n = batch.activations.shape().n;
            NpuDevice::BatchTrace trace;
            tensor::Tensor out =
                device.execute_batch(batch.activations.batch_view(0, n), &trace);
            batch.latency_cycles += trace.cycles;
            batch.latency_us += trace.latency_us;
            batch.min_generation = std::min(batch.min_generation, trace.generation);
            if (any_trace) {
                const std::int64_t now = obs::monotonic_us();
                for (InferenceRequest& request : batch.requests)
                    if (request.trace)
                        request.trace->mark(obs::SpanKind::Execute, now, device.id(),
                                            static_cast<int>(k), trace.generation);
            }
            if (!last) {
                batch.activations = std::move(out);
                // Cannot fail: channel k+1 is closed only by this stage
                // itself, after this loop exits.
                channels_[k + 1]->push(std::move(batch));
            } else {
                // The whole batch ran inside one partition era (a re-cut
                // drains every in-flight batch before remapping), so one
                // load here labels every rider correctly.
                const std::uint64_t partition =
                    partition_generation_.load(std::memory_order_acquire);
                // Count completion BEFORE fulfilling the promises: a
                // client that has observed its result then always finds
                // these counters covering it on the next scrape.
                if (completed_)
                    completed_->fetch_add(batch.requests.size(), std::memory_order_relaxed);
                if (telemetry_) {
                    std::size_t per_class[kNumRequestClasses] = {};
                    for (const InferenceRequest& request : batch.requests)
                        ++per_class[static_cast<std::size_t>(request.klass)];
                    for (std::size_t c = 0; c < kNumRequestClasses; ++c)
                        if (per_class[c] > 0) metrics_.completed[c]->add(per_class[c]);
                }
                for (std::size_t i = 0; i < batch.requests.size(); ++i) {
                    InferenceResult result =
                        make_result(batch.requests[i].id, out, static_cast<int>(i));
                    result.klass = batch.requests[i].klass;
                    result.device_id = group_id_;
                    result.generation = batch.min_generation;
                    result.partition = partition;
                    result.latency_cycles = batch.latency_cycles;
                    result.latency_us = batch.latency_us;
                    batch.requests[i].resolve(std::move(result));
                }
                if (any_trace && telemetry_) {
                    const std::int64_t now = obs::monotonic_us();
                    for (InferenceRequest& request : batch.requests)
                        if (request.trace) {
                            request.trace->mark(obs::SpanKind::Complete, now);
                            telemetry_->traces().finish(std::move(request.trace));
                        }
                }
            }
        } catch (...) {
            // A malformed batch (e.g. an image whose shape the engine
            // rejects) fails its own requests, not the stage thread —
            // the same contract worker_loop enforces on the replicated
            // path. A batch already forwarded downstream has no
            // requests left here.
            fail_batch(batch.requests, std::current_exception());
        }
        // Boundary maintenance after the handoff: the downstream stage
        // already works on this batch while this shard adopts/builds.
        try {
            device.requant_boundary();
        } catch (...) {
            // An inline build that throws (the batch is already
            // resolved) must not kill the stage thread: the shard keeps
            // serving its current deployment and retries at the next
            // boundary.
        }
    }
    // This stage is drained; cascade the close so the next one drains.
    if (!last) channels_[k + 1]->close();
}

void ShardGroup::repartition_step() {
    // Measurement window: cumulative device counters since the last
    // mature window (or the last re-cut).
    std::vector<StageWindow> window(shards_.size());
    std::vector<double> clocks(shards_.size(), 0.0);
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        const DeviceStats s = shards_[k]->device->stats();
        window[k].batches = s.batches - window_batches_[k];
        window[k].busy_ps = s.busy_ps - window_busy_ps_[k];
        clocks[k] = s.clock_period_ps;
    }
    const double imbalance =
        stage_imbalance(window, config_.repartition.min_batches);
    if (imbalance <= 0.0) return;  // window not mature yet
    {
        const common::MutexLock lock(repart_mutex_);
        ++repart_stats_.checks;
        repart_stats_.last_imbalance = imbalance;
    }
    if (telemetry_) {
        metrics_.checks->add(1);
        metrics_.imbalance->set(imbalance);
    }
    // Roll the window so the next judgement sees fresh traffic only.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        window_batches_[k] += window[k].batches;
        window_busy_ps_[k] += window[k].busy_ps;
    }
    if (imbalance < config_.repartition.imbalance_ratio) return;
    // A persistent imbalance the last attempt could not fix (no better
    // cut, or an infeasible shard) stays unfixable until some clock
    // changes: skip re-deriving the same answer every window. Clocks
    // change only at install, so exact comparison is the right test.
    if (clocks == futile_clocks_) return;
    // Predictive gate: a drain-and-swap stalls admission, so the planner
    // parks a merely-threshold-crossing re-cut until a predicted
    // low-traffic window (an urgent bottleneck still re-cuts at peak).
    // Returning WITHOUT updating the futile memo or counting a trigger
    // retries on the next poll — deferred, never dropped.
    if (config_.planner != nullptr &&
        !config_.planner->allow_recut(group_id_, imbalance,
                                      config_.repartition.imbalance_ratio))
        return;
    {
        const common::MutexLock lock(repart_mutex_);
        ++repart_stats_.triggers;
    }
    if (telemetry_) {
        metrics_.triggers->add(1);
        obs::ReliabilityEvent re;
        re.t_us = obs::monotonic_us();
        re.kind = obs::EventKind::RecutTrigger;
        re.group_id = group_id_;
        re.generation = partition_generation();
        re.value = imbalance;
        telemetry_->timeline().record(std::move(re));
    }
    // A triggered attempt that cannot improve the cut counts as futile —
    // in the stats, the metric AND the timeline, so a dashboard can tell
    // "the monitor is stuck" from "the monitor is idle".
    const auto note_futile = [&](const char* reason) {
        futile_clocks_ = clocks;
        {
            const common::MutexLock lock(repart_mutex_);
            ++repart_stats_.futile;
        }
        if (telemetry_) {
            metrics_.futile->add(1);
            obs::ReliabilityEvent re;
            re.t_us = obs::monotonic_us();
            re.kind = obs::EventKind::RecutFutile;
            re.group_id = group_id_;
            re.generation = partition_generation();
            re.value = imbalance;
            re.detail = reason;
            telemetry_->timeline().record(std::move(re));
        }
    };

    // Prepare the entire swap off the serving path — cut, warm-compiled
    // sub-plans, re-sliced calibration, pre-built deployments. Anything
    // that fails here simply aborts the round with the pipeline
    // untouched; perform_recut itself has nothing left that can throw.
    PreparedRecut prepared;
    try {
        // Price every op per device — its own array's cycles at its
        // current aged clock — and re-run the min-bottleneck DP.
        prepared.specs = ir::partition_graph_heterogeneous(
            *full_ctx_.graph, aged_cost_tables(*full_ctx_.graph, stage_systolic_, clocks));
        bool moved = false;
        for (std::size_t k = 0; k < shards_.size(); ++k)
            moved = moved || prepared.specs[k].last_op != shards_[k]->spec.last_op;
        if (!moved) {
            note_futile("best cut unchanged at these clocks");
            return;
        }
        // Warm-compile the new sub-plans through the shared PlanCache
        // and pre-build every shard's deployment at its device's current
        // aging level. A RequantJob over monitor-local inputs proves
        // feasibility BEFORE the pipeline drains (the produced
        // QuantizedGraph is self-contained, so the temporaries may die).
        core::RequantJobConfig jc;
        jc.guardband_fraction = config_.device.guardband_fraction;
        jc.accuracy_loss_threshold = config_.device.accuracy_loss_threshold;
        for (const ir::ShardSpec& spec : prepared.specs) {
            const std::size_t k = prepared.subplans.size();
            prepared.subplans.push_back(exec::compile_subplan(
                *full_ctx_.graph, spec, std::max(1, config_.device.plan_batch_capacity)));
            prepared.calibs.push_back(quant::slice_calibration(
                *full_ctx_.calib, prepared.subplans[k].full_tensor_of));
            const auto build_start = std::chrono::steady_clock::now();
            const core::RequantJob job(*prepared.subplans[k].graph, prepared.calibs[k],
                                       *full_ctx_.selector, jc);
            // The generation is a placeholder: reshard() re-stamps it at
            // adoption so the stream stays monotonic even if a
            // background generation lands while the pipeline drains.
            auto built = job.build(shards_[k]->device->dvth_mv(), /*generation=*/0);
            if (!built) {
                note_futile("shard infeasible at its aging level");
                return;
            }
            prepared.states.push_back(std::move(*built));
            prepared.build_ms.push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - build_start)
                    .count());
        }
    } catch (...) {
        // Defensive: the construction-time cut succeeded, so failures
        // here are unexpected — keep serving the current cut and keep
        // the monitor alive rather than tearing down the process.
        note_futile("recut preparation threw");
        return;
    }
    perform_recut(std::move(prepared));
    futile_clocks_.clear();
}

void ShardGroup::perform_recut(PreparedRecut prepared) {
    // Admission pauses for the whole swap: no producer can observe the
    // closed old channels or a half-remapped pipeline.
    const common::MutexLock lock(swap_mutex_);
    if (drained_.load(std::memory_order_acquire)) return;

    // Drain at a batch boundary: close stage 0, let the close cascade
    // stage to stage, and join. Every accepted batch completes on the
    // OLD cut — no batch ever straddles two partitions, so there are no
    // torn boundary tensors by construction.
    channels_.front()->close();
    for (std::thread& t : stage_threads_) t.join();
    stage_threads_.clear();

    // Remap every device onto its new slice of the model. The ShardState
    // owns what the device's context points at, so updating it in place
    // re-targets the device; reshard() rebuilds what derives from it and
    // adopts the pre-built deployment.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        ShardState& shard = *shards_[k];
        shard.spec = prepared.specs[k];
        shard.graph = prepared.subplans[k].graph;
        shard.calib = std::move(prepared.calibs[k]);
        shard.ctx.graph = shard.graph.get();
        shard.ctx.calib = &shard.calib;
        shard.device->reshard(std::move(prepared.states[k]), prepared.build_ms[k]);
    }

    // Fresh channels (the old ones are closed and empty) and fresh stage
    // threads; admission resumes when the mutex releases.
    channels_.clear();
    for (std::size_t k = 0; k < shards_.size(); ++k)
        channels_.push_back(std::make_unique<BoundedChannel<ShardBatch>>(
            std::max<std::size_t>(1, config_.handoff_capacity)));
    start_stages();

    partition_generation_.fetch_add(1, std::memory_order_acq_rel);
    {
        const common::MutexLock lock2(repart_mutex_);
        ++repart_stats_.recuts;
    }
    if (telemetry_) {
        metrics_.recuts->add(1);
        metrics_.partition_generation->set(
            static_cast<double>(partition_generation()));
        obs::ReliabilityEvent re;
        re.t_us = obs::monotonic_us();
        re.kind = obs::EventKind::Recut;
        re.group_id = group_id_;
        re.generation = partition_generation();
        re.detail = "drain-and-swap complete";
        telemetry_->timeline().record(std::move(re));
    }
    // The new cut starts a fresh measurement window.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        const DeviceStats s = shards_[k]->device->stats();
        window_batches_[k] = s.batches;
        window_busy_ps_[k] = s.busy_ps;
    }
}

void ShardGroup::drain() {
    if (drained_.exchange(true)) return;
    // Stop the monitor first: it joins an in-flight re-cut (which
    // restores a serving pipeline), so afterwards the channel/thread
    // vectors are stable and no new swap can start.
    if (monitor_) monitor_->stop();
    channels_.front()->close();
    for (std::thread& t : stage_threads_) t.join();
    stage_threads_.clear();
}

void ShardGroup::finish_requants() {
    for (const auto& shard : shards_) shard->device->finish_requants();
}

RepartitionStats ShardGroup::repartition_stats() const {
    const common::MutexLock lock(repart_mutex_);
    RepartitionStats out = repart_stats_;
    out.partition_generation = partition_generation();
    return out;
}

std::vector<DeviceStats> ShardGroup::stats() const {
    std::vector<DeviceStats> out;
    out.reserve(shards_.size());
    for (const auto& shard : shards_) out.push_back(shard->device->stats());
    return out;
}

double ShardGroup::sample_accuracy(const tensor::Tensor& images,
                                   const std::vector<int>& labels, int samples) const {
    if (samples < 1) throw std::invalid_argument("ShardGroup: samples must be >= 1");
    samples = std::min(samples, images.shape().n);
    if (labels.size() < static_cast<std::size_t>(samples))
        throw std::invalid_argument("ShardGroup: fewer labels than samples");
    // Snapshot one consistent cut's chain under the swap mutex, then
    // release it before evaluating: the graphs are immutable and pinned
    // by the shared_ptrs, and holding the mutex across `samples`
    // inferences would stall admission for the whole evaluation.
    std::vector<std::shared_ptr<const quant::QuantizedGraph>> chain;
    {
        const common::MutexLock lock(swap_mutex_);
        chain.reserve(shards_.size());
        for (const auto& shard : shards_) chain.push_back(shard->device->deployed_graph());
    }
    tensor::Tensor acts;
    for (std::size_t k = 0; k < chain.size(); ++k)
        acts = quant::run_quantized(*chain[k], k == 0 ? images.batch_view(0, samples)
                                                      : acts.batch_view(0, samples));
    const std::vector<int> predictions = ir::argmax_classes(acts);
    int correct = 0;
    for (int i = 0; i < samples; ++i)
        correct += predictions[static_cast<std::size_t>(i)] ==
                   labels[static_cast<std::size_t>(i)];
    return static_cast<double>(correct) / static_cast<double>(samples);
}

}  // namespace raq::serve
