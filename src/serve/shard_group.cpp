#include "serve/shard_group.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ir/float_executor.hpp"
#include "npu/systolic.hpp"
#include "quant/quant_executor.hpp"
#include "serve/batcher.hpp"

namespace raq::serve {

ShardPartition make_shard_partition(const ir::Graph& graph,
                                    const npu::SystolicConfig& systolic, int num_shards,
                                    int batch_capacity) {
    // Balance the cut on the systolic cycle model — the pipeline
    // bottleneck is the slowest shard, so per-layer cycles (not MACs)
    // are the cost that matters.
    const npu::SystolicArrayModel array(systolic);
    const npu::InferenceCycles cycles = array.analyze(graph);
    std::vector<std::uint64_t> op_costs(graph.ops().size(), 0);
    std::size_t layer = 0;
    for (std::size_t i = 0; i < op_costs.size(); ++i)
        if (graph.ops()[i].kind == ir::OpKind::Conv2d)
            op_costs[i] = cycles.layers.at(layer++).cycles;

    ShardPartition out;
    out.specs = ir::partition_graph(graph, num_shards, op_costs);
    out.subplans.reserve(out.specs.size());
    for (const ir::ShardSpec& spec : out.specs)
        out.subplans.push_back(
            exec::compile_subplan(graph, spec, std::max(1, batch_capacity)));
    return out;
}

ShardGroup::ShardGroup(int group_id, const ServeContext& ctx, const ShardGroupConfig& config,
                       RequantService* requant_service,
                       std::atomic<std::uint64_t>* completed)
    : group_id_(group_id), completed_(completed) {
    if (!ctx.graph || !ctx.calib || !ctx.selector || !ctx.aging)
        throw std::invalid_argument("ShardGroup: graph/calib/selector/aging are required");
    if (config.num_shards < 2)
        throw std::invalid_argument("ShardGroup: num_shards must be >= 2");
    if (config.device.flip_probability > 0.0)
        throw std::invalid_argument(
            "ShardGroup: fault injection is per-request on a whole-model device and is "
            "not supported on a sharded pipeline");
    if (config.device.full_algorithm1)
        throw std::invalid_argument(
            "ShardGroup: the full Algorithm 1 method search needs end-to-end evaluation; "
            "shards re-quantize via the fast path");

    // A server building several groups over one model computes the
    // partition once and shares it; a standalone group cuts for itself.
    ShardPartition own;
    const ShardPartition* partition = config.partition;
    if (partition == nullptr) {
        own = make_shard_partition(*ctx.graph, config.device.systolic, config.num_shards,
                                   std::max(1, config.device.plan_batch_capacity));
        partition = &own;
    }
    if (static_cast<int>(partition->specs.size()) != config.num_shards ||
        partition->subplans.size() != partition->specs.size())
        throw std::invalid_argument(
            "ShardGroup: the provided partition does not match num_shards");

    shards_.reserve(partition->specs.size());
    for (std::size_t k = 0; k < partition->specs.size(); ++k) {
        const exec::Subplan& sub = partition->subplans[k];
        auto shard = std::make_unique<ShardState>();
        shard->spec = partition->specs[k];
        shard->graph = sub.graph;  // shared across groups; pins the sub-plan's graph
        shard->calib = quant::slice_calibration(*ctx.calib, sub.full_tensor_of);
        shard->ctx.graph = shard->graph.get();
        shard->ctx.calib = &shard->calib;
        shard->ctx.selector = ctx.selector;
        shard->ctx.aging = ctx.aging;
        DeviceConfig dev = config.device;
        dev.initial_age_years = config.device.initial_age_years +
                                static_cast<double>(k) * config.initial_age_step_years;
        // The ShardState owns the context the device points at; both live
        // behind a stable unique_ptr for the group's lifetime.
        shard->device = std::make_unique<NpuDevice>(
            config.first_device_id + static_cast<int>(k), shard->ctx, dev, requant_service);
        shards_.push_back(std::move(shard));
    }

    channels_.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k)
        channels_.push_back(std::make_unique<BoundedChannel<ShardBatch>>(
            std::max<std::size_t>(1, config.handoff_capacity)));
    stage_threads_.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k)
        stage_threads_.emplace_back([this, k] { stage_loop(k); });
}

ShardGroup::~ShardGroup() { drain(); }

void ShardGroup::serve(std::vector<InferenceRequest>& batch) {
    if (batch.empty()) return;
    ShardBatch sb;
    sb.activations = stack_batch(batch);  // may throw; batch stays intact
    sb.requests = std::move(batch);
    if (!channels_.front()->push(std::move(sb))) {
        // A failed push leaves sb untouched: hand the requests (and
        // their promises) back to the caller before failing, so nothing
        // dies as a broken promise.
        batch = std::move(sb.requests);
        throw std::runtime_error("ShardGroup: serve after drain");
    }
}

void ShardGroup::stage_loop(std::size_t k) {
    NpuDevice& device = *shards_[k]->device;
    const bool last = k + 1 == shards_.size();
    ShardBatch batch;
    while (channels_[k]->pop(batch)) {
        try {
            const int n = batch.activations.shape().n;
            NpuDevice::BatchTrace trace;
            tensor::Tensor out =
                device.execute_batch(batch.activations.batch_view(0, n), &trace);
            batch.latency_cycles += trace.cycles;
            batch.latency_us += trace.latency_us;
            batch.min_generation = std::min(batch.min_generation, trace.generation);
            if (!last) {
                batch.activations = std::move(out);
                // Cannot fail: channel k+1 is closed only by this stage
                // itself, after this loop exits.
                channels_[k + 1]->push(std::move(batch));
            } else {
                for (std::size_t i = 0; i < batch.requests.size(); ++i) {
                    InferenceResult result =
                        make_result(batch.requests[i].id, out, static_cast<int>(i));
                    result.device_id = group_id_;
                    result.generation = batch.min_generation;
                    result.latency_cycles = batch.latency_cycles;
                    result.latency_us = batch.latency_us;
                    batch.requests[i].promise.set_value(std::move(result));
                }
                if (completed_)
                    completed_->fetch_add(batch.requests.size(), std::memory_order_relaxed);
            }
        } catch (...) {
            // A malformed batch (e.g. an image whose shape the engine
            // rejects) fails its own requests, not the stage thread —
            // the same contract worker_loop enforces on the replicated
            // path. A batch already forwarded downstream has no
            // requests left here.
            fail_batch(batch.requests, std::current_exception());
        }
        // Boundary maintenance after the handoff: the downstream stage
        // already works on this batch while this shard adopts/builds.
        try {
            device.requant_boundary();
        } catch (...) {
            // An inline build that throws (the batch is already
            // resolved) must not kill the stage thread: the shard keeps
            // serving its current deployment and retries at the next
            // boundary.
        }
    }
    // This stage is drained; cascade the close so the next one drains.
    if (!last) channels_[k + 1]->close();
}

void ShardGroup::drain() {
    if (drained_.exchange(true)) return;
    channels_.front()->close();
    for (std::thread& t : stage_threads_) t.join();
    stage_threads_.clear();
}

void ShardGroup::finish_requants() {
    for (const auto& shard : shards_) shard->device->finish_requants();
}

std::vector<DeviceStats> ShardGroup::stats() const {
    std::vector<DeviceStats> out;
    out.reserve(shards_.size());
    for (const auto& shard : shards_) out.push_back(shard->device->stats());
    return out;
}

double ShardGroup::sample_accuracy(const tensor::Tensor& images,
                                   const std::vector<int>& labels, int samples) const {
    if (samples < 1) throw std::invalid_argument("ShardGroup: samples must be >= 1");
    samples = std::min(samples, images.shape().n);
    if (labels.size() < static_cast<std::size_t>(samples))
        throw std::invalid_argument("ShardGroup: fewer labels than samples");
    tensor::Tensor acts;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        const auto qgraph = shards_[k]->device->deployed_graph();
        acts = quant::run_quantized(*qgraph, k == 0 ? images.batch_view(0, samples)
                                                    : acts.batch_view(0, samples));
    }
    const std::vector<int> predictions = ir::argmax_classes(acts);
    int correct = 0;
    for (int i = 0; i < samples; ++i)
        correct += predictions[static_cast<std::size_t>(i)] ==
                   labels[static_cast<std::size_t>(i)];
    return static_cast<double>(correct) / static_cast<double>(samples);
}

}  // namespace raq::serve
