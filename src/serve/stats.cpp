#include "serve/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "common/stats.hpp"

namespace raq::serve {

LatencySummary LatencyRecorder::summary() const {
    LatencySummary s;
    s.count = sampler_.count();
    if (sampler_.reservoir_size() == 0) return s;
    // One quantile definition project-wide: serve percentiles, the load
    // generator's client-side report and bench gates all go through
    // common::ReservoirSampler::quantiles → common::quantiles (one sort —
    // summary() runs under the device's stats mutex).
    const std::vector<double> qs = sampler_.quantiles({0.50, 0.99});
    s.p50_cycles = qs[0];
    s.p99_cycles = qs[1];
    s.max_cycles = max_cycles_;
    s.mean_cycles = sampler_.mean();
    return s;
}

double FleetStats::sim_throughput_ips() const {
    double max_busy_s = 0.0;
    for (const DeviceStats& d : devices) max_busy_s = std::max(max_busy_s, d.busy_ps * 1e-12);
    return max_busy_s > 0.0 ? static_cast<double>(completed) / max_busy_s : 0.0;
}

int FleetStats::total_requants() const {
    int n = 0;
    for (const DeviceStats& d : devices) n += d.requant_count;
    return n;
}

std::string FleetStats::to_string() const {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "fleet: %llu submitted, %llu completed, %d requant(s), "
                  "%.0f inf/s (simulated)\n",
                  static_cast<unsigned long long>(submitted),
                  static_cast<unsigned long long>(completed), total_requants(),
                  sim_throughput_ips());
    out += line;
    for (const DeviceStats& d : devices) {
        std::snprintf(line, sizeof(line),
                      "  dev%-2d %6llu req %5llu batch  %8.1f h  dVth %5.2f mV  "
                      "clk %.1f ps  %s %s  gen %llu  p50 %.0f p99 %.0f cyc  requants %d\n",
                      d.device_id, static_cast<unsigned long long>(d.requests),
                      static_cast<unsigned long long>(d.batches), d.operating_hours,
                      d.dvth_mv, d.clock_period_ps, d.compression.to_string().c_str(),
                      quant::method_label(d.method),
                      static_cast<unsigned long long>(d.generation), d.latency.p50_cycles,
                      d.latency.p99_cycles, d.requant_count);
        out += line;
    }
    return out;
}

}  // namespace raq::serve
