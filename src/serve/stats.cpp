#include "serve/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace raq::serve {

namespace {

double percentile(const std::vector<std::uint64_t>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) * (1.0 - frac) +
           static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

LatencySummary LatencyRecorder::summary() const {
    LatencySummary s;
    s.count = samples_.size();
    if (samples_.empty()) return s;
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.p50_cycles = percentile(sorted, 0.50);
    s.p99_cycles = percentile(sorted, 0.99);
    s.max_cycles = sorted.back();
    double sum = 0.0;
    for (const std::uint64_t v : sorted) sum += static_cast<double>(v);
    s.mean_cycles = sum / static_cast<double>(sorted.size());
    return s;
}

double FleetStats::sim_throughput_ips() const {
    double max_busy_s = 0.0;
    std::uint64_t served = 0;
    for (const DeviceStats& d : devices) {
        max_busy_s = std::max(
            max_busy_s, static_cast<double>(d.busy_cycles) * d.clock_period_ps * 1e-12);
        served += d.requests;
    }
    return max_busy_s > 0.0 ? static_cast<double>(served) / max_busy_s : 0.0;
}

int FleetStats::total_requants() const {
    int n = 0;
    for (const DeviceStats& d : devices) n += d.requant_count;
    return n;
}

std::string FleetStats::to_string() const {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "fleet: %llu submitted, %llu completed, %d requant(s), "
                  "%.0f inf/s (simulated)\n",
                  static_cast<unsigned long long>(submitted),
                  static_cast<unsigned long long>(completed), total_requants(),
                  sim_throughput_ips());
    out += line;
    for (const DeviceStats& d : devices) {
        std::snprintf(line, sizeof(line),
                      "  dev%-2d %6llu req %5llu batch  %8.1f h  dVth %5.2f mV  "
                      "%s %s  gen %llu  p50 %.0f p99 %.0f cyc  requants %d\n",
                      d.device_id, static_cast<unsigned long long>(d.requests),
                      static_cast<unsigned long long>(d.batches), d.operating_hours,
                      d.dvth_mv, d.compression.to_string().c_str(),
                      quant::method_label(d.method),
                      static_cast<unsigned long long>(d.generation), d.latency.p50_cycles,
                      d.latency.p99_cycles, d.requant_count);
        out += line;
    }
    return out;
}

}  // namespace raq::serve
