#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/engine.hpp"
#include "exec/kernels_simd.hpp"
#include "quant/evaluate.hpp"

namespace raq::serve {

namespace {
/// SchedulerConfig lane capacities of 0 inherit the server-wide
/// queue_capacity default.
SchedulerConfig resolved_scheduler(const ServeConfig& config) {
    SchedulerConfig out = config.scheduler;
    if (out.interactive_capacity == 0) out.interactive_capacity = config.queue_capacity;
    if (out.batch_capacity == 0) out.batch_capacity = config.queue_capacity;
    return out;
}
}  // namespace

NpuServer::NpuServer(const ServeContext& ctx, const ServeConfig& config)
    : config_(config), ctx_(ctx), queue_(resolved_scheduler(config)) {
    if (config.num_devices < 1 || config.num_workers < 1 || config.max_batch < 1)
        throw std::invalid_argument("NpuServer: devices/workers/max_batch must be >= 1");
    if (config.num_shards < 1)
        throw std::invalid_argument("NpuServer: num_shards must be >= 1");
    if (config.num_shards > 1 && config.num_devices % config.num_shards != 0)
        throw std::invalid_argument(
            "NpuServer: num_devices must be a multiple of num_shards");
    if (!config.shard_systolic.empty() &&
        static_cast<int>(config.shard_systolic.size()) != config.num_shards)
        throw std::invalid_argument(
            "NpuServer: shard_systolic must have one entry per shard");
    // Sharding-only features are refused — not silently ignored — on a
    // replicated (num_shards == 1) layout.
    if (config.num_shards == 1 && config.repartition.enabled)
        throw std::invalid_argument(
            "NpuServer: online re-partitioning requires num_shards > 1");
    if (config.num_shards == 1 && !config.shard_systolic.empty())
        throw std::invalid_argument(
            "NpuServer: shard_systolic requires num_shards > 1");
    if (config.background_requant && config.requant_workers < 1)
        throw std::invalid_argument("NpuServer: requant_workers must be >= 1");
    if (config.telemetry.trace_sample_rate < 0.0 || config.telemetry.trace_sample_rate > 1.0)
        throw std::invalid_argument(
            "NpuServer: telemetry.trace_sample_rate must be in [0,1]");
    if (config.telemetry.metrics) {
        telemetry_ = std::make_unique<obs::Telemetry>(config.telemetry);
        obs::MetricsRegistry& reg = telemetry_->metrics();
        for (std::size_t c = 0; c < kNumRequestClasses; ++c) {
            const obs::Labels labels{
                {"class", request_class_name(static_cast<RequestClass>(c))}};
            submitted_counter_[c] = &reg.counter("raq_requests_submitted_total", labels);
            completed_counter_[c] = &reg.counter("raq_requests_completed_total", labels);
            queue_depth_[c] = &reg.gauge("raq_queue_depth", labels);
            queue_wait_us_[c] =
                &reg.histogram("raq_queue_wait_us", labels, obs::default_us_buckets());
        }
        queue_depth_peak_ = &reg.gauge("raq_queue_depth_peak");
        // Execution-engine visibility: which SIMD dispatch tier this
        // process runs (value = the KernelTier enum, name in the label)
        // and how many runs actually fanned a dependency level out over
        // a pool (delta-synced at scrape time — see sync_exec_metrics()).
        const auto tier = exec::kernels_simd::active_tier();
        reg.gauge("raq_exec_dispatch_tier",
                  {{"tier", exec::kernels_simd::tier_name(tier)}})
            .set(static_cast<double>(tier));
        exec_parallel_counter_ = &reg.counter("raq_exec_level_parallel_runs_total");
        exec_parallel_exported_.store(exec::level_parallel_runs(),
                                      std::memory_order_relaxed);
    }
    // full_algorithm1 without a usable eval set fails loudly below:
    // every device's RequantJob validates it at construction (no silent
    // fast-path fallback), and that error propagates out of here.
    if (config.background_requant)
        requant_service_ = std::make_unique<RequantService>(config.requant_workers);
    if (config.planner.enabled)
        planner_ =
            std::make_unique<ReliabilityPlanner>(config.planner, telemetry_.get());
    if (config.num_shards == 1) {
        devices_.reserve(static_cast<std::size_t>(config.num_devices));
        for (int i = 0; i < config.num_devices; ++i) {
            DeviceConfig dev = config.device;
            dev.initial_age_years = config.initial_age_years +
                                    static_cast<double>(i) * config.initial_age_step_years;
            // Compile each device's execution plan for the largest batch the
            // server will ever hand it: no plan recompile on the serving path.
            dev.plan_batch_capacity = config.max_batch;
            devices_.push_back(std::make_unique<NpuDevice>(i, ctx_, dev,
                                                           requant_service_.get(),
                                                           telemetry_.get(),
                                                           planner_.get()));
            idle_units_.push_back(devices_.back().get());
        }
    } else {
        const int num_groups = config.num_devices / config.num_shards;
        // One partition for the whole fleet: every group shares the same
        // cut, sub-graphs and cached sub-plans (balanced per stage-array
        // when the stages run heterogeneous systolic configs).
        const ShardPartition partition =
            config.shard_systolic.empty()
                ? make_shard_partition(*ctx_.graph, config.device.systolic,
                                       config.num_shards, config.max_batch)
                : make_shard_partition(*ctx_.graph, config.shard_systolic,
                                       config.max_batch);
        groups_.reserve(static_cast<std::size_t>(num_groups));
        for (int g = 0; g < num_groups; ++g) {
            ShardGroupConfig group;
            group.num_shards = config.num_shards;
            group.partition = &partition;
            group.handoff_capacity = config.shard_handoff_capacity;
            group.per_shard_systolic = config.shard_systolic;
            group.repartition = config.repartition;
            group.first_device_id = g * config.num_shards;
            // The fleet-wide age stagger applies per underlying device:
            // shard k of group g is device g*num_shards + k.
            group.initial_age_step_years = config.initial_age_step_years;
            group.device = config.device;
            group.device.initial_age_years =
                config.initial_age_years +
                static_cast<double>(g * config.num_shards) * config.initial_age_step_years;
            group.device.plan_batch_capacity = config.max_batch;
            group.telemetry = telemetry_.get();
            group.planner = planner_.get();
            groups_.push_back(std::make_unique<ShardGroup>(
                g, ctx_, group, requant_service_.get(), &completed_));
            idle_units_.push_back(groups_.back().get());
        }
    }
    workers_.reserve(static_cast<std::size_t>(config.num_workers));
    for (int i = 0; i < config.num_workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

NpuServer::~NpuServer() { shutdown(); }

std::future<InferenceResult> NpuServer::submit(tensor::Tensor image,
                                               RequestClass klass) {
    InferenceRequest request;
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    request.image = std::move(image);
    request.klass = klass;
    // Stamped unconditionally: the scheduler's anti-starvation aging
    // credit and deadline/SLO accounting read it even with telemetry off.
    request.submit_us = obs::monotonic_us();
    if (telemetry_) {
        // Deterministic sampling: whether THIS id is traced depends only
        // on (seed, id), so replayed id streams sample identically.
        request.trace = telemetry_->traces().maybe_start(request.id, request.submit_us);
    }
    if (planner_) planner_->observe_arrival(request.submit_us);
    std::future<InferenceResult> future = request.promise.get_future();
    if (!queue_.push(std::move(request)))
        throw std::runtime_error("NpuServer: submit after shutdown");
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_) {
        const auto lane = static_cast<std::size_t>(klass);
        submitted_counter_[lane]->add(1);
        queue_depth_[lane]->set(static_cast<double>(queue_.size(klass)));
        queue_depth_peak_->set_max(static_cast<double>(queue_.size()));
    }
    return future;
}

NpuServer::TrySubmit NpuServer::try_submit(tensor::Tensor image,
                                           std::function<void()> on_done,
                                           RequestClass klass) {
    InferenceRequest request;
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    request.image = std::move(image);
    request.on_done = std::move(on_done);
    request.klass = klass;
    request.submit_us = obs::monotonic_us();
    if (telemetry_) {
        request.trace = telemetry_->traces().maybe_start(request.id, request.submit_us);
    }
    if (planner_) planner_->observe_arrival(request.submit_us);
    TrySubmit out;
    out.future = request.promise.get_future();
    switch (queue_.try_push(std::move(request))) {
        case ChannelPush::Ok:
            out.status = TrySubmit::Status::Accepted;
            break;
        case ChannelPush::Full:
            out.status = TrySubmit::Status::Saturated;
            return out;
        case ChannelPush::Closed:
            out.status = TrySubmit::Status::Closed;
            return out;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_) {
        const auto lane = static_cast<std::size_t>(klass);
        submitted_counter_[lane]->add(1);
        queue_depth_[lane]->set(static_cast<double>(queue_.size(klass)));
        queue_depth_peak_->set_max(static_cast<double>(queue_.size()));
    }
    return out;
}

void NpuServer::worker_loop() {
    for (;;) {
        std::vector<InferenceRequest> batch =
            queue_.pop_batch(static_cast<std::size_t>(config_.max_batch));
        if (batch.empty()) return;  // closed and drained
        const std::size_t batch_size = batch.size();
        if (telemetry_) {
            // Queue span closes here: submit → worker pop. The wait
            // histograms see every request; the trace only sampled ones.
            const std::int64_t now = obs::monotonic_us();
            for (InferenceRequest& request : batch) {
                queue_wait_us_[static_cast<std::size_t>(request.klass)]->observe(
                    static_cast<double>(now - request.submit_us));
                if (request.trace) request.trace->mark(obs::SpanKind::Queue, now);
            }
            for (std::size_t c = 0; c < kNumRequestClasses; ++c)
                queue_depth_[c]->set(static_cast<double>(
                    queue_.size(static_cast<RequestClass>(c))));
        }

        ServeUnit* unit = nullptr;
        {
            const common::MutexLock lock(pool_mutex_);
            while (idle_units_.empty()) pool_cv_.wait(pool_mutex_);
            unit = idle_units_.back();
            idle_units_.pop_back();
        }
        std::size_t failed = 0;
        try {
            unit->serve(batch);
        } catch (...) {
            // A malformed request (e.g. a submitted image whose shape the
            // batcher or the engine rejects) fails its own batch, not the
            // server: every still-unfulfilled promise in the batch gets
            // the exception, the worker and the unit keep serving. A
            // throw from the post-fulfillment boundary work (an inline
            // requant build) reaches here with every promise already
            // satisfied — those requests completed; the device keeps its
            // current deployment and retries at the next boundary.
            failed = fail_batch(batch, std::current_exception());
        }
        {
            const common::MutexLock lock(pool_mutex_);
            idle_units_.push_back(unit);
        }
        pool_cv_.notify_one();
        // A device completes the batch synchronously; a shard group
        // counts completion itself when the pipeline's last stage
        // fulfills the promises.
        if (!sharded()) {
            completed_.fetch_add(batch_size - failed, std::memory_order_relaxed);
            if (telemetry_ && failed == 0) {
                // Per-class attribution on the success path; a failed
                // batch cannot tell which class' promises were already
                // satisfied before the throw, so only the class-less
                // completed_ total counts those.
                std::size_t per_class[kNumRequestClasses] = {};
                for (const InferenceRequest& request : batch)
                    ++per_class[static_cast<std::size_t>(request.klass)];
                for (std::size_t c = 0; c < kNumRequestClasses; ++c)
                    if (per_class[c] > 0) completed_counter_[c]->add(per_class[c]);
            }
        }
    }
}

void NpuServer::shutdown() {
    if (stopped_.exchange(true)) return;
    queue_.close();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    // Workers joined: every accepted batch is inside a pipeline (or
    // done). Drain the pipelines so every promise is fulfilled.
    for (const auto& group : groups_) group->drain();
    if (requant_service_) {
        // Drain outstanding background builds (every accepted job is
        // built and published), adopt what was published, and catch up
        // on any crossing absorbed while a build was in flight: the
        // fleet ends on exactly the generations an inline run deploys.
        requant_service_->shutdown();
        for (const auto& device : devices_) device->finish_requants();
        for (const auto& group : groups_) group->finish_requants();
    }
}

double NpuServer::sample_accuracy(int index, int samples) const {
    if (!ctx_.eval_images || !ctx_.eval_labels)
        throw std::logic_error("NpuServer: no eval set in the serve context");
    if (samples < 1) throw std::invalid_argument("NpuServer: samples must be >= 1");
    samples = std::min(samples, ctx_.eval_images->shape().n);
    const std::vector<int> labels(ctx_.eval_labels->begin(),
                                  ctx_.eval_labels->begin() + samples);
    if (sharded())
        return groups_.at(static_cast<std::size_t>(index))
            ->sample_accuracy(*ctx_.eval_images, labels, samples);
    const auto qgraph = devices_.at(static_cast<std::size_t>(index))->deployed_graph();
    // Zero-copy slice of the eval set; the engine reads it in place.
    return quant::quantized_accuracy(*qgraph, ctx_.eval_images->batch_view(0, samples),
                                     labels);
}

void NpuServer::sync_exec_metrics() const {
    if (!exec_parallel_counter_) return;
    // The exec counters are process-wide; exporting the delta since the
    // last sync (seeded with the construction-time baseline) attributes
    // only this server's runs, and exchange() keeps concurrent scrapes
    // from double-counting an interval.
    const std::uint64_t now = exec::level_parallel_runs();
    const std::uint64_t prev =
        exec_parallel_exported_.exchange(now, std::memory_order_relaxed);
    if (now > prev) exec_parallel_counter_->add(now - prev);
}

std::string NpuServer::export_metrics() const {
    sync_exec_metrics();
    return telemetry_ ? telemetry_->metrics().expose() : std::string();
}

std::string NpuServer::export_metrics_jsonl() const {
    sync_exec_metrics();
    return telemetry_ ? telemetry_->metrics().jsonl() : std::string();
}

std::string NpuServer::export_traces() const {
    return telemetry_ ? telemetry_->traces().render() : std::string();
}

std::string NpuServer::export_timeline() const {
    return telemetry_ ? telemetry_->timeline().render() : std::string();
}

FleetStats NpuServer::fleet_stats() const {
    FleetStats fleet;
    fleet.submitted = accepted_.load(std::memory_order_relaxed);
    fleet.completed = completed_.load(std::memory_order_relaxed);
    fleet.devices.reserve(devices_.size());
    for (const auto& device : devices_) fleet.devices.push_back(device->stats());
    for (const auto& group : groups_) {
        std::vector<DeviceStats> shard_stats = group->stats();
        fleet.devices.insert(fleet.devices.end(), shard_stats.begin(), shard_stats.end());
    }
    return fleet;
}

}  // namespace raq::serve
