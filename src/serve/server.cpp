#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "quant/evaluate.hpp"

namespace raq::serve {

NpuServer::NpuServer(const ServeContext& ctx, const ServeConfig& config)
    : config_(config), ctx_(ctx), queue_(config.queue_capacity) {
    if (config.num_devices < 1 || config.num_workers < 1 || config.max_batch < 1)
        throw std::invalid_argument("NpuServer: devices/workers/max_batch must be >= 1");
    if (config.background_requant && config.requant_workers < 1)
        throw std::invalid_argument("NpuServer: requant_workers must be >= 1");
    // full_algorithm1 without a usable eval set fails loudly below:
    // every device's RequantJob validates it at construction (no silent
    // fast-path fallback), and that error propagates out of here.
    if (config.background_requant)
        requant_service_ = std::make_unique<RequantService>(config.requant_workers);
    devices_.reserve(static_cast<std::size_t>(config.num_devices));
    for (int i = 0; i < config.num_devices; ++i) {
        DeviceConfig dev = config.device;
        dev.initial_age_years =
            config.initial_age_years + static_cast<double>(i) * config.initial_age_step_years;
        // Compile each device's execution plan for the largest batch the
        // server will ever hand it: no plan recompile on the serving path.
        dev.plan_batch_capacity = config.max_batch;
        devices_.push_back(
            std::make_unique<NpuDevice>(i, ctx_, dev, requant_service_.get()));
        idle_devices_.push_back(devices_.back().get());
    }
    workers_.reserve(static_cast<std::size_t>(config.num_workers));
    for (int i = 0; i < config.num_workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

NpuServer::~NpuServer() { shutdown(); }

std::future<InferenceResult> NpuServer::submit(tensor::Tensor image) {
    InferenceRequest request;
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    request.image = std::move(image);
    std::future<InferenceResult> future = request.promise.get_future();
    if (!queue_.push(std::move(request)))
        throw std::runtime_error("NpuServer: submit after shutdown");
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return future;
}

void NpuServer::worker_loop() {
    for (;;) {
        std::vector<InferenceRequest> batch =
            queue_.pop_batch(static_cast<std::size_t>(config_.max_batch));
        if (batch.empty()) return;  // closed and drained

        NpuDevice* device = nullptr;
        {
            std::unique_lock<std::mutex> lock(pool_mutex_);
            pool_cv_.wait(lock, [&] { return !idle_devices_.empty(); });
            device = idle_devices_.back();
            idle_devices_.pop_back();
        }
        device->serve(batch);
        {
            const std::lock_guard<std::mutex> lock(pool_mutex_);
            idle_devices_.push_back(device);
        }
        pool_cv_.notify_one();
        completed_.fetch_add(batch.size(), std::memory_order_relaxed);
    }
}

void NpuServer::shutdown() {
    if (stopped_.exchange(true)) return;
    queue_.close();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    if (requant_service_) {
        // Drain outstanding background builds (every accepted job is
        // built and published), adopt what was published, and catch up
        // on any crossing absorbed while a build was in flight: the
        // fleet ends on exactly the generations an inline run deploys.
        requant_service_->shutdown();
        for (const auto& device : devices_) device->finish_requants();
    }
}

double NpuServer::sample_accuracy(int device_index, int samples) const {
    if (!ctx_.eval_images || !ctx_.eval_labels)
        throw std::logic_error("NpuServer: no eval set in the serve context");
    if (samples < 1) throw std::invalid_argument("NpuServer: samples must be >= 1");
    const auto qgraph = devices_.at(static_cast<std::size_t>(device_index))->deployed_graph();
    samples = std::min(samples, ctx_.eval_images->shape().n);
    const std::vector<int> labels(ctx_.eval_labels->begin(),
                                  ctx_.eval_labels->begin() + samples);
    // Zero-copy slice of the eval set; the engine reads it in place.
    return quant::quantized_accuracy(*qgraph, ctx_.eval_images->batch_view(0, samples),
                                     labels);
}

FleetStats NpuServer::fleet_stats() const {
    FleetStats fleet;
    fleet.submitted = accepted_.load(std::memory_order_relaxed);
    fleet.completed = completed_.load(std::memory_order_relaxed);
    fleet.devices.reserve(devices_.size());
    for (const auto& device : devices_) fleet.devices.push_back(device->stats());
    return fleet;
}

}  // namespace raq::serve
