// BoundedChannel<T>: the one bounded MPMC close-and-drain queue protocol
// in the serving runtime. Producers block when full (backpressure
// instead of unbounded memory growth); close() stops admission but lets
// consumers drain what was accepted — nothing accepted is ever dropped,
// and a producer blocked on a full channel when close() fires gets
// `push == false` with its item intact (the caller still owns it and
// can resolve its promise).
//
// The Scheduler's per-class admission lanes, the ShardGroup's
// inter-stage handoff channels and the net front-end's admission path
// (try_push: shed instead of block) are all instances; keeping one
// implementation keeps their close/drain semantics in lockstep.
//
// Lock discipline is compiler-checked (common/README.md): `items_` and
// `closed_` are RAQ_GUARDED_BY(mutex_), every public entry point is
// RAQ_EXCLUDES(mutex_), and notifies happen after an explicit
// lock.unlock() so no waiter wakes into a held mutex.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace raq::serve {

/// Outcome of a non-blocking push attempt. `Full` leaves the item with
/// the caller — an event loop must not block its thread on admission,
/// so it turns Full into an explicit BUSY response (load shedding)
/// rather than buffering without bound.
enum class ChannelPush { Ok, Full, Closed };

template <typename T>
class BoundedChannel {
public:
    explicit BoundedChannel(std::size_t capacity)
        : capacity_(std::max<std::size_t>(1, capacity)) {}

    /// Blocks while the channel is full. Returns false — leaving `item`
    /// untouched in the caller's hands — once the channel is closed.
    bool push(T&& item) RAQ_EXCLUDES(mutex_) {
        common::MutexLock lock(mutex_);
        while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push for callers that must not stall (the net event
    /// loops). On Full or Closed, `item` is untouched and still owned by
    /// the caller.
    ChannelPush try_push(T&& item) RAQ_EXCLUDES(mutex_) {
        {
            const common::MutexLock lock(mutex_);
            if (closed_) return ChannelPush::Closed;
            if (items_.size() >= capacity_) return ChannelPush::Full;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return ChannelPush::Ok;
    }

    /// Pops one item, blocking until work arrives. Returns false when
    /// the channel is closed *and* fully drained.
    bool pop(T& out) RAQ_EXCLUDES(mutex_) {
        common::MutexLock lock(mutex_);
        while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
        if (items_.empty()) return false;  // closed and drained
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /// Pops 1..max_batch items in one critical section (what makes
    /// dynamic batching cheap: one lock acquisition per batch, not per
    /// item). An empty result means closed *and* fully drained.
    std::vector<T> pop_batch(std::size_t max_batch) RAQ_EXCLUDES(mutex_) {
        std::vector<T> batch;
        common::MutexLock lock(mutex_);
        while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
        const std::size_t n = std::min(max_batch, items_.size());
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        if (n > 0) not_full_.notify_all();
        return batch;
    }

    /// Stop admission; wakes all blocked producers and consumers.
    void close() RAQ_EXCLUDES(mutex_) {
        {
            const common::MutexLock lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const RAQ_EXCLUDES(mutex_) {
        const common::MutexLock lock(mutex_);
        return closed_;
    }
    [[nodiscard]] std::size_t size() const RAQ_EXCLUDES(mutex_) {
        const common::MutexLock lock(mutex_);
        return items_.size();
    }

private:
    const std::size_t capacity_;
    mutable common::Mutex mutex_;
    common::CondVar not_empty_;
    common::CondVar not_full_;
    std::deque<T> items_ RAQ_GUARDED_BY(mutex_);
    bool closed_ RAQ_GUARDED_BY(mutex_) = false;
};

}  // namespace raq::serve
