// BoundedChannel<T>: the one bounded MPMC close-and-drain queue protocol
// in the serving runtime. Producers block when full (backpressure
// instead of unbounded memory growth); close() stops admission but lets
// consumers drain what was accepted — nothing accepted is ever dropped,
// and a producer blocked on a full channel when close() fires gets
// `push == false` with its item intact (the caller still owns it and
// can resolve its promise).
//
// RequestQueue (the server's admission point), the ShardGroup's
// inter-stage handoff channels and the net front-end's admission path
// (try_push: shed instead of block) are all instances; keeping one
// implementation keeps their close/drain semantics in lockstep.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace raq::serve {

/// Outcome of a non-blocking push attempt. `Full` leaves the item with
/// the caller — an event loop must not block its thread on admission,
/// so it turns Full into an explicit BUSY response (load shedding)
/// rather than buffering without bound.
enum class ChannelPush { Ok, Full, Closed };

template <typename T>
class BoundedChannel {
public:
    explicit BoundedChannel(std::size_t capacity)
        : capacity_(std::max<std::size_t>(1, capacity)) {}

    /// Blocks while the channel is full. Returns false — leaving `item`
    /// untouched in the caller's hands — once the channel is closed.
    bool push(T&& item) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push for callers that must not stall (the net event
    /// loops). On Full or Closed, `item` is untouched and still owned by
    /// the caller.
    ChannelPush try_push(T&& item) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) return ChannelPush::Closed;
            if (items_.size() >= capacity_) return ChannelPush::Full;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return ChannelPush::Ok;
    }

    /// Pops one item, blocking until work arrives. Returns false when
    /// the channel is closed *and* fully drained.
    bool pop(T& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return false;  // closed and drained
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /// Pops 1..max_batch items in one critical section (what makes
    /// dynamic batching cheap: one lock acquisition per batch, not per
    /// item). An empty result means closed *and* fully drained.
    std::vector<T> pop_batch(std::size_t max_batch) {
        std::vector<T> batch;
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        const std::size_t n = std::min(max_batch, items_.size());
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        if (n > 0) not_full_.notify_all();
        return batch;
    }

    /// Stop admission; wakes all blocked producers and consumers.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }
    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace raq::serve
