// The serving request types. Admission itself is handled by
// serve::Scheduler (scheduler.hpp): per-class bounded lanes with the
// same close-and-drain contract as BoundedChannel — producers block when
// their lane is full; consumers pop up to `max_batch` requests per lock
// acquisition; close() stops admission but drains everything accepted.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "serve/bounded_channel.hpp"
#include "tensor/tensor.hpp"

namespace raq::serve {

/// Multi-tenant request class. Interactive requests have a tight latency
/// target and preempt Batch requests at batch-formation time; Batch
/// requests are throughput-oriented and protected from starvation by an
/// aging credit (see serve::Scheduler). Wire encoding is the enum value
/// as one byte (net::Op::InferClass); legacy frames default Interactive.
enum class RequestClass : std::uint8_t {
    Interactive = 0,
    Batch = 1,
};

inline constexpr std::size_t kNumRequestClasses = 2;

[[nodiscard]] inline const char* request_class_name(RequestClass klass) noexcept {
    switch (klass) {
        case RequestClass::Interactive: return "interactive";
        case RequestClass::Batch: return "batch";
    }
    return "?";
}

/// The outcome of one served request.
struct InferenceResult {
    std::uint64_t request_id = 0;
    int predicted_class = -1;
    std::vector<float> logits;
    int device_id = -1;
    std::uint64_t generation = 0;      ///< ModelState generation that served it
    /// Partition generation of the shard pipeline that served it (0 on a
    /// whole-model device). A drain-and-swap re-cut never tears a batch,
    /// so one request is served end to end by exactly one partition.
    std::uint64_t partition = 0;
    std::uint64_t latency_cycles = 0;  ///< batch residency in model cycles
    double latency_us = 0.0;           ///< latency_cycles × device clock
    RequestClass klass = RequestClass::Interactive;  ///< class that served it
};

struct InferenceRequest {
    std::uint64_t id = 0;
    tensor::Tensor image;  ///< one sample, shape (1, c, h, w)
    std::promise<InferenceResult> promise;
    /// Scheduling class: picks the admission lane and the batch-formation
    /// priority (serve::Scheduler).
    RequestClass klass = RequestClass::Interactive;
    /// Admission timestamp (obs::monotonic_us), stamped unconditionally by
    /// every submit path — deadline/SLO accounting and the scheduler's
    /// anti-starvation aging credit need it even with telemetry off.
    std::int64_t submit_us = 0;
    /// Per-request trace, present only on sampled requests. Travels with
    /// the request through every channel handoff; exactly one thread
    /// touches it at a time (see obs/trace.hpp).
    std::shared_ptr<obs::TraceContext> trace;
    /// Completion hook, fired exactly once after the promise is
    /// satisfied (value or exception). The net front-end hangs an
    /// eventfd wake here so its event loop learns of completions without
    /// parking a thread on every future. Empty for in-process callers.
    std::function<void()> on_done;

    /// Satisfy the promise with a result, then fire the completion hook.
    /// All fulfilment sites go through resolve()/reject() so the hook
    /// cannot be missed by a new code path.
    void resolve(InferenceResult&& result) {
        promise.set_value(std::move(result));
        if (on_done) on_done();
    }

    /// Satisfy the promise with an error, then fire the completion hook.
    void reject(const std::exception_ptr& error) {
        promise.set_exception(error);
        if (on_done) on_done();
    }
};

/// Fail every still-unfulfilled promise in `batch` with `error`,
/// leaving promises satisfied before the throw alone. The one error
/// fan-out both the server's worker loop and a shard pipeline's stage
/// threads apply when a batch throws mid-serve. Returns how many
/// promises were failed (== how many requests did NOT complete).
inline std::size_t fail_batch(std::vector<InferenceRequest>& batch,
                              const std::exception_ptr& error) {
    std::size_t failed = 0;
    for (InferenceRequest& request : batch) {
        try {
            request.reject(error);
            ++failed;
        } catch (const std::future_error&) {
            // already satisfied before the throw
        }
    }
    return failed;
}

}  // namespace raq::serve
