// The serving request types and the admission queue: a
// BoundedChannel<InferenceRequest> with batched pops. Producers (submit
// calls) block when the queue is full; consumers (workers) pop up to
// `max_batch` requests per lock acquisition; close() stops admission but
// drains everything accepted — pop_batch returns an empty vector only
// once closed *and* empty, the worker-exit signal.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "serve/bounded_channel.hpp"
#include "tensor/tensor.hpp"

namespace raq::serve {

/// The outcome of one served request.
struct InferenceResult {
    std::uint64_t request_id = 0;
    int predicted_class = -1;
    std::vector<float> logits;
    int device_id = -1;
    std::uint64_t generation = 0;      ///< ModelState generation that served it
    /// Partition generation of the shard pipeline that served it (0 on a
    /// whole-model device). A drain-and-swap re-cut never tears a batch,
    /// so one request is served end to end by exactly one partition.
    std::uint64_t partition = 0;
    std::uint64_t latency_cycles = 0;  ///< batch residency in model cycles
    double latency_us = 0.0;           ///< latency_cycles × device clock
};

struct InferenceRequest {
    std::uint64_t id = 0;
    tensor::Tensor image;  ///< one sample, shape (1, c, h, w)
    std::promise<InferenceResult> promise;
    /// Admission timestamp (obs::monotonic_us), stamped by submit() when
    /// telemetry is enabled (0 otherwise) — feeds the queue-wait metric.
    std::int64_t submit_us = 0;
    /// Per-request trace, present only on sampled requests. Travels with
    /// the request through every channel handoff; exactly one thread
    /// touches it at a time (see obs/trace.hpp).
    std::shared_ptr<obs::TraceContext> trace;
    /// Completion hook, fired exactly once after the promise is
    /// satisfied (value or exception). The net front-end hangs an
    /// eventfd wake here so its event loop learns of completions without
    /// parking a thread on every future. Empty for in-process callers.
    std::function<void()> on_done;

    /// Satisfy the promise with a result, then fire the completion hook.
    /// All fulfilment sites go through resolve()/reject() so the hook
    /// cannot be missed by a new code path.
    void resolve(InferenceResult&& result) {
        promise.set_value(std::move(result));
        if (on_done) on_done();
    }

    /// Satisfy the promise with an error, then fire the completion hook.
    void reject(const std::exception_ptr& error) {
        promise.set_exception(error);
        if (on_done) on_done();
    }
};

using RequestQueue = BoundedChannel<InferenceRequest>;

/// Fail every still-unfulfilled promise in `batch` with `error`,
/// leaving promises satisfied before the throw alone. The one error
/// fan-out both the server's worker loop and a shard pipeline's stage
/// threads apply when a batch throws mid-serve. Returns how many
/// promises were failed (== how many requests did NOT complete).
inline std::size_t fail_batch(std::vector<InferenceRequest>& batch,
                              const std::exception_ptr& error) {
    std::size_t failed = 0;
    for (InferenceRequest& request : batch) {
        try {
            request.reject(error);
            ++failed;
        } catch (const std::future_error&) {
            // already satisfied before the throw
        }
    }
    return failed;
}

}  // namespace raq::serve
