// Bounded MPMC request queue with batched pops — the admission point of
// the serving runtime. Producers (submit calls) block when the queue is
// full (backpressure instead of unbounded memory growth); consumers
// (workers) pop up to `max_batch` requests in one critical section, which
// is what makes dynamic batching cheap: one lock acquisition per batch,
// not per request.
//
// close() stops admission but lets consumers drain what was accepted:
// pop_batch keeps returning work until the queue is empty, then returns
// an empty vector — the worker-exit signal. Nothing accepted is ever
// dropped.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace raq::serve {

/// The outcome of one served request.
struct InferenceResult {
    std::uint64_t request_id = 0;
    int predicted_class = -1;
    std::vector<float> logits;
    int device_id = -1;
    std::uint64_t generation = 0;      ///< ModelState generation that served it
    std::uint64_t latency_cycles = 0;  ///< batch residency in model cycles
    double latency_us = 0.0;           ///< latency_cycles × device clock
};

struct InferenceRequest {
    std::uint64_t id = 0;
    tensor::Tensor image;  ///< one sample, shape (1, c, h, w)
    std::promise<InferenceResult> promise;
};

class RequestQueue {
public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Blocks while the queue is full. Returns false (and drops the
    /// request) once the queue is closed.
    bool push(InferenceRequest&& request) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(request));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Pops 1..max_batch requests, blocking until work arrives. An empty
    /// result means the queue is closed *and* fully drained.
    std::vector<InferenceRequest> pop_batch(std::size_t max_batch) {
        std::vector<InferenceRequest> batch;
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        const std::size_t n = std::min(max_batch, items_.size());
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        if (n > 0) not_full_.notify_all();
        return batch;
    }

    /// Stop admission; wakes all blocked producers and consumers.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }
    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<InferenceRequest> items_;
    bool closed_ = false;
};

}  // namespace raq::serve
