#include "serve/scheduler.hpp"

#include <algorithm>

#include "obs/clock.hpp"

namespace raq::serve {

Scheduler::Scheduler(const SchedulerConfig& config) : config_(config) {
    capacity_[lane_of(RequestClass::Interactive)] =
        std::max<std::size_t>(1, config.interactive_capacity);
    capacity_[lane_of(RequestClass::Batch)] =
        std::max<std::size_t>(1, config.batch_capacity);
}

bool Scheduler::push(InferenceRequest&& item) {
    const std::size_t lane = lane_of(item.klass);
    common::MutexLock lock(mutex_);
    while (!closed_ && lanes_[lane].size() >= capacity_[lane]) {
        not_full_[lane].wait(mutex_);
    }
    if (closed_) return false;
    lanes_[lane].push_back(std::move(item));
    ++admitted_[lane];
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

ChannelPush Scheduler::try_push(InferenceRequest&& item) {
    const std::size_t lane = lane_of(item.klass);
    {
        const common::MutexLock lock(mutex_);
        if (closed_) return ChannelPush::Closed;
        if (lanes_[lane].size() >= capacity_[lane]) return ChannelPush::Full;
        lanes_[lane].push_back(std::move(item));
        ++admitted_[lane];
    }
    not_empty_.notify_one();
    return ChannelPush::Ok;
}

std::size_t Scheduler::take_from(std::size_t lane,
                                 std::vector<InferenceRequest>& batch,
                                 std::size_t want) {
    const std::size_t n = std::min(want, lanes_[lane].size());
    for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(lanes_[lane].front()));
        lanes_[lane].pop_front();
    }
    return n;
}

std::vector<InferenceRequest> Scheduler::pop_batch(std::size_t max_batch) {
    constexpr std::size_t kInteractive = 0;
    constexpr std::size_t kBatch = 1;
    std::vector<InferenceRequest> batch;
    common::MutexLock lock(mutex_);
    while (!closed_ && lanes_[kInteractive].empty() && lanes_[kBatch].empty()) {
        not_empty_.wait(mutex_);
    }
    const std::size_t avail = lanes_[kInteractive].size() + lanes_[kBatch].size();
    const std::size_t n = std::min(max_batch, avail);
    if (n == 0) return batch;  // closed and both lanes drained
    batch.reserve(n);

    // Aging credit: the batch lane wins this formation outright if its
    // head has waited past starvation_us, or it has been skipped
    // max_interactive_streak consecutive formations while non-empty.
    bool batch_first = false;
    if (!lanes_[kBatch].empty()) {
        const std::int64_t waited =
            obs::monotonic_us() - lanes_[kBatch].front().submit_us;
        batch_first = waited >= config_.starvation_us ||
                      interactive_streak_ >= config_.max_interactive_streak;
    }

    std::size_t took_batch = 0;
    if (batch_first) {
        took_batch = take_from(kBatch, batch, n);
        take_from(kInteractive, batch, n - batch.size());
        ++starvation_grants_;
    } else {
        take_from(kInteractive, batch, n);
        took_batch = take_from(kBatch, batch, n - batch.size());
    }
    const bool took_interactive = batch.size() > took_batch;
    if (took_batch == 0 && !lanes_[kBatch].empty()) {
        ++interactive_streak_;
    } else {
        interactive_streak_ = 0;
    }
    ++formations_;
    lock.unlock();
    if (took_interactive) not_full_[kInteractive].notify_all();
    if (took_batch > 0) not_full_[kBatch].notify_all();
    return batch;
}

void Scheduler::close() {
    {
        const common::MutexLock lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
    for (auto& cv : not_full_) cv.notify_all();
}

bool Scheduler::closed() const {
    const common::MutexLock lock(mutex_);
    return closed_;
}

std::size_t Scheduler::size() const {
    const common::MutexLock lock(mutex_);
    std::size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    return total;
}

std::size_t Scheduler::size(RequestClass klass) const {
    const common::MutexLock lock(mutex_);
    return lanes_[lane_of(klass)].size();
}

SchedulerStats Scheduler::stats() const {
    const common::MutexLock lock(mutex_);
    SchedulerStats out;
    for (std::size_t lane = 0; lane < kNumRequestClasses; ++lane) {
        out.depth[lane] = lanes_[lane].size();
        out.admitted[lane] = admitted_[lane];
    }
    out.starvation_grants = starvation_grants_;
    out.formations = formations_;
    return out;
}

}  // namespace raq::serve
