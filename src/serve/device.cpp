#include "serve/device.hpp"

#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "ir/float_executor.hpp"
#include "quant/methods.hpp"
#include "serve/batcher.hpp"

namespace raq::serve {

NpuDevice::NpuDevice(int id, const ServeContext& ctx, const DeviceConfig& config)
    : id_(id), ctx_(&ctx), config_(config) {
    if (!ctx.graph || !ctx.calib || !ctx.selector || !ctx.aging)
        throw std::invalid_argument("NpuDevice: graph/calib/selector/aging are required");
    if (config.full_algorithm1 && (!ctx.eval_images || !ctx.eval_labels))
        throw std::invalid_argument("NpuDevice: full Algorithm 1 needs an eval set");
    clock_period_ps_ = ctx.selector->fresh_critical_path_ps();
    const npu::SystolicArrayModel array(config.systolic);
    per_image_cycles_ = array.analyze(*ctx.graph).total_cycles;
    deploy(ctx.aging->dvth_mv(config.initial_age_years), /*record_event=*/false);
    if (!qgraph_)
        throw std::runtime_error(
            "NpuDevice: no feasible compression at the initial aging level");
}

double NpuDevice::hours_unlocked() const {
    const double busy_hours =
        static_cast<double>(busy_cycles_) * clock_period_ps_ * 1e-12 / 3600.0;
    return config_.initial_age_years * 8760.0 + busy_hours * config_.age_acceleration;
}

double NpuDevice::operating_hours() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return hours_unlocked();
}

double NpuDevice::dvth_mv() const { return ctx_->aging->dvth_mv(operating_hours() / 8760.0); }

int NpuDevice::requant_count() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return requant_count_;
}

std::shared_ptr<const quant::QuantizedGraph> NpuDevice::deployed_graph() const {
    const std::lock_guard<std::mutex> lock(graph_mutex_);
    return qgraph_;
}

void NpuDevice::deploy(double dvth, bool record_event) {
    const auto choice = ctx_->selector->select(dvth);
    // Even full compression cannot meet timing: keep the current
    // deployment rather than serve a graph that violates the clock.
    if (!choice) return;

    quant::Method method = quant::Method::M5_AciqNoBias;
    if (config_.full_algorithm1) {
        core::AagInputs inputs;
        inputs.graph = ctx_->graph;
        inputs.test_images = ctx_->eval_images;
        inputs.test_labels = ctx_->eval_labels;
        inputs.calib_images = &ctx_->calib->images;
        inputs.calib_labels = &ctx_->calib->labels;
        inputs.accuracy_loss_threshold = config_.accuracy_loss_threshold;
        const core::AgingAwareQuantizer quantizer(*ctx_->selector);
        method = quantizer.run(inputs, dvth).selected_method;
    }
    const auto qconfig = quant::QuantConfig::from_compression(choice->compression);
    auto graph = std::make_shared<const quant::QuantizedGraph>(
        quant::quantize_graph(*ctx_->graph, method, qconfig, *ctx_->calib));

    common::Compression before;
    {
        const std::lock_guard<std::mutex> lock(graph_mutex_);
        before = compression_;
        qgraph_ = std::move(graph);
        compression_ = choice->compression;
        method_ = method;
        dvth_at_deploy_ = dvth;
    }
    // Re-point the planned execution state at the new deployment (the
    // owning rebind pins the graph). The topology is unchanged, so the
    // compiled plan and all scratch buffers survive the swap; only this
    // (serve) thread runs the runner.
    const std::shared_ptr<const quant::QuantizedGraph> deployed = deployed_graph();
    if (!runner_)
        runner_.emplace(deployed, std::max(1, config_.plan_batch_capacity));
    else
        runner_->rebind(deployed);
    if (record_event) {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requant_count_;
        RequantEvent event;
        event.at_hours = hours_unlocked();
        event.dvth_mv = dvth;
        event.before = before;
        event.after = choice->compression;
        event.method = method;
        requant_events_.push_back(event);
    }
}

void NpuDevice::serve(std::vector<InferenceRequest>& batch) {
    if (batch.empty()) return;
    // The deployed graph cannot change mid-serve: only this thread
    // deploys, and the member shared_ptr pins the runner's binding.
    const std::uint64_t batch_cycles =
        per_image_cycles_ * static_cast<std::uint64_t>(batch.size());
    const double latency_us =
        static_cast<double>(batch_cycles) * clock_period_ps_ * 1e-6;

    std::uint64_t batch_flips = 0;
    if (config_.flip_probability > 0.0) {
        // Fault-injection mode executes per request with a request-id-
        // derived seed: results are independent of batching decisions and
        // thread scheduling, so parallel serving runs are reproducible.
        inject::InjectionConfig inj_cfg;
        inj_cfg.flip_probability = config_.flip_probability;
        for (InferenceRequest& request : batch) {
            inj_cfg.seed = common::stream_seed(config_.base_seed, request.id);
            inject::BitFlipInjector injector(inj_cfg);
            const tensor::Tensor logits = runner_->run(request.image, &injector);
            InferenceResult result = make_result(request.id, logits, 0);
            result.device_id = id_;
            result.latency_cycles = batch_cycles;
            result.latency_us = latency_us;
            request.promise.set_value(std::move(result));
            batch_flips += injector.flips_injected();
        }
    } else {
        const tensor::Tensor stacked = stack_batch(batch);
        const tensor::Tensor logits = runner_->run(stacked);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceResult result = make_result(batch[i].id, logits, static_cast<int>(i));
            result.device_id = id_;
            result.latency_cycles = batch_cycles;
            result.latency_us = latency_us;
            batch[i].promise.set_value(std::move(result));
        }
    }

    double dvth_now = 0.0;
    double dvth_deployed = 0.0;
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        requests_ += batch.size();
        ++batches_;
        busy_cycles_ += batch_cycles;
        flips_ += batch_flips;
        for (std::size_t i = 0; i < batch.size(); ++i) latency_.record(batch_cycles);
        dvth_now = ctx_->aging->dvth_mv(hours_unlocked() / 8760.0);
    }
    {
        const std::lock_guard<std::mutex> lock(graph_mutex_);
        dvth_deployed = dvth_at_deploy_;
    }
    // Batch-boundary aging check (exactly one deployment per crossing:
    // the device is held exclusively, and deploy() resets the baseline).
    if (dvth_now - dvth_deployed >= config_.requant_threshold_mv)
        deploy(dvth_now, /*record_event=*/true);
}

DeviceStats NpuDevice::stats() const {
    DeviceStats s;
    s.device_id = id_;
    s.clock_period_ps = clock_period_ps_;
    {
        const std::lock_guard<std::mutex> lock(graph_mutex_);
        s.compression = compression_;
        s.method = method_;
    }
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.requests = requests_;
    s.batches = batches_;
    s.busy_cycles = busy_cycles_;
    s.flips = flips_;
    s.operating_hours = hours_unlocked();
    s.dvth_mv = ctx_->aging->dvth_mv(s.operating_hours / 8760.0);
    s.requant_count = requant_count_;
    s.requant_events = requant_events_;
    s.latency = latency_.summary();
    return s;
}

}  // namespace raq::serve
