#include "serve/device.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "serve/batcher.hpp"

namespace raq::serve {

namespace {

/// Runs before the RequantJob member is constructed (which dereferences
/// the context), so a half-filled context fails with a clear error.
const ir::Graph& validate_context(const ServeContext& ctx) {
    if (!ctx.graph || !ctx.calib || !ctx.selector || !ctx.aging)
        throw std::invalid_argument("NpuDevice: graph/calib/selector/aging are required");
    return *ctx.graph;
}

core::RequantJobConfig job_config(const DeviceConfig& config) {
    core::RequantJobConfig jc;
    jc.full_algorithm1 = config.full_algorithm1;
    jc.accuracy_loss_threshold = config.accuracy_loss_threshold;
    jc.guardband_fraction = config.guardband_fraction;
    return jc;
}

double ms_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

NpuDevice::NpuDevice(int id, const ServeContext& ctx, const DeviceConfig& config,
                     RequantService* requant_service, obs::Telemetry* telemetry,
                     ReliabilityPlanner* planner, int stage)
    : id_(id),
      stage_(stage),
      ctx_(&ctx),
      config_(config),
      telemetry_(telemetry),
      requant_service_(requant_service),
      planner_(planner),
      latency_(config.latency_reservoir,
               common::stream_seed(config.base_seed, static_cast<std::uint64_t>(id),
                                   0x1a7e9c5ULL)),
      duty_monitor_(config.traffic_aging.window_us) {
    if (telemetry_) {
        obs::Labels labels{{"device", std::to_string(id)}};
        if (stage >= 0) labels.emplace_back("stage", std::to_string(stage));
        obs::MetricsRegistry& reg = telemetry_->metrics();
        metrics_.requests = &reg.counter("raq_device_requests_total", labels);
        metrics_.batches = &reg.counter("raq_device_batches_total", labels);
        metrics_.busy_ps = &reg.gauge("raq_device_busy_ps", labels);
        metrics_.clock_ps = &reg.gauge("raq_device_clock_period_ps", labels);
        metrics_.dvth_mv = &reg.gauge("raq_device_dvth_mv", labels);
        metrics_.generation = &reg.gauge("raq_device_generation", labels);
        metrics_.batch_size =
            &reg.histogram("raq_batch_size", labels, obs::default_size_buckets());
        metrics_.requants = &reg.counter("raq_requants_total", labels);
        metrics_.recuts = &reg.counter("raq_recuts_total", labels);
        metrics_.build_ms =
            &reg.histogram("raq_requant_build_ms", labels, obs::default_ms_buckets());
        metrics_.swap_us =
            &reg.histogram("raq_requant_swap_us", labels, obs::default_us_buckets());
        if (config.traffic_aging.enabled)
            metrics_.duty_fraction = &reg.gauge("raq_device_duty_fraction", labels);
    }
    job_.emplace(validate_context(ctx), *ctx.calib, *ctx.selector, job_config(config),
                 ctx.eval_images, ctx.eval_labels);
    const npu::SystolicArrayModel array(config.systolic);
    per_image_cycles_.store(array.analyze(*ctx.graph).total_cycles,
                            std::memory_order_release);
    auto initial =
        job_->build(ctx.aging->dvth_mv(config.initial_age_years), /*generation=*/1);
    if (!initial)
        throw std::runtime_error(
            "NpuDevice: no feasible compression at the initial aging level");
    // install() derives clock_period_ps_ from the initial state's aged
    // delay (== the fresh critical path for an unaged, uncompressed
    // deployment).
    install(std::make_shared<const core::ModelState>(std::move(*initial)),
            /*record_event=*/false, /*background=*/false, /*build_ms=*/0.0);
}

double NpuDevice::hours_unlocked() const {
    // Traffic-driven aging replaces raw accelerated busy hours with the
    // duty-scaled stress integral account_batch() accrues per batch; at
    // a sustained busy fraction of 1 the two are identical.
    if (config_.traffic_aging.enabled)
        return config_.initial_age_years * 8760.0 + effective_stress_hours_;
    const double busy_hours = busy_ps_ * 1e-12 / 3600.0;
    return config_.initial_age_years * 8760.0 + busy_hours * config_.age_acceleration;
}

double NpuDevice::operating_hours() const {
    const common::MutexLock lock(stats_mutex_);
    return hours_unlocked();
}

double NpuDevice::dvth_mv() const { return ctx_->aging->dvth_mv(operating_hours() / 8760.0); }

int NpuDevice::requant_count() const {
    const common::MutexLock lock(stats_mutex_);
    return requant_count_;
}

std::shared_ptr<const core::ModelState> NpuDevice::deployed_state() const {
    const common::MutexLock lock(state_mutex_);
    return state_;
}

std::shared_ptr<const quant::QuantizedGraph> NpuDevice::deployed_graph() const {
    const auto state = deployed_state();
    return state ? state->qgraph : nullptr;
}

std::uint64_t NpuDevice::generation() const {
    const auto state = deployed_state();
    return state ? state->generation : 0;
}

void NpuDevice::install(const std::shared_ptr<const core::ModelState>& state, bool record_event,
                        bool background, double build_ms, bool recut) {
    const auto swap_start = std::chrono::steady_clock::now();
    common::Compression before;
    {
        const common::MutexLock lock(state_mutex_);
        if (state_) before = state_->compression;
        state_ = state;
    }
    // The clock tracks the deployment: an aged device runs at the
    // installed compression's aged critical path, not the fresh path
    // cached at construction. (Fallback through the selector covers
    // hand-built states without a stamped delay.)
    const double aged_clock =
        state->aged_delay_ps > 0.0
            ? state->aged_delay_ps
            : ctx_->selector->delay_ps(state->dvth_mv, state->compression);
    clock_period_ps_.store(aged_clock, std::memory_order_release);
    // Re-point the planned execution state at the new deployment (the
    // owning rebind pins the graph). The topology is unchanged, so the
    // compiled plan and all scratch buffers survive the swap; only the
    // thread holding the device exclusively runs the runner.
    if (!runner_) {
        if (config_.exec_threads > 0 && !exec_pool_)
            exec_pool_ = std::make_unique<exec::ThreadPool>(config_.exec_threads);
        runner_.emplace(state->qgraph, std::max(1, config_.plan_batch_capacity),
                        exec_pool_.get());
    } else {
        runner_->rebind(state->qgraph);
    }
    const double swap_us = 1e3 * ms_since(swap_start);
    if (telemetry_) {
        metrics_.clock_ps->set(aged_clock);
        metrics_.generation->set(static_cast<double>(state->generation));
    }
    if (record_event) {
        RequantEvent event;
        event.t_us = obs::monotonic_us();
        event.generation = state->generation;
        event.dvth_mv = state->dvth_mv;
        event.before = before;
        event.after = state->compression;
        event.method = state->method;
        event.aged_delay_ps = aged_clock;
        event.build_ms = build_ms;
        event.swap_us = swap_us;
        event.background = background;
        event.recut = recut;
        {
            const common::MutexLock lock(stats_mutex_);
            ++requant_count_;
            event.at_hours = hours_unlocked();
            requant_events_.push_back(event);
        }
        if (telemetry_) {
            (recut ? metrics_.recuts : metrics_.requants)->add(1);
            metrics_.build_ms->observe(build_ms);
            metrics_.swap_us->observe(swap_us);
            obs::ReliabilityEvent re;
            re.t_us = event.t_us;
            re.kind = recut ? obs::EventKind::Recut : obs::EventKind::RequantSwap;
            re.device_id = id_;
            re.generation = state->generation;
            re.value = build_ms;
            re.detail = event.before.to_string() + " -> " + event.after.to_string() +
                        (background ? " (background)" : " (inline)");
            telemetry_->timeline().record(std::move(re));
        }
    }
}

void NpuDevice::requant_inline(double dvth) {
    const auto build_start = std::chrono::steady_clock::now();
    auto built = job_->build(dvth, generation() + 1);
    // Even full compression cannot meet timing: keep the current
    // deployment rather than serve a graph that violates the clock.
    if (!built) return;
    install(std::make_shared<const core::ModelState>(std::move(*built)),
            /*record_event=*/true, /*background=*/false, ms_since(build_start));
}

void NpuDevice::execute_requant(double dvth_mv, std::uint64_t generation) {
    const auto build_start = std::chrono::steady_clock::now();
    auto built = job_->build(dvth_mv, generation);
    PendingOutcome outcome;
    if (built)
        outcome.state = std::make_shared<const core::ModelState>(std::move(*built));
    outcome.build_ms = ms_since(build_start);
    if (telemetry_) {
        // Build completion is its own timeline event (on the service
        // worker's clock); the swap records separately at adoption, so
        // the build→swap gap is visible in the rendered timeline.
        obs::ReliabilityEvent re;
        re.t_us = obs::monotonic_us();
        re.kind = obs::EventKind::RequantBuild;
        re.device_id = id_;
        re.generation = generation;
        re.value = outcome.build_ms;
        re.detail = outcome.state ? "feasible" : "infeasible";
        telemetry_->timeline().record(std::move(re));
    }
    const common::MutexLock lock(pending_mutex_);
    pending_ = std::move(outcome);
}

bool NpuDevice::adopt_pending() {
    std::optional<PendingOutcome> outcome;
    {
        const common::MutexLock lock(pending_mutex_);
        if (!pending_) return false;
        outcome.swap(pending_);
    }
    const bool swapped = outcome->state != nullptr;
    if (swapped)
        install(std::move(outcome->state), /*record_event=*/true, /*background=*/true,
                outcome->build_ms);
    // Clear the gate only after the install: the next threshold check
    // starts from the adopted state's baseline.
    requant_in_flight_.store(false, std::memory_order_release);
    return swapped;
}

void NpuDevice::reshard(core::ModelState state, double build_ms) {
    // An in-flight background build targets the OLD sub-graph through
    // job_; let it publish (the RequantService never drops an accepted
    // job) and discard the result — adopting a state built for a shard
    // this device no longer serves would deploy the wrong topology.
    // After the wait the service worker is done touching job_, so the
    // rebuild below cannot race with it; no new build can start because
    // the pipeline is quiesced (no serve thread reaches
    // requant_boundary()).
    if (requant_in_flight_.load(std::memory_order_acquire)) {
        for (;;) {
            {
                const common::MutexLock lock(pending_mutex_);
                if (pending_) break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    {
        const common::MutexLock lock(pending_mutex_);
        pending_.reset();
    }
    requant_in_flight_.store(false, std::memory_order_release);

    // The context now points at the new sub-graph and sliced
    // calibration; rebuild everything derived from them.
    job_.emplace(validate_context(*ctx_), *ctx_->calib, *ctx_->selector,
                 job_config(config_), ctx_->eval_images, ctx_->eval_labels);
    const npu::SystolicArrayModel array(config_.systolic);
    per_image_cycles_.store(array.analyze(*ctx_->graph).total_cycles,
                            std::memory_order_release);

    // Adopt the pre-built deployment: the silicon (age, busy time, stats
    // history) carries over, only the model slice changes. Topology
    // changed, so the runner is rebuilt rather than rebound (the
    // sub-plan was warm-compiled into the PlanCache by the re-cut path,
    // so this resolves without a compile).
    state.generation = generation() + 1;
    runner_.reset();
    install(std::make_shared<const core::ModelState>(std::move(state)),
            /*record_event=*/true, /*background=*/true, build_ms,
            /*recut=*/true);
}

void NpuDevice::finish_requants() {
    adopt_pending();
    const double dvth_now = dvth_mv();
    if (dvth_now - deployed_state()->dvth_mv >= config_.requant_threshold_mv) {
        // Build-and-adopt through the same publish path a service worker
        // uses: the event records as background (no batch stalled — the
        // stream is over) with its build latency.
        execute_requant(dvth_now, generation() + 1);
        adopt_pending();
    }
}

void NpuDevice::account_batch(std::size_t requests, std::uint64_t batch_cycles,
                              double clock_period_ps, std::uint64_t flips,
                              std::int64_t host_t0_us, std::int64_t host_t1_us) {
    double busy_ps_now = 0.0;
    double hours_now = 0.0;
    double duty_now = 1.0;
    {
        const common::MutexLock lock(stats_mutex_);
        requests_ += requests;
        ++batches_;
        busy_cycles_ += batch_cycles;
        // Busy time accrues at the clock the batch actually ran at; after a
        // re-quantization the new clock applies to subsequent batches only.
        busy_ps_ += static_cast<double>(batch_cycles) * clock_period_ps;
        flips_ += flips;
        for (std::size_t i = 0; i < requests; ++i) latency_.record(batch_cycles);
        if (config_.traffic_aging.enabled) {
            // Measure utilization in host time (that is what the sliding
            // window sees between batches), but accrue stress in model
            // time: the batch's simulated busy hours scaled by the self-
            // heating factor at the current busy fraction.
            duty_monitor_.record_busy(host_t0_us, host_t1_us);
            duty_fraction_ = duty_monitor_.busy_fraction(host_t1_us);
            duty_now = duty_fraction_;
            const double busy_h =
                static_cast<double>(batch_cycles) * clock_period_ps * 1e-12 / 3600.0;
            effective_stress_hours_ +=
                busy_h * config_.age_acceleration *
                sim::duty_aging_factor(duty_fraction_, config_.traffic_aging.self_heat_c,
                                       ctx_->aging->params().temperature_activation);
        }
        busy_ps_now = busy_ps_;
        hours_now = hours_unlocked();
    }
    if (telemetry_) {
        metrics_.requests->add(requests);
        metrics_.batches->add(1);
        metrics_.batch_size->observe(static_cast<double>(requests));
        metrics_.busy_ps->set(busy_ps_now);
        metrics_.dvth_mv->set(ctx_->aging->dvth_mv(hours_now / 8760.0));
        if (metrics_.duty_fraction) metrics_.duty_fraction->set(duty_now);
    }
}

tensor::Tensor NpuDevice::execute_batch(tensor::TensorView batch, BatchTrace* trace) {
    // The deployed state cannot change mid-batch: only this thread (and
    // the post-join shutdown drain) installs, and the snapshot pins it.
    const std::shared_ptr<const core::ModelState> serving = deployed_state();
    const double period = clock_period_ps();
    const std::uint64_t batch_cycles =
        per_image_cycles() * static_cast<std::uint64_t>(batch.shape.n);
    const bool duty = config_.traffic_aging.enabled;
    const std::int64_t host_t0 = duty ? obs::monotonic_us() : 0;
    tensor::Tensor logits = runner_->run(batch);
    const std::int64_t host_t1 = duty ? obs::monotonic_us() : 0;
    if (trace) {
        trace->cycles = batch_cycles;
        trace->latency_us = static_cast<double>(batch_cycles) * period * 1e-6;
        trace->generation = serving->generation;
    }
    account_batch(static_cast<std::size_t>(batch.shape.n), batch_cycles, period, 0,
                  host_t0, host_t1);
    return logits;
}

void NpuDevice::requant_boundary() {
    // First adopt a background-built generation if one was published (so
    // the threshold check runs against the newest baseline), then
    // trigger on a crossing.
    adopt_pending();
    const double dvth_now = dvth_mv();
    const double dvth_deployed = deployed_state()->dvth_mv;
    if (planner_ != nullptr) {
        // Predictive mode: the planner may schedule the build *early*
        // (inside a low-traffic window, before the crossing) or defer a
        // due build briefly for the next lull. Deferral is bounded by
        // the planner's headroom and by finish_requants() at shutdown.
        if (requant_in_flight_.load(std::memory_order_acquire)) return;
        if (planner_->plan_requant(id_, dvth_now, dvth_deployed,
                                   config_.requant_threshold_mv,
                                   ctx_->aging) != PlannerDecision::Schedule)
            return;
    } else if (dvth_now - dvth_deployed < config_.requant_threshold_mv) {
        return;
    }
    if (requant_service_ == nullptr) {
        // Inline mode: the device stalls for the full build (exactly one
        // deployment per crossing: the device is held exclusively, and
        // the install resets the baseline).
        requant_inline(dvth_now);
    } else if (!requant_in_flight_.exchange(true, std::memory_order_acq_rel)) {
        requant_service_->enqueue(*this, dvth_now, generation() + 1);
    }
}

void NpuDevice::serve(std::vector<InferenceRequest>& batch) {
    if (batch.empty()) return;
    if (config_.flip_probability > 0.0) {
        // Fault-injection mode executes per request with a request-id-
        // derived seed: results are independent of batching decisions and
        // thread scheduling, so parallel serving runs are reproducible.
        const std::shared_ptr<const core::ModelState> serving = deployed_state();
        const double period = clock_period_ps();
        const std::uint64_t batch_cycles =
            per_image_cycles() * static_cast<std::uint64_t>(batch.size());
        const double latency_us = static_cast<double>(batch_cycles) * period * 1e-6;
        inject::InjectionConfig inj_cfg;
        inj_cfg.flip_probability = config_.flip_probability;
        std::uint64_t batch_flips = 0;
        const bool duty = config_.traffic_aging.enabled;
        const std::int64_t host_t0 = duty ? obs::monotonic_us() : 0;
        for (InferenceRequest& request : batch) {
            inj_cfg.seed = common::stream_seed(config_.base_seed, request.id);
            inject::BitFlipInjector injector(inj_cfg);
            const tensor::Tensor logits = runner_->run(request.image, &injector);
            InferenceResult result = make_result(request.id, logits, 0);
            result.klass = request.klass;
            result.device_id = id_;
            result.generation = serving->generation;
            result.latency_cycles = batch_cycles;
            result.latency_us = latency_us;
            request.resolve(std::move(result));
            batch_flips += injector.flips_injected();
            if (request.trace && telemetry_) {
                const std::int64_t now = obs::monotonic_us();
                request.trace->mark(obs::SpanKind::Execute, now, id_, stage_,
                                    serving->generation);
                request.trace->mark(obs::SpanKind::Complete, now);
                telemetry_->traces().finish(std::move(request.trace));
            }
        }
        account_batch(batch.size(), batch_cycles, period, batch_flips, host_t0,
                      duty ? obs::monotonic_us() : 0);
    } else {
        bool any_trace = false;
        for (const InferenceRequest& request : batch) any_trace |= request.trace != nullptr;
        if (any_trace) {
            const std::int64_t now = obs::monotonic_us();
            for (InferenceRequest& request : batch)
                if (request.trace) request.trace->mark(obs::SpanKind::Batch, now);
        }
        const tensor::Tensor stacked = stack_batch(batch);
        BatchTrace trace;
        const tensor::Tensor logits =
            execute_batch(stacked.batch_view(0, stacked.shape().n), &trace);
        if (any_trace) {
            const std::int64_t now = obs::monotonic_us();
            for (InferenceRequest& request : batch)
                if (request.trace)
                    request.trace->mark(obs::SpanKind::Execute, now, id_, stage_,
                                        trace.generation);
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceResult result = make_result(batch[i].id, logits, static_cast<int>(i));
            result.klass = batch[i].klass;
            result.device_id = id_;
            result.generation = trace.generation;
            result.latency_cycles = trace.cycles;
            result.latency_us = trace.latency_us;
            batch[i].resolve(std::move(result));
        }
        if (any_trace && telemetry_) {
            const std::int64_t now = obs::monotonic_us();
            for (InferenceRequest& request : batch)
                if (request.trace) {
                    request.trace->mark(obs::SpanKind::Complete, now);
                    telemetry_->traces().finish(std::move(request.trace));
                }
        }
    }
    requant_boundary();
}

DeviceStats NpuDevice::stats() const {
    DeviceStats s;
    s.device_id = id_;
    s.clock_period_ps = clock_period_ps();
    // Deployment snapshot: a pointer copy under state_mutex_ — observers
    // never contend with a build, and a swap holds the mutex only for a
    // pointer assignment.
    const auto state = deployed_state();
    if (state) {
        s.generation = state->generation;
        s.compression = state->compression;
        s.method = state->method;
    }
    s.requant_in_flight = requant_in_flight_.load(std::memory_order_acquire);
    const common::MutexLock lock(stats_mutex_);
    s.requests = requests_;
    s.batches = batches_;
    s.busy_cycles = busy_cycles_;
    s.busy_ps = busy_ps_;
    s.flips = flips_;
    s.operating_hours = hours_unlocked();
    s.dvth_mv = ctx_->aging->dvth_mv(s.operating_hours / 8760.0);
    s.duty_fraction = config_.traffic_aging.enabled ? duty_fraction_ : 1.0;
    s.requant_count = requant_count_;
    s.requant_events = requant_events_;
    s.latency = latency_.summary();
    return s;
}

}  // namespace raq::serve
