// Dynamic batching helpers: stack single-sample requests into one NCHW
// batch tensor for the executor, and slice the batched logits back into
// per-request results.
#pragma once

#include <vector>

#include "serve/request_queue.hpp"

namespace raq::serve {

/// Concatenate the requests' (1, c, h, w) images into an (n, c, h, w)
/// batch. All requests must share the sample shape.
[[nodiscard]] tensor::Tensor stack_batch(const std::vector<InferenceRequest>& batch);

/// Build the result for request `request_id` from row `row` of the
/// batched logits (or of a single-sample run when row = 0): copies the
/// logits row and takes its argmax. Device/latency fields are left for
/// the caller.
[[nodiscard]] InferenceResult make_result(std::uint64_t request_id,
                                          const tensor::Tensor& logits, int row);

}  // namespace raq::serve
