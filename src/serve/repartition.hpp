// Online re-partitioning: detect when a sharded pipeline's static graph
// cut has drifted away from the true bottleneck — because a shard's aged
// clock slowed after a re-quantization, or because stages run on
// heterogeneous systolic arrays — and compute a fresh cut balanced on
// real per-stage pipeline time.
//
// The pieces are deliberately separable:
//   * stage_imbalance()   — the trigger condition, a pure function over
//                           one measurement window of per-stage busy
//                           time (straight off DeviceStats.busy_ps,
//                           which already folds every clock change in).
//   * aged_cost_tables()  — the heterogeneous cost model: device k's
//                           per-op systolic cycles × its current clock
//                           period, the input to
//                           ir::partition_graph_heterogeneous.
//   * RepartitionMonitor  — a small background thread that runs a
//                           caller-provided step on a poll cadence; the
//                           ShardGroup's step does the snapshot →
//                           trigger → cut → warm-compile → drain-and-swap
//                           sequence off the serving path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "ir/graph.hpp"
#include "npu/systolic.hpp"

namespace raq::serve {

struct RepartitionConfig {
    bool enabled = false;
    /// Measured max/min per-stage busy-time ratio over one window that
    /// triggers computing a new cut. 1.0 would re-cut on any noise;
    /// values well above the balance the DP can actually reach avoid
    /// thrashing.
    double imbalance_ratio = 1.5;
    /// Every stage must have served at least this many batches in the
    /// window before the window is judged (young windows are noise).
    std::uint64_t min_batches = 4;
    /// Monitor poll cadence (host milliseconds).
    int poll_ms = 2;
};

/// One stage's share of a measurement window (deltas of the cumulative
/// device counters between two snapshots).
struct StageWindow {
    std::uint64_t batches = 0;
    double busy_ps = 0.0;  ///< simulated busy time at the per-batch clock
};

/// Measured busy-time imbalance of one window: max/min per-stage busy
/// picoseconds. Returns 0 while the window is immature — any stage below
/// `min_batches` or without busy time — so callers can distinguish "not
/// enough signal yet" from "balanced".
[[nodiscard]] double stage_imbalance(const std::vector<StageWindow>& window,
                                     std::uint64_t min_batches);

/// Per-stage cost tables for ir::partition_graph_heterogeneous: device
/// k's per-op systolic cycle count (its own array config) scaled by its
/// clock period in picoseconds — per-op pipeline *time*, so the cut
/// balances what each aged device actually spends. `systolic` and
/// `clock_period_ps` must have one entry per stage.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> aged_cost_tables(
    const ir::Graph& graph, const std::vector<npu::SystolicConfig>& systolic,
    const std::vector<double>& clock_period_ps);

/// Counters one ShardGroup keeps about its monitor's activity.
struct RepartitionStats {
    std::uint64_t checks = 0;    ///< mature windows evaluated
    std::uint64_t triggers = 0;  ///< windows whose imbalance crossed the ratio
    std::uint64_t recuts = 0;    ///< drain-and-swaps actually performed
    /// Triggered attempts that could not improve the cut (the DP returned
    /// the current cut, or a shard was infeasible at its aging level).
    std::uint64_t futile = 0;
    double last_imbalance = 0.0; ///< most recent mature window's ratio
    std::uint64_t partition_generation = 1;  ///< monotonic, bumped per re-cut
};

/// Background poll thread: runs `step` every `poll_ms` until stopped.
/// The step owns all policy; the monitor owns only the cadence and the
/// join. stop() is idempotent and waits for an in-flight step (including
/// a drain-and-swap) to finish.
class RepartitionMonitor {
public:
    RepartitionMonitor(const RepartitionConfig& config, std::function<void()> step);
    ~RepartitionMonitor();

    RepartitionMonitor(const RepartitionMonitor&) = delete;
    RepartitionMonitor& operator=(const RepartitionMonitor&) = delete;

    void stop();

private:
    void loop();

    const RepartitionConfig config_;
    const std::function<void()> step_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

}  // namespace raq::serve
