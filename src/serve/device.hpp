// A simulated NPU device inside the serving fleet.
//
// Each device carries its own aging state: simulated operating hours
// (initial field age + busy time accumulated while serving, optionally
// accelerated), the resulting ΔVth from the shared AgingModel, and the
// versioned core::ModelState currently deployed on it. The device clock
// is re-derived on every deployment from the installed compression's
// aged critical path (plus any configured guardband): the paper's
// premise is that ΔVth degrades the MAC critical path, so latency,
// operating hours and throughput all track the aged clock rather than
// the fresh-forever critical path cached at construction.
//
// Deployment lifecycle: crossing `requant_threshold_mv` since the
// deployed state's build level triggers, at the next batch boundary,
// either an inline rebuild (no RequantService — the device stalls for
// the build, the pre-PR behavior) or a background build: the device
// enqueues one job with the RequantService, keeps serving generation g,
// and adopts the published generation g+1 at a later batch boundary via
// an atomic payload rebind. At most one build is in flight per device.
//
// Concurrency contract (compiler-checked — see src/common/README.md):
// a device is checked out exclusively by one worker at a time (the
// server's device pool enforces this), so execution state (the runner)
// needs no locks. Three small mutexes guard what observers and the
// background builder touch — `state_mutex_` the deployed ModelState
// *pointer*, `pending_mutex_` the published-but-not-adopted state,
// `stats_mutex_` the counters — and are never held together; the
// RAQ_ACQUIRED_BEFORE edges below make that a build error rather than a
// convention. The clock period is an atomic double: the serve thread
// re-derives it at install, while observers read it wait-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

#include "aging/aging_model.hpp"
#include "core/model_state.hpp"
#include "core/requant_job.hpp"
#include "inject/bitflip.hpp"
#include "npu/systolic.hpp"
#include "obs/telemetry.hpp"
#include "quant/quant_executor.hpp"
#include "serve/reliability_planner.hpp"
#include "serve/request_queue.hpp"
#include "serve/requant_service.hpp"
#include "serve/stats.hpp"
#include "sim/traffic.hpp"

namespace raq::serve {

/// Read-only deployment context shared by every device in the fleet (or,
/// for a shard device, the shard-private sub-graph and sliced
/// calibration plus the fleet-shared selector/aging model).
struct ServeContext {
    const ir::Graph* graph = nullptr;                 ///< trained, BN-folded model
    const quant::CalibrationData* calib = nullptr;    ///< calibration statistics
    const core::CompressionSelector* selector = nullptr;
    const aging::AgingModel* aging = nullptr;
    /// Optional labeled evaluation set: enables the full Algorithm 1
    /// method search on re-quantization and online accuracy sampling.
    const tensor::Tensor* eval_images = nullptr;
    const std::vector<int>* eval_labels = nullptr;
};

struct DeviceConfig {
    double initial_age_years = 0.0;
    /// Simulated aging hours accrued per simulated busy hour. 1.0 = real
    /// time; large values compress years of field aging into one run.
    double age_acceleration = 1.0;
    /// ΔVth growth since the last deployment that triggers re-quantization.
    double requant_threshold_mv = 5.0;
    /// Timing-constraint relaxation for compression selection; the device
    /// clock is the selected compression's aged delay either way. 0 is
    /// the paper's zero-guardband operating point.
    double guardband_fraction = 0.0;
    /// Full Algorithm 1 (all PTQ methods) vs. the fast path (compression
    /// selection + M5 ACIQ). Requires an eval set in the ServeContext —
    /// constructing without one throws, there is no silent fallback.
    bool full_algorithm1 = false;
    std::optional<double> accuracy_loss_threshold;  ///< Algorithm 1 line 9
    /// Per-product MSB flip probability while serving (0 = clean device).
    double flip_probability = 0.0;
    std::uint64_t base_seed = 0x5EEDC0DEULL;
    npu::SystolicConfig systolic{};
    /// Batch capacity the execution plan is compiled for (NpuServer sets
    /// this to its max_batch so no plan recompile happens on the serving
    /// path; larger batches still work by growing the plan).
    int plan_batch_capacity = 1;
    /// Intra-plan execution worker threads: > 0 gives the device a
    /// private exec::ThreadPool so its runner splits convolutions over
    /// output-channel ranges and fans independent dependency levels out
    /// in parallel (bit-identical outputs either way — see
    /// src/exec/engine.hpp). 0 (the default) executes serially.
    int exec_threads = 0;
    /// Latency-reservoir capacity (exact count/mean/max regardless).
    std::size_t latency_reservoir = 4096;
    /// Traffic-driven aging (off by default): measure the device's host-
    /// time busy fraction over a sliding window and scale aging accrual
    /// by the self-heating Arrhenius factor — an idle device stays cool
    /// and ages slower; a saturated one ages exactly like before. See
    /// src/sim/traffic.hpp.
    sim::TrafficAgingConfig traffic_aging;
};

/// One schedulable unit in the server's pool: a whole-model device or a
/// sharded pipeline group. serve() must eventually fulfill every
/// request's promise — synchronously for a device, asynchronously (at
/// the end of the pipeline) for a ShardGroup.
class ServeUnit {
public:
    virtual ~ServeUnit() = default;
    virtual void serve(std::vector<InferenceRequest>& batch) = 0;
};

class NpuDevice : public ServeUnit, public RequantTarget {
public:
    /// `ctx` must outlive the device (NpuServer guarantees this by
    /// owning its own ServeContext copy; ShardGroup owns the per-shard
    /// context). With a `requant_service`, threshold crossings build the
    /// next generation in the background; without one they rebuild
    /// inline at the batch boundary. With `telemetry`, the device
    /// registers its metric series at construction (labels: device id,
    /// plus the pipeline stage when `stage >= 0`) and caches the
    /// instrument pointers — the serving path never touches the registry
    /// again; null telemetry reduces every instrumented site to one
    /// pointer test. With a `planner`, threshold decisions at the batch
    /// boundary are made by the ReliabilityPlanner (early builds inside
    /// predicted low-traffic windows, bounded deferral otherwise)
    /// instead of the bare threshold test.
    NpuDevice(int id, const ServeContext& ctx, const DeviceConfig& config,
              RequantService* requant_service = nullptr,
              obs::Telemetry* telemetry = nullptr,
              ReliabilityPlanner* planner = nullptr, int stage = -1);

    /// Serve one batch: execute every request on the deployed state,
    /// fulfill its promise, account busy time, then age the device,
    /// adopt a background-built state if one was published, and trigger
    /// re-quantization if the threshold was crossed. Called with
    /// exclusive ownership of the device.
    void serve(std::vector<InferenceRequest>& batch) override;

    /// What one execute_batch() pass ran on and cost (in model time, at
    /// the clock in effect for the batch).
    struct BatchTrace {
        std::uint64_t cycles = 0;       ///< batch residency in model cycles
        double latency_us = 0.0;        ///< cycles × current clock period
        std::uint64_t generation = 0;   ///< ModelState generation that served it
    };

    /// Lower-level batch execution for pipeline composition (ShardGroup
    /// stages): run `batch` through the deployed state and account
    /// requests/busy time/aging. Does not touch promises, does not
    /// inject faults, and does not run the re-quantization boundary —
    /// call requant_boundary() after forwarding the output downstream.
    /// Called with exclusive ownership of the device.
    [[nodiscard]] tensor::Tensor execute_batch(tensor::TensorView batch,
                                               BatchTrace* trace = nullptr);

    /// Batch boundary maintenance: adopt a background-built state if one
    /// was published, then trigger re-quantization on a threshold
    /// crossing (inline without a RequantService, enqueued otherwise).
    void requant_boundary();

    /// Online re-cut support: remap this device onto the (changed)
    /// sub-graph/calibration its ServeContext now points at and adopt
    /// `state`, a deployment the re-cut path PRE-BUILT for the new shard
    /// off the serving path (its feasibility was proven before the
    /// pipeline was drained, so this call does not fail on an infeasible
    /// build). Waits out and discards any in-flight background build (it
    /// targeted the old sub-graph), rebuilds the RequantJob and the
    /// per-image cycle count, re-stamps `state` as generation + 1 — the
    /// version stream stays monotonic across re-cuts even if a
    /// background generation was adopted while the pipeline drained —
    /// and installs it with a new execution plan (`build_ms` is the
    /// pre-build's latency, recorded on the RequantEvent). Aging state,
    /// busy time and stats history carry over untouched: the silicon did
    /// not change, only the slice of the model it serves. Must be called
    /// while no thread is serving on this device (the ShardGroup calls
    /// it between draining and restarting its stage threads).
    void reshard(core::ModelState state, double build_ms)
        RAQ_EXCLUDES(pending_mutex_, state_mutex_, stats_mutex_);

    [[nodiscard]] int id() const { return id_; }
    /// Current clock period: the deployed compression's aged critical
    /// path (× any guardband the selection allowed). Wait-free read.
    [[nodiscard]] double clock_period_ps() const {
        return clock_period_ps_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::uint64_t per_image_cycles() const {
        return per_image_cycles_.load(std::memory_order_acquire);
    }
    [[nodiscard]] double operating_hours() const RAQ_EXCLUDES(stats_mutex_);
    [[nodiscard]] double dvth_mv() const RAQ_EXCLUDES(stats_mutex_);
    [[nodiscard]] int requant_count() const RAQ_EXCLUDES(stats_mutex_);

    /// Snapshot of the deployed state (stable even while serving: the
    /// returned ModelState is immutable and pinned by the shared_ptr).
    [[nodiscard]] std::shared_ptr<const core::ModelState> deployed_state() const
        RAQ_EXCLUDES(state_mutex_);
    [[nodiscard]] std::shared_ptr<const quant::QuantizedGraph> deployed_graph() const;
    /// Generation of the deployed state (monotonic, starts at 1).
    [[nodiscard]] std::uint64_t generation() const;

    [[nodiscard]] DeviceStats stats() const
        RAQ_EXCLUDES(state_mutex_, stats_mutex_);

    /// RequantService worker entry: build `generation` for aging level
    /// `dvth_mv` off the serving path and publish it into the pending
    /// slot. Touches only the immutable context and the pending slot, so
    /// it runs concurrently with serve().
    void execute_requant(double dvth_mv, std::uint64_t generation) override
        RAQ_EXCLUDES(pending_mutex_);

    /// Adopt a published pending state, if any: swap the deployed
    /// pointer, rebind the runner's payload, record the event. Returns
    /// true when a new generation was installed. Called by the serve
    /// thread at batch boundaries and by NpuServer::shutdown() after the
    /// serve workers have joined (never concurrently with serve()).
    bool adopt_pending() RAQ_EXCLUDES(pending_mutex_, state_mutex_, stats_mutex_);

    /// Shutdown drain (serve workers joined, RequantService drained):
    /// adopt anything published, then catch up on a crossing that was
    /// absorbed while a build was in flight — aging is frozen now, so
    /// one final build lands the device exactly where an inline run
    /// would have.
    void finish_requants();

private:
    void install(const std::shared_ptr<const core::ModelState>& state, bool record_event,
                 bool background, double build_ms, bool recut = false)
        RAQ_EXCLUDES(state_mutex_, stats_mutex_);
    void requant_inline(double dvth)
        RAQ_EXCLUDES(state_mutex_, stats_mutex_);
    /// Post-execution accounting under the stats mutex: requests, busy
    /// cycles AND busy picoseconds at the clock the batch ran at, flips,
    /// per-request latency samples. With traffic aging enabled the
    /// caller also passes the batch's host execution span
    /// [host_t0_us, host_t1_us] (obs::monotonic_us) so the duty monitor
    /// sees real wall-time utilization; both 0 otherwise.
    void account_batch(std::size_t requests, std::uint64_t batch_cycles,
                       double clock_period_ps, std::uint64_t flips,
                       std::int64_t host_t0_us = 0, std::int64_t host_t1_us = 0)
        RAQ_EXCLUDES(stats_mutex_);
    [[nodiscard]] double hours_unlocked() const RAQ_REQUIRES(stats_mutex_);

    const int id_;
    const int stage_;  ///< pipeline stage index (-1 on a whole-model device)
    const ServeContext* ctx_;
    const DeviceConfig config_;
    obs::Telemetry* telemetry_;  ///< null = telemetry disabled

    /// Instrument handles registered at construction (all null without
    /// telemetry). Stable for the registry's lifetime — the hot path
    /// does relaxed atomic ops on them, never a registry lookup.
    struct MetricHandles {
        obs::Counter* requests = nullptr;
        obs::Counter* batches = nullptr;
        obs::Gauge* busy_ps = nullptr;
        obs::Gauge* clock_ps = nullptr;
        obs::Gauge* dvth_mv = nullptr;
        obs::Gauge* generation = nullptr;
        obs::Histogram* batch_size = nullptr;
        obs::Counter* requants = nullptr;
        obs::Counter* recuts = nullptr;
        obs::Histogram* build_ms = nullptr;
        obs::Histogram* swap_us = nullptr;
        obs::Gauge* duty_fraction = nullptr;  ///< traffic-aging mode only
    };
    MetricHandles metrics_;
    /// Algorithm 1 as a reusable build job. Rebuilt (only) by reshard()
    /// when an online re-cut changes the context's sub-graph; always
    /// engaged otherwise.
    std::optional<core::RequantJob> job_;
    RequantService* requant_service_;
    /// Predictive scheduling of requant builds (null = reactive
    /// threshold behavior). Owned by NpuServer; outlives the device.
    ReliabilityPlanner* planner_;

    /// Clock period of the deployed state — re-derived at every install
    /// from the compression's aged delay. Written only by install(),
    /// read by the serve thread and observers.
    std::atomic<double> clock_period_ps_{0.0};
    /// Cycles one inference spends on this device's shard; atomic so
    /// observers may read it while reshard() re-derives it for a new cut
    /// (the serving threads themselves are quiesced around a reshard).
    std::atomic<std::uint64_t> per_image_cycles_{0};

    /// Guards only the deployed-state pointer: held for pointer copies
    /// and the swap assignment, never across a build. The three device
    /// mutexes are never held together; the ACQUIRED_BEFORE edges fix a
    /// total order (state → pending → stats) so any future nesting that
    /// could deadlock against it fails the clang-analysis build.
    mutable common::Mutex state_mutex_ RAQ_ACQUIRED_BEFORE(pending_mutex_, stats_mutex_);
    std::shared_ptr<const core::ModelState> state_ RAQ_GUARDED_BY(state_mutex_);

    /// Long-lived planned execution state: the plan (shared via the
    /// exec::PlanCache), arena and conv scratch survive across batches
    /// AND across re-quantizations (adoption rebinds the payload; the
    /// topology never changes). Only the serve thread touches it.
    /// The pool (created with the runner when config.exec_threads > 0)
    /// is device-private, so intra-plan parallelism never crosses the
    /// device's exclusive-ownership boundary.
    std::unique_ptr<exec::ThreadPool> exec_pool_;
    std::optional<quant::QuantRunner> runner_;

    /// Background double-buffer: the built-but-not-yet-adopted state.
    common::Mutex pending_mutex_ RAQ_ACQUIRED_BEFORE(stats_mutex_);
    struct PendingOutcome {
        std::shared_ptr<const core::ModelState> state;  ///< null: build infeasible
        double build_ms = 0.0;
    };
    std::optional<PendingOutcome> pending_ RAQ_GUARDED_BY(pending_mutex_);
    /// Gates enqueue: at most one background build in flight per device.
    std::atomic<bool> requant_in_flight_{false};

    mutable common::Mutex stats_mutex_;
    std::uint64_t requests_ RAQ_GUARDED_BY(stats_mutex_) = 0;
    std::uint64_t batches_ RAQ_GUARDED_BY(stats_mutex_) = 0;
    std::uint64_t busy_cycles_ RAQ_GUARDED_BY(stats_mutex_) = 0;
    /// Simulated busy time at the per-batch clock.
    double busy_ps_ RAQ_GUARDED_BY(stats_mutex_) = 0.0;
    std::uint64_t flips_ RAQ_GUARDED_BY(stats_mutex_) = 0;
    int requant_count_ RAQ_GUARDED_BY(stats_mutex_) = 0;
    std::vector<RequantEvent> requant_events_ RAQ_GUARDED_BY(stats_mutex_);
    LatencyRecorder latency_ RAQ_GUARDED_BY(stats_mutex_);
    /// Traffic-driven aging state (all under stats_mutex_): the sliding
    /// utilization window, the last measured busy fraction, and the
    /// duty-scaled stress-hour integral that replaces raw busy hours in
    /// hours_unlocked() when the feature is on. Accrued incrementally
    /// per batch (monotone — a later idle spell never un-ages the past).
    sim::DutyCycleMonitor duty_monitor_ RAQ_GUARDED_BY(stats_mutex_);
    double duty_fraction_ RAQ_GUARDED_BY(stats_mutex_) = 1.0;
    double effective_stress_hours_ RAQ_GUARDED_BY(stats_mutex_) = 0.0;
};

}  // namespace raq::serve
