// A simulated NPU device inside the serving fleet.
//
// Each device carries its own aging state: simulated operating hours
// (initial field age + busy time accumulated while serving, optionally
// accelerated), the resulting ΔVth from the shared AgingModel, and the
// QuantizedGraph currently deployed on it. The device clock is the fresh
// MAC critical path from STA — the paper's zero-guardband operating
// point — and staying correct at that clock as ΔVth grows is exactly what
// online re-quantization (Algorithm 1) provides: when the device's aging
// has advanced by `requant_threshold_mv` since the last deployment, the
// next batch boundary triggers re-quantization and atomically swaps the
// deployed graph.
//
// Concurrency contract: a device is checked out exclusively by one worker
// at a time (the server's device pool enforces this), so execution state
// needs no locks; the deployed-graph pointer and the statistics are
// additionally guarded so observers can snapshot a device mid-run.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "aging/aging_model.hpp"
#include "core/aging_aware_quantizer.hpp"
#include "inject/bitflip.hpp"
#include "npu/systolic.hpp"
#include "quant/quant_executor.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"

namespace raq::serve {

/// Read-only deployment context shared by every device in the fleet.
struct ServeContext {
    const ir::Graph* graph = nullptr;                 ///< trained, BN-folded model
    const quant::CalibrationData* calib = nullptr;    ///< calibration statistics
    const core::CompressionSelector* selector = nullptr;
    const aging::AgingModel* aging = nullptr;
    /// Optional labeled evaluation set: enables the full Algorithm 1
    /// method search on re-quantization and online accuracy sampling.
    const tensor::Tensor* eval_images = nullptr;
    const std::vector<int>* eval_labels = nullptr;
};

struct DeviceConfig {
    double initial_age_years = 0.0;
    /// Simulated aging hours accrued per simulated busy hour. 1.0 = real
    /// time; large values compress years of field aging into one run.
    double age_acceleration = 1.0;
    /// ΔVth growth since the last deployment that triggers re-quantization.
    double requant_threshold_mv = 5.0;
    /// Full Algorithm 1 (all PTQ methods, needs eval set) vs. the fast
    /// path (compression selection + M5 ACIQ), suitable per batch boundary.
    bool full_algorithm1 = false;
    std::optional<double> accuracy_loss_threshold;  ///< Algorithm 1 line 9
    /// Per-product MSB flip probability while serving (0 = clean device).
    double flip_probability = 0.0;
    std::uint64_t base_seed = 0x5EEDC0DEULL;
    npu::SystolicConfig systolic{};
    /// Batch capacity the execution plan is compiled for (NpuServer sets
    /// this to its max_batch so no plan recompile happens on the serving
    /// path; larger batches still work by growing the plan).
    int plan_batch_capacity = 1;
};

class NpuDevice {
public:
    /// `ctx` must outlive the device (NpuServer guarantees this by
    /// owning its own ServeContext copy).
    NpuDevice(int id, const ServeContext& ctx, const DeviceConfig& config);

    /// Serve one batch: execute every request on the deployed graph,
    /// fulfill its promise, account busy time, then age the device and
    /// re-quantize if the threshold was crossed. Called with exclusive
    /// ownership of the device.
    void serve(std::vector<InferenceRequest>& batch);

    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] double clock_period_ps() const { return clock_period_ps_; }
    [[nodiscard]] std::uint64_t per_image_cycles() const { return per_image_cycles_; }
    [[nodiscard]] double operating_hours() const;
    [[nodiscard]] double dvth_mv() const;
    [[nodiscard]] int requant_count() const;

    /// Snapshot of the deployed graph (stable even while serving).
    [[nodiscard]] std::shared_ptr<const quant::QuantizedGraph> deployed_graph() const;

    [[nodiscard]] DeviceStats stats() const;

private:
    void deploy(double dvth, bool record_event);
    [[nodiscard]] double hours_unlocked() const;

    const int id_;
    const ServeContext* ctx_;
    const DeviceConfig config_;

    double clock_period_ps_ = 0.0;      ///< fresh critical path (constant)
    std::uint64_t per_image_cycles_ = 0;

    mutable std::mutex graph_mutex_;
    std::shared_ptr<const quant::QuantizedGraph> qgraph_;
    /// Long-lived planned execution state: the plan, arena and conv
    /// scratch survive across batches AND across re-quantizations (deploy
    /// rebinds the payload; the topology never changes). Only the serve
    /// thread touches it — the device is checked out exclusively.
    std::optional<quant::QuantRunner> runner_;
    common::Compression compression_;
    quant::Method method_ = quant::Method::M5_AciqNoBias;
    double dvth_at_deploy_ = 0.0;

    mutable std::mutex stats_mutex_;
    std::uint64_t requests_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t busy_cycles_ = 0;
    std::uint64_t flips_ = 0;
    int requant_count_ = 0;
    std::vector<RequantEvent> requant_events_;
    LatencyRecorder latency_;
};

}  // namespace raq::serve
