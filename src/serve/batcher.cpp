#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace raq::serve {

tensor::Tensor stack_batch(const std::vector<InferenceRequest>& batch) {
    if (batch.empty()) throw std::invalid_argument("stack_batch: empty batch");
    const tensor::Shape& s0 = batch.front().image.shape();
    tensor::Tensor stacked(
        {static_cast<int>(batch.size()), s0.c, s0.h, s0.w});
    const std::size_t pixels = static_cast<std::size_t>(s0.c) *
                               static_cast<std::size_t>(s0.h) *
                               static_cast<std::size_t>(s0.w);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const tensor::Tensor& img = batch[i].image;
        const tensor::Shape& s = img.shape();
        if (s.n != 1 || s.c != s0.c || s.h != s0.h || s.w != s0.w)
            throw std::invalid_argument("stack_batch: mismatched sample shapes");
        std::copy(img.data(), img.data() + pixels, stacked.data() + i * pixels);
    }
    return stacked;
}

InferenceResult make_result(std::uint64_t request_id, const tensor::Tensor& logits,
                            int row) {
    const tensor::Shape& s = logits.shape();
    if (row < 0 || row >= s.n) throw std::out_of_range("make_result: bad logits row");
    InferenceResult result;
    result.request_id = request_id;
    const std::size_t classes = static_cast<std::size_t>(s.c) *
                                static_cast<std::size_t>(s.h) *
                                static_cast<std::size_t>(s.w);
    const float* first = logits.data() + static_cast<std::size_t>(row) * classes;
    result.logits.assign(first, first + classes);
    result.predicted_class = static_cast<int>(
        std::max_element(result.logits.begin(), result.logits.end()) -
        result.logits.begin());
    return result;
}

}  // namespace raq::serve
