// serve::Scheduler — the class-aware admission scheduler that replaced
// the single-FIFO `RequestQueue = BoundedChannel<InferenceRequest>`.
//
// Two bounded lanes (Interactive / Batch) with independent capacities:
// a full batch lane backpressures batch producers without ever blocking
// interactive admission, and vice versa. The close-and-drain contract is
// BoundedChannel's, verbatim: close() stops admission but everything
// accepted is drained; a producer blocked on a full lane when close()
// fires gets `push == false` with its item intact; pop_batch() returns
// an empty vector only once closed *and* both lanes are empty — the
// worker-exit signal.
//
// Batch formation is priority-aware: interactive requests preempt batch
// ones (the batch fills from the interactive lane first, batch requests
// only ride along in leftover slots). Starvation is bounded by an aging
// credit: once the batch-lane head has waited `starvation_us`, or the
// batch lane has been skipped `max_interactive_streak` consecutive
// formations while non-empty, the next batch fills from the batch lane
// first. Aging needs `InferenceRequest::submit_us`, which is why submit
// paths stamp it unconditionally.
//
// Lock discipline (common/README.md): one leaf mutex guards both lanes;
// notifies happen after an explicit unlock so no waiter wakes into a
// held mutex. Compiler-checked via the TSA annotations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "serve/bounded_channel.hpp"
#include "serve/request_queue.hpp"

namespace raq::serve {

struct SchedulerConfig {
    /// Per-lane capacities. 0 means "inherit the owner's default"
    /// (NpuServer resolves 0 to ServeConfig::queue_capacity before
    /// constructing the scheduler); the ctor clamps to >= 1.
    std::size_t interactive_capacity = 0;
    std::size_t batch_capacity = 0;
    /// Per-class latency targets (advisory: exported with stats and used
    /// by benches/SLO gates; the scheduler itself enforces ordering, not
    /// deadlines).
    std::int64_t interactive_target_us = 10'000;
    std::int64_t batch_target_us = 500'000;
    /// Anti-starvation aging credit: a batch-lane head older than this
    /// wins the next batch formation outright.
    std::int64_t starvation_us = 20'000;
    /// ... and independently of wall time, the batch lane is never
    /// skipped more than this many consecutive formations while
    /// non-empty.
    int max_interactive_streak = 8;
};

/// Point-in-time scheduler counters (taken under the lane mutex).
struct SchedulerStats {
    std::size_t depth[kNumRequestClasses] = {};     ///< queued per class
    std::uint64_t admitted[kNumRequestClasses] = {};///< accepted pushes per class
    std::uint64_t starvation_grants = 0;  ///< formations won by the batch lane
    std::uint64_t formations = 0;         ///< non-empty pop_batch calls
};

class Scheduler {
public:
    explicit Scheduler(const SchedulerConfig& config);

    /// Blocks while the request's lane is full. Returns false — leaving
    /// `item` untouched in the caller's hands — once closed.
    bool push(InferenceRequest&& item) RAQ_EXCLUDES(mutex_);

    /// Non-blocking push for the net event loops: Full/Closed leave the
    /// item owned by the caller (Full => explicit BUSY shed upstream).
    ChannelPush try_push(InferenceRequest&& item) RAQ_EXCLUDES(mutex_);

    /// Forms one batch of 1..max_batch requests under a single lock
    /// acquisition, interactive-first unless the batch lane's aging
    /// credit is due. Blocks until work arrives; an empty result means
    /// closed *and* both lanes drained.
    std::vector<InferenceRequest> pop_batch(std::size_t max_batch)
        RAQ_EXCLUDES(mutex_);

    /// Stop admission; wakes all blocked producers and consumers.
    void close() RAQ_EXCLUDES(mutex_);

    [[nodiscard]] bool closed() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t size() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t size(RequestClass klass) const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t capacity(RequestClass klass) const noexcept {
        return capacity_[static_cast<std::size_t>(klass)];
    }
    [[nodiscard]] SchedulerStats stats() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }

private:
    [[nodiscard]] static std::size_t lane_of(RequestClass klass) noexcept {
        return static_cast<std::size_t>(klass);
    }
    /// Moves up to `want` requests from `lane` into `batch`; returns how
    /// many were taken.
    std::size_t take_from(std::size_t lane, std::vector<InferenceRequest>& batch,
                          std::size_t want) RAQ_REQUIRES(mutex_);

    const SchedulerConfig config_;
    std::size_t capacity_[kNumRequestClasses];

    mutable common::Mutex mutex_;
    common::CondVar not_empty_;
    common::CondVar not_full_[kNumRequestClasses];
    std::deque<InferenceRequest> lanes_[kNumRequestClasses] RAQ_GUARDED_BY(mutex_);
    bool closed_ RAQ_GUARDED_BY(mutex_) = false;
    /// Consecutive formations that skipped a non-empty batch lane.
    int interactive_streak_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t admitted_[kNumRequestClasses] RAQ_GUARDED_BY(mutex_) = {};
    std::uint64_t starvation_grants_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t formations_ RAQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace raq::serve
