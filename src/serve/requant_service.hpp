// RequantService: the background half of online re-quantization.
//
// When a device crosses its ΔVth threshold at a batch boundary it no
// longer runs Algorithm 1 inline (stalling every queued batch for the
// full PTQ method search); it enqueues a job here and keeps serving its
// current ModelState. A service worker builds the next generation off
// the serving path (NpuDevice::execute_requant → core::RequantJob) and
// publishes it into the device's pending slot; the device adopts it at
// its next batch boundary with an atomic payload rebind. The old
// generation serves every batch until the swap — double buffering at the
// fleet level.
//
// Coalescing: at most one build is in flight per device (the device's
// in-flight flag gates enqueue), so a fast-aging device cannot flood the
// pool; a crossing observed while a build is in flight is absorbed into
// the next trigger.
//
// shutdown() drains the queue — every accepted job is built and
// published, never dropped — then joins the workers. NpuServer shuts the
// service down after its serve workers have joined and then adopts any
// still-pending states, so the fleet's final generations match what an
// inline run would have deployed.
#pragma once

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace raq::serve {

/// Anything the RequantService can build a generation for: a whole-model
/// NpuDevice or one shard of a ShardGroup (each shard versions its own
/// core::ModelState, so PR 3's background pipeline works per shard).
class RequantTarget {
public:
    virtual ~RequantTarget() = default;
    /// Build `generation` for aging level `dvth_mv` off the serving path
    /// and publish it into the target's pending slot.
    virtual void execute_requant(double dvth_mv, std::uint64_t generation) = 0;
};

class RequantService {
public:
    explicit RequantService(int num_workers);
    ~RequantService();

    RequantService(const RequantService&) = delete;
    RequantService& operator=(const RequantService&) = delete;

    /// Enqueue a build of `generation` for `target` at aging level
    /// `dvth_mv`. The caller (the target's serve thread) must hold the
    /// target's in-flight gate, which is what guarantees at most one job
    /// per target. Ignored after shutdown.
    void enqueue(RequantTarget& target, double dvth_mv, std::uint64_t generation)
        RAQ_EXCLUDES(mutex_);

    /// Drain every accepted job, then join the workers. Idempotent.
    void shutdown() RAQ_EXCLUDES(mutex_);

    [[nodiscard]] std::uint64_t jobs_completed() const RAQ_EXCLUDES(mutex_);

private:
    void worker_loop() RAQ_EXCLUDES(mutex_);

    struct Job {
        RequantTarget* target = nullptr;
        double dvth_mv = 0.0;
        std::uint64_t generation = 0;
    };

    mutable common::Mutex mutex_;
    common::CondVar cv_;
    std::deque<Job> jobs_ RAQ_GUARDED_BY(mutex_);
    bool stopped_ RAQ_GUARDED_BY(mutex_) = false;
    std::uint64_t jobs_completed_ RAQ_GUARDED_BY(mutex_) = 0;
    /// Constructor/shutdown-thread only (join-synchronized, unguarded).
    std::vector<std::thread> workers_;
};

}  // namespace raq::serve
