#include "serve/requant_service.hpp"

#include <stdexcept>

namespace raq::serve {

RequantService::RequantService(int num_workers) {
    if (num_workers < 1)
        throw std::invalid_argument("RequantService: num_workers must be >= 1");
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

RequantService::~RequantService() { shutdown(); }

void RequantService::enqueue(RequantTarget& target, double dvth_mv,
                             std::uint64_t generation) {
    {
        const common::MutexLock lock(mutex_);
        if (stopped_) return;
        jobs_.push_back(Job{&target, dvth_mv, generation});
    }
    cv_.notify_one();
}

void RequantService::worker_loop() {
    for (;;) {
        Job job;
        {
            const common::MutexLock lock(mutex_);
            while (!stopped_ && jobs_.empty()) cv_.wait(mutex_);
            if (jobs_.empty()) return;  // stopped and drained
            job = jobs_.front();
            jobs_.pop_front();
        }
        // The build runs entirely off the serving path: it reads the
        // immutable ServeContext and writes only the target's pending
        // slot, so the target keeps serving its current generation.
        job.target->execute_requant(job.dvth_mv, job.generation);
        {
            const common::MutexLock lock(mutex_);
            ++jobs_completed_;
        }
    }
}

void RequantService::shutdown() {
    {
        const common::MutexLock lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
}

std::uint64_t RequantService::jobs_completed() const {
    const common::MutexLock lock(mutex_);
    return jobs_completed_;
}

}  // namespace raq::serve
