#include "serve/reliability_planner.hpp"

#include <cstdio>

#include "aging/aging_model.hpp"
#include "obs/clock.hpp"
#include "obs/telemetry.hpp"

namespace raq::serve {

ReliabilityPlanner::ReliabilityPlanner(const ReliabilityPlannerConfig& config,
                                       obs::Telemetry* telemetry)
    : config_(config), telemetry_(telemetry), predictor_(config.predictor) {}

bool ReliabilityPlanner::note_window(std::int64_t now_us,
                                     std::vector<PendingEvent>& out) {
    const bool low = predictor_.low_traffic(now_us);
    const bool loaded = predictor_.rate_peak(now_us) > 1e-9;
    if (low && !was_low_ && loaded &&
        (last_window_event_us_ < 0 ||
         now_us - last_window_event_us_ >= config_.event_min_gap_us)) {
        ++stats_.windows_predicted;
        last_window_event_us_ = now_us;
        PendingEvent ev;
        ev.kind = static_cast<std::uint8_t>(obs::EventKind::WindowPredicted);
        ev.value = predictor_.rate_now(now_us);
        char buf[96];
        std::snprintf(buf, sizeof(buf), "rate %.1f/s <= %.0f%% of peak %.1f/s",
                      predictor_.rate_now(now_us),
                      config_.predictor.low_traffic_fraction * 100.0,
                      predictor_.rate_peak(now_us));
        ev.detail = buf;
        out.push_back(std::move(ev));
    }
    was_low_ = low;
    return low;
}

void ReliabilityPlanner::emit(std::int64_t now_us,
                              std::vector<PendingEvent>&& events) {
    if (telemetry_ == nullptr || events.empty()) return;
    for (PendingEvent& ev : events) {
        obs::ReliabilityEvent out;
        out.t_us = now_us;
        out.kind = static_cast<obs::EventKind>(ev.kind);
        out.device_id = ev.device_id;
        out.group_id = ev.group_id;
        out.value = ev.value;
        out.detail = std::move(ev.detail);
        telemetry_->timeline().record(std::move(out));
    }
}

void ReliabilityPlanner::observe_arrival(std::int64_t now_us) {
    std::vector<PendingEvent> events;
    {
        const common::MutexLock lock(mutex_);
        predictor_.observe(now_us);
        note_window(now_us, events);
    }
    emit(now_us, std::move(events));
}

PlannerDecision ReliabilityPlanner::plan_requant(int device_id,
                                                 double dvth_now_mv,
                                                 double dvth_deployed_mv,
                                                 double threshold_mv,
                                                 const aging::AgingModel* model) {
    const std::int64_t now_us = obs::monotonic_us();
    const double gap = dvth_now_mv - dvth_deployed_mv;
    const double progress = threshold_mv > 0.0 ? gap / threshold_mv
                                               : (gap > 0.0 ? 2.0 : 0.0);
    std::vector<PendingEvent> events;
    PlannerDecision decision = PlannerDecision::Idle;
    {
        const common::MutexLock lock(mutex_);
        const bool low = note_window(now_us, events);
        if (progress >= config_.defer_headroom) {
            decision = PlannerDecision::Schedule;
        } else if (progress >= 1.0) {
            decision = low ? PlannerDecision::Schedule : PlannerDecision::Defer;
        } else if (progress >= config_.lead_fraction && low) {
            decision = PlannerDecision::Schedule;
        }
        if (decision == PlannerDecision::Schedule) {
            ++stats_.builds_scheduled;
            PendingEvent ev;
            ev.kind = static_cast<std::uint8_t>(obs::EventKind::BuildScheduled);
            ev.device_id = device_id;
            ev.value = progress;
            char buf[128];
            if (model != nullptr) {
                const double lead_years =
                    model->years_for_dvth(dvth_deployed_mv + threshold_mv) -
                    model->years_for_dvth(dvth_now_mv);
                std::snprintf(buf, sizeof(buf),
                              "requant %.0f%% of threshold, %+.2fy to crossing%s",
                              progress * 100.0, lead_years,
                              low ? " (low window)" : " (urgent)");
            } else {
                std::snprintf(buf, sizeof(buf), "requant %.0f%% of threshold%s",
                              progress * 100.0, low ? " (low window)" : " (urgent)");
            }
            ev.detail = buf;
            events.push_back(std::move(ev));
        } else if (decision == PlannerDecision::Defer) {
            ++stats_.builds_deferred;
            if (last_defer_event_us_ < 0 ||
                now_us - last_defer_event_us_ >= config_.event_min_gap_us) {
                last_defer_event_us_ = now_us;
                PendingEvent ev;
                ev.kind = static_cast<std::uint8_t>(obs::EventKind::BuildDeferred);
                ev.device_id = device_id;
                ev.value = progress;
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "requant due (%.0f%% of threshold) parked for a "
                              "low-traffic window",
                              progress * 100.0);
                ev.detail = buf;
                events.push_back(std::move(ev));
            }
        }
    }
    emit(now_us, std::move(events));
    return decision;
}

bool ReliabilityPlanner::allow_recut(int group_id, double imbalance,
                                     double threshold_ratio) {
    const std::int64_t now_us = obs::monotonic_us();
    std::vector<PendingEvent> events;
    bool allowed = false;
    {
        const common::MutexLock lock(mutex_);
        const bool low = note_window(now_us, events);
        const bool urgent =
            imbalance >= config_.recut_urgent_factor * threshold_ratio;
        allowed = low || urgent;
        char buf[128];
        if (allowed) {
            ++stats_.recuts_allowed;
            PendingEvent ev;
            ev.kind = static_cast<std::uint8_t>(obs::EventKind::BuildScheduled);
            ev.group_id = group_id;
            ev.value = imbalance;
            std::snprintf(buf, sizeof(buf), "recut imbalance %.2fx%s", imbalance,
                          low ? " (low window)" : " (urgent)");
            ev.detail = buf;
            events.push_back(std::move(ev));
        } else {
            ++stats_.recuts_deferred;
            if (last_defer_event_us_ < 0 ||
                now_us - last_defer_event_us_ >= config_.event_min_gap_us) {
                last_defer_event_us_ = now_us;
                PendingEvent ev;
                ev.kind = static_cast<std::uint8_t>(obs::EventKind::BuildDeferred);
                ev.group_id = group_id;
                ev.value = imbalance;
                std::snprintf(buf, sizeof(buf),
                              "recut due (%.2fx imbalance) parked for a "
                              "low-traffic window",
                              imbalance);
                ev.detail = buf;
                events.push_back(std::move(ev));
            }
        }
    }
    emit(now_us, std::move(events));
    return allowed;
}

PlannerStats ReliabilityPlanner::stats() {
    const std::int64_t now_us = obs::monotonic_us();
    const common::MutexLock lock(mutex_);
    PlannerStats out = stats_;
    out.rate_now = predictor_.rate_now(now_us);
    out.rate_peak = predictor_.rate_peak(now_us);
    return out;
}

}  // namespace raq::serve
