#include "serve/repartition.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace raq::serve {

double stage_imbalance(const std::vector<StageWindow>& window, std::uint64_t min_batches) {
    if (window.empty()) return 0.0;
    double busiest = 0.0;
    double idlest = std::numeric_limits<double>::max();
    for (const StageWindow& stage : window) {
        if (stage.batches < std::max<std::uint64_t>(1, min_batches)) return 0.0;
        if (stage.busy_ps <= 0.0) return 0.0;
        busiest = std::max(busiest, stage.busy_ps);
        idlest = std::min(idlest, stage.busy_ps);
    }
    return busiest / idlest;
}

std::vector<std::vector<std::uint64_t>> aged_cost_tables(
    const ir::Graph& graph, const std::vector<npu::SystolicConfig>& systolic,
    const std::vector<double>& clock_period_ps) {
    if (systolic.empty() || systolic.size() != clock_period_ps.size())
        throw std::invalid_argument(
            "aged_cost_tables: need one systolic config and one clock period per stage");
    std::vector<std::vector<std::uint64_t>> tables;
    tables.reserve(systolic.size());
    for (std::size_t k = 0; k < systolic.size(); ++k) {
        const double clock = clock_period_ps[k];
        if (!(clock > 0.0))
            throw std::invalid_argument("aged_cost_tables: clock periods must be positive");
        std::vector<std::uint64_t> cycles = npu::op_cycle_costs(graph, systolic[k]);
        for (std::uint64_t& cost : cycles)
            cost = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(cost) * clock));
        tables.push_back(std::move(cycles));
    }
    return tables;
}

RepartitionMonitor::RepartitionMonitor(const RepartitionConfig& config,
                                       std::function<void()> step)
    : config_(config), step_(std::move(step)) {
    if (!step_) throw std::invalid_argument("RepartitionMonitor: step is required");
    thread_ = std::thread([this] { loop(); });
}

RepartitionMonitor::~RepartitionMonitor() { stop(); }

void RepartitionMonitor::stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
}

void RepartitionMonitor::loop() {
    const auto pause = std::chrono::milliseconds(std::max(1, config_.poll_ms));
    while (!stop_.load(std::memory_order_acquire)) {
        step_();
        // Sleep in one-poll slices so stop() never waits longer than a
        // step plus one cadence.
        std::this_thread::sleep_for(pause);
    }
}

}  // namespace raq::serve
