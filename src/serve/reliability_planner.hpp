// serve::ReliabilityPlanner — predictive placement of the fleet's
// *expensive* reliability events.
//
// PRs 3/5 fire background requant builds and drain-and-swap re-cuts
// reactively: the ΔVth crossing (or the stage-imbalance bottleneck) is
// observed, and the work runs immediately — whatever traffic it collides
// with. This planner closes the hook those PRs left in
// RequantService / RepartitionMonitor: it folds a traffic predictor
// (EWMA/diurnal arrival-rate estimate over the same windows the PR 8
// DutyCycleMonitor uses) together with the aging model's ΔVth
// trajectory, and decides per event whether to run it now, run it
// *early* (before the projected crossing, because the fleet happens to
// be in a predicted low-traffic window), or defer it briefly until the
// next lull.
//
// Cost-of-swap vs projected-gain, concretely: the projected gain of a
// requant is monotone in `progress = (ΔVth_now − ΔVth_deployed) /
// threshold` (how stale the deployed generation is), and the cost of
// running it is monotone in the current traffic level (a build steals a
// requant worker; a re-cut drains the pipeline). The policy is the
// threshold form of that tradeoff:
//   progress >= defer_headroom            → Schedule (gain dominates any cost)
//   progress >= 1 (crossed)               → Schedule if low-traffic, else Defer
//   progress >= lead_fraction & low       → Schedule early (free window)
//   otherwise                             → Idle (not worth a swap yet)
// Deferral is bounded: once progress reaches defer_headroom the build
// runs regardless of traffic, and NpuServer's shutdown backstop
// (finish_requants) bypasses the planner entirely — deferred work is
// delayed, never dropped.
//
// Every decision is visible on the reliability timeline:
// window-predicted (traffic entered a predicted low window),
// build-scheduled, build-deferred.
//
// Lock discipline: one leaf mutex guards the predictor and counters;
// timeline events are recorded after unlock (common/README.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "sim/traffic.hpp"

namespace raq::aging {
class AgingModel;
}
namespace raq::obs {
class Telemetry;
}

namespace raq::serve {

struct ReliabilityPlannerConfig {
    /// Master switch: false = NpuServer builds no planner and the
    /// requant/re-cut paths behave exactly as before (reactive).
    bool enabled = false;
    sim::TrafficPredictorConfig predictor;
    /// Schedule a requant build *early* once the deployed generation is
    /// this fraction of the way to its ΔVth threshold and traffic is low.
    double lead_fraction = 0.75;
    /// Past this multiple of the threshold, schedule regardless of
    /// traffic — the deferral bound.
    double defer_headroom = 1.6;
    /// A re-cut whose imbalance reaches this multiple of the trigger
    /// ratio runs even at peak traffic (the bottleneck already costs
    /// more than the swap).
    double recut_urgent_factor = 1.5;
    /// Rate limit for repeated build-deferred / window-predicted events
    /// per source, so a busy fleet does not spam the timeline.
    std::int64_t event_min_gap_us = 250'000;
};

/// Outcome of one planning consultation.
enum class PlannerDecision {
    Idle,      ///< nothing due — keep serving
    Schedule,  ///< run the build / re-cut now
    Defer,     ///< due, but parked until a predicted low-traffic window
};

struct PlannerStats {
    std::uint64_t builds_scheduled = 0;
    std::uint64_t builds_deferred = 0;
    std::uint64_t recuts_allowed = 0;
    std::uint64_t recuts_deferred = 0;
    std::uint64_t windows_predicted = 0;
    double rate_now = 0.0;
    double rate_peak = 0.0;
};

class ReliabilityPlanner {
public:
    explicit ReliabilityPlanner(const ReliabilityPlannerConfig& config,
                                obs::Telemetry* telemetry = nullptr);

    /// One request arrival (every NpuServer submit path) — feeds the
    /// traffic predictor and edge-detects low-window entry.
    void observe_arrival(std::int64_t now_us) RAQ_EXCLUDES(mutex_);

    /// Consulted by NpuDevice::requant_boundary once the device measured
    /// its ΔVth gap. `model` (optional) supplies the trajectory: the
    /// projected years-to-crossing is stamped into the timeline event.
    [[nodiscard]] PlannerDecision plan_requant(int device_id, double dvth_now_mv,
                                               double dvth_deployed_mv,
                                               double threshold_mv,
                                               const aging::AgingModel* model)
        RAQ_EXCLUDES(mutex_);

    /// Consulted by ShardGroup::repartition_step after a trigger fires:
    /// false parks the re-cut for a quieter window (the monitor re-polls,
    /// so a deferred re-cut retries automatically).
    [[nodiscard]] bool allow_recut(int group_id, double imbalance,
                                   double threshold_ratio) RAQ_EXCLUDES(mutex_);

    [[nodiscard]] PlannerStats stats() RAQ_EXCLUDES(mutex_);
    [[nodiscard]] const ReliabilityPlannerConfig& config() const noexcept {
        return config_;
    }

private:
    struct PendingEvent {
        std::uint8_t kind = 0;  ///< obs::EventKind value (header-decoupled)
        int device_id = -1;
        int group_id = -1;
        double value = 0.0;
        std::string detail;
    };

    /// Rolls the predictor to `now_us`, edge-detects a high→low traffic
    /// transition, and queues a window-predicted event. Returns whether
    /// `now_us` is inside a low-traffic window.
    bool note_window(std::int64_t now_us, std::vector<PendingEvent>& out)
        RAQ_REQUIRES(mutex_);
    void emit(std::int64_t now_us, std::vector<PendingEvent>&& events);

    const ReliabilityPlannerConfig config_;
    obs::Telemetry* const telemetry_;

    mutable common::Mutex mutex_;
    sim::TrafficPredictor predictor_ RAQ_GUARDED_BY(mutex_);
    bool was_low_ RAQ_GUARDED_BY(mutex_) = true;  ///< idle fleet starts low
    std::int64_t last_window_event_us_ RAQ_GUARDED_BY(mutex_) = -1;
    std::int64_t last_defer_event_us_ RAQ_GUARDED_BY(mutex_) = -1;
    PlannerStats stats_ RAQ_GUARDED_BY(mutex_);
};

}  // namespace raq::serve
