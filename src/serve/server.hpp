// NpuServer — the multi-threaded aging-aware inference serving runtime.
//
// Topology: submit() → class-aware Scheduler (per-class bounded lanes,
// interactive preempts batch at batch formation) → worker threads. Each
// worker pops a dynamic batch, checks an idle serving unit out of the pool,
// serves the batch on it and returns the unit. A unit is either a
// whole-model NpuDevice (the replicated layout: every device carries the
// full graph) or, with `num_shards > 1`, a ShardGroup: the model is
// partitioned across `num_shards` devices (shard = ExecPlan sub-plan)
// and batches pipeline device-to-device, with each shard versioning its
// own ModelState and re-quantizing independently.
//
// Devices age as they serve; crossing the ΔVth re-quantization threshold
// hands Algorithm 1 to the background RequantService, which builds the
// next ModelState generation off the serving path — the device keeps
// serving the old generation and swaps at a batch boundary, so no batch
// ever stalls behind the PTQ method search. (Set
// `background_requant = false` for the old inline behavior.)
//
// shutdown() closes admission, drains every accepted request (including
// batches still inside shard pipelines), joins the workers, then drains
// the RequantService and adopts any still-pending generations; no
// accepted request — and no triggered re-quantization — is ever dropped.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/telemetry.hpp"
#include "serve/device.hpp"
#include "serve/reliability_planner.hpp"
#include "serve/request_queue.hpp"
#include "serve/requant_service.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard_group.hpp"

namespace raq::serve {

struct ServeConfig {
    int num_devices = 1;
    int num_workers = 1;
    int max_batch = 8;          ///< dynamic batching cap per device pass
    /// Default per-lane admission capacity; SchedulerConfig capacities of
    /// 0 inherit this value.
    std::size_t queue_capacity = 4096;
    /// Class-aware admission: per-lane capacities, latency targets and
    /// the batch anti-starvation credit (see serve/scheduler.hpp).
    SchedulerConfig scheduler;
    /// Predictive reliability management: schedule requant builds and
    /// re-cuts into predicted low-traffic windows, ahead of the ΔVth
    /// crossing (see serve/reliability_planner.hpp). Off by default —
    /// reactive PR 3/5 behavior.
    ReliabilityPlannerConfig planner;
    /// Model sharding: 1 replicates the full graph per device; > 1
    /// partitions the model across that many devices per pipeline group
    /// (num_devices must be a multiple of num_shards). Sharded serving
    /// requires flip_probability == 0 and full_algorithm1 == false.
    int num_shards = 1;
    /// Bounded inter-shard handoff queue depth, in batches.
    std::size_t shard_handoff_capacity = 4;
    /// Per-stage systolic array configs for sharded serving (empty:
    /// every stage runs device.systolic). Size must equal num_shards;
    /// the shared partition then balances each stage on its own array's
    /// cycle model.
    std::vector<npu::SystolicConfig> shard_systolic;
    /// Online re-partitioning for shard groups: when a stage's measured
    /// busy time makes it the pipeline bottleneck beyond the configured
    /// ratio (e.g. after a re-quantization installed a slower aged
    /// clock), the group re-cuts the graph on per-device aged costs and
    /// drain-and-swaps onto the new partition. Off by default.
    RepartitionConfig repartition;
    /// Device i enters the fleet aged initial_age_years + i × step (real
    /// fleets are heterogeneous: devices were deployed at different times).
    double initial_age_years = 0.0;
    double initial_age_step_years = 0.0;
    /// Build re-quantizations on a background worker pool and swap them
    /// in double-buffered (the default). Off = the pre-existing inline
    /// behavior: the device stalls at the batch boundary for the build.
    bool background_requant = true;
    int requant_workers = 1;  ///< RequantService pool size
    /// Fleet telemetry (off by default): metrics registry + per-request
    /// tracing + reliability-event timeline. See src/obs/README.md.
    obs::TelemetryConfig telemetry;
    DeviceConfig device;  ///< per-device knobs (aging, requant, injection)
};

class NpuServer {
public:
    /// The context is copied (it is a bundle of pointers); the pointed-to
    /// objects (graph, calibration, selector, aging model, eval set) must
    /// outlive the server. Throws std::invalid_argument when the config
    /// asks for the full Algorithm 1 without a usable eval set, or for a
    /// sharded layout the model or config cannot support.
    NpuServer(const ServeContext& ctx, const ServeConfig& config);
    ~NpuServer();

    NpuServer(const NpuServer&) = delete;
    NpuServer& operator=(const NpuServer&) = delete;

    /// Enqueue one sample (shape (1, c, h, w)) into the lane for `klass`;
    /// blocks under that lane's backpressure. Throws once shut down.
    std::future<InferenceResult> submit(
        tensor::Tensor image, RequestClass klass = RequestClass::Interactive);

    /// Outcome of a non-blocking submission attempt (the net front-end's
    /// admission path). `future` is valid only when status == Accepted.
    struct TrySubmit {
        enum class Status { Accepted, Saturated, Closed };
        Status status = Status::Closed;
        std::future<InferenceResult> future;
    };

    /// Non-blocking submit: Saturated (the request's lane is full — shed
    /// with BUSY) or Closed (shutting down) instead of blocking or
    /// throwing. `on_done` fires exactly once after the request's
    /// promise is satisfied, from whichever serving thread fulfils it —
    /// the net event loop hangs an eventfd wake here so no thread ever
    /// parks on a future.
    TrySubmit try_submit(tensor::Tensor image, std::function<void()> on_done = {},
                         RequestClass klass = RequestClass::Interactive);

    /// Close admission, drain all accepted requests (through any shard
    /// pipelines), join the workers, then drain outstanding background
    /// re-quantizations and adopt their generations. Idempotent.
    void shutdown();

    /// Whole-model devices (0 in sharded mode — see num_shard_groups()).
    [[nodiscard]] int num_devices() const { return static_cast<int>(devices_.size()); }
    [[nodiscard]] const NpuDevice& device(int i) const { return *devices_.at(static_cast<std::size_t>(i)); }

    [[nodiscard]] bool sharded() const { return !groups_.empty(); }
    [[nodiscard]] int num_shard_groups() const { return static_cast<int>(groups_.size()); }
    [[nodiscard]] const ShardGroup& shard_group(int i) const { return *groups_.at(static_cast<std::size_t>(i)); }

    /// Online accuracy sampling: evaluate the unit's currently deployed
    /// graph(s) on the first `samples` images of the context eval set.
    /// `index` is a device index (replicated) or a group index (sharded).
    [[nodiscard]] double sample_accuracy(int index, int samples) const;

    [[nodiscard]] FleetStats fleet_stats() const;

    /// Telemetry bundle (null when ServeConfig::telemetry.metrics is
    /// false). Exposed for scrapes, tests and benches.
    [[nodiscard]] obs::Telemetry* telemetry() { return telemetry_.get(); }
    [[nodiscard]] const obs::Telemetry* telemetry() const { return telemetry_.get(); }

    /// The admission scheduler (per-class depths / starvation counters).
    [[nodiscard]] const Scheduler& scheduler() const { return queue_; }
    /// Reliability planner (null unless ServeConfig::planner.enabled).
    [[nodiscard]] ReliabilityPlanner* planner() { return planner_.get(); }
    [[nodiscard]] const ReliabilityPlanner* planner() const { return planner_.get(); }

    /// Prometheus-style text exposition of every registered series
    /// (empty string with telemetry disabled).
    [[nodiscard]] std::string export_metrics() const;
    /// One JSON object per metric series, one per line.
    [[nodiscard]] std::string export_metrics_jsonl() const;
    /// Text rendering of the sampled-trace reservoir, one trace per line.
    [[nodiscard]] std::string export_traces() const;
    /// Text rendering of the reliability-event timeline, oldest first.
    [[nodiscard]] std::string export_timeline() const;

private:
    void worker_loop() RAQ_EXCLUDES(pool_mutex_);
    /// Fold the process-wide level-parallel run count into the registry
    /// counter as a delta since this server's construction baseline, so
    /// scrapes show which execution path production batches actually
    /// took. Called by the export paths; cheap and scrape-concurrent.
    void sync_exec_metrics() const;

    ServeConfig config_;
    ServeContext ctx_;  ///< owned copy; pointed-to objects outlive the server
    /// Declared before devices_/groups_ (and destroyed after them):
    /// devices cache instrument pointers into the registry.
    std::unique_ptr<obs::Telemetry> telemetry_;
    /// Per-class series (label class="interactive"/"batch"), indexed by
    /// RequestClass. The depth peak stays an unlabeled fleet-wide
    /// high-water mark.
    obs::Counter* submitted_counter_[kNumRequestClasses] = {};
    obs::Counter* completed_counter_[kNumRequestClasses] = {};
    obs::Gauge* queue_depth_[kNumRequestClasses] = {};
    obs::Gauge* queue_depth_peak_ = nullptr;
    obs::Histogram* queue_wait_us_[kNumRequestClasses] = {};
    /// Level-parallel execution counter, synced at scrape time from the
    /// process-wide exec counters (delta since this server's baseline —
    /// see sync_exec_metrics()).
    obs::Counter* exec_parallel_counter_ = nullptr;
    mutable std::atomic<std::uint64_t> exec_parallel_exported_{0};
    /// Declared before devices_/groups_ (destroyed after them): devices
    /// and shard groups consult the planner from their serve threads.
    std::unique_ptr<ReliabilityPlanner> planner_;
    Scheduler queue_;
    std::vector<std::unique_ptr<NpuDevice>> devices_;
    std::vector<std::unique_ptr<ShardGroup>> groups_;
    /// Declared after devices_/groups_ so it is destroyed (and its
    /// threads joined) before any device it references.
    std::unique_ptr<RequantService> requant_service_;

    common::Mutex pool_mutex_;
    common::CondVar pool_cv_;
    std::vector<ServeUnit*> idle_units_ RAQ_GUARDED_BY(pool_mutex_);

    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> next_request_id_{0};
    std::atomic<std::uint64_t> accepted_{0};  ///< requests the queue admitted
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<bool> stopped_{false};
};

}  // namespace raq::serve
