// NpuServer — the multi-threaded aging-aware inference serving runtime.
//
// Topology: submit() → bounded RequestQueue → worker threads. Each worker
// pops a dynamic batch, checks an idle device out of the pool, serves the
// batch on it (fulfilling the requests' futures) and returns the device.
// Devices age as they serve; crossing the ΔVth re-quantization threshold
// swaps that device's deployed QuantizedGraph at the next batch boundary
// while the rest of the fleet keeps serving (paper Algorithm 1, run
// online instead of offline).
//
// shutdown() closes admission, drains every accepted request, and joins
// the workers; no accepted request is ever dropped.
#pragma once

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/device.hpp"
#include "serve/request_queue.hpp"

namespace raq::serve {

struct ServeConfig {
    int num_devices = 1;
    int num_workers = 1;
    int max_batch = 8;          ///< dynamic batching cap per device pass
    std::size_t queue_capacity = 4096;
    /// Device i enters the fleet aged initial_age_years + i × step (real
    /// fleets are heterogeneous: devices were deployed at different times).
    double initial_age_years = 0.0;
    double initial_age_step_years = 0.0;
    DeviceConfig device;  ///< per-device knobs (aging, requant, injection)
};

class NpuServer {
public:
    /// The context is copied (it is a bundle of pointers); the pointed-to
    /// objects (graph, calibration, selector, aging model, eval set) must
    /// outlive the server.
    NpuServer(const ServeContext& ctx, const ServeConfig& config);
    ~NpuServer();

    NpuServer(const NpuServer&) = delete;
    NpuServer& operator=(const NpuServer&) = delete;

    /// Enqueue one sample (shape (1, c, h, w)); blocks under backpressure.
    /// Throws once the server is shut down.
    std::future<InferenceResult> submit(tensor::Tensor image);

    /// Close admission, drain all accepted requests, join the workers.
    /// Idempotent.
    void shutdown();

    [[nodiscard]] int num_devices() const { return static_cast<int>(devices_.size()); }
    [[nodiscard]] const NpuDevice& device(int i) const { return *devices_.at(i); }

    /// Online accuracy sampling: evaluate the device's currently deployed
    /// graph on the first `samples` images of the context eval set.
    [[nodiscard]] double sample_accuracy(int device_index, int samples) const;

    [[nodiscard]] FleetStats fleet_stats() const;

private:
    void worker_loop();

    ServeConfig config_;
    ServeContext ctx_;  ///< owned copy; pointed-to objects outlive the server
    RequestQueue queue_;
    std::vector<std::unique_ptr<NpuDevice>> devices_;

    std::mutex pool_mutex_;
    std::condition_variable pool_cv_;
    std::vector<NpuDevice*> idle_devices_;

    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> next_request_id_{0};
    std::atomic<std::uint64_t> accepted_{0};  ///< requests the queue admitted
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<bool> stopped_{false};
};

}  // namespace raq::serve
