// Serving statistics: per-request latency distribution in model-cycles,
// per-device counters (requests, batches, busy cycles, injected flips,
// re-quantization events) and fleet-level aggregates.
//
// All simulated-time figures come from the systolic-array cycle model ×
// the MAC clock period: the host we simulate on has nothing to do with
// how fast the modelled NPU runs, so throughput/latency are reported in
// model time (wall-clock is reported separately by the bench). The clock
// period is NOT constant — every re-quantization re-derives it from the
// deployed compression's aged critical path — so simulated busy time is
// accumulated in picoseconds at the clock in effect per batch
// (`busy_ps`), not reconstructed from one cycle count afterwards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/compression.hpp"
#include "common/latency.hpp"
#include "quant/methods.hpp"

namespace raq::serve {

struct LatencySummary {
    std::uint64_t count = 0;
    double p50_cycles = 0.0;
    double p99_cycles = 0.0;
    double mean_cycles = 0.0;
    std::uint64_t max_cycles = 0;
};

/// Collects per-request latencies (model cycles) through the project's
/// one reservoir sampler (common::ReservoirSampler — Vitter's
/// Algorithm R, deterministic via common::Rng): a long-lived server
/// records millions of requests without unbounded memory growth. Count,
/// mean and max stay exact (max as an integer cycle count here); the
/// percentiles are estimated from the uniform reservoir sample. Not
/// thread-safe; each device owns one and guards it with its stats mutex.
class LatencyRecorder {
public:
    explicit LatencyRecorder(std::size_t capacity = 4096,
                             std::uint64_t seed = 0x1a7e9c5ULL)
        : sampler_(capacity, seed) {}

    void record(std::uint64_t cycles) {
        max_cycles_ = std::max(max_cycles_, cycles);
        sampler_.record(static_cast<double>(cycles));
    }

    [[nodiscard]] LatencySummary summary() const;
    /// Exact number of recorded samples (not the reservoir occupancy).
    [[nodiscard]] std::size_t count() const { return static_cast<std::size_t>(sampler_.count()); }
    [[nodiscard]] std::size_t reservoir_size() const { return sampler_.reservoir_size(); }
    [[nodiscard]] std::size_t capacity() const { return sampler_.capacity(); }

private:
    common::ReservoirSampler sampler_;
    std::uint64_t max_cycles_ = 0;  ///< exact integer max (sampler's is a double)
};

/// One online re-quantization performed by a device: which generation it
/// deployed, what triggered it, and what the build and the swap cost in
/// host wall-clock (the swap is a pointer assignment + payload rebind,
/// so swap_us stays microseconds even when build_ms is a full
/// Algorithm 1 method search).
struct RequantEvent {
    /// Monotonic host timestamp of the swap (obs::monotonic_us — µs on
    /// steady_clock since a process-wide epoch): event ordering is
    /// reconstructable ACROSS devices, which per-device `at_hours`
    /// (simulated, per-device-rate) cannot give.
    std::int64_t t_us = 0;
    std::uint64_t generation = 0;   ///< generation this event deployed
    double at_hours = 0.0;          ///< simulated operating hours at the swap
    double dvth_mv = 0.0;           ///< trigger ΔVth the new state was built for
    common::Compression before;
    common::Compression after;
    quant::Method method = quant::Method::M5_AciqNoBias;
    double aged_delay_ps = 0.0;     ///< aged critical path of `after` — the new clock
    double build_ms = 0.0;          ///< Algorithm 1 build latency (host wall-clock)
    double swap_us = 0.0;           ///< publish-swap latency (host wall-clock)
    bool background = false;        ///< built by the RequantService, off the serving path
    /// This deployment remapped the device onto a new pipeline shard
    /// (online re-cut), rather than refreshing the same (sub-)graph.
    bool recut = false;
};

struct DeviceStats {
    int device_id = 0;
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::uint64_t busy_cycles = 0;
    double busy_ps = 0.0;  ///< simulated busy time at the per-batch clock
    std::uint64_t flips = 0;
    double operating_hours = 0.0;
    double dvth_mv = 0.0;
    /// Sliding-window host-time busy fraction (1.0 when traffic-driven
    /// aging is off: the legacy model assumes a saturated device).
    double duty_fraction = 1.0;
    double clock_period_ps = 0.0;  ///< current clock (aged critical path)
    std::uint64_t generation = 0;  ///< currently deployed ModelState generation
    common::Compression compression;
    quant::Method method = quant::Method::M5_AciqNoBias;
    int requant_count = 0;
    bool requant_in_flight = false;  ///< a background build is pending/running
    std::vector<RequantEvent> requant_events;
    LatencySummary latency;

    /// Saturated simulated throughput: served requests per simulated
    /// busy second (clock changes across requants are already folded
    /// into busy_ps).
    [[nodiscard]] double sim_throughput_ips() const {
        const double busy_s = busy_ps * 1e-12;
        return busy_s > 0.0 ? static_cast<double>(requests) / busy_s : 0.0;
    }
};

struct FleetStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::vector<DeviceStats> devices;

    /// Fleet simulated throughput: completed requests over the busiest
    /// device's simulated busy time (devices run concurrently in model
    /// time, so the slowest device bounds the fleet — for a sharded
    /// pipeline that is the bottleneck shard; `completed` rather than a
    /// per-device sum because in sharded serving every request visits
    /// every shard of its group).
    [[nodiscard]] double sim_throughput_ips() const;
    [[nodiscard]] int total_requants() const;
    [[nodiscard]] std::string to_string() const;
};

}  // namespace raq::serve
