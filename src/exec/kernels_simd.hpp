// Explicit SIMD microkernels for the quantized u8×u8→i32 GEMM, with
// runtime CPU-feature dispatch. The quantized conv is an exact integer
// GEMM over the im2col column layout — acc[r][j] = Σ_k w[r][k]·col[k][j]
// with every product ≤ 255·255 — so any reassociation or vectorization of
// the reduction produces bit-identical accumulators. That is the whole
// contract here: every tier computes the same integers, only faster.
//
// Tiers:
//   Scalar  — portable reference loop; always available. The bit-flip
//             injection path never reaches these kernels at all (it keeps
//             the seed interpreter's per-product loop inside QuantBackend),
//             so injection stays bit-identical to the seed by construction.
//   Sse41   — 128-bit x86: widen u8→i16, interleave k-pairs, pmaddwd.
//   Avx2    — 256-bit x86: same pair-madd scheme on 16-column tiles.
//   Neon    — 64/128-bit ARM: vmovl_u8 + vmlal_u16 widening multiply-add.
//
// Dispatch is decided once per process from CPUID (overridable with the
// RAQ_KERNEL_TIER environment variable: scalar|sse41|avx2|neon) and the
// selected kernel is routed through QuantBackend::conv. Kernels with an
// unavailable instruction set are never invoked: x86 variants are built
// with per-function target attributes (not file-level flags), so no
// AVX2/SSE4.1 instruction can leak into always-executed code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace raq::exec::kernels_simd {

enum class KernelTier : int {
    Scalar = 0,
    Sse41 = 1,
    Avx2 = 2,
    Neon = 3,
};

/// Stable lower-case name ("scalar", "sse41", "avx2", "neon").
[[nodiscard]] const char* tier_name(KernelTier tier);

/// Tiers usable on this machine, ascending preference (Scalar first).
[[nodiscard]] const std::vector<KernelTier>& available_tiers();

/// The tier selected for this process: the best available one, unless
/// RAQ_KERNEL_TIER names an available tier. Decided once, then cached.
[[nodiscard]] KernelTier active_tier();

/// Row blocking of every kernel: each call sweeps the column tile once
/// per block of this many weight rows, keeping the accumulators in
/// registers. Callers size their accumulator scratch as a multiple of it.
inline constexpr std::size_t kGemmU8RowBlock = 4;

/// u8×u8→i32 GEMM microkernel:
///   acc[r * acc_stride + j] = Σ_k w[r * w_stride + k] · cols[k * col_stride + j]
/// for r in [0, rows), j in [0, n). Overwrites `acc` (no accumulate-into).
/// Requires kdim · 255² ≤ INT32_MAX (the plan's acc32_safe bound); wider
/// convolutions stay on the int64 scalar path in QuantBackend.
using GemmU8Fn = void (*)(const std::uint8_t* w, std::size_t w_stride, std::size_t rows,
                          const std::uint8_t* cols, std::size_t col_stride,
                          std::size_t kdim, std::size_t n, std::int32_t* acc,
                          std::size_t acc_stride);

/// Kernel for a tier. Every available tier returns a non-null function;
/// asking for an unavailable tier returns the scalar kernel.
[[nodiscard]] GemmU8Fn gemm_u8_kernel(KernelTier tier);

/// Packed fast path (x86 tiers): the unpacked kernels above re-widen and
/// re-interleave every column tile once per row block, which is the
/// dominant cost for shallow convolutions. The packed pipeline lifts that
/// prep out of the row loop entirely:
///
///   1. `pack` widens a column tile once into interleaved i16 k-pairs
///      (layout: per group of `col_group` columns, ceil(kdim/2) records of
///      2·col_group i16, each holding [a_k, a_k+1] per column — the exact
///      operand order pmaddwd consumes; odd kdim pads the last record's
///      second element with zero, so the GEMM never needs a k-tail).
///   2. `gemm` multiplies pre-widened i16 weights (see widen_weights_u8)
///      against the packed panel; the weight-pair broadcast becomes a pure
///      memory vpbroadcastd and the inner loop is nothing but madd/add.
///
/// Both stages compute the same exact i32 dot products as every other
/// tier. `gemm` only covers full column groups — callers run the scalar
/// reference on the (< col_group)-column tail of the raw tile.
using PackColsFn = void (*)(const std::uint8_t* cols, std::size_t col_stride,
                            std::size_t kdim, std::size_t n, std::int16_t* packed);
using GemmPackedFn = void (*)(const std::int16_t* w16, std::size_t w_stride,
                              std::size_t rows, const std::int16_t* packed,
                              std::size_t kdim, std::size_t n, std::int32_t* acc,
                              std::size_t acc_stride);
struct PackedKernels {
    PackColsFn pack = nullptr;
    GemmPackedFn gemm = nullptr;
    std::size_t col_group = 0;  ///< pack/gemm column granularity (0 ⇔ no packed path)
};

/// Packed kernel set for a tier; all-null/zero for tiers without one
/// (scalar and NEON keep the plain kernels).
[[nodiscard]] PackedKernels packed_kernels(KernelTier tier);

/// i16 elements a packed panel occupies for `n` columns (full groups
/// only; callers pass n rounded down to a multiple of col_group).
[[nodiscard]] constexpr std::size_t packed_panel_elems(std::size_t kdim, std::size_t n,
                                                       std::size_t col_group) {
    return col_group == 0 ? 0 : (n / col_group) * ((kdim + 1) / 2) * 2 * col_group;
}

/// Widen a u8 weight matrix to the i16 layout GemmPackedFn consumes: row
/// stride kdim rounded up to even, odd-kdim rows padded with a zero so
/// the pair broadcast at the last k never reads past the row.
void widen_weights_u8(const std::uint8_t* w, std::size_t rows, std::size_t kdim,
                      std::int16_t* w16);

/// Conv epilogue over one contiguous output segment:
///   out[j] = float(i64(acc[j]) − i64(zw)·colsum[j] + qb) · scale
/// The vector variants compute `corrected` in f64 — every operand is an
/// integer of magnitude < 2^52, so each f64 step is exact and the final
/// f64→f32 conversion is the same single rounding the scalar i64→f32 cast
/// performs; the f32 multiply by `scale` matches element for element.
/// Callers must keep the scalar loop when |qb| + 2^33 could reach 2^52
/// (never true for real quantized biases, but guarded anyway) and for the
/// stats/injection paths. Null for tiers without an implementation.
using EpilogueFn = void (*)(const std::int32_t* acc, const std::int32_t* colsum,
                            std::size_t n, std::int32_t zw, std::int64_t qb, float scale,
                            float* out);
[[nodiscard]] EpilogueFn epilogue_kernel(KernelTier tier);

/// Column-sum reduction over the im2col matrix: colsum[j] = Σ_k cols[k][j]
/// (exact integer adds — any tier is bit-identical). Null ⇒ scalar loop.
using ColSumFn = void (*)(const std::uint8_t* cols, std::size_t kdim, std::size_t n,
                          std::int32_t* colsum);
[[nodiscard]] ColSumFn colsum_kernel(KernelTier tier);

/// Activation quantization: out[i] = u8(clamp(nearbyint(in[i] / scale) +
/// zero_point, 0, qmax)) & mask — the exact arithmetic of
/// quant::QuantParams::quantize plus the LSB-truncation mask. The vector
/// variants use the hardware round-with-current-mode instruction
/// (roundps / frinti), which equals nearbyint element for element under
/// the default FP environment, and the IEEE division is exact either way
/// — so every tier produces identical codes. Returns null for tiers with
/// no vector round (scalar, 32-bit ARM); callers keep their scalar loop.
using QuantizeU8Fn = void (*)(const float* in, std::size_t n, float scale,
                              std::int32_t zero_point, std::int32_t qmax,
                              std::uint8_t mask, std::uint8_t* out);
[[nodiscard]] QuantizeU8Fn quantize_u8_kernel(KernelTier tier);

}  // namespace raq::exec::kernels_simd
