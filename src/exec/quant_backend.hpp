// QuantBackend: the unsigned-MAC integer datapath of the paper's NPU,
// executed through the planned engine. Numerics are bit-identical to the
// seed quantized interpreter (integer accumulation is order-independent,
// so the cache-tiled GEMM below reassociates freely without changing a
// single output bit); the Fig. 1b bit-flip injection path preserves the
// seed's exact per-product hook order, because the injector is a seeded
// RNG stream whose draws must line up.
//
// LSB padding semantics (paper Eq. 5): the hardware multiplies shifted
// operands (q_a·2^α)(q_w·2^β) and the result is shifted back in software.
// Numerically an identity, but it moves the product's MSB — accounted for
// by narrowing the injector's register view, exactly as the seed did.
#pragma once

#include <cstdint>

#include "exec/backend.hpp"
#include "exec/kernels_simd.hpp"
#include "inject/bitflip.hpp"
#include "quant/quantized_graph.hpp"

namespace raq::exec {

struct QuantExecStats {
    std::uint64_t mac_count = 0;
    std::uint64_t flips = 0;
    std::int64_t max_abs_accumulator = 0;  ///< in the shifted (hardware) domain
    std::uint64_t accumulator_overflows = 0;  ///< values exceeding the 22-bit register
};

class QuantBackend final : public Backend {
public:
    explicit QuantBackend(const quant::QuantizedGraph& qgraph) : qgraph_(&qgraph) {
        set_kernel_tier(kernels_simd::active_tier());
    }

    /// Swap the executed graph (same topology: re-quantization replaces
    /// the payload, not the structure). The caller keeps `qgraph` alive
    /// for as long as this backend may run.
    void bind(const quant::QuantizedGraph& qgraph) { qgraph_ = &qgraph; }
    [[nodiscard]] const quant::QuantizedGraph& bound() const { return *qgraph_; }

    /// Per-run fault hooks (injector invoked once per MAC product). Runs
    /// with an injector or stats attached execute serially regardless of
    /// any thread pool: the injector stream is ordered and the stats are
    /// unsynchronized.
    void set_fault_hooks(inject::BitFlipInjector* injector, QuantExecStats* stats) {
        injector_ = injector;
        stats_ = stats;
    }

    /// Override the GEMM dispatch tier (defaults to the process-wide
    /// kernels_simd::active_tier()). Tests and benches use this to pin
    /// the scalar reference or compare tiers; every tier is bit-identical
    /// because the integer reduction is exact.
    void set_kernel_tier(kernels_simd::KernelTier tier) {
        tier_ = tier;
        const bool scalar = tier == kernels_simd::KernelTier::Scalar;
        simd_kernel_ = scalar ? nullptr : kernels_simd::gemm_u8_kernel(tier);
        packed_ = scalar ? kernels_simd::PackedKernels{} : kernels_simd::packed_kernels(tier);
        quantize_kernel_ = scalar ? nullptr : kernels_simd::quantize_u8_kernel(tier);
        epilogue_kernel_ = scalar ? nullptr : kernels_simd::epilogue_kernel(tier);
        colsum_kernel_ = scalar ? nullptr : kernels_simd::colsum_kernel(tier);
    }
    [[nodiscard]] kernels_simd::KernelTier kernel_tier() const { return tier_; }

    /// The injector stream is ordered and the stats struct unsynchronized:
    /// with either attached, the engine must keep exact schedule order.
    [[nodiscard]] bool serial_only() const override {
        return injector_ != nullptr || stats_ != nullptr;
    }

    void prepare(const ExecPlan& plan, ExecContext& ctx) const override;
    void conv(const ConvCall& call, ExecContext& ctx) override;

private:
    const quant::QuantizedGraph* qgraph_;
    inject::BitFlipInjector* injector_ = nullptr;
    QuantExecStats* stats_ = nullptr;
    kernels_simd::KernelTier tier_ = kernels_simd::KernelTier::Scalar;
    kernels_simd::GemmU8Fn simd_kernel_ = nullptr;          ///< null ⇔ scalar tier
    kernels_simd::PackedKernels packed_{};                  ///< preferred GEMM pipeline
    kernels_simd::QuantizeU8Fn quantize_kernel_ = nullptr;  ///< null ⇒ scalar loop
    kernels_simd::EpilogueFn epilogue_kernel_ = nullptr;    ///< null ⇒ scalar epilogue
    kernels_simd::ColSumFn colsum_kernel_ = nullptr;        ///< null ⇒ scalar colsum
};

}  // namespace raq::exec
