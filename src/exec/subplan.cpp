#include "exec/subplan.hpp"

#include <utility>

#include "exec/plan_cache.hpp"

namespace raq::exec {

Subplan compile_subplan(const ir::Graph& full, const ir::ShardSpec& spec,
                        int batch_capacity) {
    ir::Subgraph sub = ir::extract_subgraph(full, spec);
    Subplan out;
    out.graph = std::make_shared<const ir::Graph>(std::move(sub.graph));
    out.full_tensor_of = std::move(sub.full_tensor_of);
    out.plan = PlanCache::global().get(out.graph, batch_capacity);
    return out;
}

}  // namespace raq::exec
