// The execution engine: drives an ExecPlan over a batch through a Backend
// using one ExecContext of scratch state. One plan, many concurrent
// executions: the plan is immutable, each thread brings its own context
// (and backend instance, when the backend carries per-run hooks).
//
// Determinism guarantee: with or without a thread pool, outputs are bit-
// identical — parallelism only ever (a) splits a convolution over
// disjoint output-channel ranges, or (b) fans the mutually independent
// ops of one dependency level out over the pool; per-element arithmetic
// and each op's reduction order are unchanged either way. Backends that
// carry an ordered per-product hook (bit-flip injection) report
// serial_only() and always run in exact schedule order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "exec/backend.hpp"

namespace raq::exec {

/// Optional per-level timing callback: after a run completes, invoked
/// once per dependency level of the plan's schedule with the host
/// microseconds that level's ops took. Zero cost when unset (the engine
/// neither reads the clock nor allocates). Levels are the plan's
/// dependency levels (ops sharing a level have no data path between
/// them), so the profile maps directly onto the schedule structure.
using LevelTimingHook = std::function<void(int level, double host_us)>;

struct RunOptions {
    ThreadPool* pool = nullptr;  ///< optional intra-plan parallelism (off by default)
    const LevelTimingHook* level_hook = nullptr;  ///< optional per-level profiling
};

/// Execute `plan` with `backend` on `batch` (1 ≤ n ≤ plan capacity).
/// Returns the graph-output tensor. The batch is read in place (zero-copy
/// for Tensor::batch_view slices).
[[nodiscard]] tensor::Tensor run(const ExecPlan& plan, Backend& backend, ExecContext& ctx,
                                 tensor::TensorView batch, const RunOptions& options = {});

/// Process-wide level-parallel execution counters (relaxed atomics): runs
/// that fanned at least one dependency level over the pool, and the total
/// number of fanned levels. Observability scrapes diff these to show
/// which code path production batches actually take.
[[nodiscard]] std::uint64_t level_parallel_runs();
[[nodiscard]] std::uint64_t level_parallel_levels();

/// Reusable FP32 execution state: plan + context + FloatBackend, growing
/// its batch capacity on demand. One per thread. Compiles a private plan
/// rather than using the PlanCache: FloatBackend reads weights from the
/// plan's embedded graph, so float plans cannot be shared across
/// same-topology graphs with different weights.
class FloatRunner {
public:
    explicit FloatRunner(const ir::Graph& graph, int batch_capacity = 1,
                         ThreadPool* pool = nullptr);

    [[nodiscard]] tensor::Tensor run(tensor::TensorView batch);
    [[nodiscard]] const ExecPlan& plan() const { return *plan_; }

private:
    std::unique_ptr<ExecPlan> plan_;
    FloatBackend backend_;
    ExecContext ctx_;
    ThreadPool* pool_;
};

}  // namespace raq::exec
