#include "exec/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace raq::exec::kernels {

void relu(const float* in, float* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0 ? in[i] : 0.0f;
}

void maxpool(const float* in, const tensor::Shape& s, int kernel, int stride, float* out,
             int oh, int ow) {
    const std::size_t in_hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const std::size_t out_hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c) {
            const float* plane =
                in + (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                      static_cast<std::size_t>(c)) *
                         in_hw;
            float* dst = out + (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                                static_cast<std::size_t>(c)) *
                                   out_hw;
            // Window-bound hoisting: for fixed kx the in-bounds ox are a
            // prefix (ox·stride + kx < w), so the inner loops are
            // branch-free strided max-accumulations over the output row —
            // same elements folded in the same ky-major, kx-minor order
            // per output as the naive window walk, so identical results
            // (including the −inf seed for fully out-of-bounds windows).
            for (int oy = 0; oy < oh; ++oy) {
                float* row_out = dst + static_cast<std::size_t>(oy) *
                                           static_cast<std::size_t>(ow);
                for (int ox = 0; ox < ow; ++ox)
                    row_out[ox] = -std::numeric_limits<float>::infinity();
                const int ky_hi = std::min(kernel, s.h - oy * stride);
                for (int ky = 0; ky < ky_hi; ++ky) {
                    const float* row_in =
                        plane + (static_cast<std::size_t>(oy) *
                                     static_cast<std::size_t>(stride) +
                                 static_cast<std::size_t>(ky)) *
                                    static_cast<std::size_t>(s.w);
                    for (int kx = 0; kx < kernel; ++kx) {
                        const int ox_hi =
                            std::min(ow, kx >= s.w ? 0 : (s.w - 1 - kx) / stride + 1);
                        for (int ox = 0; ox < ox_hi; ++ox)
                            row_out[ox] = std::max(
                                row_out[ox],
                                row_in[static_cast<std::size_t>(ox) *
                                           static_cast<std::size_t>(stride) +
                                       static_cast<std::size_t>(kx)]);
                    }
                }
            }
        }
}

void global_avg_pool(const float* in, const tensor::Shape& s, float* out) {
    const std::size_t hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const float inv = 1.0f / static_cast<float>(s.h * s.w);
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c) {
            const float* plane =
                in + (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                      static_cast<std::size_t>(c)) *
                         hw;
            float acc = 0;
            // Same y-major accumulation order as the reference walker.
            for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
            out[static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                static_cast<std::size_t>(c)] = acc * inv;
        }
}

void add(const float* a, const float* b, float* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void concat(const std::vector<ConcatInput>& ins, const tensor::Shape& out_shape, float* out) {
    const std::size_t hw =
        static_cast<std::size_t>(out_shape.h) * static_cast<std::size_t>(out_shape.w);
    for (int n = 0; n < out_shape.n; ++n) {
        std::size_t c_off = 0;
        for (const ConcatInput& in : ins) {
            const std::size_t block = static_cast<std::size_t>(in.channels) * hw;
            std::memcpy(out + (static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(out_shape.c) +
                               c_off) *
                                  hw,
                        in.data + static_cast<std::size_t>(n) * block,
                        block * sizeof(float));
            c_off += static_cast<std::size_t>(in.channels);
        }
    }
}

namespace {

template <typename T>
void im2col_impl(const T* in, const tensor::Shape& s, int kh, int kw, int stride, int pad,
                 T* columns, int oh, int ow, bool zero_first) {
    const std::size_t rows = static_cast<std::size_t>(s.c) * static_cast<std::size_t>(kh) *
                             static_cast<std::size_t>(kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) * static_cast<std::size_t>(oh) *
                             static_cast<std::size_t>(ow);
    if (zero_first) std::memset(columns, 0, rows * cols * sizeof(T));
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c)
            for (int ky = 0; ky < kh; ++ky)
                for (int kx = 0; kx < kw; ++kx) {
                    const std::size_t row =
                        (static_cast<std::size_t>(c) * static_cast<std::size_t>(kh) +
                         static_cast<std::size_t>(ky)) *
                            static_cast<std::size_t>(kw) +
                        static_cast<std::size_t>(kx);
                    // The in-bounds ox values form one contiguous run:
                    // ix = ox·stride − pad + kx ∈ [0, w) ⇔ ox ∈ [lo, hi).
                    // Hoisting the bounds out of the inner loop turns the
                    // stride-1 case into a straight memcpy per row and the
                    // strided case into a branch-free gather — the same
                    // elements are written either way.
                    const int over = s.w + pad - kx;  // exclusive ix bound, ox domain
                    const int ox_lo =
                        std::min(ow, std::max(0, (pad - kx + stride - 1) / stride));
                    const int ox_hi = std::max(
                        ox_lo, std::min(ow, over > 0 ? (over + stride - 1) / stride : 0));
                    if (ox_lo >= ox_hi) continue;
                    for (int oy = 0; oy < oh; ++oy) {
                        const int iy = oy * stride - pad + ky;
                        if (iy < 0 || iy >= s.h) continue;
                        const std::size_t col_base =
                            (static_cast<std::size_t>(n) * static_cast<std::size_t>(oh) +
                             static_cast<std::size_t>(oy)) *
                            static_cast<std::size_t>(ow);
                        T* dst = columns + row * cols + col_base;
                        const std::size_t in_base =
                            ((static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                              static_cast<std::size_t>(c)) *
                                 static_cast<std::size_t>(s.h) +
                             static_cast<std::size_t>(iy)) *
                            static_cast<std::size_t>(s.w);
                        const T* src = in + in_base;
                        const int ix_lo = ox_lo * stride - pad + kx;  // ≥ 0 by ox_lo
                        if (stride == 1) {
                            std::memcpy(dst + ox_lo, src + ix_lo,
                                        static_cast<std::size_t>(ox_hi - ox_lo) * sizeof(T));
                        } else {
                            int ix = ix_lo;
                            for (int ox = ox_lo; ox < ox_hi; ++ox, ix += stride)
                                dst[ox] = src[ix];
                        }
                    }
                }
}

}  // namespace

void im2col(const float* in, const tensor::Shape& s, int kh, int kw, int stride, int pad,
            float* columns, int oh, int ow, bool zero_first) {
    im2col_impl(in, s, kh, kw, stride, pad, columns, oh, ow, zero_first);
}

void im2col_u8(const std::uint8_t* qx, const tensor::Shape& s, int kh, int kw, int stride,
               int pad, std::uint8_t* columns, int oh, int ow, bool zero_first) {
    im2col_impl(qx, s, kh, kw, stride, pad, columns, oh, ow, zero_first);
}

}  // namespace raq::exec::kernels
