#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "exec/kernels.hpp"

namespace raq::exec {

namespace {
std::atomic<std::uint64_t> g_level_parallel_runs{0};
std::atomic<std::uint64_t> g_level_parallel_levels{0};
}  // namespace

std::uint64_t level_parallel_runs() {
    return g_level_parallel_runs.load(std::memory_order_relaxed);
}
std::uint64_t level_parallel_levels() {
    return g_level_parallel_levels.load(std::memory_order_relaxed);
}

tensor::Tensor run(const ExecPlan& plan, Backend& backend, ExecContext& ctx,
                   tensor::TensorView batch, const RunOptions& options) {
    const ir::Graph& graph = plan.graph();
    if (batch.data == nullptr) throw std::invalid_argument("exec::run: null batch");
    if (!(batch.shape.c == graph.input_shape().c && batch.shape.h == graph.input_shape().h &&
          batch.shape.w == graph.input_shape().w))
        throw std::invalid_argument("exec::run: batch shape does not match graph input");
    const int n = batch.shape.n;
    // Shape cache: steady-state serving re-runs one (plan, batch size)
    // pair, so the O(ops) shape-inference walk happens once, not per run.
    if (ctx.shapes_plan_serial != plan.serial() || ctx.shapes_batch_n != n) {
        ctx.shapes = plan.shapes_for(n);  // validates 1 ≤ n ≤ capacity
        ctx.shapes_plan_serial = plan.serial();
        ctx.shapes_batch_n = n;
    }
    const std::vector<tensor::Shape>& shapes = ctx.shapes;

    ExecContext::reserve(ctx.arena, plan.arena_floats());
    backend.prepare(plan, ctx);

    // Tensor id -> buffer. The input is read in place from the caller's
    // view; everything else lives at its plan-assigned arena offset.
    // assign() reuses the vector's storage after the first run.
    ctx.buffers.assign(static_cast<std::size_t>(graph.num_tensors()), nullptr);
    std::vector<const float*>& buffers = ctx.buffers;
    buffers[static_cast<std::size_t>(graph.input_id())] = batch.data;

    // Per-level profiling accumulates locally and fires the hook once per
    // level after the run (serial: summed per-op; fanned: the level's
    // wall time, which is what the level actually cost the run).
    const bool timed = options.level_hook != nullptr && *options.level_hook != nullptr;
    std::vector<double> level_us;
    if (timed) {
        int max_level = 0;
        for (const OpStep& step : plan.schedule()) max_level = std::max(max_level, step.level);
        level_us.assign(static_cast<std::size_t>(max_level) + 1, 0.0);
    }

    // One op, executed with an exclusively owned conv workspace. Writing
    // buffers[output] from concurrent lanes is safe: ops of one level have
    // distinct outputs (distinct vector elements), and the pool barrier
    // publishes them to the next level.
    const auto exec_op = [&](int op_index, ThreadPool* pool, ConvScratch& scratch) {
        const ir::Op& op = graph.ops()[static_cast<std::size_t>(op_index)];
        const tensor::Shape& out_shape = shapes[static_cast<std::size_t>(op.output)];
        float* out = ctx.arena.data() + plan.offset_of(op.output);
        const float* in0 = buffers[static_cast<std::size_t>(op.inputs.at(0))];
        const tensor::Shape& in0_shape = shapes[static_cast<std::size_t>(op.inputs.at(0))];

        switch (op.kind) {
            case ir::OpKind::Conv2d: {
                ConvCall call;
                call.op_index = op_index;
                call.op = &op;
                call.geom = plan.conv_geom(op_index);
                call.in = in0;
                call.in_shape = in0_shape;
                call.out = out;
                call.out_shape = out_shape;
                call.pool = pool;
                call.scratch = &scratch;
                backend.conv(call, ctx);
                break;
            }
            case ir::OpKind::Relu:
                kernels::relu(in0, out, in0_shape.size());
                break;
            case ir::OpKind::MaxPool2d:
                kernels::maxpool(in0, in0_shape, op.pool.kernel, op.pool.stride, out,
                                 out_shape.h, out_shape.w);
                break;
            case ir::OpKind::GlobalAvgPool:
                kernels::global_avg_pool(in0, in0_shape, out);
                break;
            case ir::OpKind::Add:
                kernels::add(in0, buffers[static_cast<std::size_t>(op.inputs.at(1))], out,
                             in0_shape.size());
                break;
            case ir::OpKind::Concat: {
                std::vector<kernels::ConcatInput> ins;
                ins.reserve(op.inputs.size());
                for (const int id : op.inputs)
                    ins.push_back(kernels::ConcatInput{
                        buffers[static_cast<std::size_t>(id)],
                        shapes[static_cast<std::size_t>(id)].c});
                kernels::concat(ins, out_shape, out);
                break;
            }
        }
        buffers[static_cast<std::size_t>(op.output)] = out;
    };

    // Level-parallel mode: fan the mutually independent ops of each level
    // out over the pool (each fanned op runs its conv serially on a
    // lane-private workspace — the pool is not reentrant); single-op
    // levels keep the conv-internal channel split instead. The arena's
    // level floors guarantee no two same-level tensors share bytes.
    // Backends with ordered hooks (serial_only) take the schedule path.
    const bool fan_levels = options.pool != nullptr && plan.has_parallel_levels() &&
                            !backend.serial_only();
    if (fan_levels) {
        const std::vector<int>& order = plan.level_order();
        const std::vector<std::size_t>& bounds = plan.level_bounds();
        std::uint64_t fanned = 0;
        for (std::size_t level = 0; level + 1 < bounds.size(); ++level) {
            const std::chrono::steady_clock::time_point level_start =
                timed ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
            const std::size_t begin = bounds[level];
            const std::size_t count = bounds[level + 1] - begin;
            if (count <= 1) {
                if (count == 1) exec_op(order[begin], options.pool, ctx.scratch);
            } else {
                const std::size_t lanes = static_cast<std::size_t>(options.pool->size());
                if (ctx.level_lanes.size() < lanes) ctx.level_lanes.resize(lanes);
                ++fanned;
                options.pool->parallel_for(
                    count, [&](std::size_t lane, std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i)
                            exec_op(order[begin + i], nullptr, ctx.level_lanes[lane]);
                    });
            }
            if (timed)
                level_us[level] += std::chrono::duration<double, std::micro>(
                                       std::chrono::steady_clock::now() - level_start)
                                       .count();
        }
        if (fanned > 0) {
            g_level_parallel_runs.fetch_add(1, std::memory_order_relaxed);
            g_level_parallel_levels.fetch_add(fanned, std::memory_order_relaxed);
        }
    } else {
        for (const OpStep& step : plan.schedule()) {
            const std::chrono::steady_clock::time_point op_start =
                timed ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
            exec_op(step.op_index, options.pool, ctx.scratch);
            if (timed)
                level_us[static_cast<std::size_t>(step.level)] +=
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - op_start)
                        .count();
        }
    }
    if (timed)
        for (std::size_t level = 0; level < level_us.size(); ++level)
            (*options.level_hook)(static_cast<int>(level), level_us[level]);

    const int out_id = graph.output_id();
    const tensor::Shape& out_shape = shapes[static_cast<std::size_t>(out_id)];
    tensor::Tensor result(out_shape);
    const float* src = buffers[static_cast<std::size_t>(out_id)];
    std::copy(src, src + out_shape.size(), result.data());
    return result;
}

FloatRunner::FloatRunner(const ir::Graph& graph, int batch_capacity, ThreadPool* pool)
    : plan_(std::make_unique<ExecPlan>(graph, PlanOptions{batch_capacity, true})),
      pool_(pool) {}

tensor::Tensor FloatRunner::run(tensor::TensorView batch) {
    if (batch.shape.n > plan_->batch_capacity())
        // Recompile at the larger capacity, sharing the owned graph.
        plan_ = std::make_unique<ExecPlan>(plan_->graph_shared(),
                                           PlanOptions{batch.shape.n, true});
    RunOptions options;
    options.pool = pool_;
    return exec::run(*plan_, backend_, ctx_, batch, options);
}

}  // namespace raq::exec
