#include "exec/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "exec/kernels.hpp"

namespace raq::exec {

tensor::Tensor run(const ExecPlan& plan, Backend& backend, ExecContext& ctx,
                   tensor::TensorView batch, const RunOptions& options) {
    const ir::Graph& graph = plan.graph();
    if (batch.data == nullptr) throw std::invalid_argument("exec::run: null batch");
    if (!(batch.shape.c == graph.input_shape().c && batch.shape.h == graph.input_shape().h &&
          batch.shape.w == graph.input_shape().w))
        throw std::invalid_argument("exec::run: batch shape does not match graph input");
    const int n = batch.shape.n;
    // Shape cache: steady-state serving re-runs one (plan, batch size)
    // pair, so the O(ops) shape-inference walk happens once, not per run.
    if (ctx.shapes_plan_serial != plan.serial() || ctx.shapes_batch_n != n) {
        ctx.shapes = plan.shapes_for(n);  // validates 1 ≤ n ≤ capacity
        ctx.shapes_plan_serial = plan.serial();
        ctx.shapes_batch_n = n;
    }
    const std::vector<tensor::Shape>& shapes = ctx.shapes;

    ExecContext::reserve(ctx.arena, plan.arena_floats());
    backend.prepare(plan, ctx);

    // Tensor id -> buffer. The input is read in place from the caller's
    // view; everything else lives at its plan-assigned arena offset.
    // assign() reuses the vector's storage after the first run.
    ctx.buffers.assign(static_cast<std::size_t>(graph.num_tensors()), nullptr);
    std::vector<const float*>& buffers = ctx.buffers;
    buffers[static_cast<std::size_t>(graph.input_id())] = batch.data;

    // Per-level profiling accumulates locally and fires the hook once per
    // level after the run; the schedule is level-ordered, so a level's
    // ops are contiguous and a level-change boundary flushes the bucket.
    const bool timed = options.level_hook != nullptr && *options.level_hook != nullptr;
    std::vector<double> level_us;
    if (timed) {
        int max_level = 0;
        for (const OpStep& step : plan.schedule()) max_level = std::max(max_level, step.level);
        level_us.assign(static_cast<std::size_t>(max_level) + 1, 0.0);
    }

    for (const OpStep& step : plan.schedule()) {
        const std::chrono::steady_clock::time_point op_start =
            timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
        const ir::Op& op = graph.ops()[static_cast<std::size_t>(step.op_index)];
        const tensor::Shape& out_shape = shapes[static_cast<std::size_t>(op.output)];
        float* out = ctx.arena.data() + plan.offset_of(op.output);
        const float* in0 = buffers[static_cast<std::size_t>(op.inputs.at(0))];
        const tensor::Shape& in0_shape = shapes[static_cast<std::size_t>(op.inputs.at(0))];

        switch (op.kind) {
            case ir::OpKind::Conv2d: {
                ConvCall call;
                call.op_index = step.op_index;
                call.op = &op;
                call.geom = plan.conv_geom(step.op_index);
                call.in = in0;
                call.in_shape = in0_shape;
                call.out = out;
                call.out_shape = out_shape;
                call.pool = options.pool;
                backend.conv(call, ctx);
                break;
            }
            case ir::OpKind::Relu:
                kernels::relu(in0, out, in0_shape.size());
                break;
            case ir::OpKind::MaxPool2d:
                kernels::maxpool(in0, in0_shape, op.pool.kernel, op.pool.stride, out,
                                 out_shape.h, out_shape.w);
                break;
            case ir::OpKind::GlobalAvgPool:
                kernels::global_avg_pool(in0, in0_shape, out);
                break;
            case ir::OpKind::Add:
                kernels::add(in0, buffers[static_cast<std::size_t>(op.inputs.at(1))], out,
                             in0_shape.size());
                break;
            case ir::OpKind::Concat: {
                std::vector<kernels::ConcatInput> ins;
                ins.reserve(op.inputs.size());
                for (const int id : op.inputs)
                    ins.push_back(kernels::ConcatInput{
                        buffers[static_cast<std::size_t>(id)],
                        shapes[static_cast<std::size_t>(id)].c});
                kernels::concat(ins, out_shape, out);
                break;
            }
        }
        buffers[static_cast<std::size_t>(op.output)] = out;
        if (timed)
            level_us[static_cast<std::size_t>(step.level)] +=
                std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                          op_start)
                    .count();
    }
    if (timed)
        for (std::size_t level = 0; level < level_us.size(); ++level)
            (*options.level_hook)(static_cast<int>(level), level_us[level]);

    const int out_id = graph.output_id();
    const tensor::Shape& out_shape = shapes[static_cast<std::size_t>(out_id)];
    tensor::Tensor result(out_shape);
    const float* src = buffers[static_cast<std::size_t>(out_id)];
    std::copy(src, src + out_shape.size(), result.data());
    return result;
}

FloatRunner::FloatRunner(const ir::Graph& graph, int batch_capacity, ThreadPool* pool)
    : plan_(std::make_unique<ExecPlan>(graph, PlanOptions{batch_capacity, true})),
      pool_(pool) {}

tensor::Tensor FloatRunner::run(tensor::TensorView batch) {
    if (batch.shape.n > plan_->batch_capacity())
        // Recompile at the larger capacity, sharing the owned graph.
        plan_ = std::make_unique<ExecPlan>(plan_->graph_shared(),
                                           PlanOptions{batch.shape.n, true});
    RunOptions options;
    options.pool = pool_;
    return exec::run(*plan_, backend_, ctx_, batch, options);
}

}  // namespace raq::exec
