// ExecContext: the per-thread mutable state of one execution lane — the
// tensor arena plus every conv scratch buffer (float and quantized).
// Contexts are reused across runs (buffers only grow, so steady-state
// serving does zero allocation) and must never be shared by concurrent
// runs: the plan is the shared immutable half, the context the private
// mutable half. The serve runtime keeps one long-lived context per
// device; tests exercise one per worker thread.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace raq::exec {

class ExecPlan;

/// Workspace of one convolution invocation. The engine hands each conv a
/// scratch set that no concurrently running op touches: the context's own
/// set in serial execution, a lane-private one when a whole dependency
/// level fans out over the thread pool.
struct ConvScratch {
    // Float conv scratch.
    std::vector<float> columns;  ///< im2col matrix [kdim, cols]
    std::vector<float> product;  ///< GEMM result [out_c, cols] (batched runs)

    // Quantized conv scratch.
    std::vector<std::uint8_t> qx;          ///< quantized input activation codes
    std::vector<std::uint8_t> u8_columns;  ///< integer im2col matrix
    std::vector<std::int32_t> colsum;      ///< per-column activation code sums
    std::vector<std::int16_t> packed;      ///< interleaved i16 column panel (packed GEMM)
    std::vector<std::int16_t> w16;         ///< widened weight matrix (packed GEMM)
    std::vector<std::int32_t> acc32;       ///< narrow accumulator tile (fast path)
    std::vector<std::int64_t> acc64;       ///< full-width accumulator (injection/overflow-safe)
    /// Lane-private accumulator tiles for channel-split execution of one
    /// conv; persist across convs and runs so pool mode also allocates
    /// nothing in steady state. Indexed by ThreadPool lane.
    std::vector<std::vector<std::int32_t>> lane_acc32;
    std::vector<std::vector<std::int64_t>> lane_acc64;
    std::vector<std::vector<std::int16_t>> lane_packed;
};

struct ExecContext {
    std::vector<float> arena;  ///< all intermediate tensors, plan-assigned offsets

    /// Per-run tensor table and shape cache. Shapes are re-derived only
    /// when (plan, batch size) changes, so a serve loop with a fixed
    /// batch pays the O(ops) inference walk once, not per request.
    std::vector<const float*> buffers;
    std::vector<tensor::Shape> shapes;
    std::uint64_t shapes_plan_serial = 0;  ///< ExecPlan::serial() cache key
    int shapes_batch_n = 0;

    /// Conv workspace for serial execution (and single-op levels).
    ConvScratch scratch;
    /// Lane-private conv workspaces for level-parallel execution, indexed
    /// by ThreadPool lane; grown on first fan-out, then reused forever.
    std::vector<ConvScratch> level_lanes;

    /// Grow-only resize: keeps steady-state runs allocation-free.
    template <typename T>
    static void reserve(std::vector<T>& buffer, std::size_t size) {
        if (buffer.size() < size) buffer.resize(size);
    }
};

}  // namespace raq::exec
