#include "exec/plan_cache.hpp"

#include <algorithm>
#include <utility>

namespace raq::exec {

std::shared_ptr<const ExecPlan> PlanCache::find_locked(std::uint64_t fingerprint,
                                                       int capacity,
                                                       const ir::Graph& graph) {
    for (Entry& entry : entries_) {
        if (entry.fingerprint != fingerprint || entry.capacity != capacity) continue;
        if (!ir::topology_equals(entry.plan->graph(), graph)) continue;  // collision
        entry.last_used = ++tick_;
        ++hits_;
        return entry.plan;
    }
    return nullptr;
}

template <typename BuildFn>
std::shared_ptr<const ExecPlan> PlanCache::lookup(const ir::Graph& graph, int capacity,
                                                  BuildFn build) {
    const std::uint64_t fingerprint = ir::topology_fingerprint(graph);
    {
        const common::MutexLock lock(mutex_);
        if (auto plan = find_locked(fingerprint, capacity, graph)) return plan;
    }
    // Compile outside the lock: plan construction is the expensive part,
    // and a concurrent duplicate build is benign (first insert wins).
    std::shared_ptr<const ExecPlan> plan = build();
    const common::MutexLock lock(mutex_);
    if (auto raced = find_locked(fingerprint, capacity, graph)) return raced;
    ++misses_;
    if (entries_.size() >= max_entries_) {
        const auto lru = std::min_element(
            entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
        entries_.erase(lru);
        ++evictions_;
    }
    entries_.push_back(Entry{fingerprint, capacity, plan, ++tick_});
    return plan;
}

std::shared_ptr<const ExecPlan> PlanCache::get(const ir::Graph& graph, int capacity) {
    return lookup(graph, capacity, [&] {
        return std::make_shared<const ExecPlan>(graph, PlanOptions{capacity, true});
    });
}

std::shared_ptr<const ExecPlan> PlanCache::get(std::shared_ptr<const ir::Graph> graph,
                                               int capacity) {
    const ir::Graph& ref = *graph;
    return lookup(ref, capacity, [&] {
        // Shares the caller's graph — no weight copy on this path.
        return std::make_shared<const ExecPlan>(std::move(graph),
                                                PlanOptions{capacity, true});
    });
}

PlanCacheStats PlanCache::stats() const {
    const common::MutexLock lock(mutex_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = entries_.size();
    return s;
}

void PlanCache::clear() {
    const common::MutexLock lock(mutex_);
    entries_.clear();
}

PlanCache& PlanCache::global() {
    static PlanCache cache;
    return cache;
}

}  // namespace raq::exec
