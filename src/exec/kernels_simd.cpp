#include "exec/kernels_simd.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define RAQ_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#define RAQ_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace raq::exec::kernels_simd {

namespace {

/// Scalar reference: the same i32 dot products every SIMD tier computes.
/// Also used by the vector kernels for row/column/k remainders, where it
/// is exact by the same argument (integer adds reassociate freely).
void gemm_u8_block_scalar(const std::uint8_t* w, std::size_t w_stride, std::size_t r0,
                          std::size_t rows, const std::uint8_t* cols,
                          std::size_t col_stride, std::size_t kdim, std::size_t j0,
                          std::size_t n, std::int32_t* acc, std::size_t acc_stride) {
    for (std::size_t r = r0; r < r0 + rows; ++r) {
        const std::uint8_t* wrow = w + r * w_stride;
        std::int32_t* arow = acc + r * acc_stride;
        for (std::size_t j = j0; j < n; ++j) {
            std::int32_t sum = 0;
            for (std::size_t k = 0; k < kdim; ++k)
                sum += static_cast<std::int32_t>(wrow[k]) *
                       static_cast<std::int32_t>(cols[k * col_stride + j]);
            arow[j] = sum;
        }
    }
}

void gemm_u8_scalar(const std::uint8_t* w, std::size_t w_stride, std::size_t rows,
                    const std::uint8_t* cols, std::size_t col_stride, std::size_t kdim,
                    std::size_t n, std::int32_t* acc, std::size_t acc_stride) {
    gemm_u8_block_scalar(w, w_stride, 0, rows, cols, col_stride, kdim, 0, n, acc,
                         acc_stride);
}

/// Scalar remainder of the vector quantize loops: the same expression as
/// quant::QuantParams::quantize, with the activation mask applied.
[[maybe_unused]] void quantize_u8_tail(const float* in, std::size_t begin, std::size_t n, float scale,
                      std::int32_t zero_point, std::int32_t qmax, std::uint8_t mask,
                      std::uint8_t* out) {
    for (std::size_t i = begin; i < n; ++i) {
        const float q = std::nearbyint(in[i] / scale) + static_cast<float>(zero_point);
        const float clamped = std::min(std::max(q, 0.0f), static_cast<float>(qmax));
        out[i] = static_cast<std::uint8_t>(static_cast<std::int32_t>(clamped)) & mask;
    }
}

#if RAQ_SIMD_X86

/// Weight k-pair broadcast for pmaddwd: lanes hold the i16 pair [w_k, w_k+1],
/// multiplying the interleaved activation pair [a_k, a_k+1] per column.
/// Max pair sum 2·255·255 = 130050 — far inside i32, so no saturation.
inline int weight_pair(const std::uint8_t* wrow, std::size_t k) {
    const std::uint32_t w0 = wrow[k];
    const std::uint32_t w1 = wrow[k + 1];
    return static_cast<int>(w0 | (w1 << 16));
}

__attribute__((target("sse4.1"))) void gemm_u8_sse41(
    const std::uint8_t* w, std::size_t w_stride, std::size_t rows,
    const std::uint8_t* cols, std::size_t col_stride, std::size_t kdim, std::size_t n,
    std::int32_t* acc, std::size_t acc_stride) {
    for (std::size_t r0 = 0; r0 < rows; r0 += kGemmU8RowBlock) {
        const std::size_t mr = std::min(kGemmU8RowBlock, rows - r0);
        std::size_t j = 0;
        for (; j + 8 <= n; j += 8) {
            __m128i acc_lo[kGemmU8RowBlock];  // columns j+0..3
            __m128i acc_hi[kGemmU8RowBlock];  // columns j+4..7
            for (std::size_t r = 0; r < mr; ++r) {
                acc_lo[r] = _mm_setzero_si128();
                acc_hi[r] = _mm_setzero_si128();
            }
            std::size_t k = 0;
            for (; k + 2 <= kdim; k += 2) {
                const std::uint8_t* c0 = cols + k * col_stride + j;
                const std::uint8_t* c1 = c0 + col_stride;
                const __m128i a0 = _mm_cvtepu8_epi16(
                    _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c0)));
                const __m128i a1 = _mm_cvtepu8_epi16(
                    _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c1)));
                const __m128i lo = _mm_unpacklo_epi16(a0, a1);
                const __m128i hi = _mm_unpackhi_epi16(a0, a1);
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m128i wp = _mm_set1_epi32(weight_pair(w + (r0 + r) * w_stride, k));
                    acc_lo[r] = _mm_add_epi32(acc_lo[r], _mm_madd_epi16(lo, wp));
                    acc_hi[r] = _mm_add_epi32(acc_hi[r], _mm_madd_epi16(hi, wp));
                }
            }
            if (k < kdim) {  // odd kdim: pair the last row with zeros
                const std::uint8_t* c0 = cols + k * col_stride + j;
                const __m128i a0 = _mm_cvtepu8_epi16(
                    _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c0)));
                const __m128i zero = _mm_setzero_si128();
                const __m128i lo = _mm_unpacklo_epi16(a0, zero);
                const __m128i hi = _mm_unpackhi_epi16(a0, zero);
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m128i wp =
                        _mm_set1_epi32(static_cast<int>(w[(r0 + r) * w_stride + k]));
                    acc_lo[r] = _mm_add_epi32(acc_lo[r], _mm_madd_epi16(lo, wp));
                    acc_hi[r] = _mm_add_epi32(acc_hi[r], _mm_madd_epi16(hi, wp));
                }
            }
            for (std::size_t r = 0; r < mr; ++r) {
                std::int32_t* out = acc + (r0 + r) * acc_stride + j;
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out), acc_lo[r]);
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4), acc_hi[r]);
            }
        }
        if (j < n)
            gemm_u8_block_scalar(w, w_stride, r0, mr, cols, col_stride, kdim, j, n, acc,
                                 acc_stride);
    }
}

__attribute__((target("avx2"))) void gemm_u8_avx2(
    const std::uint8_t* w, std::size_t w_stride, std::size_t rows,
    const std::uint8_t* cols, std::size_t col_stride, std::size_t kdim, std::size_t n,
    std::int32_t* acc, std::size_t acc_stride) {
    for (std::size_t r0 = 0; r0 < rows; r0 += kGemmU8RowBlock) {
        const std::size_t mr = std::min(kGemmU8RowBlock, rows - r0);
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16) {
            // 256-bit unpack interleaves within 128-bit lanes, so acc_lo
            // holds columns {0..3, 8..11} and acc_hi {4..7, 12..15}; the
            // permutation is constant across k and undone once at store.
            __m256i acc_lo[kGemmU8RowBlock];
            __m256i acc_hi[kGemmU8RowBlock];
            for (std::size_t r = 0; r < mr; ++r) {
                acc_lo[r] = _mm256_setzero_si256();
                acc_hi[r] = _mm256_setzero_si256();
            }
            std::size_t k = 0;
            for (; k + 2 <= kdim; k += 2) {
                const std::uint8_t* c0 = cols + k * col_stride + j;
                const std::uint8_t* c1 = c0 + col_stride;
                const __m256i a0 = _mm256_cvtepu8_epi16(
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0)));
                const __m256i a1 = _mm256_cvtepu8_epi16(
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(c1)));
                const __m256i lo = _mm256_unpacklo_epi16(a0, a1);
                const __m256i hi = _mm256_unpackhi_epi16(a0, a1);
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m256i wp =
                        _mm256_set1_epi32(weight_pair(w + (r0 + r) * w_stride, k));
                    acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, wp));
                    acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, wp));
                }
            }
            if (k < kdim) {
                const std::uint8_t* c0 = cols + k * col_stride + j;
                const __m256i a0 = _mm256_cvtepu8_epi16(
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0)));
                const __m256i zero = _mm256_setzero_si256();
                const __m256i lo = _mm256_unpacklo_epi16(a0, zero);
                const __m256i hi = _mm256_unpackhi_epi16(a0, zero);
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m256i wp =
                        _mm256_set1_epi32(static_cast<int>(w[(r0 + r) * w_stride + k]));
                    acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, wp));
                    acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, wp));
                }
            }
            for (std::size_t r = 0; r < mr; ++r) {
                std::int32_t* out = acc + (r0 + r) * acc_stride + j;
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                                    _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                                    _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
            }
        }
        if (j < n)
            gemm_u8_block_scalar(w, w_stride, r0, mr, cols, col_stride, kdim, j, n, acc,
                                 acc_stride);
    }
}

__attribute__((target("sse4.1"))) void pack_cols_sse41(const std::uint8_t* cols,
                                                       std::size_t col_stride,
                                                       std::size_t kdim, std::size_t n,
                                                       std::int16_t* packed) {
    const std::size_t groups = n / 8;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t* base = cols + g * 8;
        std::int16_t* dst = packed;
        packed += ((kdim + 1) / 2) * 16;
        std::size_t k = 0;
        for (; k + 2 <= kdim; k += 2, dst += 16) {
            const __m128i a0 = _mm_cvtepu8_epi16(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(base + k * col_stride)));
            const __m128i a1 = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(base + (k + 1) * col_stride)));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm_unpacklo_epi16(a0, a1));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 8), _mm_unpackhi_epi16(a0, a1));
        }
        if (k < kdim) {  // odd kdim: the pair's second element is zero
            const __m128i a0 = _mm_cvtepu8_epi16(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(base + k * col_stride)));
            const __m128i zero = _mm_setzero_si128();
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm_unpacklo_epi16(a0, zero));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 8),
                             _mm_unpackhi_epi16(a0, zero));
        }
    }
}

__attribute__((target("sse4.1"))) void gemm_packed_sse41(
    const std::int16_t* w16, std::size_t w_stride, std::size_t rows,
    const std::int16_t* packed, std::size_t kdim, std::size_t n, std::int32_t* acc,
    std::size_t acc_stride) {
    const std::size_t groups = n / 8;
    const std::size_t kp = (kdim + 1) / 2;
    for (std::size_t r0 = 0; r0 < rows; r0 += kGemmU8RowBlock) {
        const std::size_t mr = std::min(kGemmU8RowBlock, rows - r0);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::int16_t* src = packed + g * kp * 16;
            __m128i acc_lo[kGemmU8RowBlock];  // columns j+0..3
            __m128i acc_hi[kGemmU8RowBlock];  // columns j+4..7
            for (std::size_t r = 0; r < mr; ++r) {
                acc_lo[r] = _mm_setzero_si128();
                acc_hi[r] = _mm_setzero_si128();
            }
            for (std::size_t p = 0; p < kp; ++p, src += 16) {
                const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
                const __m128i hi =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8));
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m128i wp = _mm_set1_epi32(*reinterpret_cast<const int*>(
                        w16 + (r0 + r) * w_stride + 2 * p));
                    acc_lo[r] = _mm_add_epi32(acc_lo[r], _mm_madd_epi16(lo, wp));
                    acc_hi[r] = _mm_add_epi32(acc_hi[r], _mm_madd_epi16(hi, wp));
                }
            }
            for (std::size_t r = 0; r < mr; ++r) {
                std::int32_t* out = acc + (r0 + r) * acc_stride + g * 8;
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out), acc_lo[r]);
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4), acc_hi[r]);
            }
        }
    }
}

__attribute__((target("avx2"))) void pack_cols_avx2(const std::uint8_t* cols,
                                                    std::size_t col_stride,
                                                    std::size_t kdim, std::size_t n,
                                                    std::int16_t* packed) {
    const std::size_t groups = n / 16;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t* base = cols + g * 16;
        std::int16_t* dst = packed;
        packed += ((kdim + 1) / 2) * 32;
        std::size_t k = 0;
        for (; k + 2 <= kdim; k += 2, dst += 32) {
            const __m256i a0 = _mm256_cvtepu8_epi16(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + k * col_stride)));
            const __m256i a1 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(base + (k + 1) * col_stride)));
            // Same lane-local interleave as the unpacked kernel: groups
            // carry columns {0..3, 8..11} then {4..7, 12..15}; the GEMM
            // un-permutes once at its store, so the layout cancels out.
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                                _mm256_unpacklo_epi16(a0, a1));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16),
                                _mm256_unpackhi_epi16(a0, a1));
        }
        if (k < kdim) {  // odd kdim: the pair's second element is zero
            const __m256i a0 = _mm256_cvtepu8_epi16(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + k * col_stride)));
            const __m256i zero = _mm256_setzero_si256();
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                                _mm256_unpacklo_epi16(a0, zero));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16),
                                _mm256_unpackhi_epi16(a0, zero));
        }
    }
}

__attribute__((target("avx2"))) void gemm_packed_avx2(
    const std::int16_t* w16, std::size_t w_stride, std::size_t rows,
    const std::int16_t* packed, std::size_t kdim, std::size_t n, std::int32_t* acc,
    std::size_t acc_stride) {
    const std::size_t groups = n / 16;
    const std::size_t kp = (kdim + 1) / 2;
    for (std::size_t r0 = 0; r0 < rows; r0 += kGemmU8RowBlock) {
        const std::size_t mr = std::min(kGemmU8RowBlock, rows - r0);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::int16_t* src = packed + g * kp * 32;
            __m256i acc_lo[kGemmU8RowBlock];
            __m256i acc_hi[kGemmU8RowBlock];
            for (std::size_t r = 0; r < mr; ++r) {
                acc_lo[r] = _mm256_setzero_si256();
                acc_hi[r] = _mm256_setzero_si256();
            }
            for (std::size_t p = 0; p < kp; ++p, src += 32) {
                const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
                const __m256i hi =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 16));
                for (std::size_t r = 0; r < mr; ++r) {
                    const __m256i wp = _mm256_set1_epi32(*reinterpret_cast<const int*>(
                        w16 + (r0 + r) * w_stride + 2 * p));
                    acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, wp));
                    acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, wp));
                }
            }
            for (std::size_t r = 0; r < mr; ++r) {
                std::int32_t* out = acc + (r0 + r) * acc_stride + g * 16;
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                                    _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                                    _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
            }
        }
    }
}

/// f64 epilogue (see EpilogueFn): every operand is an exact integer in
/// f64, so mul/sub/add are exact and cvtpd→ps is the one rounding the
/// scalar i64→f32 cast performs.
__attribute__((target("sse4.1"))) void epilogue_sse41(const std::int32_t* acc,
                                                      const std::int32_t* colsum,
                                                      std::size_t n, std::int32_t zw,
                                                      std::int64_t qb, float scale,
                                                      float* out) {
    const __m128d vzw = _mm_set1_pd(static_cast<double>(zw));
    const __m128d vqb = _mm_set1_pd(static_cast<double>(qb));
    const __m128 vscale = _mm_set1_ps(scale);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128i ai = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j));
        const __m128i ci = _mm_loadu_si128(reinterpret_cast<const __m128i*>(colsum + j));
        const __m128d a01 = _mm_cvtepi32_pd(ai);
        const __m128d a23 = _mm_cvtepi32_pd(_mm_srli_si128(ai, 8));
        const __m128d c01 = _mm_cvtepi32_pd(ci);
        const __m128d c23 = _mm_cvtepi32_pd(_mm_srli_si128(ci, 8));
        const __m128d r01 = _mm_add_pd(_mm_sub_pd(a01, _mm_mul_pd(vzw, c01)), vqb);
        const __m128d r23 = _mm_add_pd(_mm_sub_pd(a23, _mm_mul_pd(vzw, c23)), vqb);
        const __m128 f = _mm_movelh_ps(_mm_cvtpd_ps(r01), _mm_cvtpd_ps(r23));
        _mm_storeu_ps(out + j, _mm_mul_ps(f, vscale));
    }
    for (; j < n; ++j) {
        const std::int64_t corrected =
            static_cast<std::int64_t>(acc[j]) - static_cast<std::int64_t>(zw) * colsum[j] + qb;
        out[j] = static_cast<float>(corrected) * scale;
    }
}

__attribute__((target("avx2"))) void epilogue_avx2(const std::int32_t* acc,
                                                   const std::int32_t* colsum,
                                                   std::size_t n, std::int32_t zw,
                                                   std::int64_t qb, float scale,
                                                   float* out) {
    const __m256d vzw = _mm256_set1_pd(static_cast<double>(zw));
    const __m256d vqb = _mm256_set1_pd(static_cast<double>(qb));
    const __m256 vscale = _mm256_set1_ps(scale);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m128i a_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j));
        const __m128i a_hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j + 4));
        const __m128i c_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(colsum + j));
        const __m128i c_hi =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(colsum + j + 4));
        const __m256d r_lo = _mm256_add_pd(
            _mm256_sub_pd(_mm256_cvtepi32_pd(a_lo),
                          _mm256_mul_pd(vzw, _mm256_cvtepi32_pd(c_lo))),
            vqb);
        const __m256d r_hi = _mm256_add_pd(
            _mm256_sub_pd(_mm256_cvtepi32_pd(a_hi),
                          _mm256_mul_pd(vzw, _mm256_cvtepi32_pd(c_hi))),
            vqb);
        const __m256 f = _mm256_set_m128(_mm256_cvtpd_ps(r_hi), _mm256_cvtpd_ps(r_lo));
        _mm256_storeu_ps(out + j, _mm256_mul_ps(f, vscale));
    }
    for (; j < n; ++j) {
        const std::int64_t corrected =
            static_cast<std::int64_t>(acc[j]) - static_cast<std::int64_t>(zw) * colsum[j] + qb;
        out[j] = static_cast<float>(corrected) * scale;
    }
}

__attribute__((target("sse4.1"))) void colsum_sse41(const std::uint8_t* cols,
                                                    std::size_t kdim, std::size_t n,
                                                    std::int32_t* colsum) {
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m128i s[4];
        for (int b = 0; b < 4; ++b) s[b] = _mm_setzero_si128();
        for (std::size_t k = 0; k < kdim; ++k) {
            const __m128i row =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + k * n + j));
            s[0] = _mm_add_epi32(s[0], _mm_cvtepu8_epi32(row));
            s[1] = _mm_add_epi32(s[1], _mm_cvtepu8_epi32(_mm_srli_si128(row, 4)));
            s[2] = _mm_add_epi32(s[2], _mm_cvtepu8_epi32(_mm_srli_si128(row, 8)));
            s[3] = _mm_add_epi32(s[3], _mm_cvtepu8_epi32(_mm_srli_si128(row, 12)));
        }
        for (int b = 0; b < 4; ++b)
            _mm_storeu_si128(reinterpret_cast<__m128i*>(colsum + j + 4 * b), s[b]);
    }
    for (; j < n; ++j) {
        std::int32_t s = 0;
        for (std::size_t k = 0; k < kdim; ++k) s += cols[k * n + j];
        colsum[j] = s;
    }
}

__attribute__((target("avx2"))) void colsum_avx2(const std::uint8_t* cols,
                                                 std::size_t kdim, std::size_t n,
                                                 std::int32_t* colsum) {
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
        __m256i s[4];
        for (int b = 0; b < 4; ++b) s[b] = _mm256_setzero_si256();
        for (std::size_t k = 0; k < kdim; ++k) {
            const std::uint8_t* row = cols + k * n + j;
            for (int b = 0; b < 4; ++b) {
                const __m128i bytes =
                    _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + 8 * b));
                s[b] = _mm256_add_epi32(s[b], _mm256_cvtepu8_epi32(bytes));
            }
        }
        for (int b = 0; b < 4; ++b)
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + j + 8 * b), s[b]);
    }
    for (; j < n; ++j) {
        std::int32_t s = 0;
        for (std::size_t k = 0; k < kdim; ++k) s += cols[k * n + j];
        colsum[j] = s;
    }
}

/// One 4-float quantize step (lambdas cannot carry target attributes, so
/// these helpers are standalone and force-inlined into their callers).
__attribute__((target("sse4.1"), always_inline)) inline __m128i quant4_sse41(
    const float* in, __m128 vscale, __m128 vzp, __m128 vzero, __m128 vqmax) {
    __m128 q = _mm_div_ps(_mm_loadu_ps(in), vscale);
    q = _mm_round_ps(q, _MM_FROUND_CUR_DIRECTION);  // == nearbyint
    q = _mm_min_ps(_mm_max_ps(_mm_add_ps(q, vzp), vzero), vqmax);
    return _mm_cvtps_epi32(q);  // integral-valued: conversion is exact
}

__attribute__((target("sse4.1"))) void quantize_u8_sse41(
    const float* in, std::size_t n, float scale, std::int32_t zero_point,
    std::int32_t qmax, std::uint8_t mask, std::uint8_t* out) {
    const __m128 vscale = _mm_set1_ps(scale);
    const __m128 vzp = _mm_set1_ps(static_cast<float>(zero_point));
    const __m128 vzero = _mm_setzero_ps();
    const __m128 vqmax = _mm_set1_ps(static_cast<float>(qmax));
    const __m128i vmask = _mm_set1_epi8(static_cast<char>(mask));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i p01 = _mm_packus_epi32(quant4_sse41(in + i, vscale, vzp, vzero, vqmax),
                                             quant4_sse41(in + i + 4, vscale, vzp, vzero, vqmax));
        const __m128i p23 = _mm_packus_epi32(quant4_sse41(in + i + 8, vscale, vzp, vzero, vqmax),
                                             quant4_sse41(in + i + 12, vscale, vzp, vzero, vqmax));
        const __m128i bytes = _mm_and_si128(_mm_packus_epi16(p01, p23), vmask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), bytes);
    }
    quantize_u8_tail(in, i, n, scale, zero_point, qmax, mask, out);
}

__attribute__((target("avx2"), always_inline)) inline __m256i quant8_avx2(
    const float* in, __m256 vscale, __m256 vzp, __m256 vzero, __m256 vqmax) {
    __m256 q = _mm256_div_ps(_mm256_loadu_ps(in), vscale);
    q = _mm256_round_ps(q, _MM_FROUND_CUR_DIRECTION);  // == nearbyint
    q = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(q, vzp), vzero), vqmax);
    return _mm256_cvtps_epi32(q);  // integral-valued: conversion is exact
}

__attribute__((target("avx2"))) void quantize_u8_avx2(
    const float* in, std::size_t n, float scale, std::int32_t zero_point,
    std::int32_t qmax, std::uint8_t mask, std::uint8_t* out) {
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 vzp = _mm256_set1_ps(static_cast<float>(zero_point));
    const __m256 vzero = _mm256_setzero_ps();
    const __m256 vqmax = _mm256_set1_ps(static_cast<float>(qmax));
    const __m256i vmask = _mm256_set1_epi8(static_cast<char>(mask));
    // packus interleaves 128-bit lanes; this permutation restores byte
    // order after the two packing steps.
    const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i p01 = _mm256_packus_epi32(quant8_avx2(in + i, vscale, vzp, vzero, vqmax),
                                                quant8_avx2(in + i + 8, vscale, vzp, vzero, vqmax));
        const __m256i p23 = _mm256_packus_epi32(quant8_avx2(in + i + 16, vscale, vzp, vzero, vqmax),
                                                quant8_avx2(in + i + 24, vscale, vzp, vzero, vqmax));
        const __m256i packed = _mm256_packus_epi16(p01, p23);
        const __m256i bytes =
            _mm256_and_si256(_mm256_permutevar8x32_epi32(packed, unshuffle), vmask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bytes);
    }
    quantize_u8_tail(in, i, n, scale, zero_point, qmax, mask, out);
}

#endif  // RAQ_SIMD_X86

#if RAQ_SIMD_NEON

void gemm_u8_neon(const std::uint8_t* w, std::size_t w_stride, std::size_t rows,
                  const std::uint8_t* cols, std::size_t col_stride, std::size_t kdim,
                  std::size_t n, std::int32_t* acc, std::size_t acc_stride) {
    for (std::size_t r0 = 0; r0 < rows; r0 += kGemmU8RowBlock) {
        const std::size_t mr = std::min(kGemmU8RowBlock, rows - r0);
        std::size_t j = 0;
        for (; j + 8 <= n; j += 8) {
            uint32x4_t acc_lo[kGemmU8RowBlock];
            uint32x4_t acc_hi[kGemmU8RowBlock];
            for (std::size_t r = 0; r < mr; ++r) {
                acc_lo[r] = vdupq_n_u32(0);
                acc_hi[r] = vdupq_n_u32(0);
            }
            for (std::size_t k = 0; k < kdim; ++k) {
                const uint16x8_t a = vmovl_u8(vld1_u8(cols + k * col_stride + j));
                const uint16x4_t a_lo = vget_low_u16(a);
                const uint16x4_t a_hi = vget_high_u16(a);
                for (std::size_t r = 0; r < mr; ++r) {
                    const uint16x4_t wv =
                        vdup_n_u16(static_cast<std::uint16_t>(w[(r0 + r) * w_stride + k]));
                    acc_lo[r] = vmlal_u16(acc_lo[r], a_lo, wv);
                    acc_hi[r] = vmlal_u16(acc_hi[r], a_hi, wv);
                }
            }
            for (std::size_t r = 0; r < mr; ++r) {
                // Sums are ≤ kdim·255² ≤ INT32_MAX (acc32_safe), so the
                // unsigned accumulators reinterpret exactly to i32.
                std::int32_t* out = acc + (r0 + r) * acc_stride + j;
                vst1q_s32(out, vreinterpretq_s32_u32(acc_lo[r]));
                vst1q_s32(out + 4, vreinterpretq_s32_u32(acc_hi[r]));
            }
        }
        if (j < n)
            gemm_u8_block_scalar(w, w_stride, r0, mr, cols, col_stride, kdim, j, n, acc,
                                 acc_stride);
    }
}

#if defined(__aarch64__)

void quantize_u8_neon(const float* in, std::size_t n, float scale,
                      std::int32_t zero_point, std::int32_t qmax, std::uint8_t mask,
                      std::uint8_t* out) {
    const float32x4_t vscale = vdupq_n_f32(scale);
    const float32x4_t vzp = vdupq_n_f32(static_cast<float>(zero_point));
    const float32x4_t vzero = vdupq_n_f32(0.0f);
    const float32x4_t vqmax = vdupq_n_f32(static_cast<float>(qmax));
    const uint8x8_t vmask = vdup_n_u8(mask);
    const auto quant4 = [&](std::size_t i) {
        float32x4_t q = vrndiq_f32(vdivq_f32(vld1q_f32(in + i), vscale));  // frinti == nearbyint
        q = vminq_f32(vmaxq_f32(vaddq_f32(q, vzp), vzero), vqmax);
        return vreinterpretq_u32_s32(vcvtq_s32_f32(q));  // integral-valued: exact
    };
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint16x4_t lo = vmovn_u32(quant4(i));
        const uint16x4_t hi = vmovn_u32(quant4(i + 4));
        const uint8x8_t bytes = vand_u8(vmovn_u16(vcombine_u16(lo, hi)), vmask);
        vst1_u8(out + i, bytes);
    }
    quantize_u8_tail(in, i, n, scale, zero_point, qmax, mask, out);
}

#endif  // __aarch64__

#endif  // RAQ_SIMD_NEON

std::vector<KernelTier> detect_tiers() {
    std::vector<KernelTier> tiers{KernelTier::Scalar};
#if RAQ_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("sse4.1")) tiers.push_back(KernelTier::Sse41);
    if (__builtin_cpu_supports("avx2")) tiers.push_back(KernelTier::Avx2);
#endif
#if RAQ_SIMD_NEON
    tiers.push_back(KernelTier::Neon);
#endif
    return tiers;
}

KernelTier select_tier() {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (const char* env = std::getenv("RAQ_KERNEL_TIER")) {
        std::string want(env);
        std::transform(want.begin(), want.end(), want.begin(),
                       [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
        for (const KernelTier t : tiers)
            if (want == tier_name(t)) return t;
        // Unknown or unavailable name: fall through to the detected best.
    }
    return tiers.back();
}

}  // namespace

const char* tier_name(KernelTier tier) {
    switch (tier) {
        case KernelTier::Scalar: return "scalar";
        case KernelTier::Sse41: return "sse41";
        case KernelTier::Avx2: return "avx2";
        case KernelTier::Neon: return "neon";
    }
    return "scalar";
}

const std::vector<KernelTier>& available_tiers() {
    static const std::vector<KernelTier> tiers = detect_tiers();
    return tiers;
}

KernelTier active_tier() {
    static const KernelTier tier = select_tier();
    return tier;
}

QuantizeU8Fn quantize_u8_kernel(KernelTier tier) {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (std::find(tiers.begin(), tiers.end(), tier) == tiers.end()) return nullptr;
    switch (tier) {
#if RAQ_SIMD_X86
        case KernelTier::Sse41:
            return &quantize_u8_sse41;
        case KernelTier::Avx2:
            return &quantize_u8_avx2;
#endif
#if defined(__aarch64__)
        case KernelTier::Neon:
            return &quantize_u8_neon;
#endif
        default:
            return nullptr;
    }
}

void widen_weights_u8(const std::uint8_t* w, std::size_t rows, std::size_t kdim,
                      std::int16_t* w16) {
    const std::size_t stride = kdim + (kdim & 1);
    for (std::size_t r = 0; r < rows; ++r) {
        std::int16_t* dst = w16 + r * stride;
        for (std::size_t k = 0; k < kdim; ++k)
            dst[k] = static_cast<std::int16_t>(w[r * kdim + k]);
        if (kdim & 1) dst[kdim] = 0;
    }
}

PackedKernels packed_kernels(KernelTier tier) {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (std::find(tiers.begin(), tiers.end(), tier) == tiers.end()) return {};
    switch (tier) {
#if RAQ_SIMD_X86
        case KernelTier::Sse41:
            return {&pack_cols_sse41, &gemm_packed_sse41, 8};
        case KernelTier::Avx2:
            return {&pack_cols_avx2, &gemm_packed_avx2, 16};
#endif
        default:
            return {};
    }
}

EpilogueFn epilogue_kernel(KernelTier tier) {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (std::find(tiers.begin(), tiers.end(), tier) == tiers.end()) return nullptr;
    switch (tier) {
#if RAQ_SIMD_X86
        case KernelTier::Sse41:
            return &epilogue_sse41;
        case KernelTier::Avx2:
            return &epilogue_avx2;
#endif
        default:
            return nullptr;
    }
}

ColSumFn colsum_kernel(KernelTier tier) {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (std::find(tiers.begin(), tiers.end(), tier) == tiers.end()) return nullptr;
    switch (tier) {
#if RAQ_SIMD_X86
        case KernelTier::Sse41:
            return &colsum_sse41;
        case KernelTier::Avx2:
            return &colsum_avx2;
#endif
        default:
            return nullptr;
    }
}

GemmU8Fn gemm_u8_kernel(KernelTier tier) {
    const std::vector<KernelTier>& tiers = available_tiers();
    if (std::find(tiers.begin(), tiers.end(), tier) == tiers.end())
        return &gemm_u8_scalar;
    switch (tier) {
        case KernelTier::Scalar:
            return &gemm_u8_scalar;
#if RAQ_SIMD_X86
        case KernelTier::Sse41:
            return &gemm_u8_sse41;
        case KernelTier::Avx2:
            return &gemm_u8_avx2;
#endif
#if RAQ_SIMD_NEON
        case KernelTier::Neon:
            return &gemm_u8_neon;
#endif
        default:
            return &gemm_u8_scalar;
    }
}

}  // namespace raq::exec::kernels_simd
