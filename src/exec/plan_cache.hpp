// PlanCache: shared, thread-safe cache of compiled ExecPlans keyed by
// (graph topology fingerprint, batch capacity).
//
// An ExecPlan depends only on the graph *structure* (schedule, lifetimes,
// arena layout, conv geometry), never on weights — so every
// re-quantization of one model, and every one-shot wrapper call over the
// same architecture, can share one compiled plan. Before this cache, the
// background re-quantization path and `run_quantized` recompiled a plan
// per call; now repeated re-quantizations of the same topology recompile
// zero plans.
//
// Safety: a cached plan embeds the ir::Graph it was first compiled from.
// That is sound for the *quantized* path, where QuantBackend reads all
// numeric payload from the bound QuantizedGraph and only geometry from
// the plan's graph. It is NOT sound for the float path — FloatBackend
// reads `op.weights` from the plan's embedded graph — which is why
// FloatRunner keeps compiling private plans and does not use this cache.
//
// Keys use ir::topology_fingerprint; collisions are resolved with
// ir::topology_equals, so a hit is structurally exact. Entries are
// evicted least-recently-used beyond `max_entries`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "exec/plan.hpp"

namespace raq::exec {

struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    ///< each miss is one ExecPlan compilation
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
};

class PlanCache {
public:
    explicit PlanCache(std::size_t max_entries = 64) : max_entries_(max_entries) {}

    /// Return the cached plan for (topology of `graph`, `capacity`),
    /// compiling (with buffer reuse on) and inserting it on a miss. The
    /// returned plan may embed a different — but structurally identical —
    /// graph than `graph`. A miss copies `graph` into the plan; prefer
    /// the shared_ptr overload when the caller already owns a shared
    /// graph (the runner capacity-growth path), which compiles without
    /// copying.
    [[nodiscard]] std::shared_ptr<const ExecPlan> get(const ir::Graph& graph, int capacity)
        RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::shared_ptr<const ExecPlan> get(
        std::shared_ptr<const ir::Graph> graph, int capacity) RAQ_EXCLUDES(mutex_);

    [[nodiscard]] PlanCacheStats stats() const RAQ_EXCLUDES(mutex_);
    void clear() RAQ_EXCLUDES(mutex_);

    /// The process-wide cache the quantized runners use.
    static PlanCache& global();

private:
    struct Entry {
        std::uint64_t fingerprint = 0;
        int capacity = 0;
        std::shared_ptr<const ExecPlan> plan;
        std::uint64_t last_used = 0;
    };

    /// Lookup, or insert the plan `build()` compiles on a miss.
    template <typename BuildFn>
    std::shared_ptr<const ExecPlan> lookup(const ir::Graph& graph, int capacity,
                                           BuildFn build) RAQ_EXCLUDES(mutex_);
    std::shared_ptr<const ExecPlan> find_locked(std::uint64_t fingerprint, int capacity,
                                                const ir::Graph& graph)
        RAQ_REQUIRES(mutex_);

    const std::size_t max_entries_;
    mutable common::Mutex mutex_;
    std::vector<Entry> entries_ RAQ_GUARDED_BY(mutex_);
    std::uint64_t tick_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t hits_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t evictions_ RAQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace raq::exec
