#include "exec/backend.hpp"

#include <cstring>

#include "exec/kernels.hpp"
#include "tensor/gemm.hpp"

namespace raq::exec {

void FloatBackend::prepare(const ExecPlan& plan, ExecContext& ctx) const {
    ExecContext::reserve(ctx.scratch.columns, plan.max_columns());
    ExecContext::reserve(ctx.scratch.product, plan.max_product_floats());
}

void FloatBackend::conv(const ConvCall& call, ExecContext& ctx) {
    (void)ctx;
    const ir::Op& op = *call.op;
    const ConvGeom& g = *call.geom;
    ConvScratch& scr = *call.scratch;
    const tensor::Shape& s = call.in_shape;
    const std::size_t cols = static_cast<std::size_t>(s.n) * g.hw;

    ExecContext::reserve(scr.columns, g.kdim * cols);
    kernels::im2col(call.in, s, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad,
                    scr.columns.data(), g.oh, g.ow, g.zero_columns);

    const auto gemm_rows = [&](float* c, std::size_t oc_begin, std::size_t oc_end) {
        tensor::gemm(op.weights.data() + oc_begin * g.kdim, scr.columns.data(),
                     c + oc_begin * cols, oc_end - oc_begin, g.kdim, cols);
    };

    if (s.n == 1) {
        // Single-sample fast path: the [oc, cols] GEMM result already is
        // the (1, oc, oh, ow) output layout — GEMM straight into the
        // output buffer, then the bias in place. Same float ops as the
        // product-buffer path, so still bit-identical.
        const auto run = [&](std::size_t oc_begin, std::size_t oc_end) {
            gemm_rows(call.out, oc_begin, oc_end);
            for (std::size_t oc = oc_begin; oc < oc_end; ++oc) {
                const float b = op.bias[oc];
                float* row = call.out + oc * g.hw;
                for (std::size_t i = 0; i < g.hw; ++i) row[i] += b;
            }
        };
        if (call.pool)
            call.pool->parallel_for(
                static_cast<std::size_t>(op.conv.out_c),
                [&](std::size_t, std::size_t b, std::size_t e) { run(b, e); });
        else
            run(0, static_cast<std::size_t>(op.conv.out_c));
        return;
    }

    ExecContext::reserve(scr.product, static_cast<std::size_t>(op.conv.out_c) * cols);
    // product is [oc, n*oh*ow]; output layout is [n, oc, oh, ow].
    const auto run = [&](std::size_t oc_begin, std::size_t oc_end) {
        gemm_rows(scr.product.data(), oc_begin, oc_end);
        for (int n = 0; n < s.n; ++n)
            for (std::size_t oc = oc_begin; oc < oc_end; ++oc) {
                const float b = op.bias[oc];
                const float* src =
                    scr.product.data() + oc * cols + static_cast<std::size_t>(n) * g.hw;
                float* dst = call.out +
                             (static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(op.conv.out_c) +
                              oc) *
                                 g.hw;
                for (std::size_t i = 0; i < g.hw; ++i) dst[i] = src[i] + b;
            }
    };
    if (call.pool)
        call.pool->parallel_for(
            static_cast<std::size_t>(op.conv.out_c),
            [&](std::size_t, std::size_t b, std::size_t e) { run(b, e); });
    else
        run(0, static_cast<std::size_t>(op.conv.out_c));
}

}  // namespace raq::exec
