// Raw-pointer op kernels shared by every backend. Each kernel writes into
// a caller-provided (arena) buffer and mirrors the seed interpreter's loop
// structure exactly, element for element — planned execution is bit-
// identical to the reference walker by construction, not by accident.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace raq::exec::kernels {

void relu(const float* in, float* out, std::size_t n);

void maxpool(const float* in, const tensor::Shape& s, int kernel, int stride, float* out,
             int oh, int ow);

void global_avg_pool(const float* in, const tensor::Shape& s, float* out);

void add(const float* a, const float* b, float* out, std::size_t n);

struct ConcatInput {
    const float* data = nullptr;
    int channels = 0;
};
void concat(const std::vector<ConcatInput>& ins, const tensor::Shape& out_shape, float* out);

/// im2col into a caller-provided [kdim, cols] buffer. Positions covered by
/// padding are only written when `zero_first` is set (pad > 0); with
/// pad == 0 every slot is produced, so the pre-zeroing pass is skipped.
void im2col(const float* in, const tensor::Shape& s, int kh, int kw, int stride, int pad,
            float* columns, int oh, int ow, bool zero_first);

/// Integer im2col on quantized activation codes; padding slots hold the
/// code for real-value zero (zp = 0 for the unsigned activation scheme).
void im2col_u8(const std::uint8_t* qx, const tensor::Shape& s, int kh, int kw, int stride,
               int pad, std::uint8_t* columns, int oh, int ow, bool zero_first);

}  // namespace raq::exec::kernels
