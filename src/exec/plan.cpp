#include "exec/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>

namespace raq::exec {

namespace {

/// Best-fit free-list allocator over a growable flat arena with
/// level-granular lifetimes. Regions are measured in floats; freeing
/// coalesces with adjacent free regions so long-lived plans do not
/// fragment.
///
/// Every free region carries a *level floor*: the lowest dependency level
/// allowed to reuse it, set when freeing to one past the highest level
/// that ever touched the dead tensor. An allocation at level L only takes
/// regions whose floor is ≤ L, so two tensors sharing bytes are always
/// separated by at least one full level. That makes the one static layout
/// valid under both execution orders the engine supports: serial op-index
/// order (allocation is simulated in that order, so reuse is trivially
/// safe) and level-parallel order (all accessors of the old tensor run in
/// strictly earlier levels than every accessor of the new one, so
/// concurrent ops of one level can never alias). Coalescing keeps the
/// stricter (max) floor of the merged regions — conservative, never
/// unsafe.
class ArenaAllocator {
public:
    std::size_t allocate(std::size_t size, int level) {
        // Best fit: smallest free region with a compatible floor.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second.size < size || it->second.floor > level) continue;
            if (best == free_.end() || it->second.size < best->second.size) best = it;
        }
        if (best != free_.end()) {
            const std::size_t offset = best->first;
            const std::size_t remaining = best->second.size - size;
            const int floor = best->second.floor;
            free_.erase(best);
            if (remaining > 0) free_[offset + size] = Region{remaining, floor};
            return offset;
        }
        const std::size_t offset = high_water_;
        high_water_ += size;
        return offset;
    }

    void release(std::size_t offset, std::size_t size, int floor) {
        auto [it, inserted] = free_.emplace(offset, Region{size, floor});
        if (!inserted) throw std::logic_error("ArenaAllocator: double free");
        // Coalesce with the next free region.
        auto next = std::next(it);
        if (next != free_.end() && it->first + it->second.size == next->first) {
            it->second.size += next->second.size;
            it->second.floor = std::max(it->second.floor, next->second.floor);
            free_.erase(next);
        }
        // Coalesce with the previous free region.
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second.size == it->first) {
                prev->second.size += it->second.size;
                prev->second.floor = std::max(prev->second.floor, it->second.floor);
                free_.erase(it);
            }
        }
    }

    [[nodiscard]] std::size_t high_water() const { return high_water_; }

private:
    struct Region {
        std::size_t size = 0;
        int floor = 0;  ///< lowest level allowed to reuse this region
    };
    std::map<std::size_t, Region> free_;  ///< offset -> region, offset-ordered
    std::size_t high_water_ = 0;
};

/// Column-tile length of the quantized integer GEMM: keep one
/// [kdim, tile] u8 column block resident in L2 while every output channel
/// of the range streams over it. Hoisted here so QuantBackend does zero
/// per-call sizing work.
constexpr std::size_t kGemmTileBytes = 256 * 1024;

std::size_t gemm_tile_cols(std::size_t kdim, std::size_t cols_cap) {
    // Round down to a multiple of 16 — the widest SIMD column group — so
    // interior tiles never leave a scalar column tail; when `cols` itself
    // is 16-aligned (hw is for all real layer sizes) no tail runs at all.
    std::size_t tile = kGemmTileBytes / std::max<std::size_t>(1, kdim);
    tile -= tile % 16;
    return std::min(cols_cap, std::max<std::size_t>(512, tile));
}

}  // namespace

ExecPlan::ExecPlan(const ir::Graph& graph, PlanOptions options)
    : ExecPlan(std::make_shared<const ir::Graph>(graph), options) {}

ExecPlan::ExecPlan(std::shared_ptr<const ir::Graph> graph, PlanOptions options)
    : graph_(std::move(graph)), options_(options) {
    static std::atomic<std::uint64_t> next_serial{1};
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
    if (!graph_) throw std::invalid_argument("ExecPlan: null graph");
    if (options_.batch_capacity < 1)
        throw std::invalid_argument("ExecPlan: batch_capacity must be >= 1");
    if (graph_->output_id() < 0) throw std::invalid_argument("ExecPlan: graph has no output");

    const auto& ops = graph_->ops();
    const std::size_t num_tensors = static_cast<std::size_t>(graph_->num_tensors());
    const auto shapes = ir::infer_shapes(*graph_, options_.batch_capacity);

    // ---- schedule + dependency levels. Ops are appended in topological
    // order by construction (an op may only consume existing tensors), so
    // the schedule is the op order; levels expose the independence
    // structure (two ops on one level share no data path).
    const std::vector<int> levels = ir::op_levels(*graph_);
    schedule_.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        schedule_.push_back(OpStep{static_cast<int>(i), levels[i]});

    // Level-major view of the same schedule (op order preserved within a
    // level) for the engine's level-parallel mode.
    int max_level = 0;
    for (const int level : levels) max_level = std::max(max_level, level);
    level_bounds_.assign(static_cast<std::size_t>(max_level) + 2, 0);
    for (const int level : levels) ++level_bounds_[static_cast<std::size_t>(level) + 1];
    for (std::size_t l = 1; l < level_bounds_.size(); ++l)
        level_bounds_[l] += level_bounds_[l - 1];
    level_order_.resize(ops.size());
    {
        std::vector<std::size_t> cursor(level_bounds_.begin(), level_bounds_.end() - 1);
        for (std::size_t i = 0; i < ops.size(); ++i)
            level_order_[cursor[static_cast<std::size_t>(levels[i])]++] = static_cast<int>(i);
    }
    for (std::size_t l = 0; l + 1 < level_bounds_.size(); ++l)
        if (level_bounds_[l + 1] - level_bounds_[l] > 1) has_parallel_levels_ = true;

    // ---- tensor lifetimes: step producing each tensor and the step of
    // its last consumer. The graph output (and the external input) are
    // pinned for the whole run.
    constexpr int kLive = std::numeric_limits<int>::max();
    std::vector<int> last_use = ir::tensor_last_use(*graph_);
    last_use[static_cast<std::size_t>(graph_->output_id())] = kLive;
    last_use[static_cast<std::size_t>(graph_->input_id())] = kLive;  // external anyway

    // Highest dependency level that ever touches each tensor (producer or
    // any consumer) — a freed region's level floor is one past this, which
    // is what makes the layout valid for level-parallel execution too.
    std::vector<int> max_access_level(num_tensors, 0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        max_access_level[static_cast<std::size_t>(ops[i].output)] = levels[i];
        for (const int in : ops[i].inputs)
            max_access_level[static_cast<std::size_t>(in)] =
                std::max(max_access_level[static_cast<std::size_t>(in)], levels[i]);
    }

    // ---- arena assignment: allocate each op's output right before the op
    // runs (its inputs are still live, so an output region can never alias
    // an input region), release inputs right after their last consumer.
    // Regions are released with a level floor, so reuse also never pairs
    // tensors of the same level — see ArenaAllocator.
    offsets_.assign(num_tensors, kExternal);
    ArenaAllocator arena;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const int out = ops[i].output;
        const std::size_t out_size = shapes[static_cast<std::size_t>(out)].size();
        total_tensor_floats_ += out_size;
        offsets_[static_cast<std::size_t>(out)] = arena.allocate(out_size, levels[i]);
        if (!options_.reuse_buffers) continue;
        // Tensor produced but never consumed (and not the output): its
        // region is reusable immediately after this op.
        if (last_use[static_cast<std::size_t>(out)] < static_cast<int>(i))
            arena.release(offsets_[static_cast<std::size_t>(out)], out_size,
                          levels[i] + 1);
        std::vector<int> dead(ops[i].inputs);
        std::sort(dead.begin(), dead.end());
        dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
        for (const int in : dead) {
            if (last_use[static_cast<std::size_t>(in)] != static_cast<int>(i)) continue;
            if (in == graph_->input_id()) continue;  // external, not in the arena
            arena.release(offsets_[static_cast<std::size_t>(in)],
                          shapes[static_cast<std::size_t>(in)].size(),
                          max_access_level[static_cast<std::size_t>(in)] + 1);
        }
    }
    arena_floats_ = arena.high_water();

    // ---- conv geometry + worst-case scratch extents.
    conv_geom_.assign(ops.size(), ConvGeom{});
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ir::Op& op = ops[i];
        if (op.kind != ir::OpKind::Conv2d) continue;
        const tensor::Shape& in = shapes[static_cast<std::size_t>(op.inputs.at(0))];
        const tensor::Shape& out = shapes[static_cast<std::size_t>(op.output)];
        ConvGeom g;
        g.oh = out.h;
        g.ow = out.w;
        g.kdim = static_cast<std::size_t>(op.conv.in_c) * static_cast<std::size_t>(op.conv.kh) *
                 static_cast<std::size_t>(op.conv.kw);
        g.hw = static_cast<std::size_t>(out.h) * static_cast<std::size_t>(out.w);
        g.cols_cap = static_cast<std::size_t>(options_.batch_capacity) * g.hw;
        g.in_floats_cap = in.size();
        g.zero_columns = op.conv.pad > 0;
        g.tile_cols = gemm_tile_cols(g.kdim, g.cols_cap);
        // Worst-case |acc| for unsigned 8-bit codes: kdim * 255 * 255.
        g.acc32_safe = g.kdim <= static_cast<std::size_t>(
                                     std::numeric_limits<std::int32_t>::max()) /
                                     (255u * 255u);
        conv_geom_[i] = g;

        max_tile_cols_ = std::max(max_tile_cols_, g.tile_cols);
        max_columns_ = std::max(max_columns_, g.kdim * g.cols_cap);
        max_product_floats_ =
            std::max(max_product_floats_,
                     static_cast<std::size_t>(op.conv.out_c) * g.cols_cap);
        max_conv_in_floats_ = std::max(max_conv_in_floats_, g.in_floats_cap);
        max_cols_ = std::max(max_cols_, g.cols_cap);
    }
}

std::vector<tensor::Shape> ExecPlan::shapes_for(int batch_n) const {
    if (batch_n < 1 || batch_n > options_.batch_capacity)
        throw std::invalid_argument("ExecPlan: batch size " + std::to_string(batch_n) +
                                    " outside [1, " +
                                    std::to_string(options_.batch_capacity) + "]");
    return ir::infer_shapes(*graph_, batch_n);
}

}  // namespace raq::exec
