#include "exec/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>

namespace raq::exec {

namespace {

/// Best-fit free-list allocator over a growable flat arena. Regions are
/// measured in floats; freeing coalesces with adjacent free regions so
/// long-lived plans do not fragment.
class ArenaAllocator {
public:
    std::size_t allocate(std::size_t size) {
        // Best fit: smallest free region that holds `size`.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second < size) continue;
            if (best == free_.end() || it->second < best->second) best = it;
        }
        if (best != free_.end()) {
            const std::size_t offset = best->first;
            const std::size_t remaining = best->second - size;
            free_.erase(best);
            if (remaining > 0) free_[offset + size] = remaining;
            return offset;
        }
        const std::size_t offset = high_water_;
        high_water_ += size;
        return offset;
    }

    void release(std::size_t offset, std::size_t size) {
        auto [it, inserted] = free_.emplace(offset, size);
        if (!inserted) throw std::logic_error("ArenaAllocator: double free");
        // Coalesce with the next free region.
        auto next = std::next(it);
        if (next != free_.end() && it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
        // Coalesce with the previous free region.
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
            }
        }
    }

    [[nodiscard]] std::size_t high_water() const { return high_water_; }

private:
    std::map<std::size_t, std::size_t> free_;  ///< offset -> size, offset-ordered
    std::size_t high_water_ = 0;
};

}  // namespace

ExecPlan::ExecPlan(const ir::Graph& graph, PlanOptions options)
    : ExecPlan(std::make_shared<const ir::Graph>(graph), options) {}

ExecPlan::ExecPlan(std::shared_ptr<const ir::Graph> graph, PlanOptions options)
    : graph_(std::move(graph)), options_(options) {
    static std::atomic<std::uint64_t> next_serial{1};
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
    if (!graph_) throw std::invalid_argument("ExecPlan: null graph");
    if (options_.batch_capacity < 1)
        throw std::invalid_argument("ExecPlan: batch_capacity must be >= 1");
    if (graph_->output_id() < 0) throw std::invalid_argument("ExecPlan: graph has no output");

    const auto& ops = graph_->ops();
    const std::size_t num_tensors = static_cast<std::size_t>(graph_->num_tensors());
    const auto shapes = ir::infer_shapes(*graph_, options_.batch_capacity);

    // ---- schedule + dependency levels. Ops are appended in topological
    // order by construction (an op may only consume existing tensors), so
    // the schedule is the op order; levels expose the independence
    // structure (two ops on one level share no data path).
    const std::vector<int> levels = ir::op_levels(*graph_);
    schedule_.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        schedule_.push_back(OpStep{static_cast<int>(i), levels[i]});

    // ---- tensor lifetimes: step producing each tensor and the step of
    // its last consumer. The graph output (and the external input) are
    // pinned for the whole run.
    constexpr int kLive = std::numeric_limits<int>::max();
    std::vector<int> last_use = ir::tensor_last_use(*graph_);
    last_use[static_cast<std::size_t>(graph_->output_id())] = kLive;
    last_use[static_cast<std::size_t>(graph_->input_id())] = kLive;  // external anyway

    // ---- arena assignment: allocate each op's output right before the op
    // runs (its inputs are still live, so an output region can never alias
    // an input region), release inputs right after their last consumer.
    offsets_.assign(num_tensors, kExternal);
    ArenaAllocator arena;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const int out = ops[i].output;
        const std::size_t out_size = shapes[static_cast<std::size_t>(out)].size();
        total_tensor_floats_ += out_size;
        offsets_[static_cast<std::size_t>(out)] = arena.allocate(out_size);
        if (!options_.reuse_buffers) continue;
        // Tensor produced but never consumed (and not the output): its
        // region is reusable immediately after this op.
        if (last_use[static_cast<std::size_t>(out)] < static_cast<int>(i))
            arena.release(offsets_[static_cast<std::size_t>(out)], out_size);
        std::vector<int> dead(ops[i].inputs);
        std::sort(dead.begin(), dead.end());
        dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
        for (const int in : dead) {
            if (last_use[static_cast<std::size_t>(in)] != static_cast<int>(i)) continue;
            if (in == graph_->input_id()) continue;  // external, not in the arena
            arena.release(offsets_[static_cast<std::size_t>(in)],
                          shapes[static_cast<std::size_t>(in)].size());
        }
    }
    arena_floats_ = arena.high_water();

    // ---- conv geometry + worst-case scratch extents.
    conv_geom_.assign(ops.size(), ConvGeom{});
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ir::Op& op = ops[i];
        if (op.kind != ir::OpKind::Conv2d) continue;
        const tensor::Shape& in = shapes[static_cast<std::size_t>(op.inputs.at(0))];
        const tensor::Shape& out = shapes[static_cast<std::size_t>(op.output)];
        ConvGeom g;
        g.oh = out.h;
        g.ow = out.w;
        g.kdim = static_cast<std::size_t>(op.conv.in_c) * static_cast<std::size_t>(op.conv.kh) *
                 static_cast<std::size_t>(op.conv.kw);
        g.hw = static_cast<std::size_t>(out.h) * static_cast<std::size_t>(out.w);
        g.cols_cap = static_cast<std::size_t>(options_.batch_capacity) * g.hw;
        g.in_floats_cap = in.size();
        g.zero_columns = op.conv.pad > 0;
        // Worst-case |acc| for unsigned 8-bit codes: kdim * 255 * 255.
        g.acc32_safe = g.kdim <= static_cast<std::size_t>(
                                     std::numeric_limits<std::int32_t>::max()) /
                                     (255u * 255u);
        conv_geom_[i] = g;

        max_columns_ = std::max(max_columns_, g.kdim * g.cols_cap);
        max_product_floats_ =
            std::max(max_product_floats_,
                     static_cast<std::size_t>(op.conv.out_c) * g.cols_cap);
        max_conv_in_floats_ = std::max(max_conv_in_floats_, g.in_floats_cap);
        max_cols_ = std::max(max_cols_, g.cols_cap);
    }
}

std::vector<tensor::Shape> ExecPlan::shapes_for(int batch_n) const {
    if (batch_n < 1 || batch_n > options_.batch_capacity)
        throw std::invalid_argument("ExecPlan: batch size " + std::to_string(batch_n) +
                                    " outside [1, " +
                                    std::to_string(options_.batch_capacity) + "]");
    return ir::infer_shapes(*graph_, batch_n);
}

}  // namespace raq::exec
