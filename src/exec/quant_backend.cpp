#include "exec/quant_backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "exec/kernels.hpp"
#include "exec/kernels_simd.hpp"

namespace raq::exec {

namespace {

/// Shared zero-point/bias/stats epilogue: turn raw accumulators for
/// columns [j0, j0 + jn) of channel `oc` into output activations in NCHW
/// (identical for the tiled fast path and the seed-order injection path).
/// With a vector epilogue kernel and no stats attached, the i32 fast path
/// runs it over each contiguous NCHW segment — same bits, see EpilogueFn.
template <typename AccT>
void epilogue_rows(const quant::QConv& qc, std::size_t oc, const AccT* acc,
                   const std::int32_t* colsum, std::size_t j0, std::size_t jn,
                   std::size_t hw, std::size_t out_c, float* out, int shift,
                   QuantExecStats* stats, kernels_simd::EpilogueFn epi = nullptr) {
    const quant::QuantParams& wq = qc.wq(static_cast<int>(oc));
    const float scale = qc.act.scale * wq.scale;
    const std::int32_t zw = wq.zero_point;
    const std::int64_t qb = qc.qbias[oc];
    if constexpr (std::is_same_v<AccT, std::int32_t>) {
        // |acc − zw·colsum| < 2^33 on the acc32-safe path, so the f64
        // kernel is exact whenever |qb| stays below 2^52 − 2^33 (every
        // real quantized bias; the guard keeps pathological graphs on the
        // scalar loop rather than silently off-by-one).
        constexpr std::int64_t kQbExactBound = (std::int64_t{1} << 52) - (std::int64_t{1} << 33);
        if (epi != nullptr && stats == nullptr && qb < kQbExactBound && qb > -kQbExactBound) {
            std::size_t j = 0;
            while (j < jn) {
                const std::size_t jj = j0 + j;
                const std::size_t n = jj / hw;
                const std::size_t pos = jj % hw;
                const std::size_t seg = std::min(jn - j, hw - pos);
                epi(acc + j, colsum + jj, seg, zw, qb, scale,
                    out + (n * out_c + oc) * hw + pos);
                j += seg;
            }
            return;
        }
    }
    for (std::size_t j = 0; j < jn; ++j) {
        const std::size_t jj = j0 + j;
        const std::int64_t corrected = static_cast<std::int64_t>(acc[j]) -
                                       static_cast<std::int64_t>(zw) * colsum[jj] + qb;
        if (stats) {
            // Accumulator occupancy in the shifted hardware domain
            // (22-bit register of the paper's MAC). Shift the
            // magnitude, not the signed value: same number, no UB.
            const std::int64_t mag = (corrected < 0 ? -corrected : corrected) << shift;
            stats->max_abs_accumulator = std::max(stats->max_abs_accumulator, mag);
            if (mag >= (std::int64_t{1} << 22)) ++stats->accumulator_overflows;
        }
        // Map [oc, col] back to NCHW.
        const std::size_t n = jj / hw;
        const std::size_t pos = jj % hw;
        out[(n * out_c + oc) * hw + pos] = static_cast<float>(corrected) * scale;
    }
}

/// Tiled integer GEMM + epilogue for output channels [oc_begin, oc_end) —
/// the scalar reference datapath, kept verbatim from the seed-matching
/// implementation (the injection path shares its arithmetic exactly).
/// AccT is int32 when the plan proved the row sum cannot overflow
/// (kdim * 255^2 bound), int64 otherwise; both produce the same exact
/// integers, so the narrow fast path stays bit-identical. The tile
/// length comes precomputed from the plan's ConvGeom.
template <typename AccT>
void conv_rows(const ir::Op& op, const quant::QConv& qc, const ConvGeom& g,
               const std::uint8_t* columns, const std::int32_t* colsum, std::size_t cols,
               float* out, int shift, QuantExecStats* stats, std::vector<AccT>& acc,
               std::size_t tile, std::size_t oc_begin, std::size_t oc_end) {
    const std::size_t kdim = g.kdim;
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);
    ExecContext::reserve(acc, tile);

    for (std::size_t j0 = 0; j0 < cols; j0 += tile) {
        const std::size_t jn = std::min(tile, cols - j0);
        for (std::size_t oc = oc_begin; oc < oc_end; ++oc) {
            const std::uint8_t* wrow = qc.qweights.data() + oc * kdim;
            std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(jn), AccT{0});
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                if (w == 0) continue;
                const std::uint8_t* crow = columns + k * cols + j0;
                for (std::size_t j = 0; j < jn; ++j)
                    acc[j] += static_cast<AccT>(w * static_cast<std::int32_t>(crow[j]));
            }
            epilogue_rows(qc, oc, acc.data(), colsum, j0, jn, g.hw, out_c, out, shift,
                          stats);
        }
    }
    if (stats) stats->mac_count += kdim * cols * (oc_end - oc_begin);
}

/// SIMD fast path: the dispatch-selected microkernel computes the same
/// exact i32 accumulators as conv_rows (integer adds reassociate freely),
/// in kGemmU8RowBlock-channel register tiles; the shared epilogue then
/// applies the identical zero-point/bias/stats transform row by row.
void conv_rows_simd(const ir::Op& op, const quant::QConv& qc, const ConvGeom& g,
                    const std::uint8_t* columns, const std::int32_t* colsum,
                    std::size_t cols, float* out, int shift, QuantExecStats* stats,
                    std::vector<std::int32_t>& acc, std::size_t tile,
                    kernels_simd::GemmU8Fn kernel, kernels_simd::EpilogueFn epi,
                    std::size_t oc_begin, std::size_t oc_end) {
    constexpr std::size_t kMr = kernels_simd::kGemmU8RowBlock;
    const std::size_t kdim = g.kdim;
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);
    ExecContext::reserve(acc, kMr * tile);

    for (std::size_t j0 = 0; j0 < cols; j0 += tile) {
        const std::size_t jn = std::min(tile, cols - j0);
        for (std::size_t oc = oc_begin; oc < oc_end; oc += kMr) {
            const std::size_t mr = std::min(kMr, oc_end - oc);
            kernel(qc.qweights.data() + oc * kdim, kdim, mr, columns + j0, cols, kdim,
                   jn, acc.data(), tile);
            for (std::size_t r = 0; r < mr; ++r)
                epilogue_rows(qc, oc + r, acc.data() + r * tile, colsum, j0, jn, g.hw,
                              out_c, out, shift, stats, epi);
        }
    }
    if (stats) stats->mac_count += kdim * cols * (oc_end - oc_begin);
}

/// Packed SIMD pipeline (the preferred datapath on x86 tiers): widen and
/// interleave each column tile once, then sweep it with the packed GEMM —
/// the per-row-block re-prep that dominates conv_rows_simd on shallow
/// convolutions disappears. Bit-identical by the same exact-integer
/// argument; the (< col_group)-column tail of each tile runs the scalar
/// reference against the raw tile.
void conv_rows_packed(const ir::Op& op, const quant::QConv& qc, const ConvGeom& g,
                      const std::uint8_t* columns, const std::int16_t* w16,
                      const std::int32_t* colsum, std::size_t cols, float* out,
                      int shift, QuantExecStats* stats, std::vector<std::int32_t>& acc,
                      std::vector<std::int16_t>& packed, std::size_t tile,
                      const kernels_simd::PackedKernels& pk, kernels_simd::EpilogueFn epi,
                      std::size_t oc_begin, std::size_t oc_end) {
    constexpr std::size_t kMr = kernels_simd::kGemmU8RowBlock;
    const std::size_t kdim = g.kdim;
    const std::size_t wstride = kdim + (kdim & 1);
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);
    ExecContext::reserve(acc, kMr * tile);

    for (std::size_t j0 = 0; j0 < cols; j0 += tile) {
        const std::size_t jn = std::min(tile, cols - j0);
        const std::size_t jv = jn - jn % pk.col_group;  // full column groups
        if (jv != 0) {
            ExecContext::reserve(packed,
                                 kernels_simd::packed_panel_elems(kdim, jv, pk.col_group));
            pk.pack(columns + j0, cols, kdim, jv, packed.data());
        }
        for (std::size_t oc = oc_begin; oc < oc_end; oc += kMr) {
            const std::size_t mr = std::min(kMr, oc_end - oc);
            if (jv != 0)
                pk.gemm(w16 + oc * wstride, wstride, mr, packed.data(), kdim, jv,
                        acc.data(), tile);
            for (std::size_t r = 0; r < mr; ++r) {
                const std::uint8_t* wrow = qc.qweights.data() + (oc + r) * kdim;
                for (std::size_t j = jv; j < jn; ++j) {
                    std::int32_t sum = 0;
                    for (std::size_t k = 0; k < kdim; ++k)
                        sum += static_cast<std::int32_t>(wrow[k]) *
                               static_cast<std::int32_t>(columns[k * cols + j0 + j]);
                    acc[r * tile + j] = sum;
                }
                epilogue_rows(qc, oc + r, acc.data() + r * tile, colsum, j0, jn, g.hw,
                              out_c, out, shift, stats, epi);
            }
        }
    }
    if (stats) stats->mac_count += kdim * cols * (oc_end - oc_begin);
}

}  // namespace

void QuantBackend::prepare(const ExecPlan& plan, ExecContext& ctx) const {
    ConvScratch& scr = ctx.scratch;
    ExecContext::reserve(scr.qx, plan.max_conv_in_floats());
    ExecContext::reserve(scr.u8_columns, plan.max_columns());
    ExecContext::reserve(scr.colsum, plan.max_cols());
    ExecContext::reserve(scr.acc64, plan.max_cols());
    // Sized for the SIMD row block up front, so the per-call reserve in
    // the hot loop is a no-op comparison.
    ExecContext::reserve(scr.acc32, kernels_simd::kGemmU8RowBlock * plan.max_tile_cols());
}

void QuantBackend::conv(const ConvCall& call, ExecContext& ctx) {
    (void)ctx;
    const ir::Op& op = *call.op;
    const ConvGeom& g = *call.geom;
    ConvScratch& scr = *call.scratch;
    const quant::QConv& qc = qgraph_->conv(static_cast<std::size_t>(call.op_index));
    if (qc.act.zero_point != 0)
        throw std::logic_error("QuantBackend: activation zero-point must be 0");

    const tensor::Shape& s = call.in_shape;
    const std::size_t in_size = s.size();
    const std::size_t cols = static_cast<std::size_t>(s.n) * g.hw;

    // Quantize the input activations (optionally truncating LSBs for the
    // precision-scaling ablation). The vector kernel computes the exact
    // QuantParams::quantize expression (hardware round-current-mode ==
    // nearbyint, IEEE division), so codes match the scalar loop bit for bit.
    const std::uint8_t act_mask = static_cast<std::uint8_t>(0xFFu << (qc.act_mask_bits & 7));
    ExecContext::reserve(scr.qx, in_size);
    if (quantize_kernel_ != nullptr)
        quantize_kernel_(call.in, in_size, qc.act.scale, qc.act.zero_point, qc.act.qmax(),
                         act_mask, scr.qx.data());
    else
        for (std::size_t i = 0; i < in_size; ++i)
            scr.qx[i] = static_cast<std::uint8_t>(qc.act.quantize(call.in[i])) & act_mask;

    ExecContext::reserve(scr.u8_columns, g.kdim * cols);
    kernels::im2col_u8(scr.qx.data(), s, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad,
                       scr.u8_columns.data(), g.oh, g.ow, g.zero_columns);
    const std::uint8_t* columns = scr.u8_columns.data();

    // Per-column activation code sums for the zero-point correction
    // (exact integer reduction — the vector kernel is bit-identical).
    ExecContext::reserve(scr.colsum, cols);
    if (colsum_kernel_ != nullptr) {
        colsum_kernel_(columns, g.kdim, cols, scr.colsum.data());
    } else {
        std::fill(scr.colsum.begin(), scr.colsum.begin() + static_cast<std::ptrdiff_t>(cols),
                  0);
        for (std::size_t k = 0; k < g.kdim; ++k) {
            const std::uint8_t* row = columns + k * cols;
            for (std::size_t j = 0; j < cols; ++j) scr.colsum[j] += row[j];
        }
    }

    // With LSB padding the hardware product register holds p << (α+β); a
    // flip of register bit 15/14 lands on bit 15−(α+β)/14−(α+β) of the
    // unshifted product. Model by narrowing the injector's register view.
    const int shift = qgraph_->config().padding == common::Padding::Lsb
                          ? (8 - qc.act.bits) + (8 - qc.wq(0).bits)
                          : 0;
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);

    if (injector_ != nullptr) {
        // Injection path: the seed interpreter's exact loop, one ordered
        // hook call per MAC product (including zero-weight products).
        // Never touches the SIMD kernels — bit-identical to the seed by
        // construction, whatever the dispatch tier.
        ExecContext::reserve(scr.acc64, cols);
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            const std::uint8_t* wrow = qc.qweights.data() + oc * g.kdim;
            std::fill(scr.acc64.begin(), scr.acc64.begin() + static_cast<std::ptrdiff_t>(cols),
                      std::int64_t{0});
            for (std::size_t k = 0; k < g.kdim; ++k) {
                const std::int32_t w = wrow[k];
                const std::uint8_t* crow = columns + k * cols;
                for (std::size_t j = 0; j < cols; ++j) {
                    std::int64_t product = static_cast<std::int64_t>(w) * crow[j];
                    product = injector_->apply(product);
                    scr.acc64[j] += product;
                }
            }
            if (stats_) stats_->mac_count += g.kdim * cols;
            epilogue_rows(qc, oc, scr.acc64.data(), scr.colsum.data(), 0, cols, g.hw,
                          out_c, call.out, shift, stats_);
        }
        if (stats_) stats_->flips = injector_->flips_injected();
        return;
    }

    // Fast path: tiled integer GEMM through the dispatch-selected kernel
    // (SIMD needs the overflow-safe i32 bound the plan proved; wider
    // convs keep the scalar int64 loop). The packed pipeline pre-widens
    // the weight matrix once per call — read-only after this, so shared
    // across channel-split lanes. Parallel only without stats (the
    // struct is unsynchronized); each lane owns a disjoint channel range
    // and private accumulator/pack tiles, so results match serial bit
    // for bit (lanes re-pack the same tile — redundant work, never a race).
    const std::size_t tile = std::min(g.tile_cols, cols);
    const bool use_packed = g.acc32_safe && packed_.gemm != nullptr;
    if (use_packed) {
        ExecContext::reserve(scr.w16, out_c * (g.kdim + (g.kdim & 1)));
        kernels_simd::widen_weights_u8(qc.qweights.data(), out_c, g.kdim, scr.w16.data());
    }
    const auto run_range = [&](std::vector<std::int32_t>& acc32,
                               std::vector<std::int64_t>& acc64,
                               std::vector<std::int16_t>& packed, std::size_t b,
                               std::size_t e) {
        if (use_packed)
            conv_rows_packed(op, qc, g, columns, scr.w16.data(), scr.colsum.data(), cols,
                             call.out, shift, stats_, acc32, packed, tile, packed_,
                             epilogue_kernel_, b, e);
        else if (g.acc32_safe && simd_kernel_ != nullptr)
            conv_rows_simd(op, qc, g, columns, scr.colsum.data(), cols, call.out, shift,
                           stats_, acc32, tile, simd_kernel_, epilogue_kernel_, b, e);
        else if (g.acc32_safe)
            conv_rows<std::int32_t>(op, qc, g, columns, scr.colsum.data(), cols, call.out,
                                    shift, stats_, acc32, tile, b, e);
        else
            conv_rows<std::int64_t>(op, qc, g, columns, scr.colsum.data(), cols, call.out,
                                    shift, stats_, acc64, tile, b, e);
    };
    if (call.pool != nullptr && stats_ == nullptr && out_c > 1) {
        // Lane-private accumulator/pack tiles live in the scratch and
        // persist across convs/runs: pooled steady state allocates nothing.
        const std::size_t lanes = static_cast<std::size_t>(call.pool->size());
        if (scr.lane_acc32.size() < lanes) scr.lane_acc32.resize(lanes);
        if (scr.lane_acc64.size() < lanes) scr.lane_acc64.resize(lanes);
        if (scr.lane_packed.size() < lanes) scr.lane_packed.resize(lanes);
        call.pool->parallel_for(out_c, [&](std::size_t lane, std::size_t b, std::size_t e) {
            run_range(scr.lane_acc32[lane], scr.lane_acc64[lane], scr.lane_packed[lane], b,
                      e);
        });
    } else {
        // Serial: reuse scratch accumulators, no per-conv allocation.
        run_range(scr.acc32, scr.acc64, scr.packed, 0, out_c);
    }
}

}  // namespace raq::exec
