#include "exec/quant_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/kernels.hpp"

namespace raq::exec {

namespace {

/// Column-tile length: keep one [kdim, tile] u8 column block resident in
/// L2 while every output channel of the range streams over it. This cuts
/// main-memory traffic by ~out_c versus the seed's whole-matrix sweep per
/// channel — the integer GEMM is memory-bound for real batch sizes.
constexpr std::size_t kTileBytes = 256 * 1024;

std::size_t tile_length(std::size_t kdim, std::size_t cols) {
    const std::size_t tile = std::max<std::size_t>(512, kTileBytes / std::max<std::size_t>(1, kdim));
    return std::min(cols, tile);
}

/// Shared zero-point/bias/stats epilogue: turn raw accumulators for
/// columns [j0, j0 + jn) of channel `oc` into output activations in NCHW
/// (identical for the tiled fast path and the seed-order injection path).
template <typename AccT>
void epilogue_rows(const quant::QConv& qc, std::size_t oc, const AccT* acc,
                   const std::int32_t* colsum, std::size_t j0, std::size_t jn,
                   std::size_t hw, std::size_t out_c, float* out, int shift,
                   QuantExecStats* stats) {
    const quant::QuantParams& wq = qc.wq(static_cast<int>(oc));
    const float scale = qc.act.scale * wq.scale;
    const std::int32_t zw = wq.zero_point;
    const std::int64_t qb = qc.qbias[oc];
    for (std::size_t j = 0; j < jn; ++j) {
        const std::size_t jj = j0 + j;
        const std::int64_t corrected = static_cast<std::int64_t>(acc[j]) -
                                       static_cast<std::int64_t>(zw) * colsum[jj] + qb;
        if (stats) {
            // Accumulator occupancy in the shifted hardware domain
            // (22-bit register of the paper's MAC). Shift the
            // magnitude, not the signed value: same number, no UB.
            const std::int64_t mag = (corrected < 0 ? -corrected : corrected) << shift;
            stats->max_abs_accumulator = std::max(stats->max_abs_accumulator, mag);
            if (mag >= (std::int64_t{1} << 22)) ++stats->accumulator_overflows;
        }
        // Map [oc, col] back to NCHW.
        const std::size_t n = jj / hw;
        const std::size_t pos = jj % hw;
        out[(n * out_c + oc) * hw + pos] = static_cast<float>(corrected) * scale;
    }
}

/// Tiled integer GEMM + epilogue for output channels [oc_begin, oc_end).
/// AccT is int32 when the plan proved the row sum cannot overflow
/// (kdim * 255^2 bound), int64 otherwise; both produce the same exact
/// integers, so the narrow fast path stays bit-identical.
template <typename AccT>
void conv_rows(const ir::Op& op, const quant::QConv& qc, const ConvGeom& g,
               const std::uint8_t* columns, const std::int32_t* colsum, std::size_t cols,
               float* out, int shift, QuantExecStats* stats, std::vector<AccT>& acc,
               std::size_t oc_begin, std::size_t oc_end) {
    const std::size_t kdim = g.kdim;
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);
    const std::size_t tile = tile_length(kdim, cols);
    ExecContext::reserve(acc, tile);

    for (std::size_t j0 = 0; j0 < cols; j0 += tile) {
        const std::size_t jn = std::min(tile, cols - j0);
        for (std::size_t oc = oc_begin; oc < oc_end; ++oc) {
            const std::uint8_t* wrow = qc.qweights.data() + oc * kdim;
            std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(jn), AccT{0});
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                if (w == 0) continue;
                const std::uint8_t* crow = columns + k * cols + j0;
                for (std::size_t j = 0; j < jn; ++j)
                    acc[j] += static_cast<AccT>(w * static_cast<std::int32_t>(crow[j]));
            }
            epilogue_rows(qc, oc, acc.data(), colsum, j0, jn, g.hw, out_c, out, shift,
                          stats);
        }
    }
    if (stats) stats->mac_count += kdim * cols * (oc_end - oc_begin);
}

}  // namespace

void QuantBackend::prepare(const ExecPlan& plan, ExecContext& ctx) const {
    ExecContext::reserve(ctx.qx, plan.max_conv_in_floats());
    ExecContext::reserve(ctx.u8_columns, plan.max_columns());
    ExecContext::reserve(ctx.colsum, plan.max_cols());
    ExecContext::reserve(ctx.acc64, plan.max_cols());
}

void QuantBackend::conv(const ConvCall& call, ExecContext& ctx) {
    const ir::Op& op = *call.op;
    const ConvGeom& g = *call.geom;
    const quant::QConv& qc = qgraph_->conv(static_cast<std::size_t>(call.op_index));
    if (qc.act.zero_point != 0)
        throw std::logic_error("QuantBackend: activation zero-point must be 0");

    const tensor::Shape& s = call.in_shape;
    const std::size_t in_size = s.size();
    const std::size_t cols = static_cast<std::size_t>(s.n) * g.hw;

    // Quantize the input activations (optionally truncating LSBs for the
    // precision-scaling ablation).
    const std::uint8_t act_mask = static_cast<std::uint8_t>(0xFFu << (qc.act_mask_bits & 7));
    ExecContext::reserve(ctx.qx, in_size);
    for (std::size_t i = 0; i < in_size; ++i)
        ctx.qx[i] = static_cast<std::uint8_t>(qc.act.quantize(call.in[i])) & act_mask;

    ExecContext::reserve(ctx.u8_columns, g.kdim * cols);
    kernels::im2col_u8(ctx.qx.data(), s, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad,
                       ctx.u8_columns.data(), g.oh, g.ow, g.zero_columns);
    const std::uint8_t* columns = ctx.u8_columns.data();

    // Per-column activation code sums for the zero-point correction.
    ExecContext::reserve(ctx.colsum, cols);
    std::fill(ctx.colsum.begin(), ctx.colsum.begin() + static_cast<std::ptrdiff_t>(cols), 0);
    for (std::size_t k = 0; k < g.kdim; ++k) {
        const std::uint8_t* row = columns + k * cols;
        for (std::size_t j = 0; j < cols; ++j) ctx.colsum[j] += row[j];
    }

    // With LSB padding the hardware product register holds p << (α+β); a
    // flip of register bit 15/14 lands on bit 15−(α+β)/14−(α+β) of the
    // unshifted product. Model by narrowing the injector's register view.
    const int shift = qgraph_->config().padding == common::Padding::Lsb
                          ? (8 - qc.act.bits) + (8 - qc.wq(0).bits)
                          : 0;
    const std::size_t out_c = static_cast<std::size_t>(op.conv.out_c);

    if (injector_ != nullptr) {
        // Injection path: the seed interpreter's exact loop, one ordered
        // hook call per MAC product (including zero-weight products).
        ExecContext::reserve(ctx.acc64, cols);
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            const std::uint8_t* wrow = qc.qweights.data() + oc * g.kdim;
            std::fill(ctx.acc64.begin(), ctx.acc64.begin() + static_cast<std::ptrdiff_t>(cols),
                      std::int64_t{0});
            for (std::size_t k = 0; k < g.kdim; ++k) {
                const std::int32_t w = wrow[k];
                const std::uint8_t* crow = columns + k * cols;
                for (std::size_t j = 0; j < cols; ++j) {
                    std::int64_t product = static_cast<std::int64_t>(w) * crow[j];
                    product = injector_->apply(product);
                    ctx.acc64[j] += product;
                }
            }
            if (stats_) stats_->mac_count += g.kdim * cols;
            epilogue_rows(qc, oc, ctx.acc64.data(), ctx.colsum.data(), 0, cols, g.hw,
                          out_c, call.out, shift, stats_);
        }
        if (stats_) stats_->flips = injector_->flips_injected();
        return;
    }

    // Fast path: tiled integer GEMM. Parallel only without stats (the
    // struct is unsynchronized); each lane owns a disjoint channel range
    // and a private accumulator tile, so results match serial bit for bit.
    const auto run_range = [&](std::vector<std::int32_t>& acc32,
                               std::vector<std::int64_t>& acc64, std::size_t b,
                               std::size_t e) {
        if (g.acc32_safe)
            conv_rows<std::int32_t>(op, qc, g, columns, ctx.colsum.data(), cols, call.out,
                                    shift, stats_, acc32, b, e);
        else
            conv_rows<std::int64_t>(op, qc, g, columns, ctx.colsum.data(), cols, call.out,
                                    shift, stats_, acc64, b, e);
    };
    if (call.pool != nullptr && stats_ == nullptr && out_c > 1) {
        // Lane-private accumulator tiles live in the context and persist
        // across convs/runs: pooled steady state allocates nothing.
        const std::size_t lanes = static_cast<std::size_t>(call.pool->size());
        if (ctx.lane_acc32.size() < lanes) ctx.lane_acc32.resize(lanes);
        if (ctx.lane_acc64.size() < lanes) ctx.lane_acc64.resize(lanes);
        call.pool->parallel_for(out_c, [&](std::size_t lane, std::size_t b, std::size_t e) {
            run_range(ctx.lane_acc32[lane], ctx.lane_acc64[lane], b, e);
        });
    } else {
        // Serial: reuse context scratch, no per-conv allocation.
        run_range(ctx.acc32, ctx.acc64, 0, out_c);
    }
}

}  // namespace raq::exec
