// Fixed-size worker pool for intra-plan parallelism (off by default: the
// engine runs serially unless a pool is passed in). Work is always split
// into size() contiguous chunks, so a given (n, pool size) produces the
// same tiling every run; determinism then follows because callers only
// parallelize over disjoint output regions (output-channel tiles, GEMM
// row blocks) whose per-element computation is order-independent.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace raq::exec {

class ThreadPool {
public:
    /// `threads` worker threads; the calling thread also executes chunks,
    /// so parallel_for fans out over threads + 1 lanes.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Parallel lanes (workers + the calling thread).
    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

    /// Run fn(lane, begin, end) over [0, n) split into size() contiguous
    /// chunks; `lane` < size() identifies the chunk, so callers can keep
    /// lane-private scratch that persists across calls. Blocks until
    /// every chunk finished; rethrows the first exception. Not reentrant:
    /// do not call parallel_for from inside fn.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
        RAQ_EXCLUDES(mutex_);

private:
    void worker_loop() RAQ_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    common::Mutex mutex_;
    common::CondVar work_cv_;
    std::deque<std::function<void()>> tasks_ RAQ_GUARDED_BY(mutex_);
    bool stop_ RAQ_GUARDED_BY(mutex_) = false;
};

}  // namespace raq::exec
