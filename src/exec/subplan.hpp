// Sub-plan compilation for sharded execution: one partition shard of a
// model, materialized as a self-contained sub-graph and compiled into an
// ExecPlan through the process-wide PlanCache.
//
// A shard's plan reuses all of ExecPlan's machinery unchanged (schedule,
// tensor lifetimes, arena assignment, conv geometry) because the
// extracted sub-graph is just a Graph. The cache key is the partition's
// own topology fingerprint, so every group sharding the same model at
// the same cut — and every re-quantization of a shard — shares one
// compiled plan: zero recompiles on the sharded serving path. An online
// re-cut calls this from the RepartitionMonitor thread to warm-compile
// the new partition's plans into the cache BEFORE the drain-and-swap,
// so the swap itself only rebinds (and a re-cut back to an
// already-seen partition is a pure cache hit).
#pragma once

#include <memory>
#include <vector>

#include "exec/plan.hpp"
#include "ir/partition.hpp"

namespace raq::exec {

struct Subplan {
    std::shared_ptr<const ir::Graph> graph;  ///< the shard as its own graph
    std::shared_ptr<const ExecPlan> plan;    ///< cache-resolved, shared
    std::vector<int> full_tensor_of;         ///< sub tensor id -> full tensor id
};

/// Extract `spec`'s op range from `full` and resolve its ExecPlan through
/// PlanCache::global() at `batch_capacity`.
[[nodiscard]] Subplan compile_subplan(const ir::Graph& full, const ir::ShardSpec& spec,
                                      int batch_capacity);

}  // namespace raq::exec
