// ExecPlan: an ir::Graph compiled once into an executable schedule.
//
// The two seed interpreters re-derived everything per call: walked the op
// tree, inferred shapes, allocated every intermediate tensor and every
// conv workspace (im2col columns, colsum, accumulators) from the heap.
// Algorithm 1 re-runs inference for every candidate method at every ΔVth
// point, and the serving runtime re-runs it per batch per device — so all
// of that work is hoisted here, paid once per (graph topology, batch
// capacity):
//
//  - topological op schedule with dependency levels (ops on one level are
//    mutually independent),
//  - tensor lifetime analysis (birth step, last-consumer step),
//  - arena buffer assignment: one flat float arena with best-fit reuse of
//    regions whose tensors are dead (intermediates alias each other, so
//    peak memory is the live-set maximum, not the tensor-count sum),
//  - per-convolution geometry (output dims, im2col extents, whether the
//    integer accumulator fits 32 bits, whether column buffers need
//    pre-zeroing for padding).
//
// A plan is immutable after construction and can be shared by any number
// of concurrent executions, each with its own ExecContext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ir/graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::exec {

struct PlanOptions {
    /// Largest batch the plan's arena is sized for; runs may use any
    /// n in [1, batch_capacity].
    int batch_capacity = 1;
    /// Reuse arena regions of dead intermediates (the normal mode). Off
    /// gives every tensor a private region (diagnostics only).
    bool reuse_buffers = true;
};

/// Precomputed geometry of one convolution, sized at batch capacity.
struct ConvGeom {
    int oh = 0, ow = 0;
    std::size_t kdim = 0;      ///< in_c * kh * kw (GEMM reduction depth)
    std::size_t hw = 0;        ///< oh * ow
    std::size_t cols_cap = 0;  ///< batch_capacity * oh * ow (GEMM columns)
    std::size_t in_floats_cap = 0;  ///< input tensor size at capacity
    std::size_t tile_cols = 0; ///< column-tile length of the integer GEMM
    bool zero_columns = false; ///< pad > 0: padded column slots must be zeroed
    bool acc32_safe = false;   ///< kdim * 255 * 255 fits an int32 accumulator
};

/// One scheduled op: index into graph().ops() plus its dependency level.
struct OpStep {
    int op_index = 0;
    int level = 0;
};

class ExecPlan {
public:
    /// Compiles the schedule, lifetimes and arena layout. The graph is
    /// copied, so the plan is self-contained and outlives its source.
    ExecPlan(const ir::Graph& graph, PlanOptions options);
    /// Shares an already-owned graph instead of copying it — what the
    /// runners use when recompiling at a larger batch capacity.
    ExecPlan(std::shared_ptr<const ir::Graph> graph, PlanOptions options);

    [[nodiscard]] const ir::Graph& graph() const { return *graph_; }
    [[nodiscard]] const std::shared_ptr<const ir::Graph>& graph_shared() const {
        return graph_;
    }
    [[nodiscard]] const PlanOptions& options() const { return options_; }
    [[nodiscard]] int batch_capacity() const { return options_.batch_capacity; }

    /// Process-unique id (never reused, unlike addresses) — the cache key
    /// contexts use to tell plans apart across recompiles.
    [[nodiscard]] std::uint64_t serial() const { return serial_; }

    [[nodiscard]] const std::vector<OpStep>& schedule() const { return schedule_; }

    /// Op indices grouped by dependency level, ascending level, op order
    /// preserved inside each level: level L is level_order()[level_bounds()[L]
    /// .. level_bounds()[L+1]). Ops of one level share no data path, and the
    /// arena gives their tensors level-granular lifetimes (a freed region is
    /// only ever handed to a strictly later level), so the engine may run a
    /// whole level concurrently — or keep the op-index schedule — on the
    /// same arena layout.
    [[nodiscard]] const std::vector<int>& level_order() const { return level_order_; }
    [[nodiscard]] const std::vector<std::size_t>& level_bounds() const {
        return level_bounds_;
    }
    /// True when any level holds more than one op (fan-out can help).
    [[nodiscard]] bool has_parallel_levels() const { return has_parallel_levels_; }

    /// Arena offset (in floats) of a tensor, or kExternal for the graph
    /// input (which is read in place from the caller's batch view).
    static constexpr std::size_t kExternal = static_cast<std::size_t>(-1);
    [[nodiscard]] std::size_t offset_of(int tensor_id) const {
        return offsets_[static_cast<std::size_t>(tensor_id)];
    }

    /// Total arena size in floats at batch capacity.
    [[nodiscard]] std::size_t arena_floats() const { return arena_floats_; }
    /// Sum of all non-input tensor sizes at capacity — what a no-reuse
    /// layout would need. arena_floats() < this on any multi-op graph.
    [[nodiscard]] std::size_t total_tensor_floats() const { return total_tensor_floats_; }

    /// Conv geometry for the op at `op_index`; nullptr for non-conv ops.
    [[nodiscard]] const ConvGeom* conv_geom(int op_index) const {
        const ConvGeom& g = conv_geom_[static_cast<std::size_t>(op_index)];
        return g.kdim == 0 ? nullptr : &g;
    }

    /// Worst-case conv scratch requirements at capacity, for ExecContext
    /// pre-sizing (float path: im2col columns + GEMM product; quantized
    /// path: activation codes + u8 columns + colsum/accumulators).
    [[nodiscard]] std::size_t max_columns() const { return max_columns_; }
    [[nodiscard]] std::size_t max_product_floats() const { return max_product_floats_; }
    [[nodiscard]] std::size_t max_conv_in_floats() const { return max_conv_in_floats_; }
    [[nodiscard]] std::size_t max_cols() const { return max_cols_; }
    /// Largest ConvGeom::tile_cols of any conv — accumulator tiles sized
    /// here once mean zero per-call sizing work in the hot loop.
    [[nodiscard]] std::size_t max_tile_cols() const { return max_tile_cols_; }

    /// Per-tensor shapes for a concrete batch size n ≤ batch_capacity.
    [[nodiscard]] std::vector<tensor::Shape> shapes_for(int batch_n) const;

private:
    std::shared_ptr<const ir::Graph> graph_;  ///< owned: the plan is self-contained
    PlanOptions options_;
    std::uint64_t serial_ = 0;
    std::vector<OpStep> schedule_;
    std::vector<int> level_order_;          ///< op indices, level-major
    std::vector<std::size_t> level_bounds_; ///< per level, offsets into level_order_
    bool has_parallel_levels_ = false;
    std::vector<std::size_t> offsets_;   ///< per tensor id; kExternal for the input
    std::vector<ConvGeom> conv_geom_;    ///< per op index; kdim == 0 for non-conv
    std::size_t arena_floats_ = 0;
    std::size_t total_tensor_floats_ = 0;
    std::size_t max_columns_ = 0;
    std::size_t max_product_floats_ = 0;
    std::size_t max_conv_in_floats_ = 0;
    std::size_t max_cols_ = 0;
    std::size_t max_tile_cols_ = 0;
};

}  // namespace raq::exec
