#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace raq::exec {

ThreadPool::ThreadPool(int threads) {
    if (threads < 1) throw std::invalid_argument("ThreadPool: threads must be >= 1");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const common::MutexLock lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            const common::MutexLock lock(mutex_);
            while (!stop_ && tasks_.empty()) work_cv_.wait(mutex_);
            if (tasks_.empty()) return;  // stop requested and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t lanes = std::min<std::size_t>(static_cast<std::size_t>(size()), n);
    if (lanes == 1) {
        fn(0, 0, n);
        return;
    }
    const std::size_t chunk = (n + lanes - 1) / lanes;

    struct Sync {
        std::mutex mutex;
        std::condition_variable done_cv;
        std::size_t pending;
        std::exception_ptr error;
    } sync;
    sync.pending = lanes - 1;

    {
        const common::MutexLock lock(mutex_);
        for (std::size_t lane = 1; lane < lanes; ++lane) {
            const std::size_t begin = lane * chunk;
            const std::size_t end = std::min(n, begin + chunk);
            tasks_.emplace_back([&, lane, begin, end] {
                std::exception_ptr error;
                try {
                    if (begin < end) fn(lane, begin, end);
                } catch (...) {
                    error = std::current_exception();
                }
                // Decrement and notify under the lock: once the caller
                // observes pending == 0 it may destroy `sync`, so this
                // task must be done with it before the mutex is released.
                const std::lock_guard<std::mutex> done_lock(sync.mutex);
                if (error && !sync.error) sync.error = error;
                --sync.pending;
                sync.done_cv.notify_one();
            });
        }
    }
    work_cv_.notify_all();

    std::exception_ptr caller_error;
    try {
        fn(0, 0, std::min(n, chunk));
    } catch (...) {
        caller_error = std::current_exception();
    }
    {
        std::unique_lock<std::mutex> lock(sync.mutex);
        sync.done_cv.wait(lock, [&] { return sync.pending == 0; });
    }
    if (caller_error) std::rethrow_exception(caller_error);
    if (sync.error) std::rethrow_exception(sync.error);
}

}  // namespace raq::exec
