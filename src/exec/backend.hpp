// Backend: the pluggable MAC datapath of the execution engine. The only
// thing that differs between FP32 reference inference and the quantized
// NPU datapath is how a convolution is computed — every other op (ReLU,
// pooling, add, concat) runs on the shared float kernels inside the
// engine. A backend therefore implements exactly two hooks: worst-case
// scratch reservation and the convolution itself.
#pragma once

#include "exec/context.hpp"
#include "exec/plan.hpp"
#include "exec/thread_pool.hpp"

namespace raq::exec {

/// Per-convolution invocation view assembled by the engine: the op, its
/// plan geometry, and raw input/output buffers with this run's shapes.
struct ConvCall {
    int op_index = 0;
    const ir::Op* op = nullptr;
    const ConvGeom* geom = nullptr;
    const float* in = nullptr;
    tensor::Shape in_shape;
    float* out = nullptr;
    tensor::Shape out_shape;
    ThreadPool* pool = nullptr;  ///< null ⇒ serial execution
    /// Workspace this invocation owns exclusively: the context's scratch
    /// in serial execution, a lane-private one under level-parallel
    /// fan-out. Always set by the engine.
    ConvScratch* scratch = nullptr;
};

class Backend {
public:
    virtual ~Backend() = default;

    /// Reserve this backend's conv scratch in `ctx` for the worst case of
    /// `plan`, so the run itself is allocation-free.
    virtual void prepare(const ExecPlan& plan, ExecContext& ctx) const = 0;

    /// Execute one convolution. Must fully overwrite `call.out` and, when
    /// `call.pool` is set, stay bit-identical to serial execution.
    virtual void conv(const ConvCall& call, ExecContext& ctx) = 0;

    /// True when runs must execute ops strictly in schedule (op-index)
    /// order — e.g. an ordered fault-injection stream is attached. The
    /// engine then never fans a dependency level out over the pool.
    [[nodiscard]] virtual bool serial_only() const { return false; }
};

/// FP32 reference datapath: im2col + float GEMM + bias, numerically
/// identical to the seed float interpreter.
class FloatBackend final : public Backend {
public:
    void prepare(const ExecPlan& plan, ExecContext& ctx) const override;
    void conv(const ConvCall& call, ExecContext& ctx) override;
};

}  // namespace raq::exec
