#include "quant/qparams.hpp"

#include <stdexcept>

namespace raq::quant {

QuantParams QuantParams::from_range(float lo, float hi, int bits) {
    if (bits < 1 || bits > 16) throw std::invalid_argument("QuantParams: bits outside [1,16]");
    if (!(hi > lo)) hi = lo + 1e-6f;
    QuantParams p;
    p.bits = bits;
    p.scale = (hi - lo) / static_cast<float>((1 << bits) - 1);
    if (p.scale <= 0) p.scale = 1e-8f;
    p.zero_point = std::clamp(
        static_cast<std::int32_t>(std::nearbyint(-lo / p.scale)), 0, p.qmax());
    return p;
}

QuantParams QuantParams::activation_range(float hi, int bits) {
    if (hi <= 0) hi = 1e-6f;
    QuantParams p;
    p.bits = bits;
    p.scale = hi / static_cast<float>((1 << bits) - 1);
    p.zero_point = 0;
    return p;
}

QuantParams QuantParams::symmetric(float abs_max, int bits) {
    if (abs_max <= 0) abs_max = 1e-6f;
    QuantParams p;
    p.bits = bits;
    // Zero-point sits mid-range so positive and negative weights share the
    // unsigned code space evenly.
    p.zero_point = 1 << (bits - 1);
    p.scale = abs_max / static_cast<float>(p.zero_point);
    return p;
}

}  // namespace raq::quant
