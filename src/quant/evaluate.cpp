#include "quant/evaluate.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "ir/float_executor.hpp"

namespace raq::quant {

double quantized_accuracy(QuantRunner& runner, tensor::TensorView images,
                          const std::vector<int>& labels, const EvalOptions& options) {
    const auto& s = images.shape;
    if (static_cast<std::size_t>(s.n) != labels.size())
        throw std::invalid_argument("quantized_accuracy: label count mismatch");
    const bool inject = options.injection.flip_probability > 0.0;
    const int reps = inject ? std::max(1, options.repetitions) : 1;

    double accuracy_sum = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<inject::BitFlipInjector> injector;
        if (inject) {
            inject::InjectionConfig cfg = options.injection;
            cfg.seed = options.injection.seed + static_cast<std::uint64_t>(rep) * 0x9E3779B9u;
            injector = std::make_unique<inject::BitFlipInjector>(cfg);
        }
        std::size_t correct = 0;
        for (int start = 0; start < s.n; start += options.batch_size) {
            const int count = std::min(options.batch_size, s.n - start);
            // Zero-copy slice: the engine reads the samples in place.
            const tensor::Tensor logits =
                runner.run(images.batch_view(start, count), injector.get());
            const auto preds = ir::argmax_classes(logits);
            for (int n = 0; n < count; ++n)
                correct += (preds[static_cast<std::size_t>(n)] ==
                            labels[static_cast<std::size_t>(start + n)]);
        }
        accuracy_sum += static_cast<double>(correct) / static_cast<double>(s.n);
    }
    return accuracy_sum / static_cast<double>(reps);
}

double quantized_accuracy(const QuantizedGraph& qgraph, tensor::TensorView images,
                          const std::vector<int>& labels, const EvalOptions& options) {
    QuantRunner runner(qgraph, std::min(options.batch_size, images.shape.n));
    return quantized_accuracy(runner, images, labels, options);
}

}  // namespace raq::quant
