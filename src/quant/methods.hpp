// The post-training quantization method library of the paper (§5):
//   M1  uniform symmetric quantization        (Krishnamoorthi [16])
//   M2  asymmetric min/max quantization       (Jacob et al. [17])
//   M3  LAPQ: loss-aware clip optimization    (Nahshan et al. [19])
//   M4  ACIQ: analytic Laplace clipping with
//       per-channel weights + bias correction (Banner et al. [18])
//   M5  ACIQ without bias correction
//
// All methods are post-training (no retraining) and support different
// bit-widths for weights and activations, as the paper requires.
#pragma once

#include <string>
#include <vector>

#include "quant/calibration.hpp"
#include "quant/quantized_graph.hpp"

namespace raq::quant {

enum class Method {
    M1_UniformSymmetric,
    M2_MinMaxAsymmetric,
    M3_Lapq,
    M4_Aciq,
    M5_AciqNoBias,
};

[[nodiscard]] const char* method_label(Method m);  // "M1".."M5" (paper's labels)
[[nodiscard]] const char* method_name(Method m);   // human-readable
[[nodiscard]] std::vector<Method> all_methods();

/// Quantize the FP32 graph with the chosen method under the given
/// bit-width configuration.
[[nodiscard]] QuantizedGraph quantize_graph(const ir::Graph& graph, Method method,
                                            const QuantConfig& config,
                                            const CalibrationData& calib);

/// ACIQ's analytic optimal clip for a Laplace(b) distribution quantized
/// with 2^bits levels over [-clip, clip]: minimizes clipping + rounding
/// MSE (exposed for tests).
[[nodiscard]] double aciq_laplace_clip(double b, int bits);

}  // namespace raq::quant
