// Quantization parameters (scale / zero-point / bit-width) for the
// unsigned integer datapath of the MAC array (paper §5): activations are
// quantized to [0, 2^(8−α)), weights to [0, 2^(8−β)) with a zero-point,
// biases to 16−α−β bits at the accumulator scale.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace raq::quant {

struct QuantParams {
    float scale = 1.0f;
    std::int32_t zero_point = 0;  ///< in the unsigned quantized domain
    int bits = 8;

    [[nodiscard]] std::int32_t qmax() const { return (1 << bits) - 1; }

    [[nodiscard]] std::int32_t quantize(float x) const {
        const float q = std::nearbyint(x / scale) + static_cast<float>(zero_point);
        return static_cast<std::int32_t>(std::clamp(q, 0.0f, static_cast<float>(qmax())));
    }

    [[nodiscard]] float dequantize(std::int64_t q) const {
        return static_cast<float>(q - zero_point) * scale;
    }

    /// Asymmetric quantization over [lo, hi] (hi > lo required).
    static QuantParams from_range(float lo, float hi, int bits);

    /// Unsigned activation quantization over [0, hi] (zero_point = 0),
    /// matching the paper's [0, 2^(8−α)) activation segment.
    static QuantParams activation_range(float hi, int bits);

    /// Symmetric quantization around zero with the zero-point at mid-range
    /// (uniform symmetric [16] mapped onto the unsigned datapath).
    static QuantParams symmetric(float abs_max, int bits);
};

}  // namespace raq::quant
