// Calibration: per-tensor statistics gathered from an FP32 run over a
// calibration batch. ACIQ consumes the Laplace dispersion (mean absolute
// deviation), min/max methods consume the range, LAPQ additionally uses
// the labeled calibration batch to evaluate task loss.
#pragma once

#include <vector>

#include "ir/graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::quant {

struct TensorStats {
    float min = 0.0f;
    float max = 0.0f;
    float mean = 0.0f;
    float abs_dev = 0.0f;  ///< mean |x − mean| (Laplace dispersion b)
    float stddev = 0.0f;
};

struct CalibrationData {
    std::vector<TensorStats> per_tensor;  ///< indexed by IR tensor id
    tensor::Tensor images;                ///< the calibration batch
    std::vector<int> labels;              ///< labels for loss-aware methods
};

/// Run FP32 inference on `images` and collect statistics for every tensor
/// (streamed off the eager-freeing reference walker; the calibration
/// batch itself is copied into the result for loss-aware methods).
[[nodiscard]] CalibrationData calibrate(const ir::Graph& graph, tensor::TensorView images,
                                        std::vector<int> labels);

/// Statistics over an arbitrary float span (exposed for weight stats).
[[nodiscard]] TensorStats compute_stats(const float* data, std::size_t n);

/// Calibration for a partition shard: remap the per-tensor statistics
/// through `full_tensor_of` (sub-graph tensor id -> full-graph tensor
/// id, as produced by ir::extract_subgraph). The calibration images and
/// labels are whole-model inputs and are deliberately NOT carried over:
/// the per-layer methods (M1/M2/M4/M5) never read them, and the
/// loss-aware paths (M3/LAPQ, full Algorithm 1) need end-to-end
/// execution and are not supported on a shard in isolation. Because the
/// remap is a pure view of the whole-model statistics, an online re-cut
/// re-slices from the same full CalibrationData onto the new shard
/// tensors and quantization stays bit-identical across the swap.
[[nodiscard]] CalibrationData slice_calibration(const CalibrationData& full,
                                                const std::vector<int>& full_tensor_of);

}  // namespace raq::quant
