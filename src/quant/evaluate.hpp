// Accuracy evaluation of quantized graphs, with optional MSB bit-flip
// error injection (the Fig. 1b protocol: each experiment repeated to
// average the injected-error accuracy). Batches are zero-copy views into
// the image tensor; execution goes through a reusable QuantRunner so the
// plan and every scratch buffer are shared across batches and reps.
#pragma once

#include "inject/bitflip.hpp"
#include "quant/quant_executor.hpp"
#include "quant/quantized_graph.hpp"

namespace raq::quant {

struct EvalOptions {
    int batch_size = 100;
    /// When flip_probability > 0, inject per-product MSB flips.
    inject::InjectionConfig injection{};
    int repetitions = 1;  ///< reseeded injection runs averaged together
};

/// Top-1 accuracy of the quantized graph on (images, labels).
[[nodiscard]] double quantized_accuracy(const QuantizedGraph& qgraph,
                                        tensor::TensorView images,
                                        const std::vector<int>& labels,
                                        const EvalOptions& options = {});

/// Same, over a caller-owned runner — the Algorithm 1 inner loop form:
/// one plan and one set of scratch buffers serve every candidate method
/// (rebind the runner between methods).
[[nodiscard]] double quantized_accuracy(QuantRunner& runner, tensor::TensorView images,
                                        const std::vector<int>& labels,
                                        const EvalOptions& options = {});

}  // namespace raq::quant
