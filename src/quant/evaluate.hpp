// Accuracy evaluation of quantized graphs, with optional MSB bit-flip
// error injection (the Fig. 1b protocol: each experiment repeated to
// average the injected-error accuracy).
#pragma once

#include "inject/bitflip.hpp"
#include "quant/quantized_graph.hpp"

namespace raq::quant {

struct EvalOptions {
    int batch_size = 100;
    /// When flip_probability > 0, inject per-product MSB flips.
    inject::InjectionConfig injection{};
    int repetitions = 1;  ///< reseeded injection runs averaged together
};

/// Top-1 accuracy of the quantized graph on (images, labels).
[[nodiscard]] double quantized_accuracy(const QuantizedGraph& qgraph,
                                        const tensor::Tensor& images,
                                        const std::vector<int>& labels,
                                        const EvalOptions& options = {});

}  // namespace raq::quant
