#include "quant/quantized_graph.hpp"

#include <stdexcept>

namespace raq::quant {

QuantConfig QuantConfig::from_compression(const common::Compression& comp) {
    if (comp.alpha < 0 || comp.alpha > 7 || comp.beta < 0 || comp.beta > 7)
        throw std::invalid_argument(
            "QuantConfig: compression must keep at least 1 bit (alpha, beta in [0,7])");
    QuantConfig cfg;
    cfg.act_bits = 8 - comp.alpha;
    cfg.weight_bits = 8 - comp.beta;
    cfg.bias_bits = 16 - comp.alpha - comp.beta;
    cfg.padding = comp.padding;
    return cfg;
}

std::string QuantConfig::to_string() const {
    return "W" + std::to_string(weight_bits) + "A" + std::to_string(act_bits) + "B" +
           std::to_string(bias_bits) + "/" + common::padding_name(padding);
}

QuantizedGraph::QuantizedGraph(const ir::Graph& graph, QuantConfig config)
    : graph_(graph), config_(config) {
    conv_index_of_op_.assign(graph_.ops().size(), -1);
    int count = 0;
    for (std::size_t i = 0; i < graph_.ops().size(); ++i)
        if (graph_.ops()[i].kind == ir::OpKind::Conv2d)
            conv_index_of_op_[i] = count++;
    conv_data_.resize(static_cast<std::size_t>(count));
}

const QConv& QuantizedGraph::conv(std::size_t op_index) const {
    const int idx = conv_index_of_op_.at(op_index);
    if (idx < 0) throw std::invalid_argument("QuantizedGraph: op is not a conv");
    return conv_data_[static_cast<std::size_t>(idx)];
}

QConv& QuantizedGraph::conv(std::size_t op_index) {
    const int idx = conv_index_of_op_.at(op_index);
    if (idx < 0) throw std::invalid_argument("QuantizedGraph: op is not a conv");
    return conv_data_[static_cast<std::size_t>(idx)];
}

double QuantizedGraph::weight_mse() const {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < graph_.ops().size(); ++i) {
        if (conv_index_of_op_[i] < 0) continue;
        const auto& op = graph_.ops()[i];
        const QConv& qc = conv_data_[static_cast<std::size_t>(conv_index_of_op_[i])];
        const std::size_t kdim = op.weights.size() / static_cast<std::size_t>(op.conv.out_c);
        for (int oc = 0; oc < op.conv.out_c; ++oc) {
            const QuantParams& wq = qc.wq(oc);
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::size_t idx = static_cast<std::size_t>(oc) * kdim + k;
                const double err = static_cast<double>(op.weights[idx]) -
                                   wq.dequantize(qc.qweights[idx]);
                total += err * err;
            }
        }
        count += op.weights.size();
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace raq::quant
