// Quantized execution of QuantizedGraphs, as thin wrappers over the
// planned execution engine (src/exec/): every convolution runs on the
// unsigned-MAC datapath (q_a × q_w products accumulated in integers,
// zero-point corrections applied afterwards, 16−α−β-bit biases), exactly
// the computation the systolic array performs. The per-product hook is
// where the Fig. 1b bit-flip injection happens.
//
// QuantRunner is the reusable-state form: the Algorithm 1 inner loop and
// the serving runtime compile the plan once and re-run it with zero
// steady-state allocation, rebinding re-quantized graphs in place.
#pragma once

#include <cstdint>
#include <memory>

#include "exec/engine.hpp"
#include "exec/quant_backend.hpp"
#include "inject/bitflip.hpp"
#include "quant/quantized_graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::quant {

using QuantExecStats = exec::QuantExecStats;

/// Reusable quantized execution state: one ExecPlan (resolved through the
/// process-wide exec::PlanCache — every runner over the same topology and
/// capacity shares one compiled plan), one QuantBackend and one
/// ExecContext. Capacity grows on demand; rebind() swaps in a graph with
/// identical topology (e.g. the next re-quantization) without recompiling
/// the plan or dropping the scratch buffers.
///
/// Concurrency: a runner is single-threaded mutable state — one per
/// thread/device. The underlying plan is immutable and may be shared.
class QuantRunner {
public:
    /// Borrowing form: `qgraph` must outlive the binding (next rebind or
    /// destruction). Prefer the shared_ptr forms, which pin the graph.
    explicit QuantRunner(const QuantizedGraph& qgraph, int batch_capacity = 1,
                         exec::ThreadPool* pool = nullptr);
    /// Owning form: the runner keeps the graph alive itself.
    explicit QuantRunner(std::shared_ptr<const QuantizedGraph> qgraph,
                         int batch_capacity = 1, exec::ThreadPool* pool = nullptr);

    /// Swap the executed graph; its topology must match the planned one.
    /// Borrowing form: `qgraph` must stay alive until the next rebind
    /// (or destruction).
    void rebind(const QuantizedGraph& qgraph);
    /// Owning form: the runner pins the new graph (and releases the
    /// previous pin only after re-pointing at the new one).
    void rebind(std::shared_ptr<const QuantizedGraph> qgraph);

    /// Run one batch; `injector` (optional) is invoked once per MAC
    /// product, in the same order as the seed interpreter.
    [[nodiscard]] tensor::Tensor run(tensor::TensorView batch,
                                     inject::BitFlipInjector* injector = nullptr,
                                     QuantExecStats* stats = nullptr);

    /// Optional per-level timing profile: after each run, `hook` fires
    /// once per dependency level with that level's host microseconds.
    /// Pass an empty function to disable (the default; disabled runs
    /// never read the clock).
    void set_level_hook(exec::LevelTimingHook hook) { level_hook_ = std::move(hook); }

    /// Pin the SIMD dispatch tier of the integer-GEMM backend (defaults
    /// to the process-wide exec::kernels_simd::active_tier()). Every tier
    /// computes bit-identical logits; benches and tests pin the scalar
    /// reference or sweep tiers for comparison.
    void set_kernel_tier(exec::kernels_simd::KernelTier tier) {
        backend_.set_kernel_tier(tier);
    }
    [[nodiscard]] exec::kernels_simd::KernelTier kernel_tier() const {
        return backend_.kernel_tier();
    }

    [[nodiscard]] const exec::ExecPlan& plan() const { return *plan_; }

private:
    std::shared_ptr<const exec::ExecPlan> plan_;
    exec::QuantBackend backend_;
    exec::ExecContext ctx_;
    exec::ThreadPool* pool_;
    exec::LevelTimingHook level_hook_;  ///< empty = profiling off
    std::shared_ptr<const QuantizedGraph> pinned_;  ///< set by the owning forms
};

/// Run the quantized graph; one-shot wrapper over QuantRunner. Returns
/// float logits.
///
/// Reentrancy guarantee (relied on by the serving runtime in src/serve):
/// this function keeps no shared mutable state — all scratch buffers are
/// per call, and the only stateful collaborators (`injector`, `stats`)
/// are caller-provided per-call objects. Concurrent calls on the same
/// `qgraph` from different threads are safe and bit-identical to serial
/// execution as long as each call gets its own injector/stats.
[[nodiscard]] tensor::Tensor run_quantized(const QuantizedGraph& qgraph,
                                           tensor::TensorView batch,
                                           inject::BitFlipInjector* injector = nullptr,
                                           QuantExecStats* stats = nullptr);

}  // namespace raq::quant
