// Integer executor for quantized graphs: every convolution runs on the
// unsigned-MAC datapath (q_a × q_w products accumulated in int32, zero-
// point corrections applied afterwards, 16−α−β-bit biases), exactly the
// computation the systolic array performs. The per-product hook is where
// the Fig. 1b bit-flip injection happens.
//
// LSB padding semantics (paper Eq. 5): the hardware multiplies shifted
// operands (q_a·2^α)(q_w·2^β) and the result is shifted back in software.
// Numerically this is an identity, but it moves the product's MSB — the
// executor accounts for that when an injector is attached by flipping the
// correspondingly lower bit of the unshifted product.
#pragma once

#include <cstdint>

#include "inject/bitflip.hpp"
#include "quant/quantized_graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::quant {

struct QuantExecStats {
    std::uint64_t mac_count = 0;
    std::uint64_t flips = 0;
    std::int64_t max_abs_accumulator = 0;  ///< in the shifted (hardware) domain
    std::uint64_t accumulator_overflows = 0;  ///< values exceeding the 22-bit register
};

/// Run the quantized graph; `injector` (optional) is invoked once per MAC
/// product. Returns float logits.
///
/// Reentrancy guarantee (relied on by the serving runtime in src/serve):
/// this function keeps no shared mutable state — all scratch buffers are
/// per call, and the only stateful collaborators (`injector`, `stats`)
/// are caller-provided per-call objects. Concurrent calls on the same
/// `qgraph` from different threads are safe and bit-identical to serial
/// execution as long as each call gets its own injector/stats.
[[nodiscard]] tensor::Tensor run_quantized(const QuantizedGraph& qgraph,
                                           const tensor::Tensor& batch,
                                           inject::BitFlipInjector* injector = nullptr,
                                           QuantExecStats* stats = nullptr);

}  // namespace raq::quant
