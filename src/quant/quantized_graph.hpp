// A quantized deployment graph: the IR topology plus per-convolution
// integer weights, activation quantizers and bias words, under an
// (α, β) compression configuration (paper §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/compression.hpp"
#include "ir/graph.hpp"
#include "quant/qparams.hpp"

namespace raq::quant {

struct QuantConfig {
    int act_bits = 8;
    int weight_bits = 8;
    int bias_bits = 16;
    common::Padding padding = common::Padding::Msb;

    /// Paper §5 mapping: activations 8−α, weights 8−β, biases 16−α−β.
    static QuantConfig from_compression(const common::Compression& comp);

    [[nodiscard]] std::string to_string() const;
};

/// Per-conv-op quantization payload.
struct QConv {
    std::vector<std::uint8_t> qweights;  ///< [oc][kdim], unsigned codes
    std::vector<QuantParams> weight_q;   ///< size 1 (per-tensor) or out_c
    QuantParams act;                     ///< input activation quantizer (zp = 0)
    std::vector<std::int32_t> qbias;     ///< at scale act.scale * weight_scale(oc)
    /// Precision-scaling ablation ([10,11]-style LSB masking): this many
    /// low bits of every activation code are forced to zero at run time
    /// (floor truncation, no re-quantization). 0 = disabled.
    int act_mask_bits = 0;

    [[nodiscard]] const QuantParams& wq(int oc) const {
        return weight_q.size() == 1 ? weight_q[0] : weight_q[static_cast<std::size_t>(oc)];
    }
};

class QuantizedGraph {
public:
    QuantizedGraph(const ir::Graph& graph, QuantConfig config);

    [[nodiscard]] const ir::Graph& graph() const { return graph_; }
    [[nodiscard]] const QuantConfig& config() const { return config_; }

    /// Conv payload for the op at `op_index` in graph().ops().
    [[nodiscard]] const QConv& conv(std::size_t op_index) const;
    [[nodiscard]] QConv& conv(std::size_t op_index);

    /// Sum of per-weight quantization errors (for diagnostics/tests).
    [[nodiscard]] double weight_mse() const;

private:
    ir::Graph graph_;  ///< owned copy (weights retained for reference)
    QuantConfig config_;
    std::vector<QConv> conv_data_;          ///< dense, one per conv op
    std::vector<int> conv_index_of_op_;     ///< -1 for non-conv ops
};

}  // namespace raq::quant
