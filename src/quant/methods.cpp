#include "quant/methods.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "quant/quant_executor.hpp"

namespace raq::quant {

namespace {

// ------------------------------------------------------------ utilities

/// Golden-section minimization of a unimodal 1-D function on [lo, hi].
template <typename F>
double golden_min(F f, double lo, double hi, int iters) {
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo, b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1), f2 = f(x2);
    for (int i = 0; i < iters; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        }
    }
    return 0.5 * (a + b);
}

struct WeightRow {
    const float* data;
    std::size_t n;
};

/// Quantize one conv op's weights given per-channel (or single) params.
void quantize_weights(const ir::Op& op, const std::vector<QuantParams>& wq, QConv& out) {
    out.weight_q = wq;
    out.qweights.resize(op.weights.size());
    const std::size_t kdim = op.weights.size() / static_cast<std::size_t>(op.conv.out_c);
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const QuantParams& q = out.wq(oc);
        for (std::size_t k = 0; k < kdim; ++k) {
            const std::size_t idx = static_cast<std::size_t>(oc) * kdim + k;
            out.qweights[idx] = static_cast<std::uint8_t>(q.quantize(op.weights[idx]));
        }
    }
}

/// Quantize the (possibly corrected) float bias into 16−α−β-bit words.
/// The word lives in the accumulator scale (act_scale × weight_scale);
/// because BN-folded biases can exceed the 2^(16−α−β) code range, the
/// layer shares one left-shift exponent: stored value = word << shift.
/// This keeps the paper's bias *precision budget* (16−α−β significant
/// bits) while representing signed, large-magnitude biases — a documented
/// deviation from the paper's unsigned [0, 2^(16−α−β)) segment
/// (DESIGN.md §6).
void quantize_bias(const ir::Op& op, const std::vector<float>& bias, int bias_bits,
                   QConv& out) {
    out.qbias.resize(static_cast<std::size_t>(op.conv.out_c));
    const double limit = static_cast<double>((std::int64_t{1} << (bias_bits - 1)) - 1);
    double max_code = 0.0;
    std::vector<double> codes(static_cast<std::size_t>(op.conv.out_c));
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const double scale =
            static_cast<double>(out.act.scale) * static_cast<double>(out.wq(oc).scale);
        codes[static_cast<std::size_t>(oc)] =
            static_cast<double>(bias[static_cast<std::size_t>(oc)]) / scale;
        max_code = std::max(max_code, std::abs(codes[static_cast<std::size_t>(oc)]));
    }
    int shift = 0;
    while (max_code / static_cast<double>(std::int64_t{1} << shift) > limit && shift < 30)
        ++shift;
    const double step = static_cast<double>(std::int64_t{1} << shift);
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const double word = std::clamp(std::nearbyint(codes[static_cast<std::size_t>(oc)] / step),
                                       -limit, limit);
        out.qbias[static_cast<std::size_t>(oc)] = static_cast<std::int32_t>(word * step);
    }
}

/// ACIQ-style one-sided clip for post-ReLU activations modelled as a
/// shifted Laplace: minimize tail-clipping MSE + rounding MSE over [0, c].
double aciq_activation_clip(const TensorStats& stats, int bits) {
    const double b = std::max(1e-6, static_cast<double>(stats.abs_dev));
    const double mu = static_cast<double>(stats.mean);
    const double levels = std::pow(4.0, bits);
    auto objective = [&](double c) {
        const double clip_mse = b * b * std::exp(-(c - mu) / b);
        const double round_mse = c * c / (12.0 * levels);
        return clip_mse + round_mse;
    };
    const double c = golden_min(objective, mu, mu + 24.0 * b, 40);
    // Never clip beyond the observed range.
    return std::min(c, static_cast<double>(stats.max));
}

/// Per-channel ACIQ weight parameters (Laplace clip around the channel
/// mean, asymmetric code assignment over the clipped range).
std::vector<QuantParams> aciq_weight_params(const ir::Op& op, int bits) {
    const std::size_t kdim = op.weights.size() / static_cast<std::size_t>(op.conv.out_c);
    std::vector<QuantParams> out(static_cast<std::size_t>(op.conv.out_c));
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const float* row = op.weights.data() + static_cast<std::size_t>(oc) * kdim;
        const TensorStats s = compute_stats(row, kdim);
        const double clip = aciq_laplace_clip(std::max(1e-7, (double)s.abs_dev), bits);
        const float lo = std::max(s.min, static_cast<float>(s.mean - clip));
        const float hi = std::min(s.max, static_cast<float>(s.mean + clip));
        out[static_cast<std::size_t>(oc)] = QuantParams::from_range(lo, hi, bits);
    }
    return out;
}

/// ACIQ bias correction: compensate the per-channel mean weight
/// quantization error using the calibrated mean input activation.
std::vector<float> bias_corrected(const ir::Op& op, const QConv& qc, float mean_input) {
    const std::size_t kdim = op.weights.size() / static_cast<std::size_t>(op.conv.out_c);
    std::vector<float> bias = op.bias;
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const QuantParams& wq = qc.wq(oc);
        double err_sum = 0.0;
        for (std::size_t k = 0; k < kdim; ++k) {
            const std::size_t idx = static_cast<std::size_t>(oc) * kdim + k;
            err_sum += wq.dequantize(qc.qweights[idx]) -
                       static_cast<double>(op.weights[idx]);
        }
        bias[static_cast<std::size_t>(oc)] -= static_cast<float>(err_sum * mean_input);
    }
    return bias;
}

/// Cross-entropy of quantized logits on the calibration batch (the loss
/// LAPQ minimizes); the caller produces the logits through its runner.
double calib_loss(const tensor::Tensor& logits, const CalibrationData& calib) {
    const auto& s = logits.shape();
    double total = 0.0;
    for (int n = 0; n < s.n; ++n) {
        float max_logit = logits.at(n, 0, 0, 0);
        for (int c = 1; c < s.c; ++c) max_logit = std::max(max_logit, logits.at(n, c, 0, 0));
        double denom = 0.0;
        for (int c = 0; c < s.c; ++c)
            denom += std::exp(static_cast<double>(logits.at(n, c, 0, 0) - max_logit));
        const int label = calib.labels[static_cast<std::size_t>(n)];
        total -= static_cast<double>(logits.at(n, label, 0, 0) - max_logit) - std::log(denom);
    }
    return total / static_cast<double>(s.n);
}

/// Build a quantized graph where all clips are ACIQ clips scaled by
/// (act_mult, weight_mult) — the parameterization LAPQ searches over.
QuantizedGraph build_scaled(const ir::Graph& graph, const QuantConfig& config,
                            const CalibrationData& calib, double act_mult,
                            double weight_mult) {
    QuantizedGraph qgraph(graph, config);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ir::Op& op = ops[i];
        if (op.kind != ir::OpKind::Conv2d) continue;
        QConv& qc = qgraph.conv(i);
        const TensorStats& in_stats = calib.per_tensor[static_cast<std::size_t>(op.inputs[0])];
        const double base_clip = aciq_activation_clip(in_stats, config.act_bits);
        const double clip = std::min(static_cast<double>(in_stats.max), base_clip * act_mult);
        qc.act = QuantParams::activation_range(static_cast<float>(clip), config.act_bits);

        const std::size_t kdim = op.weights.size() / static_cast<std::size_t>(op.conv.out_c);
        std::vector<QuantParams> wq(static_cast<std::size_t>(op.conv.out_c));
        for (int oc = 0; oc < op.conv.out_c; ++oc) {
            const float* row = op.weights.data() + static_cast<std::size_t>(oc) * kdim;
            const TensorStats s = compute_stats(row, kdim);
            const double c =
                aciq_laplace_clip(std::max(1e-7, (double)s.abs_dev), config.weight_bits) *
                weight_mult;
            const float lo = std::max(s.min, static_cast<float>(s.mean - c));
            const float hi = std::min(s.max, static_cast<float>(s.mean + c));
            wq[static_cast<std::size_t>(oc)] = QuantParams::from_range(lo, hi, config.weight_bits);
        }
        quantize_weights(op, wq, qc);
        quantize_bias(op, op.bias, config.bias_bits, qc);
    }
    return qgraph;
}

}  // namespace

double aciq_laplace_clip(double b, int bits) {
    // MSE(clip) = 2 b^2 e^{-clip/b}          (two Laplace tails)
    //           + clip^2 / (3 * 4^bits)      (uniform rounding over 2*clip)
    const double levels = std::pow(4.0, bits);
    auto objective = [&](double c) {
        return 2.0 * b * b * std::exp(-c / b) + c * c / (3.0 * levels);
    };
    return golden_min(objective, 0.5 * b, 30.0 * b, 48);
}

const char* method_label(Method m) {
    switch (m) {
        case Method::M1_UniformSymmetric: return "M1";
        case Method::M2_MinMaxAsymmetric: return "M2";
        case Method::M3_Lapq: return "M3";
        case Method::M4_Aciq: return "M4";
        case Method::M5_AciqNoBias: return "M5";
    }
    return "?";
}

const char* method_name(Method m) {
    switch (m) {
        case Method::M1_UniformSymmetric: return "uniform-symmetric [16]";
        case Method::M2_MinMaxAsymmetric: return "asymmetric-minmax [17]";
        case Method::M3_Lapq: return "LAPQ [19]";
        case Method::M4_Aciq: return "ACIQ [18]";
        case Method::M5_AciqNoBias: return "ACIQ w/o bias corr. [18]";
    }
    return "?";
}

std::vector<Method> all_methods() {
    return {Method::M1_UniformSymmetric, Method::M2_MinMaxAsymmetric, Method::M3_Lapq,
            Method::M4_Aciq, Method::M5_AciqNoBias};
}

QuantizedGraph quantize_graph(const ir::Graph& graph, Method method, const QuantConfig& config,
                              const CalibrationData& calib) {
    if (calib.per_tensor.size() != static_cast<std::size_t>(graph.num_tensors()))
        throw std::invalid_argument("quantize_graph: calibration does not match graph");

    if (method == Method::M3_Lapq) {
        // LAPQ: loss-aware clip search. Coarse stage-wise grid over the
        // (weight, activation) clip multipliers, then golden-section
        // refinement of each coordinate against the calibration loss.
        // Every probe shares one runner: the plan and all scratch buffers
        // are compiled once, only the quantization payload is rebound
        // (owning rebind — the runner pins each probe graph itself).
        std::unique_ptr<QuantRunner> runner;
        const auto probe_loss = [&](double ma, double mw) {
            auto probe = std::make_shared<const QuantizedGraph>(
                build_scaled(graph, config, calib, ma, mw));
            if (!runner)
                runner =
                    std::make_unique<QuantRunner>(std::move(probe), calib.images.shape().n);
            else
                runner->rebind(std::move(probe));
            return calib_loss(runner->run(calib.images), calib);
        };
        const double grid[] = {0.6, 0.8, 1.0, 1.3, 1.7};
        double best_w = 1.0, best_loss = 1e300;
        for (const double mw : grid) {
            const double loss = probe_loss(1.0, mw);
            if (loss < best_loss) {
                best_loss = loss;
                best_w = mw;
            }
        }
        double best_a = 1.0;
        best_loss = 1e300;
        for (const double ma : grid) {
            const double loss = probe_loss(ma, best_w);
            if (loss < best_loss) {
                best_loss = loss;
                best_a = ma;
            }
        }
        best_w = golden_min([&](double mw) { return probe_loss(best_a, mw); }, best_w * 0.7,
                            best_w * 1.4, 5);
        best_a = golden_min([&](double ma) { return probe_loss(ma, best_w); }, best_a * 0.7,
                            best_a * 1.4, 5);
        return build_scaled(graph, config, calib, best_a, best_w);
    }

    QuantizedGraph qgraph(graph, config);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ir::Op& op = ops[i];
        if (op.kind != ir::OpKind::Conv2d) continue;
        QConv& qc = qgraph.conv(i);
        const TensorStats& in_stats = calib.per_tensor[static_cast<std::size_t>(op.inputs[0])];

        switch (method) {
            case Method::M1_UniformSymmetric: {
                qc.act = QuantParams::activation_range(in_stats.max, config.act_bits);
                const TensorStats ws = compute_stats(op.weights.data(), op.weights.size());
                const float abs_max = std::max(std::abs(ws.min), std::abs(ws.max));
                quantize_weights(op, {QuantParams::symmetric(abs_max, config.weight_bits)}, qc);
                quantize_bias(op, op.bias, config.bias_bits, qc);
                break;
            }
            case Method::M2_MinMaxAsymmetric: {
                qc.act = QuantParams::activation_range(in_stats.max, config.act_bits);
                const TensorStats ws = compute_stats(op.weights.data(), op.weights.size());
                quantize_weights(op, {QuantParams::from_range(ws.min, ws.max, config.weight_bits)},
                                 qc);
                quantize_bias(op, op.bias, config.bias_bits, qc);
                break;
            }
            case Method::M4_Aciq:
            case Method::M5_AciqNoBias: {
                const double clip = aciq_activation_clip(in_stats, config.act_bits);
                qc.act = QuantParams::activation_range(static_cast<float>(clip), config.act_bits);
                quantize_weights(op, aciq_weight_params(op, config.weight_bits), qc);
                if (method == Method::M4_Aciq) {
                    quantize_bias(op, bias_corrected(op, qc, in_stats.mean), config.bias_bits, qc);
                } else {
                    quantize_bias(op, op.bias, config.bias_bits, qc);
                }
                break;
            }
            case Method::M3_Lapq:
                break;  // handled above
        }
    }
    return qgraph;
}

}  // namespace raq::quant
