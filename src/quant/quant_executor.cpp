#include "quant/quant_executor.hpp"

#include <stdexcept>

#include "exec/plan_cache.hpp"

namespace raq::quant {

namespace {

/// Clears the backend's per-run fault hooks on every exit path: a run
/// that throws must not leave the backend pointing at caller-owned
/// injector/stats objects that are about to be destroyed.
class FaultHookGuard {
public:
    FaultHookGuard(exec::QuantBackend& backend, inject::BitFlipInjector* injector,
                   QuantExecStats* stats)
        : backend_(backend) {
        backend_.set_fault_hooks(injector, stats);
    }
    ~FaultHookGuard() { backend_.set_fault_hooks(nullptr, nullptr); }

    FaultHookGuard(const FaultHookGuard&) = delete;
    FaultHookGuard& operator=(const FaultHookGuard&) = delete;

private:
    exec::QuantBackend& backend_;
};

}  // namespace

QuantRunner::QuantRunner(const QuantizedGraph& qgraph, int batch_capacity,
                         exec::ThreadPool* pool)
    : plan_(exec::PlanCache::global().get(qgraph.graph(), batch_capacity)),
      backend_(qgraph),
      pool_(pool) {}

QuantRunner::QuantRunner(std::shared_ptr<const QuantizedGraph> qgraph, int batch_capacity,
                         exec::ThreadPool* pool)
    : QuantRunner(*qgraph, batch_capacity, pool) {
    pinned_ = std::move(qgraph);
}

void QuantRunner::rebind(const QuantizedGraph& qgraph) {
    if (!ir::topology_equals(plan_->graph(), qgraph.graph()))
        throw std::invalid_argument("QuantRunner: rebind graph topology mismatch");
    backend_.bind(qgraph);
    pinned_.reset();  // the caller owns this binding's lifetime
}

void QuantRunner::rebind(std::shared_ptr<const QuantizedGraph> qgraph) {
    if (!qgraph) throw std::invalid_argument("QuantRunner: rebind null graph");
    if (!ir::topology_equals(plan_->graph(), qgraph->graph()))
        throw std::invalid_argument("QuantRunner: rebind graph topology mismatch");
    backend_.bind(*qgraph);
    pinned_ = std::move(qgraph);  // releases the previous pin after re-pointing
}

tensor::Tensor QuantRunner::run(tensor::TensorView batch, inject::BitFlipInjector* injector,
                                QuantExecStats* stats) {
    if (batch.shape.n > plan_->batch_capacity())
        // Re-resolve at the larger capacity (a cache hit when any runner
        // over this topology already grew this far; a miss shares the
        // current plan's graph instead of copying it).
        plan_ = exec::PlanCache::global().get(plan_->graph_shared(), batch.shape.n);
    const FaultHookGuard guard(backend_, injector, stats);
    exec::RunOptions options;
    options.pool = pool_;
    if (level_hook_) options.level_hook = &level_hook_;
    return exec::run(*plan_, backend_, ctx_, batch, options);
}

tensor::Tensor run_quantized(const QuantizedGraph& qgraph, tensor::TensorView batch,
                             inject::BitFlipInjector* injector, QuantExecStats* stats) {
    QuantRunner runner(qgraph, batch.shape.n);
    return runner.run(batch, injector, stats);
}

}  // namespace raq::quant
