#include "quant/quant_executor.hpp"

#include <stdexcept>

#include "ir/float_executor.hpp"

namespace raq::quant {

namespace {

/// Integer im2col on quantized activation codes; padding positions hold
/// the code for real-value zero (zp = 0 for our unsigned activations).
void im2col_u8(const std::vector<std::uint8_t>& qx, const tensor::Shape& s, int kh, int kw,
               int stride, int pad, std::vector<std::uint8_t>& columns, int& oh, int& ow) {
    oh = tensor::conv_out_dim(s.h, kh, stride, pad);
    ow = tensor::conv_out_dim(s.w, kw, stride, pad);
    const std::size_t rows = static_cast<std::size_t>(s.c) * static_cast<std::size_t>(kh) *
                             static_cast<std::size_t>(kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) * static_cast<std::size_t>(oh) *
                             static_cast<std::size_t>(ow);
    columns.assign(rows * cols, 0);
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c)
            for (int ky = 0; ky < kh; ++ky)
                for (int kx = 0; kx < kw; ++kx) {
                    const std::size_t row =
                        (static_cast<std::size_t>(c) * static_cast<std::size_t>(kh) +
                         static_cast<std::size_t>(ky)) *
                            static_cast<std::size_t>(kw) +
                        static_cast<std::size_t>(kx);
                    for (int oy = 0; oy < oh; ++oy) {
                        const int iy = oy * stride - pad + ky;
                        if (iy < 0 || iy >= s.h) continue;
                        const std::size_t col_base =
                            (static_cast<std::size_t>(n) * static_cast<std::size_t>(oh) +
                             static_cast<std::size_t>(oy)) *
                            static_cast<std::size_t>(ow);
                        const std::size_t in_base =
                            ((static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                              static_cast<std::size_t>(c)) *
                                 static_cast<std::size_t>(s.h) +
                             static_cast<std::size_t>(iy)) *
                            static_cast<std::size_t>(s.w);
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            if (ix < 0 || ix >= s.w) continue;
                            columns[row * cols + col_base + static_cast<std::size_t>(ox)] =
                                qx[in_base + static_cast<std::size_t>(ix)];
                        }
                    }
                }
}

tensor::Tensor conv_quantized(const ir::Op& op, const QConv& qc,
                              const common::Padding padding, const tensor::Tensor& in,
                              inject::BitFlipInjector* injector, QuantExecStats* stats) {
    if (qc.act.zero_point != 0)
        throw std::logic_error("conv_quantized: activation zero-point must be 0");
    const auto& s = in.shape();
    // Quantize the input activations (optionally truncating LSBs for the
    // precision-scaling ablation).
    const std::uint8_t act_mask =
        static_cast<std::uint8_t>(0xFFu << (qc.act_mask_bits & 7));
    std::vector<std::uint8_t> qx(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        qx[i] = static_cast<std::uint8_t>(qc.act.quantize(in[i])) & act_mask;

    std::vector<std::uint8_t> columns;
    int oh = 0, ow = 0;
    im2col_u8(qx, s, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad, columns, oh, ow);
    const std::size_t kdim = static_cast<std::size_t>(op.conv.in_c) *
                             static_cast<std::size_t>(op.conv.kh) *
                             static_cast<std::size_t>(op.conv.kw);
    const std::size_t cols = static_cast<std::size_t>(s.n) * static_cast<std::size_t>(oh) *
                             static_cast<std::size_t>(ow);

    // Per-column activation code sums for the zero-point correction.
    std::vector<std::int32_t> colsum(cols, 0);
    for (std::size_t k = 0; k < kdim; ++k) {
        const std::uint8_t* row = columns.data() + k * cols;
        for (std::size_t j = 0; j < cols; ++j) colsum[j] += row[j];
    }

    // With LSB padding the hardware product register holds p << (α+β); a
    // flip of register bit 15/14 lands on bit 15−(α+β)/14−(α+β) of the
    // unshifted product. Model by narrowing the injector's register view.
    const int shift =
        padding == common::Padding::Lsb ? (8 - qc.act.bits) + (8 - qc.wq(0).bits) : 0;

    tensor::Tensor out({s.n, op.conv.out_c, oh, ow});
    const std::size_t hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    std::vector<std::int64_t> acc(cols);
    for (int oc = 0; oc < op.conv.out_c; ++oc) {
        const std::uint8_t* wrow = qc.qweights.data() + static_cast<std::size_t>(oc) * kdim;
        std::fill(acc.begin(), acc.end(), 0);
        if (injector == nullptr) {
            // Fast path: plain integer GEMM row.
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                if (w == 0) continue;
                const std::uint8_t* crow = columns.data() + k * cols;
                for (std::size_t j = 0; j < cols; ++j) acc[j] += w * crow[j];
            }
        } else {
            // Injection path: one hook call per MAC product.
            for (std::size_t k = 0; k < kdim; ++k) {
                const std::int32_t w = wrow[k];
                const std::uint8_t* crow = columns.data() + k * cols;
                for (std::size_t j = 0; j < cols; ++j) {
                    std::int64_t product = static_cast<std::int64_t>(w) * crow[j];
                    product = injector->apply(product);
                    acc[j] += product;
                }
            }
        }
        if (stats) stats->mac_count += kdim * cols;

        const QuantParams& wq = qc.wq(oc);
        const float scale = qc.act.scale * wq.scale;
        const std::int32_t zw = wq.zero_point;
        const std::int64_t qb = qc.qbias[static_cast<std::size_t>(oc)];
        for (std::size_t j = 0; j < cols; ++j) {
            const std::int64_t corrected = acc[j] - static_cast<std::int64_t>(zw) * colsum[j] + qb;
            if (stats) {
                // Accumulator occupancy check in the shifted hardware domain
                // (22-bit register of the paper's MAC).
                const std::int64_t hw_value = corrected << shift;
                const std::int64_t mag = hw_value < 0 ? -hw_value : hw_value;
                stats->max_abs_accumulator = std::max(stats->max_abs_accumulator, mag);
                if (mag >= (std::int64_t{1} << 22)) ++stats->accumulator_overflows;
            }
            // Map [oc, col] back to NCHW.
            const std::size_t n = j / hw;
            const std::size_t pos = j % hw;
            out.data()[(n * static_cast<std::size_t>(op.conv.out_c) +
                        static_cast<std::size_t>(oc)) *
                           hw +
                       pos] = static_cast<float>(corrected) * scale;
        }
    }
    if (stats && injector) stats->flips = injector->flips_injected();
    return out;
}

}  // namespace

tensor::Tensor run_quantized(const QuantizedGraph& qgraph, const tensor::Tensor& batch,
                             inject::BitFlipInjector* injector, QuantExecStats* stats) {
    const ir::Graph& graph = qgraph.graph();
    std::vector<tensor::Tensor> tensors(static_cast<std::size_t>(graph.num_tensors()));
    tensors[static_cast<std::size_t>(graph.input_id())] = batch;
    for (std::size_t i = 0; i < graph.ops().size(); ++i) {
        const ir::Op& op = graph.ops()[i];
        tensor::Tensor out;
        if (op.kind == ir::OpKind::Conv2d) {
            out = conv_quantized(op, qgraph.conv(i), qgraph.config().padding,
                                 tensors[static_cast<std::size_t>(op.inputs.at(0))], injector,
                                 stats);
        } else {
            std::vector<const tensor::Tensor*> ins;
            ins.reserve(op.inputs.size());
            for (int id : op.inputs) ins.push_back(&tensors[static_cast<std::size_t>(id)]);
            out = ir::apply_nonconv_op(op, ins);
        }
        tensors[static_cast<std::size_t>(op.output)] = std::move(out);
    }
    return std::move(tensors[static_cast<std::size_t>(graph.output_id())]);
}

}  // namespace raq::quant
