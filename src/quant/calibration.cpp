#include "quant/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "ir/float_executor.hpp"

namespace raq::quant {

TensorStats compute_stats(const float* data, std::size_t n) {
    if (n == 0) throw std::invalid_argument("compute_stats: empty span");
    TensorStats s;
    s.min = s.max = data[0];
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const float v = data[i];
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
        sum += v;
        sq += static_cast<double>(v) * v;
    }
    s.mean = static_cast<float>(sum / static_cast<double>(n));
    const double var = sq / static_cast<double>(n) - static_cast<double>(s.mean) * s.mean;
    s.stddev = static_cast<float>(std::sqrt(std::max(0.0, var)));
    double dev = 0.0;
    for (std::size_t i = 0; i < n; ++i) dev += std::abs(data[i] - s.mean);
    s.abs_dev = static_cast<float>(dev / static_cast<double>(n));
    return s;
}

CalibrationData calibrate(const ir::Graph& graph, const tensor::Tensor& images,
                          std::vector<int> labels) {
    if (static_cast<std::size_t>(images.shape().n) != labels.size())
        throw std::invalid_argument("calibrate: label count mismatch");
    CalibrationData out;
    out.images = images;
    out.labels = std::move(labels);
    const auto tensors = ir::run_float_all(graph, images);
    out.per_tensor.resize(tensors.size());
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        if (tensors[i].size() == 0) continue;  // unused tensor slot
        out.per_tensor[i] = compute_stats(tensors[i].data(), tensors[i].size());
    }
    return out;
}

}  // namespace raq::quant
