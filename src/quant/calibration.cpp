#include "quant/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "ir/float_executor.hpp"

namespace raq::quant {

TensorStats compute_stats(const float* data, std::size_t n) {
    if (n == 0) throw std::invalid_argument("compute_stats: empty span");
    TensorStats s;
    s.min = s.max = data[0];
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const float v = data[i];
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
        sum += v;
        sq += static_cast<double>(v) * v;
    }
    s.mean = static_cast<float>(sum / static_cast<double>(n));
    const double var = sq / static_cast<double>(n) - static_cast<double>(s.mean) * s.mean;
    s.stddev = static_cast<float>(std::sqrt(std::max(0.0, var)));
    double dev = 0.0;
    for (std::size_t i = 0; i < n; ++i) dev += std::abs(data[i] - s.mean);
    s.abs_dev = static_cast<float>(dev / static_cast<double>(n));
    return s;
}

CalibrationData calibrate(const ir::Graph& graph, tensor::TensorView images,
                          std::vector<int> labels) {
    if (static_cast<std::size_t>(images.shape.n) != labels.size())
        throw std::invalid_argument("calibrate: label count mismatch");
    CalibrationData out;
    out.images = tensor::Tensor(images.shape,
                                std::vector<float>(images.data, images.data + images.size()));
    out.labels = std::move(labels);
    // Stream the statistics off the eager-freeing walker: each tensor is
    // visited once while live and dropped after its last consumer, so the
    // peak is the live set, not every intermediate of the batch at once.
    out.per_tensor.resize(static_cast<std::size_t>(graph.num_tensors()));
    ir::for_each_float_tensor(graph, images, [&](int id, const tensor::Tensor& t) {
        out.per_tensor[static_cast<std::size_t>(id)] = compute_stats(t.data(), t.size());
    });
    return out;
}

CalibrationData slice_calibration(const CalibrationData& full,
                                  const std::vector<int>& full_tensor_of) {
    CalibrationData out;
    out.per_tensor.reserve(full_tensor_of.size());
    for (const int full_id : full_tensor_of)
        out.per_tensor.push_back(full.per_tensor.at(static_cast<std::size_t>(full_id)));
    return out;
}

}  // namespace raq::quant
