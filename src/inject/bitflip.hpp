// MSB bit-flip error injection (the paper's Fig. 1b methodology):
// "error injection is implemented by randomly flipping one of the two
// MSBs with a given probability" in every multiplication of the
// convolutional layers. The injector is called once per MAC product in
// the quantized executor; geometric skipping makes rare flip rates
// (10^-5) essentially free.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace raq::inject {

struct InjectionConfig {
    double flip_probability = 0.0;  ///< per-product probability of one flip
    int product_bits = 16;          ///< width of the multiplier product register
    int candidate_msbs = 2;         ///< flip lands in one of this many top bits
    std::uint64_t seed = 1;
};

class BitFlipInjector {
public:
    explicit BitFlipInjector(const InjectionConfig& config);

    /// Possibly flip one of the top `candidate_msbs` bits of `product`.
    /// Branch-predictable fast path: a countdown to the next flip drawn
    /// from the geometric distribution.
    [[nodiscard]] std::int64_t apply(std::int64_t product) {
        if (config_.flip_probability <= 0.0) return product;
        if (countdown_ > 0) {
            --countdown_;
            return product;
        }
        rearm();
        return flip(product);
    }

    [[nodiscard]] std::uint64_t flips_injected() const { return flips_; }
    [[nodiscard]] std::uint64_t products_seen_estimate() const { return seen_; }
    [[nodiscard]] const InjectionConfig& config() const { return config_; }

    void reset(std::uint64_t seed);

private:
    [[nodiscard]] std::int64_t flip(std::int64_t product);
    void rearm();

    InjectionConfig config_;
    common::Rng rng_;
    std::uint64_t countdown_ = 0;
    std::uint64_t flips_ = 0;
    std::uint64_t seen_ = 0;
};

}  // namespace raq::inject
