#include "inject/bitflip.hpp"

#include <stdexcept>

namespace raq::inject {

BitFlipInjector::BitFlipInjector(const InjectionConfig& config)
    : config_(config), rng_(config.seed) {
    if (config_.flip_probability < 0.0 || config_.flip_probability > 1.0)
        throw std::invalid_argument("BitFlipInjector: probability outside [0,1]");
    if (config_.product_bits < 2 || config_.product_bits > 62)
        throw std::invalid_argument("BitFlipInjector: product_bits outside [2,62]");
    if (config_.candidate_msbs < 1 || config_.candidate_msbs > config_.product_bits)
        throw std::invalid_argument("BitFlipInjector: bad candidate_msbs");
    if (config_.flip_probability > 0.0) countdown_ = rng_.next_geometric(config_.flip_probability);
}

void BitFlipInjector::reset(std::uint64_t seed) {
    rng_.reseed(seed);
    flips_ = 0;
    seen_ = 0;
    countdown_ = config_.flip_probability > 0.0
                     ? rng_.next_geometric(config_.flip_probability)
                     : 0;
}

void BitFlipInjector::rearm() { countdown_ = rng_.next_geometric(config_.flip_probability); }

std::int64_t BitFlipInjector::flip(std::int64_t product) {
    ++flips_;
    const int bit = config_.product_bits - 1 -
                    static_cast<int>(rng_.next_below(
                        static_cast<std::uint64_t>(config_.candidate_msbs)));
    return product ^ (std::int64_t{1} << bit);
}

}  // namespace raq::inject
