#include "core/requant_job.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "ir/float_executor.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

namespace raq::core {

MethodSearchResult search_methods(const ir::Graph& graph, const quant::QuantConfig& config,
                                  const quant::CalibrationData& calib,
                                  tensor::TensorView eval_images,
                                  const std::vector<int>& eval_labels, double fp32_accuracy,
                                  std::optional<double> accuracy_loss_threshold) {
    MethodSearchResult result;
    bool have_best = false;
    // Every candidate method runs through one shared execution plan —
    // only the quantization payload is rebound, so the schedule, arena
    // and conv workspaces are compiled once (and, via the PlanCache,
    // shared with every other search over this topology). The runner
    // pins each bound graph itself (owning rebind).
    std::unique_ptr<quant::QuantRunner> runner;
    const quant::EvalOptions eval_options;
    for (const quant::Method method : quant::all_methods()) {
        auto qgraph = std::make_shared<const quant::QuantizedGraph>(
            quant::quantize_graph(graph, method, config, calib));
        if (!runner)
            runner = std::make_unique<quant::QuantRunner>(
                std::move(qgraph),
                std::min(eval_options.batch_size, eval_images.shape.n));
        else
            runner->rebind(std::move(qgraph));
        const double acc =
            quant::quantized_accuracy(*runner, eval_images, eval_labels, eval_options);
        MethodOutcome outcome;
        outcome.method = method;
        outcome.accuracy = acc;
        outcome.accuracy_loss = 100.0 * (fp32_accuracy - acc);
        result.all_methods.push_back(outcome);
        if (!have_best || acc > result.accuracy) {
            result.accuracy = acc;
            result.selected = method;
            have_best = true;
        }
        // Algorithm 1 line 9: stop at the first method meeting the
        // user-provided accuracy-loss threshold.
        if (accuracy_loss_threshold && outcome.accuracy_loss <= *accuracy_loss_threshold) {
            result.accuracy = acc;
            result.selected = method;
            break;
        }
    }
    return result;
}

RequantJob::RequantJob(const ir::Graph& graph, const quant::CalibrationData& calib,
                       const CompressionSelector& selector, const RequantJobConfig& config,
                       const tensor::Tensor* eval_images,
                       const std::vector<int>* eval_labels)
    : graph_(&graph),
      calib_(&calib),
      selector_(&selector),
      config_(config),
      eval_images_(eval_images),
      eval_labels_(eval_labels) {
    if (config_.full_algorithm1) {
        if (!eval_images_ || !eval_labels_)
            throw std::invalid_argument(
                "RequantJob: full Algorithm 1 requires an eval set (eval_images + "
                "eval_labels); it does not fall back to the fast path");
        if (eval_images_->shape().n < 1 ||
            eval_labels_->size() < static_cast<std::size_t>(eval_images_->shape().n))
            throw std::invalid_argument(
                "RequantJob: eval set is empty or has fewer labels than images");
        fp32_accuracy_ = ir::float_accuracy(*graph_, *eval_images_, *eval_labels_);
    }
}

std::optional<ModelState> RequantJob::build(double dvth_mv,
                                            std::uint64_t generation) const {
    const auto choice = selector_->select(dvth_mv, config_.guardband_fraction);
    // Even full compression cannot meet timing: the caller keeps its
    // current deployment rather than serve a clock-violating graph.
    if (!choice) return std::nullopt;

    const auto qconfig = quant::QuantConfig::from_compression(choice->compression);
    quant::Method method = quant::Method::M5_AciqNoBias;
    if (config_.full_algorithm1)
        method = search_methods(*graph_, qconfig, *calib_, *eval_images_, *eval_labels_,
                                fp32_accuracy_, config_.accuracy_loss_threshold)
                     .selected;

    ModelState state;
    state.generation = generation;
    state.qgraph = std::make_shared<const quant::QuantizedGraph>(
        quant::quantize_graph(*graph_, method, qconfig, *calib_));
    state.compression = choice->compression;
    state.method = method;
    state.dvth_mv = dvth_mv;
    state.aged_delay_ps = choice->delay_ps;
    return state;
}

}  // namespace raq::core
