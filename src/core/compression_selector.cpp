#include "core/compression_selector.hpp"

#include <algorithm>
#include <stdexcept>

#include "sta/case_analysis.hpp"

namespace raq::core {

CompressionSelector::CompressionSelector(const netlist::Netlist& mac,
                                         const cell::Library& fresh_library)
    : mac_(&mac), fresh_(fresh_library), sta_(mac, fresh_library),
      fresh_cp_ps_(sta_.critical_path_ps(fresh_library)) {}

double CompressionSelector::delay_ps(double dvth_mv, const common::Compression& comp) const {
    const cell::Library aged = fresh_.aged(dvth_mv);
    return sta_.critical_path_ps(aged, sta::compression_case(*mac_, comp));
}

std::vector<CompressionCandidate> CompressionSelector::feasible(double dvth_mv,
                                                                double guardband_fraction,
                                                                int max_bits) const {
    if (max_bits < 0 || max_bits > 8)
        throw std::invalid_argument("CompressionSelector: max_bits outside [0,8]");
    const double constraint = fresh_cp_ps_ * (1.0 + guardband_fraction);
    const cell::Library aged = fresh_.aged(dvth_mv);
    std::vector<CompressionCandidate> out;
    for (int alpha = 0; alpha <= max_bits; ++alpha) {
        for (int beta = 0; beta <= max_bits; ++beta) {
            CompressionCandidate best;
            bool found = false;
            for (const auto padding : {common::Padding::Msb, common::Padding::Lsb}) {
                const common::Compression comp{alpha, beta, padding};
                const double d =
                    sta_.critical_path_ps(aged, sta::compression_case(*mac_, comp));
                if (d > constraint + 1e-9) continue;
                if (!found || d < best.delay_ps) {
                    best.compression = comp;
                    best.delay_ps = d;
                    best.normalized_delay = d / fresh_cp_ps_;
                    found = true;
                }
            }
            if (found) out.push_back(best);
        }
    }
    return out;
}

std::optional<CompressionCandidate> CompressionSelector::select(
    double dvth_mv, double guardband_fraction) const {
    auto candidates = feasible(dvth_mv, guardband_fraction);
    if (candidates.empty()) return std::nullopt;
    // Minimum Euclidean norm; ties broken toward the smallest alpha
    // (keep activation precision, ACIQ's guidance [18]); final tie-break
    // on the faster candidate for determinism.
    const auto better = [](const CompressionCandidate& a, const CompressionCandidate& b) {
        const double na = a.compression.norm();
        const double nb = b.compression.norm();
        if (na != nb) return na < nb;
        if (a.compression.alpha != b.compression.alpha)
            return a.compression.alpha < b.compression.alpha;
        return a.delay_ps < b.delay_ps;
    };
    return *std::min_element(candidates.begin(), candidates.end(), better);
}

std::vector<CompressionCandidate> CompressionSelector::sweep(int max_alpha, int max_beta,
                                                             double dvth_mv) const {
    const cell::Library lib = dvth_mv > 0 ? fresh_.aged(dvth_mv) : fresh_;
    std::vector<CompressionCandidate> out;
    for (int alpha = 0; alpha <= max_alpha; ++alpha)
        for (int beta = 0; beta <= max_beta; ++beta)
            for (const auto padding : {common::Padding::Msb, common::Padding::Lsb}) {
                CompressionCandidate cand;
                cand.compression = {alpha, beta, padding};
                cand.delay_ps =
                    sta_.critical_path_ps(lib, sta::compression_case(*mac_, cand.compression));
                cand.normalized_delay = cand.delay_ps / fresh_cp_ps_;
                out.push_back(cand);
            }
    return out;
}

}  // namespace raq::core
