// ModelState: one versioned, immutable deployment artifact — the
// QuantizedGraph Algorithm 1 produced together with the metadata it was
// built for. This is the unit the serving runtime double-buffers: a
// device always points at exactly one ModelState, a background
// re-quantization builds the next one off the serving path, and the swap
// is a shared_ptr assignment at a batch boundary. The generation id is
// monotonic per device, so fleet telemetry can order every deployment a
// device ever served.
#pragma once

#include <cstdint>
#include <memory>

#include "common/compression.hpp"
#include "quant/methods.hpp"
#include "quant/quantized_graph.hpp"

namespace raq::core {

struct ModelState {
    /// Monotonic per device; 1 is the initial deployment, 0 means "none".
    std::uint64_t generation = 0;
    std::shared_ptr<const quant::QuantizedGraph> qgraph;
    common::Compression compression;              ///< (α, β, padding) deployed
    quant::Method method = quant::Method::M5_AciqNoBias;
    double dvth_mv = 0.0;  ///< aging level this state was built for — the
                           ///< re-quantization baseline of its successor
    /// Aged STA critical path of `compression` at `dvth_mv`: the clock
    /// period the deployment actually sustains. Devices re-derive their
    /// clock from this on every install, so latency/throughput track the
    /// aged silicon instead of the fresh-forever critical path.
    double aged_delay_ps = 0.0;
};

}  // namespace raq::core
