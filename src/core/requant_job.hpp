// RequantJob: the paper's Algorithm 1 packaged as a reusable build job
// that turns one aging level into a versioned ModelState.
//
// Extracted out of AgingAwareQuantizer so the same code path serves both
// the offline experiments (AgingAwareQuantizer::run keeps its reporting
// shape and delegates the method search here) and the serving runtime,
// which runs builds repeatedly — inline at a batch boundary or on a
// background RequantService thread. Unlike the one-shot quantizer entry
// point, a job amortizes everything that does not change between builds:
// the calibration statistics are taken as-is (not recomputed per build)
// and the FP32 reference accuracy for the loss threshold is evaluated
// once at construction.
//
// build() is const and keeps no mutable state, so one job can run
// concurrently from several service workers (for different devices
// sharing a context). Plan compilation inside the method search hits the
// exec::PlanCache, so repeated builds over one topology recompile zero
// ExecPlans.
#pragma once

#include <optional>
#include <vector>

#include "core/compression_selector.hpp"
#include "core/model_state.hpp"
#include "quant/calibration.hpp"

namespace raq::core {

/// One PTQ method's evaluation inside the Algorithm 1 search.
struct MethodOutcome {
    quant::Method method;
    double accuracy = 0.0;
    double accuracy_loss = 0.0;  ///< vs. FP32, in percentage points
};

struct MethodSearchResult {
    quant::Method selected = quant::Method::M5_AciqNoBias;
    double accuracy = 0.0;  ///< of the selected method
    std::vector<MethodOutcome> all_methods;  ///< every evaluated method
};

/// Algorithm 1 lines 6-10: quantize the graph with every method in the
/// PTQ library and keep the best — or, with a threshold, stop at the
/// first method whose loss vs. `fp32_accuracy` satisfies it.
[[nodiscard]] MethodSearchResult search_methods(
    const ir::Graph& graph, const quant::QuantConfig& config,
    const quant::CalibrationData& calib, tensor::TensorView eval_images,
    const std::vector<int>& eval_labels, double fp32_accuracy,
    std::optional<double> accuracy_loss_threshold);

struct RequantJobConfig {
    /// Full Algorithm 1 (all PTQ methods, needs the eval set) vs. the
    /// fast path (compression selection + M5 ACIQ).
    bool full_algorithm1 = false;
    std::optional<double> accuracy_loss_threshold;  ///< Algorithm 1 line 9
    /// Timing-constraint relaxation: compressions must meet
    /// fresh_cp × (1 + guardband_fraction). 0 is the paper's
    /// zero-guardband operating point.
    double guardband_fraction = 0.0;
};

class RequantJob {
public:
    /// All pointed-to inputs must outlive the job. The eval set is
    /// required (and the FP32 reference accuracy computed) only for full
    /// Algorithm 1; constructing a full-Algorithm-1 job without one
    /// throws — there is no silent fast-path fallback.
    RequantJob(const ir::Graph& graph, const quant::CalibrationData& calib,
               const CompressionSelector& selector, const RequantJobConfig& config,
               const tensor::Tensor* eval_images = nullptr,
               const std::vector<int>* eval_labels = nullptr);

    /// Build the artifact for one aging level, stamping `generation`.
    /// Returns nullopt when even full compression cannot meet timing.
    [[nodiscard]] std::optional<ModelState> build(double dvth_mv,
                                                  std::uint64_t generation) const;

    [[nodiscard]] const RequantJobConfig& config() const { return config_; }
    /// FP32 reference accuracy on the eval set (0 on the fast path).
    [[nodiscard]] double fp32_accuracy() const { return fp32_accuracy_; }

private:
    const ir::Graph* graph_;
    const quant::CalibrationData* calib_;
    const CompressionSelector* selector_;
    RequantJobConfig config_;
    const tensor::Tensor* eval_images_;
    const std::vector<int>* eval_labels_;
    double fp32_accuracy_ = 0.0;
};

}  // namespace raq::core
