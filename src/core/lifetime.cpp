#include "core/lifetime.hpp"

namespace raq::core {

std::vector<SchedulePoint> LifetimeScheduler::schedule(
    const std::vector<double>& dvth_levels_mv) const {
    std::vector<SchedulePoint> out;
    out.reserve(dvth_levels_mv.size());
    const double fresh_cp = selector_->fresh_critical_path_ps();
    for (const double dvth : dvth_levels_mv) {
        SchedulePoint point;
        point.dvth_mv = dvth;
        point.years = model_->years_for_dvth(dvth);
        point.baseline_normalized_delay =
            selector_->delay_ps(dvth, common::Compression{}) / fresh_cp;
        if (dvth == 0.0) {
            // Fresh chip: no compression required (Algorithm 1 returns
            // (0,0) since it trivially meets timing).
            point.ours_feasible = true;
            point.compression = common::Compression{};
            point.ours_normalized_delay = 1.0;
        } else if (const auto choice = selector_->select(dvth)) {
            point.ours_feasible = true;
            point.compression = choice->compression;
            point.ours_normalized_delay = choice->normalized_delay;
        }
        out.push_back(point);
    }
    return out;
}

std::vector<SchedulePoint> LifetimeScheduler::standard_schedule() const {
    const auto levels = aging::AgingModel::standard_levels_mv();
    return schedule(std::vector<double>(levels.begin(), levels.end()));
}

double LifetimeScheduler::required_guardband_fraction() const {
    const double eol_dvth = model_->dvth_mv(model_->params().eol_years);
    const double fresh_cp = selector_->fresh_critical_path_ps();
    return selector_->delay_ps(eol_dvth, common::Compression{}) / fresh_cp - 1.0;
}

}  // namespace raq::core
