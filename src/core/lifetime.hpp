// Lifetime planning utilities: the ΔVth trajectory over the projected
// lifetime, the guardband the baseline design would need, and the
// compression schedule our technique deploys instead (Fig. 4a).
#pragma once

#include <vector>

#include "aging/aging_model.hpp"
#include "core/compression_selector.hpp"

namespace raq::core {

struct SchedulePoint {
    double years = 0.0;
    double dvth_mv = 0.0;
    double baseline_normalized_delay = 0.0;  ///< uncompressed aged MAC vs fresh
    bool ours_feasible = false;
    common::Compression compression;         ///< selected at this aging level
    double ours_normalized_delay = 0.0;      ///< compressed aged MAC vs fresh
};

class LifetimeScheduler {
public:
    LifetimeScheduler(const CompressionSelector& selector, const aging::AgingModel& model)
        : selector_(&selector), model_(&model) {}

    /// Schedule over the paper's standard aging levels (0..50 mV).
    [[nodiscard]] std::vector<SchedulePoint> standard_schedule() const;

    /// Schedule over an arbitrary ΔVth grid.
    [[nodiscard]] std::vector<SchedulePoint> schedule(
        const std::vector<double>& dvth_levels_mv) const;

    /// The timing guardband (fraction of the fresh period) a conventional
    /// design must add to survive until end of life — the paper's 23 %.
    [[nodiscard]] double required_guardband_fraction() const;

private:
    const CompressionSelector* selector_;
    const aging::AgingModel* model_;
};

}  // namespace raq::core
