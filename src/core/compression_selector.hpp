// Compression selection — the timing half of the paper's Algorithm 1
// (lines 1-5): sweep (α, β) ∈ [0, 8]² under both paddings with aged-
// library STA, keep the combinations that meet the fresh-clock timing
// constraint, and select the minimum-compression candidate by Euclidean
// norm √(α²+β²) with the smallest-α tie-break (higher activation
// precision, following [18]).
#pragma once

#include <optional>
#include <vector>

#include "cell/library.hpp"
#include "common/compression.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace raq::core {

struct CompressionCandidate {
    common::Compression compression;
    double delay_ps = 0.0;       ///< aged delay under this compression
    double normalized_delay = 0.0;  ///< vs. the fresh uncompressed MAC
};

class CompressionSelector {
public:
    /// `mac` must outlive the selector. The timing constraint defaults to
    /// the fresh uncompressed critical path (zero-slack design, no
    /// guardband — the paper's operating point).
    CompressionSelector(const netlist::Netlist& mac, const cell::Library& fresh_library);

    [[nodiscard]] double fresh_critical_path_ps() const { return fresh_cp_ps_; }

    /// All feasible (α, β, padding) at the aging level. For a given
    /// (α, β) only the faster padding is kept (both are reported by
    /// `sweep` below). `guardband_fraction` relaxes the constraint to
    /// fresh_cp * (1 + guardband) — used by the partial-guardband ablation.
    [[nodiscard]] std::vector<CompressionCandidate> feasible(
        double dvth_mv, double guardband_fraction = 0.0, int max_bits = 8) const;

    /// Algorithm 1 line 5: minimum-norm feasible candidate (min α on tie).
    /// Empty when even full compression cannot meet timing.
    [[nodiscard]] std::optional<CompressionCandidate> select(
        double dvth_mv, double guardband_fraction = 0.0) const;

    /// Raw delay of one compression point at one aging level.
    [[nodiscard]] double delay_ps(double dvth_mv, const common::Compression& comp) const;

    /// Full (α, β) grid sweep for Fig. 2-style reports.
    [[nodiscard]] std::vector<CompressionCandidate> sweep(int max_alpha, int max_beta,
                                                          double dvth_mv = 0.0) const;

private:
    const netlist::Netlist* mac_;
    cell::Library fresh_;
    sta::Sta sta_;
    double fresh_cp_ps_;
};

}  // namespace raq::core
