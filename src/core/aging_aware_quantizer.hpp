// Aging-aware quantization — the paper's Algorithm 1 end to end:
//   1. STA sweep with aged libraries -> feasible (α, β, padding) set
//   2. minimum-norm compression selection
//   3. quantize the NN with every method in the PTQ library, pick the
//      first that satisfies the accuracy-loss threshold (or, as in the
//      paper's evaluation, the best over all methods when no threshold
//      is given).
//
// This is the one-shot reporting entry point (it calibrates and
// evaluates FP32 per call). The method search itself lives in
// core::search_methods / core::RequantJob, the reusable build-job form
// the serving runtime re-runs online.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/compression_selector.hpp"
#include "core/requant_job.hpp"
#include "ir/graph.hpp"
#include "quant/evaluate.hpp"
#include "quant/methods.hpp"

namespace raq::core {

struct AagResult {
    CompressionCandidate compression;
    quant::Method selected_method = quant::Method::M4_Aciq;
    double fp32_accuracy = 0.0;
    double quantized_accuracy = 0.0;
    double accuracy_loss = 0.0;  ///< percentage points vs. FP32
    std::vector<MethodOutcome> all_methods;  ///< every evaluated method
};

struct AagInputs {
    const ir::Graph* graph = nullptr;          ///< trained, BN-folded model
    const tensor::Tensor* test_images = nullptr;
    const std::vector<int>* test_labels = nullptr;
    const tensor::Tensor* calib_images = nullptr;  ///< calibration batch
    const std::vector<int>* calib_labels = nullptr;
    /// Accuracy-loss threshold in percentage points (Algorithm 1 line 9);
    /// unset = evaluate every method and keep the best (paper §7).
    std::optional<double> accuracy_loss_threshold;
};

class AgingAwareQuantizer {
public:
    explicit AgingAwareQuantizer(const CompressionSelector& selector)
        : selector_(&selector) {}

    /// Run Algorithm 1 at one aging level. Throws when no compression can
    /// meet timing (does not occur for the paper's ΔVth range).
    [[nodiscard]] AagResult run(const AagInputs& inputs, double dvth_mv,
                                double guardband_fraction = 0.0) const;

private:
    const CompressionSelector* selector_;
};

}  // namespace raq::core
