#include "core/aging_aware_quantizer.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "ir/float_executor.hpp"

namespace raq::core {

AagResult AgingAwareQuantizer::run(const AagInputs& in, double dvth_mv,
                                   double guardband_fraction) const {
    if (!in.graph || !in.test_images || !in.test_labels || !in.calib_images ||
        !in.calib_labels)
        throw std::invalid_argument("AgingAwareQuantizer: missing inputs");

    const auto choice = selector_->select(dvth_mv, guardband_fraction);
    if (!choice)
        throw std::runtime_error(
            "AgingAwareQuantizer: no feasible compression at ΔVth = " +
            std::to_string(dvth_mv) + " mV");

    AagResult result;
    result.compression = *choice;
    result.fp32_accuracy = ir::float_accuracy(*in.graph, *in.test_images, *in.test_labels);

    const auto calib = quant::calibrate(*in.graph, *in.calib_images, *in.calib_labels);
    const auto config = quant::QuantConfig::from_compression(choice->compression);

    bool have_best = false;
    // Algorithm 1 inner loop: every candidate method runs through one
    // shared execution plan — only the quantization payload is rebound,
    // so the schedule, arena and conv workspaces are compiled once. The
    // runner pins each bound graph itself (owning rebind).
    std::unique_ptr<quant::QuantRunner> runner;
    const quant::EvalOptions eval_options;
    for (const quant::Method method : quant::all_methods()) {
        auto qgraph = std::make_shared<const quant::QuantizedGraph>(
            quant::quantize_graph(*in.graph, method, config, calib));
        if (!runner)
            runner = std::make_unique<quant::QuantRunner>(
                std::move(qgraph),
                std::min(eval_options.batch_size, in.test_images->shape().n));
        else
            runner->rebind(std::move(qgraph));
        const double acc = quant::quantized_accuracy(*runner, *in.test_images,
                                                     *in.test_labels, eval_options);
        MethodOutcome outcome;
        outcome.method = method;
        outcome.accuracy = acc;
        outcome.accuracy_loss = 100.0 * (result.fp32_accuracy - acc);
        result.all_methods.push_back(outcome);
        if (!have_best || acc > result.quantized_accuracy) {
            result.quantized_accuracy = acc;
            result.selected_method = method;
            have_best = true;
        }
        // Algorithm 1 line 9: stop at the first method meeting the
        // user-provided accuracy-loss threshold.
        if (in.accuracy_loss_threshold &&
            outcome.accuracy_loss <= *in.accuracy_loss_threshold) {
            result.quantized_accuracy = acc;
            result.selected_method = method;
            break;
        }
    }
    result.accuracy_loss = 100.0 * (result.fp32_accuracy - result.quantized_accuracy);
    return result;
}

}  // namespace raq::core
