#include "core/aging_aware_quantizer.hpp"

#include <stdexcept>
#include <utility>

#include "ir/float_executor.hpp"

namespace raq::core {

AagResult AgingAwareQuantizer::run(const AagInputs& in, double dvth_mv,
                                   double guardband_fraction) const {
    if (!in.graph || !in.test_images || !in.test_labels || !in.calib_images ||
        !in.calib_labels)
        throw std::invalid_argument("AgingAwareQuantizer: missing inputs");

    const auto choice = selector_->select(dvth_mv, guardband_fraction);
    if (!choice)
        throw std::runtime_error(
            "AgingAwareQuantizer: no feasible compression at ΔVth = " +
            std::to_string(dvth_mv) + " mV");

    AagResult result;
    result.compression = *choice;
    result.fp32_accuracy = ir::float_accuracy(*in.graph, *in.test_images, *in.test_labels);

    const auto calib = quant::calibrate(*in.graph, *in.calib_images, *in.calib_labels);
    const auto config = quant::QuantConfig::from_compression(choice->compression);

    // Algorithm 1 inner loop, shared with the serving runtime's
    // RequantJob builds (core/requant_job.cpp).
    MethodSearchResult search =
        search_methods(*in.graph, config, calib, *in.test_images, *in.test_labels,
                       result.fp32_accuracy, in.accuracy_loss_threshold);
    result.selected_method = search.selected;
    result.quantized_accuracy = search.accuracy;
    result.all_methods = std::move(search.all_methods);
    result.accuracy_loss = 100.0 * (result.fp32_accuracy - result.quantized_accuracy);
    return result;
}

}  // namespace raq::core
