// Deterministic pseudo-random number generation used across the project.
//
// Every stochastic component (dataset synthesis, weight init, error
// injection, random test vectors) takes an explicit seed so experiments
// are reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>

namespace raq::common {

/// SplitMix64: used to expand a single user seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Derive an independent stream seed from a base seed and stream ids.
/// Used wherever work is fanned out across threads/devices/requests: each
/// unit of work seeds its own generator from (base, ids...), so results
/// do not depend on thread scheduling and runs are reproducible.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) noexcept {
    std::uint64_t s = base ^ (stream * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a,
                                    std::uint64_t b) noexcept {
    return stream_seed(stream_seed(base, a), b);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    std::uint64_t next_u64() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, 1).
    double next_double() noexcept {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [0, 1) single precision.
    float next_float() noexcept {
        return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        // Lemire's nearly-divisionless bounded sampling (bias negligible
        // for our bounds, which are far below 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        next_below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Standard normal via Box–Muller (polar-free variant; caches nothing).
    double next_gaussian() noexcept {
        double u1 = next_double();
        while (u1 <= 1e-300) u1 = next_double();
        const double u2 = next_double();
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    /// Bernoulli(p).
    bool next_bool(double p) noexcept { return next_double() < p; }

    /// Geometric sampling: number of Bernoulli(p) failures before the first
    /// success. Used to skip ahead between rare injected faults.
    std::uint64_t next_geometric(double p) noexcept {
        if (p >= 1.0) return 0;
        if (p <= 0.0) return ~0ULL;
        double u = next_double();
        while (u <= 1e-300) u = next_double();
        return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace raq::common
