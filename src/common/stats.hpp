// Small statistics toolkit: summary statistics, quartiles (for the box
// plots of Fig. 4b) and correlation coefficients (for the surrogate
// ranking experiment of Section 6.2).
#pragma once

#include <cstddef>
#include <vector>

namespace raq::common {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. xs need not be sorted.
double quantile(std::vector<double> xs, double q);

/// The same interpolation over an already-sorted sample — for callers
/// reading several quantiles off one sort (serve latency summaries).
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Many quantiles off ONE sort: returns quantile(xs, q) for each q in
/// `qs`, in order. The one percentile routine every multi-quantile
/// reader (latency summaries, bench stall percentiles, box plots) goes
/// through, so they cannot drift onto different interpolations.
std::vector<double> quantiles(std::vector<double> xs, const std::vector<double>& qs);

/// Five-number summary used to print box plots as text.
struct BoxStats {
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};
BoxStats box_stats(const std::vector<double>& xs);

/// Pearson linear correlation coefficient.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Ranks with average tie-handling (1-based ranks as doubles).
std::vector<double> ranks(const std::vector<double>& xs);

/// Spearman rank correlation = Pearson correlation of the rank vectors.
/// (The paper computes "the Pearson correlation between the two rankings",
/// which is exactly this quantity.)
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace raq::common
