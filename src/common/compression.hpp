// The (α, β) input-compression descriptor shared across the stack.
//
// Activations are quantized to 8−α bits, weights to 8−β bits, biases /
// accumulator inputs to 16−α−β bits (paper §5). The freed bit positions
// are zero-padded on the MSB side (value sits in the LSBs) or the LSB
// side (value shifted left; the convolution result must then be shifted
// right by α+β, Eq. 5).
#pragma once

#include <cmath>
#include <string>

namespace raq::common {

enum class Padding { Msb, Lsb };

[[nodiscard]] inline const char* padding_name(Padding p) {
    return p == Padding::Msb ? "MSB" : "LSB";
}

struct Compression {
    int alpha = 0;  ///< activation bits removed
    int beta = 0;   ///< weight bits removed
    Padding padding = Padding::Msb;

    /// The paper's surrogate for "amount of compression" (Algorithm 1,
    /// line 5): Euclidean distance from (0, 0).
    [[nodiscard]] double norm() const {
        return std::sqrt(static_cast<double>(alpha * alpha + beta * beta));
    }

    [[nodiscard]] bool is_none() const { return alpha == 0 && beta == 0; }

    [[nodiscard]] std::string to_string() const {
        return "(" + std::to_string(alpha) + "," + std::to_string(beta) + ")/" +
               padding_name(padding);
    }

    friend bool operator==(const Compression& a, const Compression& b) {
        return a.alpha == b.alpha && a.beta == b.beta && a.padding == b.padding;
    }
    friend bool operator!=(const Compression& a, const Compression& b) { return !(a == b); }
};

}  // namespace raq::common
